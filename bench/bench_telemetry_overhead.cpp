// Overhead of the telemetry layer (per-phase histograms, concurrent
// tracer, armed flight recorder) on the SPMD simulator hot path.
//
// Telemetry is strictly opt-in: with no registry and no tracer attached
// the simulator pays one null check per phase, and a disabled flight
// recorder costs one relaxed load per record site. This bench measures
// the same TOMCATV workload in two configurations:
//
//   disabled — setTelemetry(nullptr, nullptr), flight recorder off:
//              the default every non-instrumented run gets
//   armed    — a live MetricRegistry (per-phase histograms), a live
//              ConcurrentTracer (per-worker spans), and the global
//              flight recorder enabled but with nothing firing into it
//              beyond the simulator's own checkpoint events
//
// and enforces that the ARMED-but-idle layer stays within 2% of the
// disabled run (median of interleaved runs; one re-measure round with
// more repetitions absorbs scheduler noise before the check is treated
// as a failure). Any result divergence between the configurations is a
// hard failure — overhead numbers from a diverged run are worthless.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "obs/concurrent_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 33;
constexpr std::int64_t kIters = 2;

void seedTomcatv(Interpreter& o) {
    for (std::int64_t i = 1; i <= kN; ++i)
        for (std::int64_t j = 1; j <= kN; ++j) {
            o.setElement("x", {i, j},
                         static_cast<double>(i) + 0.1 * static_cast<double>(j));
            o.setElement("y", {i, j},
                         static_cast<double>(j) - 0.05 * static_cast<double>(i));
        }
}

struct RunResult {
    double wall = 0.0;
    std::int64_t transfers = 0;
    std::int64_t events = 0;
    std::int64_t procStmts = 0;
};

RunResult runWith(const Compilation& c, obs::MetricRegistry* metrics,
                  obs::ConcurrentTracer* tracer) {
    SimulationRequest req;
    req.seed = seedTomcatv;
    req.metrics = metrics;
    req.ctracer = tracer;
    auto sim = c.simulate(req);
    return {sim->wallSec(), sim->elementTransfers(), sim->messageEvents(),
            sim->statementsExecutedAllProcs()};
}

void requireIdentical(const RunResult& base, const RunResult& r,
                      const char* what) {
    if (r.transfers == base.transfers && r.events == base.events &&
        r.procStmts == base.procStmts)
        return;
    std::fprintf(stderr,
                 "FATAL: %s run diverged from the disabled run "
                 "(transfers %lld vs %lld)\n",
                 what, static_cast<long long>(r.transfers),
                 static_cast<long long>(base.transfers));
    std::exit(1);
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/// One measurement round: `reps` interleaved disabled/armed runs
/// (interleaving cancels slow drift — thermal, competing CI tenants),
/// medians of each. The armed run's tracer is cleared between runs so
/// span storage never grows across repetitions.
void measure(const Compilation& c, obs::MetricRegistry& reg,
             obs::ConcurrentTracer& tracer, int reps, double* disabledSec,
             double* armedSec) {
    std::vector<double> disabled, armed;
    for (int i = 0; i < reps; ++i) {
        disabled.push_back(runWith(c, nullptr, nullptr).wall);
        armed.push_back(runWith(c, &reg, &tracer).wall);
        tracer.clear();
    }
    *disabledSec = median(disabled);
    *armedSec = median(armed);
}

void printTable() {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);

    obs::MetricRegistry reg;
    obs::ConcurrentTracer tracer;
    obs::FlightRecorder::global().setEnabled(true);

    // Warm-up + divergence gate.
    const RunResult base = runWith(c, nullptr, nullptr);
    requireIdentical(base, runWith(c, &reg, &tracer), "armed-telemetry");
    tracer.clear();

    double disabledSec = 0, armedSec = 0;
    measure(c, reg, tracer, 7, &disabledSec, &armedSec);
    double overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    if (overheadPct >= 2.0) {
        // One re-measure with more repetitions before declaring a real
        // regression: CI neighbours cause >2% blips that a longer
        // median absorbs.
        measure(c, reg, tracer, 11, &disabledSec, &armedSec);
        overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    }

    obs::FlightRecorder::global().setEnabled(false);
    obs::FlightRecorder::global().clear();

    printHeader(
        "Telemetry overhead: TOMCATV ((*,block), n = " + std::to_string(kN) +
            ", 8 procs) — simulated-run wall sec",
        {"disabled_sec", "armed_sec", "overhead_pct"});
    printRow(8, {disabledSec, armedSec, overheadPct});
    std::printf("\n");

    if (overheadPct >= 2.0) {
        std::fprintf(stderr,
                     "FATAL: armed-but-idle telemetry costs %.2f%% "
                     "(budget < 2%%)\n",
                     overheadPct);
        std::exit(1);
    }
}

void BM_SimTelemetryDisabled(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        const RunResult r = runWith(c, nullptr, nullptr);
        benchmark::DoNotOptimize(r.transfers);
    }
}

void BM_SimTelemetryArmed(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    obs::MetricRegistry reg;
    obs::ConcurrentTracer tracer;
    for (auto _ : state) {
        const RunResult r = runWith(c, &reg, &tracer);
        benchmark::DoNotOptimize(r.transfers);
        tracer.clear();
    }
}

BENCHMARK(BM_SimTelemetryDisabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimTelemetryArmed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
