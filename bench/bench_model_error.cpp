// Cost-model calibration error on the paper's table kernels.
//
// For each of TOMCATV (Table 1), DGEFA (Table 2) and APPSP (Table 3),
// compile with the default mapping pipeline, run the profiled
// functional simulation, and join the analytic cost model's
// per-statement / per-comm-op / per-decision predictions against the
// re-costed measured counters (obs::buildCalibration). The emitted MAPE
// columns are 100% deterministic — "measured" is re-costed from exact
// simulator counters through the same CostModel, never wall time — so
// the committed baseline (bench/baselines/BENCH_model_error.json) is
// machine-independent and compare_bench.py gates it by absolute point
// drift: the model may not silently get ±tolerance points worse at
// predicting the runs it claims to predict.

#include <benchmark/benchmark.h>

#include <functional>

#include "bench_common.h"
#include "obs/calibration.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

struct Kernel {
    const char* title;
    std::function<Program()> make;
    std::vector<int> grid;
};

const std::vector<Kernel>& kernels() {
    static const std::vector<Kernel> ks = {
        {"Model error: TOMCATV ((*,block), n = 33, Table 1 kernel)",
         [] { return programs::tomcatv(33, 2); },
         {8}},
        {"Model error: DGEFA ((*,cyclic), n = 16, Table 2 kernel)",
         [] { return programs::dgefa(16); },
         {16}},
        {"Model error: APPSP 1-D (n = 16, Table 3 kernel)",
         [] { return programs::appsp(16, 16, 16, 2, /*oneD=*/true); },
         {16}},
    };
    return ks;
}

obs::CalibrationReport calibrate(const Kernel& k) {
    Program p = k.make();
    TargetConfig opts;
    opts.gridExtents = k.grid;
    Compilation c = Compiler::compile(p, opts);
    SimulationRequest req;
    req.profile = true;
    auto sim = c.simulate(req);
    return obs::buildCalibration(c.lowering(), TargetConfig{}.costModel,
                                 *sim, *sim->profile(),
                                 c.mappingPass().decisionLog());
}

void printTables() {
    for (const Kernel& k : kernels()) {
        const obs::CalibrationReport cal = calibrate(k);
        printHeader(k.title, {"mape_sec_pct", "mape_events_pct",
                              "mape_bytes_pct", "rows_joined"});
        printRow(k.grid.size() == 1 ? k.grid[0] : k.grid[0] * k.grid[1],
                 {cal.summary.mapeSecPct, cal.summary.mapeEventsPct,
                  cal.summary.mapeBytesPct,
                  static_cast<double>(cal.summary.joined)});
    }
    std::printf("\n");
}

void BM_CalibrateTomcatv(benchmark::State& state) {
    for (auto _ : state) {
        const obs::CalibrationReport cal = calibrate(kernels()[0]);
        benchmark::DoNotOptimize(cal.summary.mapeSecPct);
    }
}

BENCHMARK(BM_CalibrateTomcatv)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    printTables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
