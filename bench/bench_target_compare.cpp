// Backend decision tables: the paper's three kernels priced under both
// execution targets from ONE compilation each (the lowering structure
// is target-independent, so cross-pricing via predictCostFor is exactly
// what a dedicated recompile would predict — test_target.cpp holds that
// equality). Columns are the predicted execution times of the
// message-passing SP2 model and the same-era shared-memory SMP model;
// the winner flips where barrier+coherence overhead crosses message
// latency, which is the run report's "which target wins" decision.
//
// The emitted rows are deterministic model outputs, so they are gated
// against bench/baselines/BENCH_target_compare.json by
// scripts/compare_bench.py in CI.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "target/target.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

/// Price one kernel compilation under both machine models.
struct TargetRow {
    double mpSec;
    double shmSec;
};

TargetRow priceBoth(Program& p, std::vector<int> grid,
                    MappingOptions mapping) {
    TargetConfig target;
    target.gridExtents = std::move(grid);
    PassOptions passes;
    passes.mapping = mapping;
    Compilation c = Compiler::compile(p, target, passes);
    return {c.predictCostFor(TargetKind::MessagePassing).totalSec(),
            c.predictCostFor(TargetKind::SharedMemory).totalSec()};
}

void printTable(const char* title, const std::function<Program()>& build,
                const std::vector<std::vector<int>>& grids,
                MappingOptions mapping = {}) {
    printHeader(title, {"MP", "SHM"});
    for (const std::vector<int>& grid : grids) {
        int procs = 1;
        for (int e : grid) procs *= e;
        Program p = build();
        const TargetRow r = priceBoth(p, grid, mapping);
        printRow(procs, {r.mpSec, r.shmSec});
    }
    std::printf("\n");
}

void printTables() {
    printTable(
        "Target compare: TOMCATV  ((*,block), n = 513) — predicted "
        "execution time (sec)",
        [] { return programs::tomcatv(513, 5); },
        {{1}, {2}, {4}, {8}, {16}});
    printTable(
        "Target compare: DGEFA  ((*,cyclic), n = 1000) — predicted "
        "execution time (sec)",
        [] { return programs::dgefa(1000); },
        {{1}, {2}, {4}, {8}, {16}});
    MappingOptions partial;
    partial.arrayPrivatization = true;
    partial.partialPrivatization = true;
    printTable(
        "Target compare: APPSP  (2-D, partial priv, n = 64, niter = 50) "
        "— predicted execution time (sec)",
        [] { return programs::appsp(64, 64, 64, 50, /*oneD=*/false); },
        {{2, 1}, {2, 2}, {4, 2}, {4, 4}}, partial);
}

void BM_CrossPriceTomcatv(benchmark::State& state) {
    Program p = programs::tomcatv(513, 5);
    TargetConfig conf;
    conf.gridExtents = {8};
    Compilation c = Compiler::compile(p, conf);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.predictCostFor(TargetKind::MessagePassing).totalSec());
        benchmark::DoNotOptimize(
            c.predictCostFor(TargetKind::SharedMemory).totalSec());
    }
}
BENCHMARK(BM_CrossPriceTomcatv);

}  // namespace

int main(int argc, char** argv) {
    printTables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
