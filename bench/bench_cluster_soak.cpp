// Chaos soak of the distributed compile farm (src/cluster): a
// coordinator routes >= 1000 mixed hot/cold compile requests across 4
// REAL worker processes (fork, own sockets, own caches) while one
// worker takes a real SIGKILL mid-run.
//
// Workload: 1000 requests over 64 unique fig1 variants — a 24-variant
// hot pool (repeated ~40x each) interleaved with 40 cold one-shot
// variants. The coordinator's local tier is deliberately tiny (16
// entries, 64 uniques) so repeats spill into the peer-fetch tier
// instead of being shadowed by the local LRU.
//
// Hard gates (exit 1, so CI fails on the bench itself):
//   - completion: every job ok, none failed, none lost to the kill;
//   - exactly-once: the emission guard never saw a duplicate AND the
//     journal holds exactly one row per job name;
//   - bit-identity: every row's artifact content hash equals the hash
//     of the same request compiled by a single in-process
//     CompileService — the distributed farm must be indistinguishable
//     from one process in results;
//   - the kill really happened (ring shrank 4 -> 3) and the two-tier
//     cache really worked (nonzero local AND peer hits);
//   - the live Prometheus endpoint serves the coordinator's request
//     quantiles and tier counters (the same scrape CI performs).
//
// The report row feeds bench/baselines/BENCH_cluster_soak.json. The
// committed p99_ms baseline is a deliberately generous ceiling rather
// than a measurement (absolute latency on shared CI is noisy); the
// two_tier_miss_rate_pct column is workload-determined and tight.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster_batch.h"
#include "cluster/coordinator.h"
#include "cluster/http_client.h"
#include "cluster/wire.h"
#include "cluster/worker.h"
#include "obs/json.h"
#include "service/batch.h"
#include "service/http_exposition.h"

namespace {

using namespace phpf;

constexpr int kWorkers = 4;
constexpr int kJobs = 1000;
constexpr int kHotVariants = 24;
constexpr int kColdEvery = 25;  // every 25th request is a cold unique
constexpr std::int64_t kKillAfterRequests = 250;

/// Problem size of request `i`: hot pool below 64, cold uniques above.
std::int64_t variantN(int i) {
    if (i % kColdEvery == kColdEvery - 1)
        return 64 + 2 * (i / kColdEvery);
    return 8 + 2 * (i % kHotVariants);
}

service::BatchJob jobAt(int i) {
    service::BatchJob job;
    job.name = "job-" + std::to_string(i);
    job.program = "fig1";
    job.n = variantN(i);
    job.target.gridExtents = {4};
    return job;
}

/// First sample value of `name` in a Prometheus text page (NaN = absent).
double scrape(const std::string& page, const std::string& name) {
    const std::string needle = name + " ";
    for (size_t pos = 0; (pos = page.find(needle, pos)) != std::string::npos;
         ++pos) {
        if (pos != 0 && page[pos - 1] != '\n') continue;
        return std::strtod(page.c_str() + pos + needle.size(), nullptr);
    }
    return std::numeric_limits<double>::quiet_NaN();
}

struct Farm {
    std::vector<pid_t> pids;
    std::vector<int> ports;

    void killAll() {
        for (pid_t p : pids)
            if (p > 0) ::kill(p, SIGKILL);
        for (pid_t p : pids)
            if (p > 0) ::waitpid(p, nullptr, 0);
        pids.clear();
    }
};

Farm* g_farm = nullptr;

[[noreturn]] void fail(const char* what) {
    std::fprintf(stderr, "bench_cluster_soak: FAIL: %s\n", what);
    if (g_farm != nullptr) g_farm->killAll();
    std::exit(1);
}

/// Fork one worker subprocess (no exec — the bench binary IS the
/// worker image). The child reports its ephemeral port over a pipe and
/// serves until /quitquitquit; the only threads at fork time are the
/// child's own, created after the fork.
void forkWorker(Farm* farm, int index) {
    int fds[2];
    if (::pipe(fds) != 0) fail("pipe");
    const pid_t pid = ::fork();
    if (pid < 0) fail("fork");
    if (pid == 0) {
        ::close(fds[0]);
        cluster::WorkerConfig wc;
        wc.id = "soak-w" + std::to_string(index);
        wc.service.workers = 2;
        wc.service.cacheCapacity = 256;  // holds every unique variant
        cluster::Worker worker(wc);
        std::string err;
        if (!worker.start(&err)) {
            std::fprintf(stderr, "bench_cluster_soak: worker: %s\n",
                         err.c_str());
            ::_exit(2);
        }
        char line[32];
        const int len =
            std::snprintf(line, sizeof line, "%d\n", worker.port());
        if (::write(fds[1], line, static_cast<size_t>(len)) != len) ::_exit(2);
        ::close(fds[1]);
        while (!worker.quitRequested())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        worker.stop();
        ::_exit(0);
    }
    ::close(fds[1]);
    std::string text;
    char c;
    while (::read(fds[0], &c, 1) == 1 && c != '\n') text.push_back(c);
    ::close(fds[0]);
    const int port = std::atoi(text.c_str());
    if (port <= 0) fail("worker did not report a port");
    farm->pids.push_back(pid);
    farm->ports.push_back(port);
}

}  // namespace

int main() {
    // Workers fork FIRST: the parent is still single-threaded, so the
    // children never inherit a half-held lock.
    Farm farm;
    g_farm = &farm;
    for (int i = 0; i < kWorkers; ++i) forkWorker(&farm, i);

    cluster::CoordinatorConfig cc;
    cc.cacheCapacity = 16;  // << 64 uniques: force the peer tier
    cluster::Coordinator coord(cc);
    for (int port : farm.ports) {
        std::string err;
        if (!coord.addWorker("127.0.0.1:" + std::to_string(port), &err)) {
            std::fprintf(stderr, "bench_cluster_soak: join: %s\n",
                         err.c_str());
            fail("worker failed to join the ring");
        }
    }

    // The live Prometheus endpoint CI scrapes — the same exposition
    // path phpfc --coordinator --serve-metrics uses.
    service::MetricsHttpServer server(0);
    server.addRegistry("phpf", &coord.metrics());
    {
        std::string err;
        if (!server.start(&err)) fail("metrics server failed to start");
    }

    service::BatchSpec spec;
    for (int i = 0; i < kJobs; ++i) spec.jobs.push_back(jobAt(i));

    const std::string journalPath = "bench_cluster_soak.journal.jsonl";
    std::remove(journalPath.c_str());

    // The chaos: a REAL kill -9 of one worker once the batch is
    // demonstrably mid-flight (sockets reset, no flushes, no goodbyes).
    const int victim = 1;
    std::thread killer([&] {
        while (coord.metrics().counterValue("cluster.coord.requests") <
               kKillAfterRequests)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ::kill(farm.pids[victim], SIGKILL);
        ::waitpid(farm.pids[victim], nullptr, 0);
        farm.pids[victim] = -1;
    });

    cluster::ClusterBatchOptions opts;
    opts.journalPath = journalPath;
    std::ostringstream rows;
    const cluster::ClusterBatchOutcome outcome =
        cluster::runClusterBatch(coord, spec, rows, opts);
    killer.join();

    std::printf(
        "soak: %d job(s), %d ok, %d failed, %d local / %d peer / %d worker "
        "hit(s), %d compiled, %d stolen, %d requeued, exactly-once=%s, "
        "%.3f s, ring %zu/%d alive\n",
        outcome.jobs, outcome.ok, outcome.failed, outcome.localHits,
        outcome.peerHits, outcome.workerHits, outcome.compiles,
        outcome.steals, outcome.requeues, outcome.exactlyOnce ? "yes" : "NO",
        outcome.wallSec, coord.workerCount(), kWorkers);

    // Gate 1: completion + the kill really bit + the tiers really ran.
    if (outcome.jobs != kJobs || outcome.ok != kJobs || outcome.failed != 0)
        fail("not every job completed ok");
    if (!outcome.exactlyOnce) fail("emission guard saw a duplicate");
    if (coord.workerCount() != kWorkers - 1)
        fail("the killed worker is still on the ring");
    if (outcome.localHits <= 0 || outcome.peerHits <= 0)
        fail("a cache tier was never exercised");

    // Gate 2: exactly-once from the journal — one row per job name.
    {
        std::ifstream in(journalPath);
        if (!in) fail("journal missing");
        std::set<std::string> names;
        std::string line;
        int n = 0;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            std::string err;
            const obs::Json j = obs::Json::parse(line, &err);
            if (!err.empty()) fail("journal row is not JSON");
            names.insert(j.at("job").stringValue());
            ++n;
        }
        if (n != kJobs || static_cast<int>(names.size()) != kJobs)
            fail("journal rows are not exactly-once");
    }

    // Gate 3: bit-identity against one in-process CompileService — the
    // reference single-process run of every unique variant.
    {
        service::CompileService svc;
        std::map<std::int64_t, std::string> hashByN;
        for (int i = 0; i < kJobs; ++i) {
            const std::int64_t n = variantN(i);
            if (hashByN.count(n) != 0) continue;
            service::CompileRequest req;
            std::string err;
            if (!service::requestOfJob(jobAt(i), &req, &err))
                fail("reference requestOfJob");
            const service::CompileResult r = svc.compile(req);
            if (r.status != service::CompileStatus::Ok || !r.artifact)
                fail("reference compile failed");
            hashByN[n] =
                cluster::WireArtifact::fromArtifact(*r.artifact).contentHash();
        }
        std::istringstream in(rows.str());
        std::string line;
        int checked = 0;
        while (std::getline(in, line)) {
            std::string err;
            const obs::Json j = obs::Json::parse(line, &err);
            if (!err.empty()) fail("batch row is not JSON");
            if (j.find("summary") != nullptr) continue;
            const int i = std::atoi(j.at("job").stringValue().c_str() + 4);
            if (j.at("content_hash").stringValue() != hashByN[variantN(i)])
                fail("cluster artifact differs from single-process compile");
            ++checked;
        }
        if (checked != kJobs) fail("row count mismatch");
    }

    // Gate 4: the live scrape CI performs — request quantiles and tier
    // counters on the Prometheus page.
    const cluster::HttpResult m =
        cluster::httpGet("127.0.0.1", server.port(), "/metrics", 5000);
    if (!m.ok || m.status != 200) fail("live /metrics scrape failed");
    const double p99Us =
        scrape(m.body, "phpf_cluster_coord_request_us{quantile=\"0.99\"}");
    const double requests =
        scrape(m.body, "phpf_cluster_coord_requests_total");
    const double compiles =
        scrape(m.body, "phpf_cluster_coord_compiles_total");
    const double localHits =
        scrape(m.body, "phpf_cluster_coord_local_hits_total");
    const double peerHits =
        scrape(m.body, "phpf_cluster_coord_peer_hits_total");
    if (!(p99Us >= 0) || !(requests >= kJobs)) fail("scrape missing series");
    if (!(localHits > 0) || !(peerHits > 0))
        fail("scraped tier counters are zero");
    server.stop();

    const double missRatePct = 100.0 * compiles / requests;
    const double localRatePct = 100.0 * localHits / requests;
    const double peerRatePct = 100.0 * peerHits / requests;
    std::printf("soak: p99 %.2f ms, miss %.1f%%, local %.1f%%, peer %.1f%%\n",
                p99Us / 1000.0, missRatePct, localRatePct, peerRatePct);

    bench::printHeader("Cluster soak: 1000 mixed requests, 4 workers, one "
                       "SIGKILL mid-run",
                       {"p99_ms", "two_tier_miss_rate_pct",
                        "local_hit_rate_pct", "peer_hit_rate_pct",
                        "wall_sec"});
    bench::printRow(kWorkers, {p99Us / 1000.0, missRatePct, localRatePct,
                               peerRatePct, outcome.wallSec});

    // Orderly shutdown of the survivors, then reap.
    for (size_t i = 0; i < farm.ports.size(); ++i) {
        if (farm.pids[i] <= 0) continue;
        (void)cluster::httpGet("127.0.0.1", farm.ports[i], "/quitquitquit",
                               2000);
    }
    for (pid_t& p : farm.pids) {
        if (p <= 0) continue;
        for (int spin = 0; spin < 200; ++spin) {
            if (::waitpid(p, nullptr, WNOHANG) == p) {
                p = -1;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    farm.killAll();  // SIGKILL any straggler, reap the rest
    std::remove(journalPath.c_str());
    std::printf("bench_cluster_soak: PASS\n");
    return 0;
}
