// Regenerates Figure 4 (Section 2.2): AlignLevel of array references.
// With (block,block,*) distribution, A(i,j,k) has AlignLevel 2 (its
// outermost valid alignment scope is the j loop) while B(s,j,k) has
// AlignLevel 3: the subscript s is not an affine function of loop
// indices and only becomes well-defined inside the k loop.

#include <benchmark/benchmark.h>

#include "analysis/affine.h"
#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 4: AlignLevel for array references ===\n\n");
    Program p = programs::fig4(16);
    TargetConfig opts;
    opts.gridExtents = {2, 2};
    Compilation c = Compiler::compile(p, opts);
    std::printf("%s\n", printProgram(p).c_str());

    AffineAnalyzer aff(p, &c.ssa());
    p.forEachStmt([&](Stmt* s) {
        if (s->kind != StmtKind::Assign || s->lhs->kind != ExprKind::ArrayRef)
            return;
        std::printf("%s:\n", printExpr(p, s->lhs).c_str());
        int alignLevel = 0;
        for (int d = 0; d < static_cast<int>(s->lhs->args.size()); ++d) {
            const int sal =
                aff.subscriptAlignLevel(s->lhs->args[static_cast<size_t>(d)]);
            std::printf("  dim %d subscript %-6s SubscriptAlignLevel = %d\n",
                        d + 1,
                        printExpr(p, s->lhs->args[static_cast<size_t>(d)]).c_str(),
                        sal);
            if (d < 2) alignLevel = std::max(alignLevel, sal);  // block dims
        }
        std::printf("  AlignLevel = %d\n\n", alignLevel);
    });
}

void BM_Fig4AffineAnalysis(benchmark::State& state) {
    Program p = programs::fig4(16);
    TargetConfig opts;
    opts.gridExtents = {2, 2};
    Compilation c = Compiler::compile(p, opts);
    AffineAnalyzer aff(p, &c.ssa());
    std::vector<Expr*> refs;
    p.forEachStmt([&](Stmt* s) {
        if (s->kind == StmtKind::Assign && s->lhs->kind == ExprKind::ArrayRef)
            refs.push_back(s->lhs);
    });
    for (auto _ : state) {
        int sum = 0;
        for (Expr* r : refs)
            for (Expr* sub : r->args) sum += aff.subscriptAlignLevel(sub);
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_Fig4AffineAnalysis);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
