// Regenerates Figure 5 (Section 2.3): a scalar computed in a sum
// reduction over the j loop, with A distributed (block,block). The
// compiler aligns s with the ith row of A in the first grid dimension
// and replicates it across the second (the reduction dimension), so the
// partial sums proceed without broadcasting rows of A; a single
// combining step per i iteration merges the partials.

#include <benchmark/benchmark.h>

#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 5: scalar involved in a reduction "
                "(2x2 grid, n = 64) ===\n\n");
    {
        Program p = programs::fig5(64);
        showFigure(p, {2, 2});
    }
    std::printf("--- ablation: reduction alignment on/off ---\n");
    for (bool align : {false, true}) {
        MappingOptions m;
        m.reductionAlignment = align;
        Program p = programs::fig5(64);
        const CostBreakdown cb = predict(p, {2, 2}, m);
        std::printf("reductionAlignment=%d  comm=%.6fs events=%lld\n", align,
                    cb.commSec, static_cast<long long>(cb.messageEvents));
    }
    std::printf("\n");
}

void BM_Fig5Simulate(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig5(12);
        TargetConfig opts;
        opts.gridExtents = {2, 2};
        Compilation c = Compiler::compile(p, opts);
        auto sim = c.simulate({.seed = [](Interpreter& o) {
            for (std::int64_t i = 1; i <= 12; ++i)
                for (std::int64_t j = 1; j <= 12; ++j)
                    o.setElement("A", {i, j},
                                 static_cast<double>(i * 100 + j));
        }});
        benchmark::DoNotOptimize(sim->maxErrorVsOracle("B"));
    }
}
BENCHMARK(BM_Fig5Simulate);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
