#pragma once

#include <cstdio>

#include "bench_common.h"
#include "ir/printer.h"

namespace phpf::bench {

/// Compile one figure program, print its mini-HPF source, the mapping
/// decisions and the placed communication, and the predicted cost — the
/// figure benches regenerate the paper's worked examples this way.
inline Compilation showFigure(Program& p, std::vector<int> grid,
                              MappingOptions mapping = {},
                              bool printSource = true) {
    TargetConfig opts;
    PassOptions passes;
    opts.gridExtents = std::move(grid);
    passes.mapping = mapping;
    Compilation c = Compiler::compile(p, opts, passes);
    if (printSource) std::printf("%s\n", printProgram(p).c_str());
    std::printf("%s\n", c.report().c_str());
    std::printf("%s\n", c.lowering().dump().c_str());
    const CostBreakdown cb = c.predictCost();
    std::printf("predicted: compute %.6fs, comm %.6fs, %lld message events\n\n",
                cb.computeSec, cb.commSec,
                static_cast<long long>(cb.messageEvents));
    return c;
}

}  // namespace phpf::bench
