// Regenerates Figure 7 (Section 4): privatized execution of control
// flow statements. Both IFs (and the GOTO) transfer control only within
// the i loop, so their execution is privatized: only the owner of A(i)
// (which also owns B(i) and C(i)) participates, no communication is
// needed for the predicates, and the loop parallelizes. With the
// optimization off, every processor executes the IFs and B must be
// broadcast.

#include <benchmark/benchmark.h>

#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 7: privatized control flow (P = 4, n = 64) "
                "===\n\n");
    {
        Program p = programs::fig7(64);
        showFigure(p, {4});
    }
    std::printf("--- ablation: control-flow privatization off ---\n");
    for (bool cf : {false, true}) {
        MappingOptions m;
        m.controlFlowPrivatization = cf;
        Program p = programs::fig7(64);
        const CostBreakdown cb = predict(p, {4}, m);
        std::printf("cfPrivatization=%d  comm=%.6fs events=%lld\n", cf,
                    cb.commSec, static_cast<long long>(cb.messageEvents));
    }
    std::printf("\n");
}

void BM_Fig7Simulate(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig7(16);
        TargetConfig opts;
        opts.gridExtents = {4};
        Compilation c = Compiler::compile(p, opts);
        auto sim = c.simulate({.seed = [](Interpreter& o) {
            for (std::int64_t i = 1; i <= 16; ++i) {
                o.setElement("B", {i}, static_cast<double>((i % 3) - 1));
                o.setElement("A", {i}, 6.0);
                o.setElement("C", {i}, 2.0);
            }
        }});
        benchmark::DoNotOptimize(sim->maxErrorVsOracle("A"));
    }
}
BENCHMARK(BM_Fig7Simulate);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
