// Armed-vs-unarmed overhead of distributed trace propagation on the
// compile farm's request path.
//
// Tracing follows the same opt-in contract as the rest of the
// telemetry layer (bench_telemetry_overhead): a coordinator with no
// tracer pays one null check per request, and an ARMED coordinator at
// the default sampling rate (every 8th request, CoordinatorConfig::
// traceSampleEvery) must stay within 2% of it. Sampling is the knob
// that buys that budget: a fully traced request stamps a traceparent
// onto the wire, ships a span batch back, and (on a compile) records
// ~40+ service stage spans — 10-15% of that one request — while an
// unsampled request pays one counter increment. Amortized 1-in-8 the
// armed tracer disappears into the budget and a soak still collects
// hundreds of exemplar traces. The full-rate (--trace-sample=1) cost
// is measured and printed too, as the documented price of
// full-fidelity capture, but the 2% gate is on the default
// configuration — the one every armed production run gets.
//
// The workload is the harshest honest denominator: steady-state
// cache-hit requests over a shared 3-worker in-process farm, with a
// 1-entry coordinator-local tier forcing every request onto the wire
// (a local-LRU hit would measure nothing). Medians of interleaved
// rounds; one re-measure round with more repetitions absorbs
// scheduler noise before the check is treated as a failure.
//
// Any divergence between armed and unarmed artifact content hashes is
// a hard failure: the trace context must ride OUTSIDE the
// content-hashed payload, and overhead numbers from a diverged run
// are worthless anyway.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "obs/concurrent_trace.h"
#include "service/batch.h"

namespace {

using namespace phpf;

constexpr int kWorkers = 3;
constexpr int kVariants = 16;
constexpr int kPassesPerRound = 8;  // 128 requests per timed round

service::BatchJob variantJob(int v) {
    service::BatchJob job;
    job.name = "v" + std::to_string(v);
    job.program = "fig1";
    job.n = 8 + 2 * v;
    job.target.gridExtents = {4};
    return job;
}

[[noreturn]] void fail(const std::string& why) {
    std::fprintf(stderr, "FATAL: bench_trace_propagation: %s\n", why.c_str());
    std::exit(1);
}

/// One timed round: every variant requested kPassesPerRound times.
/// Worker caches are warm, so this measures the request path itself.
double roundSec(cluster::Coordinator& coord) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < kPassesPerRound; ++pass)
        for (int v = 0; v < kVariants; ++v) {
            const auto out = coord.compileJob(variantJob(v));
            if (!out.ok()) fail("request failed: " + out.error);
        }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

struct Measured {
    double unarmedSec = 0;
    double armedSec = 0;    ///< tracer attached, default sampling
    double fullRateSec = 0; ///< tracer attached, sample-every-1
};

/// Interleaved rounds cancel slow drift (thermal, competing CI
/// tenants). The armed coordinators' span storage is drained between
/// rounds so they never measure their own growth.
Measured measure(cluster::Coordinator& unarmed, cluster::Coordinator& armed,
                 cluster::Coordinator& fullRate, obs::ConcurrentTracer& at,
                 obs::ConcurrentTracer& ft, int reps) {
    std::vector<double> u, a, f;
    for (int i = 0; i < reps; ++i) {
        u.push_back(roundSec(unarmed));
        a.push_back(roundSec(armed));
        (void)armed.stitchTrace();
        at.clear();
        f.push_back(roundSec(fullRate));
        (void)fullRate.stitchTrace();
        ft.clear();
    }
    return {median(u), median(a), median(f)};
}

double pct(double base, double x) { return 100.0 * (x - base) / base; }

}  // namespace

int main() {
    // One shared farm: all three coordinators hit the same warm worker
    // caches, so the only difference between them is the tracing.
    std::vector<std::unique_ptr<cluster::Worker>> workers;
    for (int i = 0; i < kWorkers; ++i) {
        cluster::WorkerConfig wc;
        wc.killMode = cluster::KillMode::Drop;
        wc.service.cacheCapacity = 256;
        wc.service.workers = 2;
        auto w = std::make_unique<cluster::Worker>(wc);
        std::string err;
        if (!w->start(&err)) fail("worker start: " + err);
        workers.push_back(std::move(w));
    }

    cluster::CoordinatorConfig uc;
    uc.cacheCapacity = 1;  // force every request onto the wire
    cluster::Coordinator unarmed(uc);

    obs::ConcurrentTracer armedTracer;
    cluster::CoordinatorConfig ac;
    ac.tracer = &armedTracer;  // traceSampleEvery stays at the default
    ac.cacheCapacity = 1;
    cluster::Coordinator armed(ac);

    obs::ConcurrentTracer fullTracer;
    cluster::CoordinatorConfig fc;
    fc.tracer = &fullTracer;
    fc.traceSampleEvery = 1;  // every request: the full-fidelity price
    fc.cacheCapacity = 1;
    cluster::Coordinator fullRate(fc);

    for (const auto& w : workers) {
        std::string err;
        if (!unarmed.addWorker(w->endpoint(), &err)) fail("join: " + err);
        if (!armed.addWorker(w->endpoint(), &err)) fail("join: " + err);
        if (!fullRate.addWorker(w->endpoint(), &err)) fail("join: " + err);
    }

    // Warm-up + divergence gate: armed artifacts must be bit-identical
    // to unarmed ones for every variant, and full-rate tracing must
    // actually produce trace ids (the armed run only samples 1-in-8,
    // so it is checked for at least one sampled request overall).
    bool armedSampled = false;
    for (int v = 0; v < kVariants; ++v) {
        const auto u = unarmed.compileJob(variantJob(v));
        const auto a = armed.compileJob(variantJob(v));
        const auto f = fullRate.compileJob(variantJob(v));
        if (!u.ok() || !a.ok() || !f.ok()) fail("warm-up compile failed");
        if (f.traceId.empty()) fail("full-rate run produced no trace id");
        armedSampled |= !a.traceId.empty();
        if (a.artifact.contentHash() != u.artifact.contentHash() ||
            f.artifact.contentHash() != u.artifact.contentHash())
            fail("traced run diverged from untraced on v" +
                 std::to_string(v));
    }
    if (!armedSampled)
        fail("default-sampling run produced no trace id in 16 requests");
    (void)armed.stitchTrace();
    armedTracer.clear();
    (void)fullRate.stitchTrace();
    fullTracer.clear();

    Measured m = measure(unarmed, armed, fullRate, armedTracer, fullTracer,
                         /*reps=*/7);
    double overheadPct = pct(m.unarmedSec, m.armedSec);
    if (overheadPct >= 2.0) {
        // One re-measure with more repetitions before declaring a real
        // regression: shared-CI neighbours cause blips a longer median
        // absorbs.
        m = measure(unarmed, armed, fullRate, armedTracer, fullTracer,
                    /*reps=*/11);
        overheadPct = pct(m.unarmedSec, m.armedSec);
    }

    const int requests = kVariants * kPassesPerRound;
    bench::printHeader(
        "Trace propagation: " + std::to_string(requests) +
            " steady-state wire requests, 3 workers, armed at default "
            "sampling",
        {"unarmed_sec", "armed_sec", "overhead_pct"});
    bench::printRow(kWorkers, {m.unarmedSec, m.armedSec, overheadPct});
    std::printf("\n");
    std::printf(
        "info: full-rate tracing (--trace-sample=1): %.4fs vs %.4fs "
        "(%+.1f%%, %+.0fus/request) — the full-fidelity price, not "
        "gated\n",
        m.fullRateSec, m.unarmedSec, pct(m.unarmedSec, m.fullRateSec),
        (m.fullRateSec - m.unarmedSec) * 1e6 / requests);

    if (overheadPct >= 2.0) {
        std::fprintf(stderr,
                     "FATAL: default-sampling trace propagation costs "
                     "%.2f%% (budget < 2%%)\n",
                     overheadPct);
        return 1;
    }
    std::printf("bench_trace_propagation: PASS (%.2f%% overhead)\n",
                overheadPct);
    return 0;
}
