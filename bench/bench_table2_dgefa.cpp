// Reproduces Table 2 of the paper: DGEFA (LINPACK Gaussian elimination
// with partial pivoting), (*,cyclic), n = 1000.
//
//   Default   — the MAXLOC reduction scalars t and l stay replicated:
//               every processor executes the pivot search redundantly
//               and the pivot column is broadcast each step.
//   Alignment — Section 2.3: the reduction results are aligned with
//               A(i,k) in the non-reduction grid dims, confining the
//               pivot search to the owner of column k.
//
// The paper's shape: the communication overhead of the default version
// stays roughly constant as P grows, so it accounts for an increasing
// share of execution time; the aligned version wins consistently.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 1000;

void printTable() {
    printHeader(
        "Table 2: DGEFA on the SP2 model  ((*,cyclic), n = 1000) — "
        "predicted execution time (sec)",
        {"Default", "Alignment"});
    for (int procs : {1, 2, 4, 8, 16}) {
        std::vector<double> row;
        for (bool align : {false, true}) {
            MappingOptions m;
            m.reductionAlignment = align;
            row.push_back(
                predictService([] { return programs::dgefa(kN); }, {procs}, m)
                    .totalSec());
        }
        printRow(procs, row);
    }
    std::printf("\n");
}

void BM_CompileDgefa(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::dgefa(kN);
        TargetConfig opts;
        opts.gridExtents = {16};
        Compilation c = Compiler::compile(p, opts);
        benchmark::DoNotOptimize(c.lowering().commOps().size());
    }
}
BENCHMARK(BM_CompileDgefa);

void BM_PredictCostDgefa(benchmark::State& state) {
    Program p = programs::dgefa(kN);
    TargetConfig opts;
    opts.gridExtents = {16};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.predictCost().totalSec());
    }
}
BENCHMARK(BM_PredictCostDgefa);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
