#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "programs/programs.h"

namespace phpf::bench {

/// Format a predicted execution time like the paper's tables (seconds).
inline std::string fmtSec(double s) {
    char buf[64];
    if (s >= 86400.0)
        std::snprintf(buf, sizeof buf, "> 86400 (1 day)");
    else if (s >= 100.0)
        std::snprintf(buf, sizeof buf, "%.0f", s);
    else if (s >= 1.0)
        std::snprintf(buf, sizeof buf, "%.1f", s);
    else
        std::snprintf(buf, sizeof buf, "%.3f", s);
    return buf;
}

/// Compile `p` for the given grid/options and return the predicted
/// execution profile.
inline CostBreakdown predict(Program& p, std::vector<int> grid,
                             MappingOptions mapping) {
    CompilerOptions opts;
    opts.gridExtents = std::move(grid);
    opts.mapping = mapping;
    Compilation c = Compiler::compile(p, opts);
    return c.predictCost();
}

inline void printHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
    std::printf("\n%s\n", title.c_str());
    std::printf("%-6s", "#P");
    for (const auto& c : columns) std::printf("  %-22s", c.c_str());
    std::printf("\n");
}

inline void printRow(int procs, const std::vector<double>& secs) {
    std::printf("%-6d", procs);
    for (double s : secs) std::printf("  %-22s", fmtSec(s).c_str());
    std::printf("\n");
}

}  // namespace phpf::bench
