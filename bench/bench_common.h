#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "driver/compiler.h"
#include "obs/json.h"
#include "programs/programs.h"
#include "service/compile_service.h"

namespace phpf::bench {

/// Opt-in machine-readable bench output. When the PHPF_BENCH_REPORT
/// environment variable names a file, every printRow() also appends one
/// JSON line (`{"bench": ..., "procs": ..., "<column>": sec, ...}`) to
/// it, keyed by the most recent printHeader(). Human-readable stdout is
/// unchanged either way.
class BenchReporter {
public:
    static BenchReporter& instance() {
        static BenchReporter r;
        return r;
    }

    void setHeader(const std::string& title,
                   const std::vector<std::string>& columns) {
        title_ = title;
        columns_ = columns;
    }

    void row(int procs, const std::vector<double>& secs) {
        if (!out_.is_open()) return;
        obs::Json j = obs::Json::object();
        j.set("bench", title_);
        j.set("procs", procs);
        for (size_t i = 0; i < secs.size(); ++i) {
            const std::string key =
                i < columns_.size() ? columns_[i]
                                    : "col" + std::to_string(i);
            j.set(key, secs[i]);
        }
        out_ << j.dump(-1) << "\n";
        out_.flush();  // rows survive a crashed/killed bench run
    }

private:
    BenchReporter() {
        // The report file stays open for the process lifetime: a bench
        // binary emits hundreds of rows, and reopening per row turned
        // the reporter into the bottleneck of short benches.
        const char* p = std::getenv("PHPF_BENCH_REPORT");
        if (p != nullptr) out_.open(p, std::ios::app);
    }

    std::ofstream out_;
    std::string title_;
    std::vector<std::string> columns_;
};

/// Format a predicted execution time like the paper's tables (seconds).
inline std::string fmtSec(double s) {
    char buf[64];
    if (s >= 86400.0)
        std::snprintf(buf, sizeof buf, "> 86400 (1 day)");
    else if (s >= 100.0)
        std::snprintf(buf, sizeof buf, "%.0f", s);
    else if (s >= 1.0)
        std::snprintf(buf, sizeof buf, "%.1f", s);
    else
        std::snprintf(buf, sizeof buf, "%.3f", s);
    return buf;
}

/// Compile `p` for the given grid/options and return the predicted
/// execution profile.
inline CostBreakdown predict(Program& p, std::vector<int> grid,
                             MappingOptions mapping) {
    TargetConfig target;
    target.gridExtents = std::move(grid);
    PassOptions passes;
    passes.mapping = mapping;
    Compilation c = Compiler::compile(p, target, passes);
    return c.predictCost();
}

/// The bench-wide compile service: one process-lifetime instance, so
/// table benches that revisit a (program, grid, options) point — e.g.
/// the same variant across repetitions, or the paper's tables rerun for
/// a report — hit the artifact cache instead of recompiling.
inline service::CompileService& benchService() {
    static service::CompileService svc;
    return svc;
}

/// Like predict(), but routed through the shared compile service:
/// identical requests are served from the content-addressed cache.
/// `build` must return an equivalent fresh Program per call.
inline CostBreakdown predictService(std::function<Program()> build,
                                    std::vector<int> grid,
                                    MappingOptions mapping,
                                    CostModel costModel = {}) {
    service::CompileRequest req;
    req.build = std::move(build);
    req.target.gridExtents = std::move(grid);
    req.target.costModel = costModel;
    req.passes.mapping = mapping;
    const service::CompileResult r = benchService().compile(req);
    if (r.status != service::CompileStatus::Ok) {
        std::fprintf(stderr, "bench compile failed: %s\n", r.error.c_str());
        std::abort();
    }
    return r.artifact->cost;
}

inline void printHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
    BenchReporter::instance().setHeader(title, columns);
    std::printf("\n%s\n", title.c_str());
    std::printf("%-6s", "#P");
    for (const auto& c : columns) std::printf("  %-22s", c.c_str());
    std::printf("\n");
}

inline void printRow(int procs, const std::vector<double>& secs) {
    BenchReporter::instance().row(procs, secs);
    std::printf("%-6d", procs);
    for (double s : secs) std::printf("  %-22s", fmtSec(s).c_str());
    std::printf("\n");
}

}  // namespace phpf::bench
