// Regenerates Figure 2 (Section 2.1): availability requirements for
// subscripts. p is used as the subscript of H(i,p), a reference that
// needs no communication under the owner-computes execution of
// A(i) = H(i,p) + G(q,i) — so p's consumer is A(i) and p is privatized
// and aligned. q indexes G(q,i), which *does* need communication, so q
// must be available on every processor: it stays replicated.

#include <benchmark/benchmark.h>

#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 2: availability requirements for subscripts "
                "(P = 4, n = 64) ===\n\n");
    Program p = programs::fig2(64);
    Compilation c = showFigure(p, {4});

    // Print the two decisions explicitly.
    for (const char* name : {"p", "q"}) {
        const SymbolId sym = p.findSymbol(name);
        p.forEachStmt([&](Stmt* s) {
            if (s->kind != StmtKind::Assign ||
                s->lhs->kind != ExprKind::VarRef || s->lhs->sym != sym)
                return;
            const ScalarMapDecision* dec =
                c.mappingPass().decisions().forDef(c.ssa().defIdOfAssign(s));
            std::printf("%s: %s\n", name,
                        dec != nullptr ? dec->rationale.c_str() : "(none)");
        });
    }
    std::printf("\n");
}

void BM_Fig2Compile(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig2(64);
        TargetConfig opts;
        opts.gridExtents = {4};
        benchmark::DoNotOptimize(Compiler::compile(p, opts).predictCost());
    }
}
BENCHMARK(BM_Fig2Compile);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
