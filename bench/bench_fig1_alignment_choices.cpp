// Regenerates the paper's Figure 1 walkthrough (Section 2.1): the four
// privatized scalars take four different mappings —
//   m : induction variable, closed-form rewritten, privatized without
//       alignment
//   x : aligned with the consumer reference D(m) (both B(i) and C(i)
//       shifts hoisted out of the i loop)
//   y : aligned with a producer reference (consumer A(i+1) would force
//       inner-loop communication for A(i))
//   z : privatized without alignment (E and F replicated)
// and compares the message counts of the three compiler levels.

#include <benchmark/benchmark.h>

#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 1: different alignments of privatized scalars "
                "(P = 4, n = 64) ===\n\n");
    {
        Program p = programs::fig1(64);
        showFigure(p, {4});
    }
    std::printf("--- ablation: message events per compiler level ---\n");
    for (int variant : {0, 1, 2}) {
        MappingOptions m;
        if (variant == 0) m.privatization = false;
        if (variant == 1)
            m.alignPolicy = MappingOptions::AlignPolicy::ProducerOnly;
        Program p = programs::fig1(64);
        const CostBreakdown cb = predict(p, {4}, m);
        std::printf("%-20s events=%-8lld comm=%.6fs\n",
                    variant == 0   ? "replication"
                    : variant == 1 ? "producer alignment"
                                   : "selected alignment",
                    static_cast<long long>(cb.messageEvents), cb.commSec);
    }
    std::printf("\n");
}

void BM_Fig1Compile(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig1(64);
        TargetConfig opts;
        opts.gridExtents = {4};
        benchmark::DoNotOptimize(Compiler::compile(p, opts).predictCost());
    }
}
BENCHMARK(BM_Fig1Compile);

void BM_Fig1Simulate(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig1(24);
        TargetConfig opts;
        opts.gridExtents = {4};
        Compilation c = Compiler::compile(p, opts);
        auto sim = c.simulate({.seed = [](Interpreter& o) {
            for (std::int64_t i = 1; i <= 25; ++i) {
                if (i <= 24) {
                    o.setElement("B", {i}, 1.0 + static_cast<double>(i));
                    o.setElement("C", {i}, 1.0);
                    o.setElement("E", {i}, 2.0);
                    o.setElement("F", {i}, 2.0);
                }
                o.setElement("A", {i}, 0.5);
            }
        }});
        benchmark::DoNotOptimize(sim->messageEvents());
    }
}
BENCHMARK(BM_Fig1Simulate);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
