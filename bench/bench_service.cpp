// Cold vs warm compile-service runs over the full Table 1/2/3 matrix.
//
// The matrix is every (program, grid, option variant) the paper's
// tables visit: TOMCATV × 3 compiler levels × {1,2,4,8,16} procs,
// DGEFA × 2 alignment variants × {1,2,4,8,16}, APPSP × 5 variants ×
// {2,4,8,16}. A cold pass compiles all of it through a fresh service
// (every request a miss); a warm pass replays the identical requests
// against the now-populated artifact cache. The warm pass must be
// measurably faster — that is the acceptance test of the
// content-addressed cache — and every warm artifact must be the exact
// object the cold pass produced.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "service/compile_service.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

std::vector<int> grid2d(int procs) {
    int a = 1, b = procs;
    while (a * 2 <= b / 2) {
        a *= 2;
        b /= 2;
    }
    return {a, b};
}

/// One request per cell of Tables 1-3 (sizes scaled down so a cold
/// pass stays in benchmark time; the request *mix* is the real thing).
std::vector<service::CompileRequest> tableMatrix() {
    std::vector<service::CompileRequest> reqs;
    for (int procs : {1, 2, 4, 8, 16}) {
        for (int variant : {0, 1, 2}) {
            service::CompileRequest r;
            r.name = "table1/tomcatv";
            r.build = [] { return programs::tomcatv(129, 10); };
            r.target.gridExtents = {procs};
            if (variant == 0) r.passes.mapping.privatization = false;
            if (variant == 1)
                r.passes.mapping.alignPolicy =
                    MappingOptions::AlignPolicy::ProducerOnly;
            reqs.push_back(std::move(r));
        }
        for (bool align : {false, true}) {
            service::CompileRequest r;
            r.name = "table2/dgefa";
            r.build = [] { return programs::dgefa(100); };
            r.target.gridExtents = {procs};
            r.passes.mapping.reductionAlignment = align;
            reqs.push_back(std::move(r));
        }
    }
    for (int procs : {2, 4, 8, 16}) {
        for (int variant = 0; variant < 5; ++variant) {
            const bool oneD = variant < 2;
            service::CompileRequest r;
            r.name = "table3/appsp";
            r.build = [oneD] { return programs::appsp(16, 16, 16, 5, oneD); };
            r.target.gridExtents =
                oneD ? std::vector<int>{procs} : grid2d(procs);
            r.target.costModel.combineMessages = variant == 4;
            r.passes.mapping.arrayPrivatization =
                variant == 1 || variant >= 3;
            r.passes.mapping.partialPrivatization = variant >= 3;
            reqs.push_back(std::move(r));
        }
    }
    return reqs;
}

double runMatrix(service::CompileService& svc,
                 const std::vector<service::CompileRequest>& reqs,
                 int* hits) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& req : reqs) {
        const service::CompileResult r = svc.compile(req);
        if (r.status != service::CompileStatus::Ok) {
            std::fprintf(stderr, "service bench: %s failed: %s\n",
                         req.name.c_str(), r.error.c_str());
            std::abort();
        }
        if (hits != nullptr && r.cacheHit) ++*hits;
        benchmark::DoNotOptimize(r.artifact->cost.totalSec());
    }
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count()) /
           1e6;
}

/// Headline cold-vs-warm comparison, printed like the paper tables.
void printColdWarm() {
    const auto reqs = tableMatrix();
    service::CompileService svc;
    int coldHits = 0, warmHits = 0;
    const double coldSec = runMatrix(svc, reqs, &coldHits);
    const double warmSec = runMatrix(svc, reqs, &warmHits);
    std::printf(
        "\ncompile service, full Table 1-3 matrix (%zu requests)\n"
        "  cold: %8.3f s   (%d cache hits)\n"
        "  warm: %8.3f s   (%d cache hits)   speedup %.1fx\n\n",
        reqs.size(), coldSec, coldHits, warmSec, warmHits,
        warmSec > 0 ? coldSec / warmSec : 0.0);
    BenchReporter::instance().setHeader("service cold vs warm",
                                        {"cold_sec", "warm_sec"});
    BenchReporter::instance().row(static_cast<int>(reqs.size()),
                                  {coldSec, warmSec});
    if (warmHits != static_cast<int>(reqs.size())) {
        std::fprintf(stderr,
                     "service bench: warm pass expected %zu hits, got %d\n",
                     reqs.size(), warmHits);
        std::abort();
    }
}

void BM_ServiceCold(benchmark::State& state) {
    const auto reqs = tableMatrix();
    for (auto _ : state) {
        service::CompileService svc;  // fresh cache every iteration
        runMatrix(svc, reqs, nullptr);
    }
}
BENCHMARK(BM_ServiceCold)->Unit(benchmark::kMillisecond);

void BM_ServiceWarm(benchmark::State& state) {
    const auto reqs = tableMatrix();
    service::CompileService svc;
    runMatrix(svc, reqs, nullptr);  // populate once
    for (auto _ : state) runMatrix(svc, reqs, nullptr);
}
BENCHMARK(BM_ServiceWarm)->Unit(benchmark::kMillisecond);

/// Async submission of the whole matrix on the service worker pool —
/// exercises queueing and in-flight coalescing under contention.
void BM_ServiceSubmitAll(benchmark::State& state) {
    const auto reqs = tableMatrix();
    for (auto _ : state) {
        service::CompileService svc;
        std::vector<std::shared_future<service::CompileResult>> futs;
        futs.reserve(reqs.size());
        for (const auto& req : reqs) futs.push_back(svc.submit(req));
        for (auto& f : futs) benchmark::DoNotOptimize(f.get().status);
    }
}
BENCHMARK(BM_ServiceSubmitAll)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    printColdWarm();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
