// Ablation studies of the design choices DESIGN.md calls out:
//   1. induction-variable closed-form rewriting on/off (Section 2.1's
//      prerequisite for privatizing m and validating x's consumer
//      alignment in Fig. 1),
//   2. automatic array privatization (future-work extension) vs. the
//      NEW directive on the APPSP work array,
//   3. cost-model sensitivity: how the Table 1 selected-alignment
//      result changes with message latency (the latency-bound vs
//      bandwidth-bound regimes).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "frontend/parser.h"
#include "privatize/scalar_expansion.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void ablateInductionRewrite() {
    std::printf("--- ablation 1: induction rewriting (Fig. 1, P = 8) ---\n");
    for (bool rewrite : {false, true}) {
        Program p = programs::fig1(256);
        TargetConfig opts;
        PassOptions passes;
        opts.gridExtents = {8};
        passes.rewriteInduction = rewrite;
        Compilation c = Compiler::compile(p, opts, passes);
        const CostBreakdown cb = c.predictCost();
        std::printf("rewriteInduction=%d  total=%.6fs comm=%.6fs "
                    "(m %s)\n",
                    rewrite, cb.totalSec(), cb.commSec,
                    rewrite ? "privatized via closed form"
                            : "stays replicated/loop-carried");
    }
    std::printf("\n");
}

void ablateAutoPrivatization() {
    std::printf(
        "--- ablation 2: automatic array privatization (APPSP-like "
        "kernel without NEW, 2x2 grid) ---\n");
    const char* source = R"(
program sweep
  parameter (n = 32)
  real rsd(5,n,n,n), c(n,n,5)
!hpf$ distribute rsd(*,*,block,block)
  do k = 2, n-1
    do j = 2, n-1
      do i = 2, n-1
        c(i,j,1) = 0.25 * rsd(1,i,j,k)
      end do
    end do
    do j = 3, n-1
      do i = 2, n-1
        rsd(1,i,j,k) = rsd(1,i,j,k) + c(i,j-1,1)
      end do
    end do
  end do
end
)";
    for (bool autoPriv : {false, true}) {
        Program p = parseProgramOrDie(source);
        TargetConfig opts;
        PassOptions passes;
        opts.gridExtents = {2, 2};
        passes.mapping.autoArrayPrivatization = autoPriv;
        Compilation c = Compiler::compile(p, opts, passes);
        const CostBreakdown cb = c.predictCost();
        std::printf("autoArrayPrivatization=%d  total=%.4fs comm=%.4fs "
                    "arrays privatized=%zu\n",
                    autoPriv, cb.totalSec(), cb.commSec,
                    c.mappingPass().decisions().arrays().size());
    }
    std::printf("\n");
}

void ablateLatency() {
    std::printf("--- ablation 3: latency sensitivity (TOMCATV n=513, "
                "P=16, selected alignment) ---\n");
    for (double alphaUs : {5.0, 40.0, 320.0}) {
        Program p = programs::tomcatv(513, 100);
        TargetConfig opts;
        opts.gridExtents = {16};
        opts.costModel.alphaSec = alphaUs * 1e-6;
        Compilation c = Compiler::compile(p, opts);
        const CostBreakdown cb = c.predictCost();
        std::printf("alpha=%6.0fus  total=%.3fs (compute %.3fs, comm "
                    "%.3fs)\n",
                    alphaUs, cb.totalSec(), cb.computeSec, cb.commSec);
    }
    std::printf("\n");
}

void ablateScalarExpansion() {
    std::printf("--- ablation 4: privatization vs scalar expansion "
                "(Fig. 1, P = 8, n = 256) ---\n");
    // Privatized original.
    {
        Program p = programs::fig1(256);
        TargetConfig opts;
        opts.gridExtents = {8};
        Compilation c = Compiler::compile(p, opts);
        std::printf("privatization:     total=%.6fs (no extra storage)\n",
                    c.predictCost().totalSec());
    }
    // Expanded program compiled with privatization off.
    {
        Program p = programs::fig1(256);
        TargetConfig opts;
        opts.gridExtents = {8};
        Compilation c = Compiler::compile(p, opts);
        const int n = expandAlignedScalars(p, c.ssa(), c.dataMapping(),
                                           c.mappingPass().decisions());
        TargetConfig noPriv;
        PassOptions noPrivPasses;
        noPriv.gridExtents = {8};
        noPrivPasses.mapping.privatization = false;
        Compilation ce = Compiler::compile(p, noPriv, noPrivPasses);
        std::printf("scalar expansion:  total=%.6fs (%d scalars -> O(n) "
                    "arrays)\n",
                    ce.predictCost().totalSec(), n);
    }
    // Neither.
    {
        Program p = programs::fig1(256);
        TargetConfig noPriv;
        PassOptions noPrivPasses;
        noPriv.gridExtents = {8};
        noPrivPasses.mapping.privatization = false;
        Compilation c = Compiler::compile(p, noPriv, noPrivPasses);
        std::printf("neither:           total=%.6fs (replication)\n\n",
                    c.predictCost().totalSec());
    }
}

void BM_AblationCompile(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig1(256);
        TargetConfig opts;
        PassOptions passes;
        opts.gridExtents = {8};
        passes.rewriteInduction = state.range(0) != 0;
        benchmark::DoNotOptimize(Compiler::compile(p, opts, passes).predictCost());
    }
}
BENCHMARK(BM_AblationCompile)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
    ablateInductionRewrite();
    ablateAutoPrivatization();
    ablateLatency();
    ablateScalarExpansion();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
