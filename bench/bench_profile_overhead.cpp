// Overhead of the per-statement profiler on the SPMD simulator hot
// path.
//
// Profiling is strictly opt-in: with SimulationRequest::profile unset
// the simulator pays one null check per hook site. This bench measures
// the same TOMCATV workload in two configurations:
//
//   disabled — no profile (the default every plain run gets)
//   armed    — SimulationRequest::profile: per-statement instance /
//              per-proc / element / event counters on every statement
//              boundary plus 1-in-64 sampled phase timing
//
// and enforces that the armed profiler stays within 2% of the disabled
// run (median of interleaved runs; one re-measure round with more
// repetitions absorbs scheduler noise before the check is treated as a
// failure). The armed run must also reproduce the disabled run's
// simulator totals exactly — and the profile's own totals must match
// the simulator's — or the measurement is worthless and the bench
// hard-fails.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "obs/profiler.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 33;
constexpr std::int64_t kIters = 2;

void seedTomcatv(Interpreter& o) {
    for (std::int64_t i = 1; i <= kN; ++i)
        for (std::int64_t j = 1; j <= kN; ++j) {
            o.setElement("x", {i, j},
                         static_cast<double>(i) + 0.1 * static_cast<double>(j));
            o.setElement("y", {i, j},
                         static_cast<double>(j) - 0.05 * static_cast<double>(i));
        }
}

struct RunResult {
    double wall = 0.0;
    std::int64_t transfers = 0;
    std::int64_t events = 0;
    std::int64_t procStmts = 0;
};

RunResult runWith(const Compilation& c, bool profile) {
    SimulationRequest req;
    req.seed = seedTomcatv;
    req.profile = profile;
    auto sim = c.simulate(req);
    if (profile) {
        // The profile's totals are the simulator's totals, always; a
        // mismatch means the hooks drifted and every number below lies.
        const obs::StmtProfile& prof = *sim->profile();
        std::int64_t procStmts = 0, elements = 0, events = 0;
        for (int s = 0; s < prof.stmtCount(); ++s) {
            procStmts += prof.row(s).procStmts;
            elements += prof.row(s).elements;
            events += prof.row(s).events;
        }
        if (procStmts != sim->statementsExecutedAllProcs() ||
            elements != sim->elementTransfers() ||
            events != sim->messageEvents()) {
            std::fprintf(stderr,
                         "FATAL: profile totals diverged from the "
                         "simulator's own counters\n");
            std::exit(1);
        }
    }
    return {sim->wallSec(), sim->elementTransfers(), sim->messageEvents(),
            sim->statementsExecutedAllProcs()};
}

void requireIdentical(const RunResult& base, const RunResult& r,
                      const char* what) {
    if (r.transfers == base.transfers && r.events == base.events &&
        r.procStmts == base.procStmts)
        return;
    std::fprintf(stderr,
                 "FATAL: %s run diverged from the disabled run "
                 "(transfers %lld vs %lld)\n",
                 what, static_cast<long long>(r.transfers),
                 static_cast<long long>(base.transfers));
    std::exit(1);
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/// One measurement round: `reps` interleaved disabled/armed runs
/// (interleaving cancels slow drift — thermal, competing CI tenants),
/// medians of each.
void measure(const Compilation& c, int reps, double* disabledSec,
             double* armedSec) {
    std::vector<double> disabled, armed;
    for (int i = 0; i < reps; ++i) {
        disabled.push_back(runWith(c, false).wall);
        armed.push_back(runWith(c, true).wall);
    }
    *disabledSec = median(disabled);
    *armedSec = median(armed);
}

void printTable() {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);

    // Warm-up + divergence gate. Three pairs: the very first simulated
    // runs of the process are dominated by page faults and lazy
    // allocator growth, which a single pair does not absorb on small
    // CI machines.
    const RunResult base = runWith(c, false);
    requireIdentical(base, runWith(c, true), "profiled");
    for (int i = 0; i < 2; ++i) {
        (void)runWith(c, false);
        (void)runWith(c, true);
    }

    double disabledSec = 0, armedSec = 0;
    measure(c, 7, &disabledSec, &armedSec);
    double overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    for (const int reps : {11, 15}) {
        if (overheadPct < 2.0) break;
        // Re-measure with more repetitions before declaring a real
        // regression: CI neighbours cause >2% blips that a longer
        // median absorbs.
        measure(c, reps, &disabledSec, &armedSec);
        overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    }

    printHeader(
        "Profiler overhead: TOMCATV ((*,block), n = " + std::to_string(kN) +
            ", 8 procs) — simulated-run wall sec",
        {"disabled_sec", "armed_sec", "overhead_pct"});
    printRow(8, {disabledSec, armedSec, overheadPct});
    std::printf("\n");

    if (overheadPct >= 2.0) {
        std::fprintf(stderr,
                     "FATAL: armed per-statement profiler costs %.2f%% "
                     "(budget < 2%%)\n",
                     overheadPct);
        std::exit(1);
    }
}

void BM_SimProfileDisabled(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        const RunResult r = runWith(c, false);
        benchmark::DoNotOptimize(r.transfers);
    }
}

void BM_SimProfileArmed(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        const RunResult r = runWith(c, true);
        benchmark::DoNotOptimize(r.transfers);
    }
}

BENCHMARK(BM_SimProfileDisabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimProfileArmed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
