// Scaling of the multi-threaded SPMD simulator (support/parallel.h).
//
// Workload: TOMCATV under the Replication compiler level (no scalar
// privatization) on 16 simulated processors — the variant where every
// statement executes on all processors, so each lockstep phase carries
// 16 processors' worth of evaluation and the worker pool has real work
// to spread. The table reports simulated-run wall seconds per lockstep
// thread count and the speedup over one thread.
//
// Simulation results are required to be bit-identical across thread
// counts (deferred-write phases; see runtime/spmd_sim.h). This bench
// enforces that: any metric mismatch against the single-thread run is a
// hard failure, so the scaling numbers can never come from a run that
// diverged.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <thread>

#include "bench_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 65;
constexpr std::int64_t kIters = 3;

void seedTomcatv(Interpreter& o) {
    for (std::int64_t i = 1; i <= kN; ++i)
        for (std::int64_t j = 1; j <= kN; ++j) {
            o.setElement("x", {i, j},
                         static_cast<double>(i) + 0.1 * static_cast<double>(j));
            o.setElement("y", {i, j},
                         static_cast<double>(j) - 0.05 * static_cast<double>(i));
        }
}

Compilation compileWorkload(Program& p) {
    TargetConfig opts;
    PassOptions passes;
    opts.gridExtents = {16};
    passes.mapping.privatization = false;  // Replication level
    return Compiler::compile(p, opts, passes);
}

struct SimResult {
    double wall = 0.0;
    std::int64_t transfers = 0;
    std::int64_t events = 0;
    std::int64_t procStmts = 0;
    double imbalance = 0.0;
    double errX = 0.0;
    double errY = 0.0;
};

SimResult runAt(Compilation& c, int threads,
                SimEngine engine = SimEngine::Bytecode) {
    auto sim =
        c.simulate({.threads = threads, .seed = seedTomcatv, .engine = engine});
    SimResult r;
    r.wall = sim->wallSec();
    r.transfers = sim->elementTransfers();
    r.events = sim->messageEvents();
    r.procStmts = sim->statementsExecutedAllProcs();
    r.imbalance = sim->imbalanceRatio();
    r.errX = sim->maxErrorVsOracle("x");
    r.errY = sim->maxErrorVsOracle("y");
    return r;
}

void requireIdentical(const SimResult& base, const SimResult& r, int threads,
                      const char* what) {
    if (r.transfers == base.transfers && r.events == base.events &&
        r.procStmts == base.procStmts && r.imbalance == base.imbalance &&
        r.errX == base.errX && r.errY == base.errY)
        return;
    std::fprintf(stderr,
                 "FATAL: %s diverged at %d threads "
                 "(transfers %lld vs %lld, events %lld vs %lld)\n",
                 what, threads, static_cast<long long>(r.transfers),
                 static_cast<long long>(base.transfers),
                 static_cast<long long>(r.events),
                 static_cast<long long>(base.events));
    std::exit(1);
}

// Thread counts worth measuring here: lockstep phases are microseconds
// long, so running more workers than hardware threads only measures the
// scheduler (a context-switch round-trip per phase). Oversubscribed
// counts stay available via --sim-threads / PHPF_SIM_THREADS — and the
// determinism tests exercise them — but the scaling table sticks to
// what the machine can actually host.
std::vector<int> threadCounts() {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    std::vector<int> counts;
    for (const int t : {1, 2, 4})
        if (t == 1 || t <= hw) counts.push_back(t);
    if (hw > 4) counts.push_back(hw);
    return counts;
}

void printTable() {
    Program p = programs::tomcatv(kN, kIters);
    Compilation c = compileWorkload(p);

    const std::vector<int> counts = threadCounts();

    printHeader(
        "SPMD simulator scaling: TOMCATV Replication  ((*,block), n = " +
            std::to_string(kN) + ", 16 procs) — simulated-run wall sec "
            "per lockstep thread count (bytecode engine; interp column "
            "for the same thread count alongside)",
        {"wall_sec", "speedup_vs_1t", "wall_interp_sec", "engine_speedup"});
    SimResult base;
    for (const int t : counts) {
        const SimResult r = runAt(c, t);
        // Cross-engine gate: at every thread count the tree-walking
        // interpreter and the bytecode VM must agree bit for bit in
        // results and every metric, or the engine column is meaningless.
        const SimResult ri = runAt(c, t, SimEngine::Interp);
        requireIdentical(r, ri, t, "interp engine vs bytecode engine");
        if (t == 1)
            base = r;
        else
            requireIdentical(base, r, t, "simulation");
        printRow(t, {r.wall, t == 1 ? 1.0 : base.wall / r.wall, ri.wall,
                     ri.wall / r.wall});
    }
    std::printf("\n");
}

void BM_SimTomcatvReplication(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    Program p = programs::tomcatv(kN, kIters);
    Compilation c = compileWorkload(p);
    for (auto _ : state) {
        const SimResult r = runAt(c, threads);
        benchmark::DoNotOptimize(r.transfers);
    }
}

}  // namespace

int main(int argc, char** argv) {
    printTable();
    for (const int t : threadCounts())
        benchmark::RegisterBenchmark("BM_SimTomcatvReplication",
                                     BM_SimTomcatvReplication)
            ->Arg(t)
            ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
