// Regenerates Figure 6 (Section 3.2): the APPSP fragment where the work
// array c is privatizable with respect to the k loop but not the j
// loop. On a 2-D grid, full privatization fails (AlignLevel of
// rsd(1,i,j,k) is 2, past the k loop); partial privatization partitions
// c's j dimension over the first grid dim and privatizes it along the
// second, which is what enables the 2-D distribution at all.

#include <benchmark/benchmark.h>

#include "bench_fig_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

void show() {
    std::printf("=== Figure 6: partial privatization (2x2 grid) ===\n\n");
    {
        Program p = programs::fig6(16, 16, 16);
        showFigure(p, {2, 2});
    }
    std::printf("--- ablation: partial privatization off (c replicated) ---\n");
    {
        MappingOptions m;
        m.partialPrivatization = false;
        Program p = programs::fig6(16, 16, 16);
        const CostBreakdown cb = predict(p, {2, 2}, m);
        std::printf("partial off: comm=%.6fs events=%lld\n", cb.commSec,
                    static_cast<long long>(cb.messageEvents));
    }
    {
        MappingOptions m;
        Program p = programs::fig6(16, 16, 16);
        const CostBreakdown cb = predict(p, {2, 2}, m);
        std::printf("partial on:  comm=%.6fs events=%lld\n\n", cb.commSec,
                    static_cast<long long>(cb.messageEvents));
    }
}

void BM_Fig6Compile(benchmark::State& state) {
    for (auto _ : state) {
        Program p = programs::fig6(16, 16, 16);
        TargetConfig opts;
        opts.gridExtents = {2, 2};
        benchmark::DoNotOptimize(Compiler::compile(p, opts).predictCost());
    }
}
BENCHMARK(BM_Fig6Compile);

}  // namespace

int main(int argc, char** argv) {
    show();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
