// Reproduces Table 3 of the paper: APPSP (NAS pseudo-application),
// n = 64, under four variants:
//   1-D, No Array Priv — (*,*,*,block), work array c replicated
//   1-D, Priv          — c fully privatized w.r.t. the k loop
//   2-D, No Partial    — (*,*,block,block); full privatization of c is
//                         invalid (AlignLevel 2 > 1), c stays replicated
//   2-D, Partial Priv  — Section 3.2: c partitioned along the j grid
//                         dim, privatized along the k grid dim
//
// Paper shape: without privatization execution time is prohibitive
// (they aborted after a day); with 2-D + partial privatization the
// program starts faster at few processors but scales worse than the
// 1-D version (per-nest messages are not combined), so the 1-D version
// overtakes it at higher processor counts.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 64;
constexpr std::int64_t kIters = 50;

std::vector<int> grid2d(int procs) {
    int a = 1, b = procs;
    while (a * 2 <= b / 2) {
        a *= 2;
        b /= 2;
    }
    return {a, b};
}

CostBreakdown runVariant(int variant, int procs) {
    const bool oneD = variant < 2;
    MappingOptions m;
    m.arrayPrivatization = variant == 1 || variant >= 3;
    m.partialPrivatization = variant >= 3;
    // Variant 4: the paper's suggested fix for the 2-D version —
    // global message combining across loop nests.
    CostModel cost;
    cost.combineMessages = variant == 4;
    return predictService(
        [oneD] { return programs::appsp(kN, kN, kN, kIters, oneD); },
        oneD ? std::vector<int>{procs} : grid2d(procs), m, cost);
}

void printTable() {
    printHeader(
        "Table 3: APPSP on the SP2 model  (n = 64, niter = 50) — "
        "predicted execution time (sec)",
        {"1-D, No Array Priv", "1-D, Priv", "2-D, No Partial",
         "2-D, Partial Priv", "2-D, Partial+Combine"});
    for (int procs : {2, 4, 8, 16}) {
        std::vector<double> row;
        for (int v = 0; v < 5; ++v) row.push_back(runVariant(v, procs).totalSec());
        printRow(procs, row);
    }
    std::printf("\n(The last column adds the global message combining the "
                "paper identifies as phpf's missing optimization.)\n\n");
}

void BM_CompileAppsp(benchmark::State& state) {
    const bool oneD = state.range(0) != 0;
    for (auto _ : state) {
        Program p = programs::appsp(kN, kN, kN, kIters, oneD);
        TargetConfig opts;
        opts.gridExtents = oneD ? std::vector<int>{16} : std::vector<int>{4, 4};
        Compilation c = Compiler::compile(p, opts);
        benchmark::DoNotOptimize(c.lowering().commOps().size());
    }
}
BENCHMARK(BM_CompileAppsp)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
