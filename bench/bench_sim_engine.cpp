// Interpreter vs bytecode-VM execution engine of the SPMD simulator
// (runtime/bytecode.h, runtime/vm.h).
//
// Workload: TOMCATV under the Replication compiler level on 16
// simulated processors, single lockstep thread — the configuration
// where per-element expression evaluation dominates, so the table
// isolates the engine itself rather than thread scaling (see
// bench_sim_scaling for that axis).
//
// Three measured configurations:
//   - interp          tree-walking interpreter, strict merge
//   - bytecode        register-bytecode VM, strict merge
//   - bytecode+relaxed VM with the relaxed reduction-merge mode
//     (commutative combines merge per-processor copies directly and
//     skip the merge-order barrier; benchmarked separately because it
//     is NOT bit-identical for floating-point SUM accumulators)
//
// Two hard gates (exit 1, so CI fails on the bench itself):
//   - strict-mode divergence: the bytecode run must match the
//     interpreter run bit for bit in results and every exposed metric;
//   - throughput floor: the strict bytecode engine must be at least
//     5x faster than the interpreter in the same run (the committed
//     baseline bench/baselines/BENCH_sim_engine.json additionally
//     gates the wall-clock ratio, which is machine-independent).

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 65;
constexpr std::int64_t kIters = 3;
constexpr int kProcs = 16;
constexpr double kMinSpeedup = 5.0;
constexpr int kReps = 5;  // best-of to shed scheduler noise

void seedTomcatv(Interpreter& o) {
    for (std::int64_t i = 1; i <= kN; ++i)
        for (std::int64_t j = 1; j <= kN; ++j) {
            o.setElement("x", {i, j},
                         static_cast<double>(i) + 0.1 * static_cast<double>(j));
            o.setElement("y", {i, j},
                         static_cast<double>(j) - 0.05 * static_cast<double>(i));
        }
}

struct SimResult {
    double wall = 0.0;
    std::int64_t transfers = 0;
    std::int64_t events = 0;
    std::int64_t procStmts = 0;
    double imbalance = 0.0;
    double errX = 0.0;
    double errY = 0.0;
    std::unique_ptr<SpmdSimulator> sim;  // kept for result comparison
};

SimResult runOnce(Compilation& c, SimEngine engine, bool relaxed) {
    auto sim = c.simulate({.threads = 1,
                           .seed = seedTomcatv,
                           .engine = engine,
                           .relaxedMerge = relaxed});
    SimResult r;
    r.wall = sim->wallSec();
    r.transfers = sim->elementTransfers();
    r.events = sim->messageEvents();
    r.procStmts = sim->statementsExecutedAllProcs();
    r.imbalance = sim->imbalanceRatio();
    r.errX = sim->maxErrorVsOracle("x");
    r.errY = sim->maxErrorVsOracle("y");
    r.sim = std::move(sim);
    return r;
}

/// Fold a fresh rep into the running best-of: keep the fastest wall.
/// Final state is identical across reps (runs are deterministic), so
/// which rep's simulator survives for the comparisons is immaterial.
void takeBest(SimResult& best, SimResult r) {
    if (best.sim == nullptr || r.wall < best.wall)
        best = std::move(r);
}

// Bit-for-bit comparison of the final mesh arrays (the program's
// outputs) between two finished runs.
void requireSameResults(const SimResult& a, const SimResult& b,
                        const char* what) {
    for (const char* name : {"x", "y", "rx", "ry"}) {
        for (std::int64_t i = 1; i <= kN; ++i)
            for (std::int64_t j = 1; j <= kN; ++j) {
                const double va = a.sim->oracle().element(name, {i, j});
                const double vb = b.sim->oracle().element(name, {i, j});
                if (va == vb) continue;
                std::fprintf(stderr,
                             "FATAL: %s: %s(%lld,%lld) differs: "
                             "%.17g vs %.17g\n",
                             what, name, static_cast<long long>(i),
                             static_cast<long long>(j), va, vb);
                std::exit(1);
            }
    }
}

void requireIdentical(const SimResult& interp, const SimResult& bc) {
    requireSameResults(interp, bc, "bytecode vs interp");
    if (bc.transfers == interp.transfers && bc.events == interp.events &&
        bc.procStmts == interp.procStmts &&
        bc.imbalance == interp.imbalance && bc.errX == interp.errX &&
        bc.errY == interp.errY)
        return;
    std::fprintf(stderr,
                 "FATAL: bytecode engine diverged from interpreter "
                 "(transfers %lld vs %lld, events %lld vs %lld)\n",
                 static_cast<long long>(bc.transfers),
                 static_cast<long long>(interp.transfers),
                 static_cast<long long>(bc.events),
                 static_cast<long long>(interp.events));
    std::exit(1);
}

}  // namespace

int main() {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    PassOptions passes;
    opts.gridExtents = {kProcs};
    passes.mapping.privatization = false;  // Replication level
    Compilation c = Compiler::compile(p, opts, passes);

    // Interleave the engines' reps round-robin: a scheduler-noise epoch
    // then inflates adjacent reps of EVERY engine instead of one
    // engine's whole block, and the per-engine best-of stays a fair
    // same-conditions comparison.
    SimResult interp, bc, relaxed;
    for (int i = 0; i < kReps; ++i) {
        takeBest(interp, runOnce(c, SimEngine::Interp, false));
        takeBest(bc, runOnce(c, SimEngine::Bytecode, false));
        takeBest(relaxed, runOnce(c, SimEngine::Bytecode, true));
    }
    requireIdentical(interp, bc);
    // Relaxed mode changes combine semantics, not statement-level
    // communication, so the count metrics still have to agree.
    if (relaxed.transfers != interp.transfers ||
        relaxed.events != interp.events ||
        relaxed.procStmts != interp.procStmts) {
        std::fprintf(stderr,
                     "FATAL: relaxed-merge run changed communication "
                     "metrics (transfers %lld vs %lld)\n",
                     static_cast<long long>(relaxed.transfers),
                     static_cast<long long>(interp.transfers));
        return 1;
    }

    const double speedup = interp.wall / bc.wall;
    const double relaxedSpeedup = interp.wall / relaxed.wall;
    printHeader(
        "SPMD simulator engine: TOMCATV Replication  ((*,block), n = " +
            std::to_string(kN) +
            ", 16 procs, 1 thread) — wall sec per engine",
        {"wall_interp_sec", "wall_bytecode_sec", "wall_relaxed_sec",
         "bytecode_speedup", "relaxed_speedup", "bytecode_over_interp_wall"});
    printRow(kProcs, {interp.wall, bc.wall, relaxed.wall, speedup,
                      relaxedSpeedup, bc.wall / interp.wall});
    std::printf("\n");

    if (speedup < kMinSpeedup) {
        std::fprintf(stderr,
                     "FATAL: bytecode engine speedup %.2fx is below the "
                     "%.1fx floor (interp %.4fs, bytecode %.4fs)\n",
                     speedup, kMinSpeedup, interp.wall, bc.wall);
        return 1;
    }
    return 0;
}
