// Reproduces Table 1 of the paper: TOMCATV on an SP2 model, (*,block)
// distribution, n = 513, under three compiler levels:
//   1. Replication        — no scalar privatization (every scalar
//                            replicated; statements execute everywhere)
//   2. Producer Alignment — privatization, but every scalar aligned
//                            with a partitioned producer reference
//   3. Selected Alignment — the full Fig. 3 algorithm of the paper
//
// The paper reports wall-clock seconds on 16 SP2 thin nodes; we report
// the analytic SP2-model prediction. The shape to reproduce: replication
// is orders of magnitude slower and does not scale; producer alignment
// suffers inner-loop communication; selected alignment scales.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 513;
constexpr std::int64_t kIters = 100;

MappingOptions variantOpts(int variant) {
    MappingOptions m;
    switch (variant) {
        case 0:
            m.privatization = false;
            break;
        case 1:
            m.alignPolicy = MappingOptions::AlignPolicy::ProducerOnly;
            break;
        default:
            break;  // Selected
    }
    return m;
}

void printTable() {
    printHeader(
        "Table 1: TOMCATV on the SP2 model  ((*,block), n = 513) — "
        "predicted execution time (sec)",
        {"Replication", "Producer Alignment", "Selected Alignment"});
    for (int procs : {1, 2, 4, 8, 16}) {
        std::vector<double> row;
        for (int variant : {0, 1, 2}) {
            row.push_back(
                predictService([] { return programs::tomcatv(kN, kIters); },
                               {procs}, variantOpts(variant))
                    .totalSec());
        }
        printRow(procs, row);
    }
    std::printf("\n");
}

void BM_CompileTomcatv(benchmark::State& state) {
    const int variant = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Program p = programs::tomcatv(kN, kIters);
        TargetConfig opts;
        PassOptions passes;
        opts.gridExtents = {16};
        passes.mapping = variantOpts(variant);
        Compilation c = Compiler::compile(p, opts, passes);
        benchmark::DoNotOptimize(c.lowering().commOps().size());
    }
}
BENCHMARK(BM_CompileTomcatv)->Arg(0)->Arg(1)->Arg(2);

void BM_PredictCostTomcatv(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {16};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.predictCost().totalSec());
    }
}
BENCHMARK(BM_PredictCostTomcatv);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
