// Overhead of the fault-injection/recovery layer on the SPMD simulator
// hot path (runtime/spmd_sim.cpp).
//
// The disabled layer costs one untaken branch per statement instance
// and one null check per element transfer, so a fault-free simulation
// must run at the pre-fault-layer speed. This bench measures three
// configurations of the same TOMCATV workload:
//
//   disabled    — no fault spec at all (the default every user gets)
//   armed-idle  — net.drop/proc.crash sites configured but with
//                 triggers beyond the run's poll count: the full
//                 polling + control-stack machinery runs, nothing fires
//   checkpoint  — armed-idle plus periodic checkpoints every 100
//                 statement instances
//
// and enforces that even the ARMED idle layer stays within 2% of the
// disabled run (median of interleaved runs; one re-measure round
// absorbs scheduler noise before the check is treated as a failure).
// The disabled-vs-baseline overhead is strictly smaller than the
// armed-idle overhead measured here, so the 2% gate bounds both. Any
// result/metric divergence between the configurations is a hard
// failure — overhead numbers from a diverged run are worthless.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "support/fault.h"

namespace {

using namespace phpf;
using namespace phpf::bench;

constexpr std::int64_t kN = 33;
constexpr std::int64_t kIters = 2;

// Triggers no run of this size ever reaches: the sites are polled
// (mutex + counter per statement boundary / transfer) but never fire.
constexpr const char* kIdleSpec =
    "net.drop:nth=1000000000,proc.crash:nth=1000000000";

void seedTomcatv(Interpreter& o) {
    for (std::int64_t i = 1; i <= kN; ++i)
        for (std::int64_t j = 1; j <= kN; ++j) {
            o.setElement("x", {i, j},
                         static_cast<double>(i) + 0.1 * static_cast<double>(j));
            o.setElement("y", {i, j},
                         static_cast<double>(j) - 0.05 * static_cast<double>(i));
        }
}

struct RunResult {
    double wall = 0.0;
    std::int64_t transfers = 0;
    std::int64_t events = 0;
    std::int64_t procStmts = 0;
};

RunResult runWith(const Compilation& c, const FaultInjector* faults,
                  int checkpointEvery) {
    SimulationRequest req;
    req.seed = seedTomcatv;
    req.faults = faults;
    req.checkpointEvery = checkpointEvery;
    auto sim = c.simulate(req);
    return {sim->wallSec(), sim->elementTransfers(), sim->messageEvents(),
            sim->statementsExecutedAllProcs()};
}

void requireIdentical(const RunResult& base, const RunResult& r,
                      const char* what) {
    if (r.transfers == base.transfers && r.events == base.events &&
        r.procStmts == base.procStmts)
        return;
    std::fprintf(stderr,
                 "FATAL: %s run diverged from the disabled run "
                 "(transfers %lld vs %lld)\n",
                 what, static_cast<long long>(r.transfers),
                 static_cast<long long>(base.transfers));
    std::exit(1);
}

double median(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/// One measurement round: `reps` interleaved disabled/armed-idle runs
/// (interleaving cancels slow drift — thermal, competing CI tenants),
/// medians of each.
void measure(const Compilation& c, const FaultInjector& idle, int reps,
             double* disabledSec, double* armedSec) {
    std::vector<double> disabled, armed;
    for (int i = 0; i < reps; ++i) {
        disabled.push_back(runWith(c, nullptr, 0).wall);
        armed.push_back(runWith(c, &idle, 0).wall);
    }
    *disabledSec = median(disabled);
    *armedSec = median(armed);
}

void printTable() {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);

    FaultInjector idle;
    std::string err;
    if (!idle.configure(kIdleSpec, &err)) {
        std::fprintf(stderr, "FATAL: bad idle fault spec: %s\n", err.c_str());
        std::exit(1);
    }

    // Warm-up + divergence gate.
    const RunResult base = runWith(c, nullptr, 0);
    requireIdentical(base, runWith(c, &idle, 0), "armed-idle");
    const RunResult ckpt = runWith(c, &idle, 100);
    requireIdentical(base, ckpt, "checkpointing");

    double disabledSec = 0, armedSec = 0;
    measure(c, idle, 7, &disabledSec, &armedSec);
    double overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    if (overheadPct >= 2.0) {
        // One re-measure with more repetitions before declaring a real
        // regression: CI neighbours cause >2% blips that a longer
        // median absorbs.
        measure(c, idle, 11, &disabledSec, &armedSec);
        overheadPct = 100.0 * (armedSec - disabledSec) / disabledSec;
    }

    const double ckptSec = runWith(c, &idle, 100).wall;

    printHeader(
        "Fault-layer overhead: TOMCATV ((*,block), n = " +
            std::to_string(kN) + ", 8 procs) — simulated-run wall sec",
        {"disabled_sec", "armed_idle_sec", "checkpoint_sec", "overhead_pct"});
    printRow(8, {disabledSec, armedSec, ckptSec, overheadPct});
    std::printf("\n");

    if (overheadPct >= 2.0) {
        std::fprintf(stderr,
                     "FATAL: armed-idle fault layer costs %.2f%% "
                     "(budget < 2%%; disabled-layer overhead is strictly "
                     "smaller than this)\n",
                     overheadPct);
        std::exit(1);
    }
}

void BM_SimFaultLayerDisabled(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    for (auto _ : state) {
        const RunResult r = runWith(c, nullptr, 0);
        benchmark::DoNotOptimize(r.transfers);
    }
}

void BM_SimFaultLayerArmedIdle(benchmark::State& state) {
    Program p = programs::tomcatv(kN, kIters);
    TargetConfig opts;
    opts.gridExtents = {8};
    Compilation c = Compiler::compile(p, opts);
    FaultInjector idle;
    if (!idle.configure(kIdleSpec)) std::exit(1);
    for (auto _ : state) {
        const RunResult r = runWith(c, &idle, 0);
        benchmark::DoNotOptimize(r.transfers);
    }
}

BENCHMARK(BM_SimFaultLayerDisabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimFaultLayerArmedIdle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    printTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
