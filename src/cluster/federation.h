#pragma once

#include <string>

#include "cluster/coordinator.h"
#include "obs/json.h"
#include "service/http_exposition.h"

namespace phpf::cluster {

/// Cluster-wide telemetry federation: the coordinator scrapes every
/// live worker's structured `/metrics.json` and re-exports ONE
/// Prometheus page:
///
///   - every worker metric appears with a `worker="<id>"` label,
///     grouped under a single `# TYPE` line per metric name;
///   - cluster rollups ride under `<prefix>_cluster_*` names: counters
///     summed across workers, histograms merged bucket-wise
///     (Histogram::mergeFrom), so the rollup of a counter EXACTLY
///     equals the sum of its per-worker samples on the same page;
///   - `<prefix>_cluster_workers_alive` / `_known` and
///     `<prefix>_cluster_scrape_errors` describe the scrape itself.
///
/// `timeoutMs` bounds each worker scrape; a worker that cannot be
/// scraped contributes nothing but a scrape error (federation must not
/// hang on a dying worker).
[[nodiscard]] std::string clusterMetricsText(Coordinator& coord,
                                             int timeoutMs = 2000);

/// Aggregated cluster health: per-worker liveness and wire version
/// (live workers are probed via /healthz; dead ones reported as such),
/// plus an overall status — "ok" when every known worker is alive and
/// speaks our wire version, "degraded" otherwise, "down" with no
/// alive workers.
[[nodiscard]] obs::Json clusterHealthJson(Coordinator& coord,
                                          int timeoutMs = 2000);

/// Route a coordinator-side federation request:
///   GET /cluster/metrics   -> clusterMetricsText
///   GET /cluster/healthz   -> clusterHealthJson
/// Everything else answers 404. Hang it off the coordinator server's
/// ApiHandler.
[[nodiscard]] service::HttpReply handleClusterRequest(
    Coordinator& coord, const service::HttpRequest& req, int timeoutMs = 2000);

}  // namespace phpf::cluster
