#pragma once

#include <iosfwd>
#include <string>

#include "cluster/coordinator.h"
#include "service/batch.h"

namespace phpf::cluster {

/// Crash-safety and scheduling knobs of one runClusterBatch().
struct ClusterBatchOptions {
    /// Append every completed job row to this JSONL file, flushed
    /// before the next row is emitted — the same journal contract as
    /// service::runBatch, so a killed coordinator leaves a valid record
    /// of everything that finished. Empty disables journaling.
    std::string journalPath;
    /// Skip jobs already journaled by a previous (killed) run: kill +
    /// --resume completes the batch with every job emitted exactly
    /// once.
    bool resume = false;
    /// Dispatcher threads per alive worker. Each dispatcher drains its
    /// own worker's affinity queue and steals from the longest other
    /// queue when idle.
    int dispatchersPerWorker = 1;
    /// Times one job may be re-queued after exhausting the
    /// coordinator's per-request attempts before it is declared failed.
    int maxRequeues = 2;
};

struct ClusterBatchOutcome {
    int jobs = 0;
    int ok = 0;
    int failed = 0;
    int skipped = 0;  ///< resumed: journal already had the row
    int localHits = 0;
    int peerHits = 0;
    int workerHits = 0;  ///< executing worker's own cache hits
    int compiles = 0;    ///< remote compiles that actually ran
    int steals = 0;      ///< jobs executed off their owner's queue
    int requeues = 0;
    double wallSec = 0;
    /// False iff some job reached the emission point twice — the
    /// invariant the journal + done-set guard exists to enforce. (A
    /// duplicate is counted and suppressed, never double-emitted, so
    /// this flag is the proof obligation, not damage control.)
    bool exactlyOnce = true;
};

/// Run a batch through the cluster with per-worker affinity queues and
/// work stealing:
///
///   - every job is queued on its ring owner's queue (affinity: the
///     owner most likely holds the warm cache entry)
///   - one dispatcher (or more) per worker drains its own queue first,
///     then steals from the longest other queue, passing its own
///     worker as the preferred executor — a slow or dead worker's
///     backlog flows to the survivors instead of stalling the batch
///   - a job whose attempts exhaust transiently is re-queued (bounded
///     by maxRequeues) on its CURRENT ring owner — re-owned hash
///     ranges re-route automatically
///   - one JSONL row per job (input order not guaranteed — rows carry
///     names), then a summary row; rows pass through a single guarded
///     emission point, which with the journal's done-set makes
///     completion exactly-once even across kill -9 + --resume
///
/// Writes one row per job plus {"summary": true, ...} to `out`.
ClusterBatchOutcome runClusterBatch(Coordinator& coord,
                                    const service::BatchSpec& spec,
                                    std::ostream& out,
                                    const ClusterBatchOptions& opts = {});

}  // namespace phpf::cluster
