#include "cluster/coordinator.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "cluster/http_client.h"
#include "service/fingerprint.h"

namespace phpf::cluster {

using service::CompileStatus;
using service::ErrorCode;

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.ringReplicas) {
    const FaultInjector* inj = cfg_.faults != nullptr
                                   ? cfg_.faults
                                   : FaultInjector::processIfEnabled();
    if (inj != nullptr)
        partitionSite_ = inj->find(faultsite::kClusterPartition);
}

bool Coordinator::addWorker(const std::string& endpoint, std::string* err) {
    ProbeResult p = probeWorker(endpoint);
    if (!p.alive) {
        if (err) *err = "worker " + endpoint + ": " + p.error;
        return false;
    }
    return true;
}

ProbeResult Coordinator::probeWorker(const std::string& endpoint) {
    ProbeResult p;
    std::string host;
    int port = 0;
    if (!parseEndpoint(endpoint, &host, &port)) {
        p.error = "malformed endpoint";
        return p;
    }
    registry_.counter("cluster.coord.probes").add();
    HttpResult r = httpGet(host, port, "/healthz", cfg_.probeTimeoutMs);
    if (!r.ok || r.status != 200) {
        p.error = r.ok ? "healthz status " + std::to_string(r.status)
                       : r.error;
        markDead(endpoint);
        return p;
    }
    obs::Json h = obs::Json::parse(r.body);
    p.id = h.at("worker").stringValue();
    p.wireVersion = static_cast<int>(h.at("wire_version").intValue());
    if (p.wireVersion != kWireVersion) {
        // Answering probes but speaking another protocol: stale. Off
        // the ring it goes until it comes back speaking ours.
        p.error = "wire version " + std::to_string(p.wireVersion);
        registry_.counter("cluster.coord.stale_workers").add();
        markDead(endpoint);
        return p;
    }
    p.alive = true;
    markAlive(endpoint, p.id);
    return p;
}

std::vector<std::string> Coordinator::aliveWorkers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.nodes();
}

std::size_t Coordinator::workerCount() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.size();
}

std::string Coordinator::routingKey(const service::BatchJob& job) {
    // Canonical wire form minus the label: two jobs differing only in
    // their row name are the same compile and must route (and cache)
    // identically. File jobs resolve to source first for the same
    // reason a wire request does — routing must not depend on paths.
    service::BatchJob canonical = job;
    canonical.name.clear();
    std::uint64_t h = service::fnv1a64(encodeCompileRequest(canonical));
    char buf[20];
    std::snprintf(buf, sizeof buf, "r%016" PRIx64, h);
    return buf;
}

std::string Coordinator::ownerOf(const service::BatchJob& job) const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.ownerOf(routingKey(job));
}

void Coordinator::markDead(const std::string& endpoint) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(endpoint);
    bool wasAlive = it != workers_.end() && it->second.alive;
    workers_[endpoint].alive = false;
    if (ring_.contains(endpoint)) {
        ring_.remove(endpoint);  // hash range re-owned by survivors
        if (wasAlive) registry_.counter("cluster.coord.workers_lost").add();
    }
}

void Coordinator::markAlive(const std::string& endpoint,
                            const std::string& id) {
    std::lock_guard<std::mutex> lk(mu_);
    WorkerInfo& info = workers_[endpoint];
    if (!info.id.empty() && info.id != id) {
        // Same endpoint, new identity: a restarted worker. Its cache is
        // gone, so drop hints pointing at it.
        for (auto it = hints_.begin(); it != hints_.end();) {
            if (it->second.worker == endpoint)
                it = hints_.erase(it);
            else
                ++it;
        }
        registry_.counter("cluster.coord.workers_restarted").add();
    }
    info.id = id;
    info.alive = true;
    ring_.add(endpoint);
}

bool Coordinator::cacheGet(const std::string& rkey, WireArtifact* out) {
    std::lock_guard<std::mutex> lk(cacheMu_);
    auto it = cacheIndex_.find(rkey);
    if (it == cacheIndex_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    *out = it->second->second;
    return true;
}

void Coordinator::cachePut(const std::string& rkey, const WireArtifact& a) {
    std::lock_guard<std::mutex> lk(cacheMu_);
    auto it = cacheIndex_.find(rkey);
    if (it != cacheIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second->second = a;
        return;
    }
    lru_.emplace_front(rkey, a);
    cacheIndex_[rkey] = lru_.begin();
    while (lru_.size() > cfg_.cacheCapacity) {
        cacheIndex_.erase(lru_.back().first);
        lru_.pop_back();
        registry_.counter("cluster.coord.local_evictions").add();
    }
}

ClusterOutcome Coordinator::compileJob(const service::BatchJob& job,
                                       const std::string& preferred) {
    const auto t0 = std::chrono::steady_clock::now();
    ClusterOutcome out = compileTiers(job, preferred);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    registry_.histogram("cluster.coord.request_us")
        .record(static_cast<double>(us));
    return out;
}

ClusterOutcome Coordinator::compileTiers(const service::BatchJob& job,
                                         const std::string& preferred) {
    registry_.counter("cluster.coord.requests").add();
    const std::string rkey = routingKey(job);

    // Tier 1: coordinator-local LRU.
    ClusterOutcome out;
    if (cacheGet(rkey, &out.artifact)) {
        registry_.counter("cluster.coord.local_hits").add();
        out.status = CompileStatus::Ok;
        out.code = ErrorCode::None;
        out.localHit = true;
        out.hasArtifact = true;
        return out;
    }

    // Tier 2: peer fetch from the worker that last compiled this key.
    Hint hint;
    bool hasHint = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = hints_.find(rkey);
        if (it != hints_.end() && ring_.contains(it->second.worker)) {
            hint = it->second;
            hasHint = true;
        }
    }
    if (hasHint) {
        registry_.counter("cluster.coord.peer_fetches").add();
        if (FaultInjector::poll(partitionSite_)) {
            // Partitioned away: drop the fetch before any bytes move
            // and degrade to the compute tier.
            registry_.counter("cluster.coord.partitions").add();
        } else {
            std::string host;
            int port = 0;
            if (parseEndpoint(hint.worker, &host, &port)) {
                HttpResult r = httpGet(host, port,
                                       "/artifact/" + hint.artifactKey,
                                       cfg_.peerFetchTimeoutMs);
                WireResponse wr;
                std::string perr;
                if (r.ok && r.status == 200 &&
                    parseWireResponse(r.body, &wr, &perr) && wr.ok()) {
                    registry_.counter("cluster.coord.peer_hits").add();
                    cachePut(rkey, wr.artifact);
                    out.status = CompileStatus::Ok;
                    out.code = ErrorCode::None;
                    out.peerHit = true;
                    out.worker = hint.worker;
                    out.hasArtifact = true;
                    out.artifact = std::move(wr.artifact);
                    return out;
                }
                registry_.counter("cluster.coord.peer_misses").add();
                if (!r.ok)  // transport failure, not just an evicted key
                    probeWorker(hint.worker);
            }
        }
    }

    // Tier 3: compute.
    return computeTier(job, rkey, preferred);
}

ClusterOutcome Coordinator::computeTier(const service::BatchJob& job,
                                        const std::string& rkey,
                                        const std::string& preferred) {
    ClusterOutcome out;
    const std::string body = encodeCompileRequest(job);
    std::int64_t backoffMs = cfg_.retryBackoffMs;
    std::string skip;  // endpoint the previous attempt failed on

    for (int attempt = 0; attempt < cfg_.maxAttempts; ++attempt) {
        // Route: the thief's own worker when alive, else the ring owner
        // (skipping the endpoint that just failed us — its probe may
        // not have removed it, e.g. StaleWorker keeps a live process on
        // the ring).
        std::string target;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!preferred.empty() && ring_.contains(preferred) &&
                preferred != skip) {
                target = preferred;
            } else {
                for (const std::string& ep : ring_.ownersOf(rkey, 2)) {
                    if (ep != skip) {
                        target = ep;
                        break;
                    }
                }
            }
        }
        if (target.empty()) {
            out.code = ErrorCode::RemoteUnreachable;
            out.error = "no alive worker";
            break;
        }

        std::string host;
        int port = 0;
        if (!parseEndpoint(target, &host, &port)) {
            out.code = ErrorCode::RemoteUnreachable;
            out.error = "malformed worker endpoint " + target;
            break;
        }

        ++out.attempts;
        if (attempt > 0) {
            registry_.counter("cluster.coord.retries").add();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs *= 2;
        }

        HttpResult r =
            httpPost(host, port, "/compile", body, cfg_.requestTimeoutMs);
        WireResponse wr;
        std::string perr;
        if (!r.ok) {
            out.code = r.code;  // RemoteUnreachable | PeerTimeout
            out.error = target + ": " + r.error;
        } else if (!parseWireResponse(r.body, &wr, &perr)) {
            out.code = ErrorCode::StaleWorker;
            out.error = target + ": unparseable response: " + perr;
        } else {
            // Identity check: an endpoint answering with an unknown id
            // is a restarted (stale) worker whose cache state we
            // mis-model — discard and re-route.
            {
                std::lock_guard<std::mutex> lk(mu_);
                auto it = workers_.find(target);
                if (wr.code != ErrorCode::StaleWorker &&
                    it != workers_.end() && !it->second.id.empty() &&
                    !wr.worker.empty() && wr.worker != it->second.id) {
                    wr.status = CompileStatus::Error;
                    wr.code = ErrorCode::StaleWorker;
                    wr.error = "identity changed: " + wr.worker;
                    wr.hasArtifact = false;
                }
            }
            out.status = wr.status;
            out.code = wr.code;
            out.error = wr.error;
            out.worker = target;
            if (wr.ok()) {
                registry_.counter("cluster.coord.compiles").add();
                if (wr.cacheHit) {
                    registry_.counter("cluster.coord.worker_hits").add();
                    out.workerHit = true;
                }
                out.hasArtifact = true;
                out.artifact = std::move(wr.artifact);
                cachePut(rkey, out.artifact);
                std::lock_guard<std::mutex> lk(mu_);
                hints_[rkey] = Hint{out.artifact.key, target};
                return out;
            }
        }

        if (!service::isTransient(out.code)) {
            // Permanent failure (parse error, deadline, internal):
            // retrying elsewhere would fail identically.
            registry_.counter("cluster.coord.permanent_failures").add();
            return out;
        }
        registry_.counter("cluster.coord.transient_failures").add();

        // Transient: decide whether the worker is sick or just the
        // request. A probe that fails (or reports a skewed wire
        // version) removes the worker from the ring — its hash range
        // re-owned by the survivors; `skip` additionally steers this
        // job's next attempt away even when the probe passes.
        if (out.code == ErrorCode::RemoteUnreachable ||
            out.code == ErrorCode::PeerTimeout ||
            out.code == ErrorCode::StaleWorker)
            probeWorker(target);
        skip = target;
        out.status = CompileStatus::Error;
        out.hasArtifact = false;
    }

    registry_.counter("cluster.coord.exhausted").add();
    if (out.error.empty()) out.error = "attempts exhausted";
    out.status = CompileStatus::Error;
    return out;
}

}  // namespace phpf::cluster
