#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "cluster/http_client.h"
#include "obs/flight_recorder.h"
#include "service/fingerprint.h"

namespace phpf::cluster {

using service::CompileStatus;
using service::ErrorCode;

namespace {

double usBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                   .count()) /
           1000.0;
}

}  // namespace

obs::Json RequestChain::toJson() const {
    obs::Json j = obs::Json::object();
    j.set("job", job);
    if (!traceId.empty()) j.set("trace_id", traceId);
    j.set("total_us", totalUs);
    j.set("route", route);
    if (!worker.empty()) j.set("worker", worker);
    j.set("attempts", attempts);
    obs::Json arr = obs::Json::array();
    for (const RequestHop& h : hops) {
        obs::Json e = obs::Json::object();
        e.set("kind", h.kind);
        if (!h.worker.empty()) e.set("worker", h.worker);
        e.set("us", h.us);
        e.set("code", h.code);
        arr.push(std::move(e));
    }
    j.set("hops", std::move(arr));
    return j;
}

Coordinator::Coordinator(CoordinatorConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.ringReplicas) {
    const FaultInjector* inj = cfg_.faults != nullptr
                                   ? cfg_.faults
                                   : FaultInjector::processIfEnabled();
    if (inj != nullptr)
        partitionSite_ = inj->find(faultsite::kClusterPartition);
}

bool Coordinator::addWorker(const std::string& endpoint, std::string* err) {
    ProbeResult p = probeWorker(endpoint);
    if (!p.alive) {
        if (err) *err = "worker " + endpoint + ": " + p.error;
        return false;
    }
    return true;
}

ProbeResult Coordinator::probeWorker(const std::string& endpoint) {
    ProbeResult p;
    std::string host;
    int port = 0;
    if (!parseEndpoint(endpoint, &host, &port)) {
        p.error = "malformed endpoint";
        return p;
    }
    registry_.counter("cluster.coord.probes").add();
    HttpResult r = httpGet(host, port, "/healthz", cfg_.probeTimeoutMs);
    if (!r.ok || r.status != 200) {
        p.error = r.ok ? "healthz status " + std::to_string(r.status)
                       : r.error;
        markDead(endpoint);
        return p;
    }
    obs::Json h = obs::Json::parse(r.body);
    p.id = h.at("worker").stringValue();
    p.wireVersion = static_cast<int>(h.at("wire_version").intValue());
    if (p.wireVersion != kWireVersion) {
        // Answering probes but speaking another protocol: stale. Off
        // the ring it goes until it comes back speaking ours.
        p.error = "wire version " + std::to_string(p.wireVersion);
        registry_.counter("cluster.coord.stale_workers").add();
        markDead(endpoint);
        return p;
    }
    p.alive = true;
    markAlive(endpoint, p.id);
    return p;
}

std::vector<std::string> Coordinator::aliveWorkers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.nodes();
}

std::size_t Coordinator::workerCount() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.size();
}

std::vector<KnownWorker> Coordinator::knownWorkers() const {
    std::vector<KnownWorker> out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out.reserve(workers_.size());
        for (const auto& [ep, info] : workers_)
            out.push_back({ep, info.id, info.alive});
    }
    std::sort(out.begin(), out.end(),
              [](const KnownWorker& a, const KnownWorker& b) {
                  return a.endpoint < b.endpoint;
              });
    return out;
}

std::string Coordinator::routingKey(const service::BatchJob& job) {
    // Canonical wire form minus the label: two jobs differing only in
    // their row name are the same compile and must route (and cache)
    // identically. File jobs resolve to source first for the same
    // reason a wire request does — routing must not depend on paths.
    service::BatchJob canonical = job;
    canonical.name.clear();
    std::uint64_t h = service::fnv1a64(encodeCompileRequest(canonical));
    char buf[20];
    std::snprintf(buf, sizeof buf, "r%016" PRIx64, h);
    return buf;
}

std::string Coordinator::ownerOf(const service::BatchJob& job) const {
    std::lock_guard<std::mutex> lk(mu_);
    return ring_.ownerOf(routingKey(job));
}

void Coordinator::markDead(const std::string& endpoint) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = workers_.find(endpoint);
    bool wasAlive = it != workers_.end() && it->second.alive;
    workers_[endpoint].alive = false;
    if (ring_.contains(endpoint)) {
        ring_.remove(endpoint);  // hash range re-owned by survivors
        if (wasAlive) registry_.counter("cluster.coord.workers_lost").add();
    }
}

void Coordinator::markAlive(const std::string& endpoint,
                            const std::string& id) {
    std::lock_guard<std::mutex> lk(mu_);
    WorkerInfo& info = workers_[endpoint];
    if (!info.id.empty() && info.id != id) {
        // Same endpoint, new identity: a restarted worker. Its cache is
        // gone, so drop hints pointing at it.
        for (auto it = hints_.begin(); it != hints_.end();) {
            if (it->second.worker == endpoint)
                it = hints_.erase(it);
            else
                ++it;
        }
        registry_.counter("cluster.coord.workers_restarted").add();
    }
    info.id = id;
    info.alive = true;
    ring_.add(endpoint);
}

bool Coordinator::cacheGet(const std::string& rkey, WireArtifact* out) {
    std::lock_guard<std::mutex> lk(cacheMu_);
    auto it = cacheIndex_.find(rkey);
    if (it == cacheIndex_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    *out = it->second->second;
    return true;
}

void Coordinator::cachePut(const std::string& rkey, const WireArtifact& a) {
    std::lock_guard<std::mutex> lk(cacheMu_);
    auto it = cacheIndex_.find(rkey);
    if (it != cacheIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        it->second->second = a;
        return;
    }
    lru_.emplace_front(rkey, a);
    cacheIndex_[rkey] = lru_.begin();
    while (lru_.size() > cfg_.cacheCapacity) {
        cacheIndex_.erase(lru_.back().first);
        lru_.pop_back();
        registry_.counter("cluster.coord.local_evictions").add();
    }
}

ClusterOutcome Coordinator::compileJob(const service::BatchJob& job,
                                       const std::string& preferred) {
    const auto t0 = std::chrono::steady_clock::now();
    ReqCtx rc;
    rc.rkey = routingKey(job);
    obs::ConcurrentTracer::Handle reqSpan{};
    obs::ConcurrentTracer* tracer = cfg_.tracer;
    if (tracer != nullptr && tracer->enabled() && cfg_.traceSampleEvery > 0) {
        const std::uint64_t n =
            sampleCounter_.fetch_add(1, std::memory_order_relaxed);
        if (n % static_cast<std::uint64_t>(cfg_.traceSampleEvery) == 0) {
            const std::string spanName =
                "request:" + (job.name.empty() ? rc.rkey : job.name);
            reqSpan = tracer->begin(spanName.c_str(), "cluster");
            rc.sampled = true;
            rc.requestSpan = reqSpan.id;
            // Deterministic-enough trace id: the routing key identifies
            // the compile, the instance + counter make it unique across
            // repeats and coordinator restarts.
            rc.base.traceIdHi = service::fnv1a64(rc.rkey);
            rc.base.traceIdLo =
                (tracer->instanceId() << 32) ^ n ^ 0x9e3779b97f4a7c15ULL;
            if (!rc.base.valid()) rc.base.traceIdLo = 1;
            rc.base.parentSpan = reqSpan.id;
            rc.base.sampled = true;
        }
    }
    ClusterOutcome out = compileTiers(job, preferred, rc);
    if (rc.sampled) {
        tracer->end(reqSpan);
        out.traceId = rc.base.traceIdHex();
    }
    const double us = usBetween(t0, std::chrono::steady_clock::now());
    registry_.histogram("cluster.coord.request_us").record(us);
    // Per-tier and per-worker series: what the federation rolls up.
    const char* tier = out.localHit   ? "local_hit"
                       : out.peerHit ? "peer_hit"
                                     : "compute";
    registry_.histogram(std::string("cluster.coord.tier.") + tier + "_us")
        .record(us);
    if (!out.worker.empty())
        registry_.histogram("cluster.coord.worker." + out.worker + "_us")
            .record(us);
    noteRequest(job, out, us, rc);
    return out;
}

ClusterOutcome Coordinator::compileTiers(const service::BatchJob& job,
                                         const std::string& preferred,
                                         ReqCtx& rc) {
    registry_.counter("cluster.coord.requests").add();
    const std::string& rkey = rc.rkey;

    // Tier 1: coordinator-local LRU.
    ClusterOutcome out;
    if (cacheGet(rkey, &out.artifact)) {
        registry_.counter("cluster.coord.local_hits").add();
        out.status = CompileStatus::Ok;
        out.code = ErrorCode::None;
        out.localHit = true;
        out.hasArtifact = true;
        rc.hops.push_back({"local-hit", "", 0.0, "none"});
        return out;
    }

    // Tier 2: peer fetch from the worker that last compiled this key.
    Hint hint;
    bool hasHint = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = hints_.find(rkey);
        if (it != hints_.end() && ring_.contains(it->second.worker)) {
            hint = it->second;
            hasHint = true;
        }
    }
    if (hasHint) {
        registry_.counter("cluster.coord.peer_fetches").add();
        if (FaultInjector::poll(partitionSite_)) {
            // Partitioned away: drop the fetch before any bytes move
            // and degrade to the compute tier.
            registry_.counter("cluster.coord.partitions").add();
        } else {
            std::string host;
            int port = 0;
            if (parseEndpoint(hint.worker, &host, &port)) {
                // Network span around the fetch; the context rides as a
                // query parameter (GETs have no body).
                obs::ConcurrentTracer::Handle net{};
                std::string path = "/artifact/" + hint.artifactKey;
                if (rc.sampled) {
                    const std::string netName = "fetch:" + hint.worker;
                    net = cfg_.tracer->begin(netName.c_str(), "net");
                    TraceContext ctx = rc.base;
                    if (net.id != 0) ctx.parentSpan = net.id;
                    path += "?traceparent=" + ctx.encode();
                }
                const std::int64_t sendNs =
                    rc.sampled ? cfg_.tracer->nowNs() : 0;
                const auto h0 = std::chrono::steady_clock::now();
                HttpResult r =
                    httpGet(host, port, path, cfg_.peerFetchTimeoutMs);
                const double hopUs =
                    usBetween(h0, std::chrono::steady_clock::now());
                const std::int64_t recvNs =
                    rc.sampled ? cfg_.tracer->nowNs() : 0;
                if (rc.sampled) cfg_.tracer->end(net);
                WireResponse wr;
                std::string perr;
                const bool parsed =
                    r.ok && r.status == 200 &&
                    parseWireResponse(r.body, &wr, &perr);
                if (parsed && rc.sampled)
                    collectTrace(wr, sendNs, recvNs);
                rc.hops.push_back({"peer-fetch", hint.worker, hopUs,
                                   parsed && wr.ok() ? "none"
                                   : r.ok            ? "miss"
                                       : service::errorCodeName(r.code)});
                if (parsed && wr.ok()) {
                    registry_.counter("cluster.coord.peer_hits").add();
                    cachePut(rkey, wr.artifact);
                    out.status = CompileStatus::Ok;
                    out.code = ErrorCode::None;
                    out.peerHit = true;
                    out.worker = hint.worker;
                    out.hasArtifact = true;
                    out.artifact = std::move(wr.artifact);
                    return out;
                }
                registry_.counter("cluster.coord.peer_misses").add();
                if (!r.ok)  // transport failure, not just an evicted key
                    probeWorker(hint.worker);
            }
        }
    }

    // Tier 3: compute.
    return computeTier(job, rkey, preferred, rc);
}

ClusterOutcome Coordinator::computeTier(const service::BatchJob& job,
                                        const std::string& rkey,
                                        const std::string& preferred,
                                        ReqCtx& rc) {
    ClusterOutcome out;
    const std::string body = encodeCompileRequest(job);
    std::int64_t backoffMs = cfg_.retryBackoffMs;
    std::string skip;  // endpoint the previous attempt failed on

    for (int attempt = 0; attempt < cfg_.maxAttempts; ++attempt) {
        // Route: the thief's own worker when alive, else the ring owner
        // (skipping the endpoint that just failed us — its probe may
        // not have removed it, e.g. StaleWorker keeps a live process on
        // the ring).
        std::string target;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!preferred.empty() && ring_.contains(preferred) &&
                preferred != skip) {
                target = preferred;
            } else {
                for (const std::string& ep : ring_.ownersOf(rkey, 2)) {
                    if (ep != skip) {
                        target = ep;
                        break;
                    }
                }
            }
        }
        if (target.empty()) {
            out.code = ErrorCode::RemoteUnreachable;
            out.error = "no alive worker";
            break;
        }

        std::string host;
        int port = 0;
        if (!parseEndpoint(target, &host, &port)) {
            out.code = ErrorCode::RemoteUnreachable;
            out.error = "malformed worker endpoint " + target;
            break;
        }

        ++out.attempts;
        if (attempt > 0) {
            registry_.counter("cluster.coord.retries").add();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffMs));
            backoffMs *= 2;
        }

        // Network span per attempt; each attempt's context parents
        // under its own span. The context is spliced into the
        // already-encoded body — re-encoding the job per attempt costs
        // more than the whole rest of the traced request handling.
        obs::ConcurrentTracer::Handle net{};
        std::string tracedBody;
        const std::string* sendBody = &body;
        if (rc.sampled) {
            const std::string netName = "post:" + target;
            net = cfg_.tracer->begin(netName.c_str(), "net");
            TraceContext ctx = rc.base;
            if (net.id != 0) ctx.parentSpan = net.id;
            // body is a non-empty JSON object ("{\"v\":...}"); the
            // parser finds trace_ctx by key, so leading is fine.
            tracedBody.reserve(body.size() + 72);
            tracedBody = "{\"trace_ctx\":\"";
            tracedBody += ctx.encode();
            tracedBody += "\",";
            tracedBody.append(body, 1, std::string::npos);
            sendBody = &tracedBody;
        }
        const std::int64_t sendNs = rc.sampled ? cfg_.tracer->nowNs() : 0;
        const auto h0 = std::chrono::steady_clock::now();
        HttpResult r = httpPost(host, port, "/compile", *sendBody,
                                cfg_.requestTimeoutMs);
        const double hopUs = usBetween(h0, std::chrono::steady_clock::now());
        const std::int64_t recvNs = rc.sampled ? cfg_.tracer->nowNs() : 0;
        if (rc.sampled) cfg_.tracer->end(net);
        WireResponse wr;
        std::string perr;
        if (!r.ok) {
            out.code = r.code;  // RemoteUnreachable | PeerTimeout
            out.error = target + ": " + r.error;
            rc.hops.push_back(
                {"post", target, hopUs, service::errorCodeName(out.code)});
        } else if (!parseWireResponse(r.body, &wr, &perr)) {
            out.code = ErrorCode::StaleWorker;
            out.error = target + ": unparseable response: " + perr;
            rc.hops.push_back(
                {"post", target, hopUs, service::errorCodeName(out.code)});
        } else {
            if (rc.sampled) collectTrace(wr, sendNs, recvNs);
            // Identity check: an endpoint answering with an unknown id
            // is a restarted (stale) worker whose cache state we
            // mis-model — discard and re-route.
            {
                std::lock_guard<std::mutex> lk(mu_);
                auto it = workers_.find(target);
                if (wr.code != ErrorCode::StaleWorker &&
                    it != workers_.end() && !it->second.id.empty() &&
                    !wr.worker.empty() && wr.worker != it->second.id) {
                    wr.status = CompileStatus::Error;
                    wr.code = ErrorCode::StaleWorker;
                    wr.error = "identity changed: " + wr.worker;
                    wr.hasArtifact = false;
                }
            }
            out.status = wr.status;
            out.code = wr.code;
            out.error = wr.error;
            out.worker = target;
            rc.hops.push_back(
                {"post", target, hopUs, service::errorCodeName(out.code)});
            if (wr.ok()) {
                registry_.counter("cluster.coord.compiles").add();
                if (wr.cacheHit) {
                    registry_.counter("cluster.coord.worker_hits").add();
                    out.workerHit = true;
                }
                out.hasArtifact = true;
                out.artifact = std::move(wr.artifact);
                cachePut(rkey, out.artifact);
                std::lock_guard<std::mutex> lk(mu_);
                hints_[rkey] = Hint{out.artifact.key, target};
                return out;
            }
        }

        if (!service::isTransient(out.code)) {
            // Permanent failure (parse error, deadline, internal):
            // retrying elsewhere would fail identically.
            registry_.counter("cluster.coord.permanent_failures").add();
            return out;
        }
        registry_.counter("cluster.coord.transient_failures").add();

        // Transient: decide whether the worker is sick or just the
        // request. A probe that fails (or reports a skewed wire
        // version) removes the worker from the ring — its hash range
        // re-owned by the survivors; `skip` additionally steers this
        // job's next attempt away even when the probe passes.
        if (out.code == ErrorCode::RemoteUnreachable ||
            out.code == ErrorCode::PeerTimeout ||
            out.code == ErrorCode::StaleWorker)
            probeWorker(target);
        skip = target;
        out.status = CompileStatus::Error;
        out.hasArtifact = false;
    }

    registry_.counter("cluster.coord.exhausted").add();
    if (out.error.empty()) out.error = "attempts exhausted";
    out.status = CompileStatus::Error;
    return out;
}

void Coordinator::collectTrace(const WireResponse& wr, std::int64_t sendNs,
                               std::int64_t recvNs) {
    if (!wr.trace.present || cfg_.tracer == nullptr) return;
    registry_.counter("cluster.coord.span_batches").add();
    const std::int64_t offset = estimateClockOffsetNs(
        sendNs, wr.trace.recvNs, wr.trace.sendNs, recvNs);
    // The exchange's round-trip residual bounds the offset error; the
    // stitcher keeps the tightest exchange per worker.
    const std::int64_t uncertainty =
        (recvNs - sendNs) - (wr.trace.sendNs - wr.trace.recvNs);
    const std::string who = wr.worker.empty() ? "worker" : wr.worker;
    // Key by identity + tracer epoch: a restarted worker's span ids
    // restart too, and must not collide with its previous life.
    stitcher_.addBatch(who + "#" + std::to_string(wr.trace.epoch), who,
                       offset, uncertainty, wr.trace.spans);
}

void Coordinator::noteRequest(const service::BatchJob& job,
                              const ClusterOutcome& out, double us,
                              ReqCtx& rc) {
    if (cfg_.slowExemplars <= 0) return;
    const std::size_t cap = static_cast<std::size_t>(cfg_.slowExemplars);
    RequestChain c;
    c.job = job.name.empty() ? rc.rkey : job.name;
    c.traceId = out.traceId;
    c.totalUs = us;
    c.route = out.localHit   ? "local-hit"
              : out.peerHit ? "peer-hit"
              : out.ok()    ? "compute"
                            : "failed";
    c.worker = out.worker;
    c.attempts = out.attempts;
    c.hops = std::move(rc.hops);
    char line[160];
    std::snprintf(line, sizeof line, "%s %.1fms %s %s", c.job.c_str(),
                  us / 1000.0, c.route.c_str(), c.worker.c_str());
    bool kept = false;
    {
        std::lock_guard<std::mutex> lock(slowMu_);
        if (slow_.size() < cap) {
            slow_.push_back(std::move(c));
            kept = true;
        } else {
            auto minIt = std::min_element(
                slow_.begin(), slow_.end(),
                [](const RequestChain& a, const RequestChain& b) {
                    return a.totalUs < b.totalUs;
                });
            if (c.totalUs > minIt->totalUs) {
                *minIt = std::move(c);
                kept = true;
            }
        }
    }
    if (kept) obs::FlightRecorder::global().record("cluster.slow", line);
}

StitchStats Coordinator::stitchTrace() {
    if (cfg_.tracer == nullptr) return {};
    StitchStats st = stitcher_.stitchInto(*cfg_.tracer);
    registry_.counter("cluster.coord.spans_imported")
        .add(static_cast<std::int64_t>(st.spans));
    registry_.counter("cluster.coord.spans_lost")
        .add(static_cast<std::int64_t>(st.orphans + st.dropped));
    return st;
}

std::vector<RequestChain> Coordinator::slowRequests() const {
    std::vector<RequestChain> out;
    {
        std::lock_guard<std::mutex> lock(slowMu_);
        out = slow_;
    }
    std::sort(out.begin(), out.end(),
              [](const RequestChain& a, const RequestChain& b) {
                  return a.totalUs > b.totalUs;
              });
    return out;
}

}  // namespace phpf::cluster
