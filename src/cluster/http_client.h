#pragma once

#include <string>

#include "service/error_code.h"

namespace phpf::cluster {

/// Outcome of one HTTP exchange. Transport failures map onto the
/// remote-layer ErrorCodes — the coordinator's retry policy branches on
/// `code`, never on errno text:
///   RemoteUnreachable  connect/send failed outright (dead process,
///                      refused port, reset mid-write)
///   PeerTimeout        connected but the response never completed
///                      within the deadline
struct HttpResult {
    bool ok = false;  ///< a complete HTTP response was received
    service::ErrorCode code = service::ErrorCode::None;
    int status = 0;  ///< HTTP status when ok
    std::string body;
    std::string error;  ///< human-readable transport detail
};

/// Minimal blocking HTTP/1.1 client for the cluster's loopback plane —
/// the counterpart of MetricsHttpServer, equally dependency-free. Every
/// socket carries send/receive deadlines, so a wedged peer costs the
/// caller at most ~timeoutMs, never a hang.
[[nodiscard]] HttpResult httpGet(const std::string& host, int port,
                                 const std::string& path, int timeoutMs);
[[nodiscard]] HttpResult httpPost(const std::string& host, int port,
                                  const std::string& path,
                                  const std::string& body, int timeoutMs);

/// Split "HOST:PORT" (e.g. "127.0.0.1:9301"). False on a malformed
/// endpoint or out-of-range port.
bool parseEndpoint(const std::string& endpoint, std::string* host, int* port);

}  // namespace phpf::cluster
