#include "cluster/hash_ring.h"

#include "service/fingerprint.h"

namespace phpf::cluster {
namespace {

// splitmix64 finalizer. FNV-1a ends in a single multiply, so short
// node names that differ only in the trailing character ("w1".."w4")
// hash to points a few primes apart — tight clusters on the 64-bit
// circle whose arc all belongs to one node. Full avalanche scatters
// them.
std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

std::uint64_t pointOf(const std::string& node, int replica) {
    return mix64(service::fnv1a64(node) +
                 0x9e3779b97f4a7c15ull * (replica + 1));
}

std::uint64_t pointOfKey(const std::string& key) {
    return mix64(service::fnv1a64(key));
}

}  // namespace

HashRing::HashRing(int replicas) : replicas_(replicas < 1 ? 1 : replicas) {}

void HashRing::add(const std::string& node) {
    if (node.empty() || !nodes_.insert(node).second) return;
    for (int r = 0; r < replicas_; ++r) {
        // Collisions resolve to the lexically smaller node (map::emplace
        // keeps the first insert) — deterministic either way.
        auto [it, inserted] = ring_.emplace(pointOf(node, r), node);
        if (!inserted && node < it->second) it->second = node;
    }
}

void HashRing::remove(const std::string& node) {
    if (nodes_.erase(node) == 0) return;
    for (auto it = ring_.begin(); it != ring_.end();) {
        if (it->second == node)
            it = ring_.erase(it);
        else
            ++it;
    }
    // Re-add surviving nodes' points that a collision may have ceded to
    // the removed node (rare; replicas are cheap to recompute).
    for (const std::string& n : nodes_)
        for (int r = 0; r < replicas_; ++r) ring_.emplace(pointOf(n, r), n);
}

bool HashRing::contains(const std::string& node) const {
    return nodes_.count(node) != 0;
}

std::vector<std::string> HashRing::nodes() const {
    return {nodes_.begin(), nodes_.end()};
}

std::string HashRing::ownerOf(const std::string& key) const {
    if (ring_.empty()) return {};
    auto it = ring_.lower_bound(pointOfKey(key));
    if (it == ring_.end()) it = ring_.begin();  // wrap the circle
    return it->second;
}

std::vector<std::string> HashRing::ownersOf(const std::string& key,
                                            std::size_t count) const {
    std::vector<std::string> out;
    if (ring_.empty() || count == 0) return out;
    if (count > nodes_.size()) count = nodes_.size();
    auto it = ring_.lower_bound(pointOfKey(key));
    if (it == ring_.end()) it = ring_.begin();
    std::set<std::string> seen;
    while (out.size() < count) {
        if (seen.insert(it->second).second) out.push_back(it->second);
        ++it;
        if (it == ring_.end()) it = ring_.begin();
    }
    return out;
}

}  // namespace phpf::cluster
