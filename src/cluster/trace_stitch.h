#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/wire.h"
#include "obs/concurrent_trace.h"

namespace phpf::cluster {

/// NTP-style clock-offset estimate from one request/response exchange:
/// `sendNs`/`recvNs` on the coordinator's tracer clock (request sent /
/// response received), `remoteRecvNs`/`remoteSendNs` on the worker's
/// (request received / response sent). Returns the offset to ADD to a
/// worker timestamp to land it on the coordinator's timeline, assuming
/// symmetric network delay. The estimate's error is bounded by half
/// the round-trip residual `(recvNs - sendNs) - (remoteSendNs -
/// remoteRecvNs)` — callers keep the exchange with the smallest
/// residual.
[[nodiscard]] std::int64_t estimateClockOffsetNs(std::int64_t sendNs,
                                                 std::int64_t remoteRecvNs,
                                                 std::int64_t remoteSendNs,
                                                 std::int64_t recvNs);

/// What one stitch pass did.
struct StitchStats {
    int workers = 0;          ///< process rows created
    std::size_t spans = 0;    ///< spans merged
    std::size_t orphans = 0;  ///< spans re-parented under a "lost:" span
    std::size_t dropped = 0;  ///< spans dropped by the batch-size cap
};

/// Accumulates span batches returned by workers during a coordinated
/// run, then merges them all into the coordinator's ConcurrentTracer at
/// export time. Deferring resolution to the end is what makes the
/// stitcher indifferent to batch arrival order: a batch may reference a
/// parent span that arrives in a later response (concurrent requests
/// drain whatever finished first), and a per-worker id map built over
/// ALL of a worker's batches resolves both directions.
///
/// Batches are keyed by worker identity + tracer epoch, so a restarted
/// worker (fresh tracer, span ids starting over) gets its own id space
/// and its own process row instead of colliding with its previous
/// life. Per worker, the clock offset from the lowest-residual exchange
/// wins.
///
/// Cross-process parent edges (`WireSpan::ctx`, stamped by the worker
/// from the propagated TraceContext) are already in the coordinator's
/// id space and pass through unmapped. Spans whose worker-local parent
/// never arrived — worker killed mid-request, batch cap, lost response
/// — re-parent under a synthetic "lost:<worker>" span; the exporter
/// never drops or crashes on them.
///
/// Thread-safe; compileJob calls addBatch from many dispatcher threads.
class SpanStitcher {
public:
    explicit SpanStitcher(std::size_t maxSpans = 100000)
        : maxSpans_(maxSpans) {}

    /// Fold one response's trace block in. `workerKey` identifies the
    /// id space (worker id + epoch); `displayName` names the process
    /// row; `uncertaintyNs` ranks this exchange's offset estimate.
    void addBatch(const std::string& workerKey,
                  const std::string& displayName, std::int64_t offsetNs,
                  std::int64_t uncertaintyNs, std::vector<WireSpan> spans);

    /// Merge everything accumulated so far into `tracer` (renumbering
    /// span ids via allocateSpanId, registering one process row per
    /// worker, rebasing timestamps by the per-worker offset). Call once
    /// at export time; the accumulated batches are consumed.
    StitchStats stitchInto(obs::ConcurrentTracer& tracer);

    [[nodiscard]] std::size_t spanCount() const;

private:
    struct WorkerSpans {
        std::string displayName;
        std::int64_t offsetNs = 0;
        std::int64_t uncertaintyNs = INT64_MAX;
        std::vector<WireSpan> spans;
    };

    mutable std::mutex mu_;
    /// Ordered by key so process rows come out in a stable order.
    std::map<std::string, WorkerSpans> workers_;
    std::size_t maxSpans_;
    std::size_t total_ = 0;
    std::size_t dropped_ = 0;
};

}  // namespace phpf::cluster
