#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cluster/wire.h"
#include "obs/concurrent_trace.h"
#include "obs/metrics.h"
#include "service/compile_service.h"
#include "service/http_exposition.h"
#include "support/fault.h"

namespace phpf::cluster {

/// How the cluster.worker_kill fault site takes the worker down.
enum class KillMode : std::uint8_t {
    /// _exit(137) — indistinguishable from kill -9 to every observer:
    /// sockets reset, no destructors, no flushes. The mode for real
    /// worker subprocesses (phpfc --worker, the soak bench).
    Exit,
    /// Stay in-process but become a corpse: drop the triggering
    /// connection without a byte and answer nothing ever again. The
    /// mode for in-process tests, which cannot afford to _exit the
    /// test runner.
    Drop,
};

struct WorkerConfig {
    std::string id;  ///< name on the ring; defaults to "worker-<port>"
    int port = 0;    ///< 0 = ephemeral (resolved via port() after start)
    service::ServiceConfig service;
    service::HttpLimits limits;
    /// Connection handler threads: compiles occupy connections for
    /// whole pipeline runs, and health probes must still be answered.
    int connectionThreads = 4;
    KillMode killMode = KillMode::Exit;
    /// Fault source for cluster.worker_kill (null = process injector).
    const FaultInjector* faults = nullptr;
    /// Wire version stamped into responses. Tests set this != kWireVersion
    /// to fake an out-of-date peer and exercise the StaleWorker path;
    /// leave it alone otherwise.
    int wireVersion = kWireVersion;
    /// Cap on the span batch a single traced response carries back.
    /// Spans past the cap stay buffered for the next traced response.
    std::size_t maxSpanBatch = 256;
};

/// One compile worker: a CompileService (sharded artifact cache,
/// coalescing, deadline enforcement, transparent retries) behind the
/// loopback HTTP server, speaking the versioned wire protocol:
///
///   POST /compile          compile a jobs-file row; 200 + response doc
///   GET  /artifact/<key>   cache-only lookup (the peer-fetch tier);
///                          200 + artifact doc, or 404 on a miss —
///                          never compiles
///
/// plus the server built-ins (/metrics with the service and worker
/// registries attached, /healthz carrying the worker id and wire
/// version, /quitquitquit for scripted shutdown).
///
/// The cluster.worker_kill fault site is polled at the top of every
/// POST /compile; see KillMode for what firing does.
class Worker {
public:
    explicit Worker(WorkerConfig cfg = {});
    ~Worker();  ///< stop()s

    Worker(const Worker&) = delete;
    Worker& operator=(const Worker&) = delete;

    bool start(std::string* err = nullptr);
    void stop();

    [[nodiscard]] const std::string& id() const { return cfg_.id; }
    [[nodiscard]] int port() const { return server_.port(); }
    [[nodiscard]] std::string endpoint() const {
        return "127.0.0.1:" + std::to_string(port());
    }
    [[nodiscard]] bool quitRequested() const {
        return server_.quitRequested();
    }
    /// True once the kill site fired in Drop mode (the worker is a
    /// corpse: connected but mute).
    [[nodiscard]] bool killed() const {
        return killed_.load(std::memory_order_acquire);
    }

    [[nodiscard]] service::CompileService& service() { return *svc_; }
    [[nodiscard]] service::MetricsHttpServer& server() { return server_; }
    [[nodiscard]] const obs::MetricRegistry& metrics() const {
        return registry_;
    }
    /// The worker's request tracer (disabled until the first sampled
    /// request arrives; sticky after that).
    [[nodiscard]] obs::ConcurrentTracer& tracer() { return tracer_; }

private:
    [[nodiscard]] service::HttpReply handle(const service::HttpRequest& req);
    /// Remember the coordinator parent span propagated with a request
    /// whose local root span is `spanId`; consumed at harvest time.
    void noteRootContext(std::uint64_t spanId, std::uint64_t ctx);
    /// Drain up to maxSpanBatch closed spans into a wire batch,
    /// annotating request roots with their coordinator context.
    [[nodiscard]] WireTrace harvestTrace(std::int64_t recvNs);

    WorkerConfig cfg_;
    std::unique_ptr<service::CompileService> svc_;
    service::MetricsHttpServer server_;
    obs::MetricRegistry registry_;  ///< worker-plane counters
    /// Spans recorded while handling traced requests. Starts disabled
    /// (untraced requests pay one branch); the first sampled request
    /// arms it for the rest of the worker's life.
    obs::ConcurrentTracer tracer_{false};
    /// Local root span id -> coordinator parent span id, bridged into
    /// the span batch at harvest. Bounded: entries are erased when
    /// their span ships; a runaway map (tracing stopped mid-flight) is
    /// dropped wholesale.
    std::mutex traceMu_;
    std::unordered_map<std::uint64_t, std::uint64_t> rootCtx_;
    FaultSite* killSite_ = nullptr;
    std::atomic<bool> killed_{false};
};

}  // namespace phpf::cluster
