#include "cluster/federation.h"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/http_client.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace phpf::cluster {
namespace {

/// (registry prefix, dotted metric name) — the identity a sample
/// federates under.
using MetricKey = std::pair<std::string, std::string>;

struct CounterSample {
    std::string worker;
    std::int64_t value = 0;
};

struct GaugeSample {
    std::string worker;
    double value = 0;
};

struct HistSample {
    std::string worker;
    std::int64_t count = 0;
    double sum = 0, min = 0, max = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<std::int64_t> buckets;
};

double numField(const obs::Json& j, const char* key) {
    const obs::Json* f = j.find(key);
    return f != nullptr && f->isNumber() ? f->numberValue() : 0.0;
}

void appendNum(std::ostringstream& out, double v) { out << v; }

/// `name{worker="..."} ` — the labeled sample prelude.
void labeled(std::ostringstream& out, const std::string& name,
             const std::string& worker, const char* extra = nullptr) {
    out << name << "{worker=\"" << obs::prometheusLabelValue(worker) << "\"";
    if (extra != nullptr) out << "," << extra;
    out << "} ";
}

void helpAndType(std::ostringstream& out, const std::string& dotted,
                 const std::string& exposed, const char* type) {
    const std::string help = obs::metricDescription(dotted);
    if (!help.empty())
        out << "# HELP " << exposed << " " << obs::prometheusHelpText(help)
            << "\n";
    out << "# TYPE " << exposed << " " << type << "\n";
}

void renderSummary(std::ostringstream& out, const std::string& name,
                   const std::string& worker, double p50, double p90,
                   double p99, double sum, std::int64_t count) {
    const bool hasWorker = !worker.empty();
    auto q = [&](const char* label, double v) {
        if (hasWorker) {
            labeled(out, name, worker,
                    (std::string("quantile=\"") + label + "\"").c_str());
        } else {
            out << name << "{quantile=\"" << label << "\"} ";
        }
        appendNum(out, v);
        out << "\n";
    };
    q("0.5", p50);
    q("0.9", p90);
    q("0.99", p99);
    if (hasWorker) {
        labeled(out, name + "_sum", worker);
    } else {
        out << name << "_sum ";
    }
    appendNum(out, sum);
    out << "\n";
    if (hasWorker) {
        labeled(out, name + "_count", worker);
    } else {
        out << name << "_count ";
    }
    out << count << "\n";
}

}  // namespace

std::string clusterMetricsText(Coordinator& coord, int timeoutMs) {
    const std::vector<KnownWorker> workers = coord.knownWorkers();

    std::map<MetricKey, std::vector<CounterSample>> counters;
    std::map<MetricKey, std::vector<GaugeSample>> gauges;
    std::map<MetricKey, std::vector<HistSample>> hists;

    int alive = 0;
    int scrapeErrors = 0;
    for (const KnownWorker& w : workers) {
        if (!w.alive) continue;
        ++alive;
        const std::string label = w.id.empty() ? w.endpoint : w.id;
        std::string host;
        int port = 0;
        if (!parseEndpoint(w.endpoint, &host, &port)) {
            ++scrapeErrors;
            continue;
        }
        HttpResult r = httpGet(host, port, "/metrics.json", timeoutMs);
        if (!r.ok || r.status != 200) {
            ++scrapeErrors;
            continue;
        }
        obs::Json doc = obs::Json::parse(r.body);
        const obs::Json* regs = doc.find("registries");
        if (regs == nullptr || !regs->isArray()) {
            ++scrapeErrors;
            continue;
        }
        for (const obs::Json& reg : regs->items()) {
            const obs::Json* prefix = reg.find("prefix");
            const obs::Json* metrics = reg.find("metrics");
            if (prefix == nullptr || !prefix->isString() ||
                metrics == nullptr || !metrics->isObject())
                continue;
            const std::string& p = prefix->stringValue();
            if (const obs::Json* cs = metrics->find("counters");
                cs != nullptr && cs->isObject()) {
                for (const std::string& name : cs->keys())
                    counters[{p, name}].push_back(
                        {label, cs->at(name).intValue()});
            }
            if (const obs::Json* gs = metrics->find("gauges");
                gs != nullptr && gs->isObject()) {
                for (const std::string& name : gs->keys())
                    gauges[{p, name}].push_back(
                        {label, gs->at(name).numberValue()});
            }
            if (const obs::Json* hs = metrics->find("histograms");
                hs != nullptr && hs->isObject()) {
                for (const std::string& name : hs->keys()) {
                    const obs::Json& h = hs->at(name);
                    if (!h.isObject()) continue;
                    HistSample s;
                    s.worker = label;
                    s.count = static_cast<std::int64_t>(numField(h, "count"));
                    s.sum = numField(h, "sum");
                    s.min = numField(h, "min");
                    s.max = numField(h, "max");
                    s.p50 = numField(h, "p50");
                    s.p90 = numField(h, "p90");
                    s.p99 = numField(h, "p99");
                    if (const obs::Json* b = h.find("log2_buckets");
                        b != nullptr && b->isArray()) {
                        for (const obs::Json& v : b->items())
                            s.buckets.push_back(v.intValue());
                    }
                    hists[{p, name}].push_back(std::move(s));
                }
            }
        }
    }

    std::ostringstream out;

    // Counters: per-worker samples grouped under one TYPE, then the
    // cluster rollup (sum of exactly the values printed above — the
    // page is self-consistent by construction).
    for (const auto& [key, samples] : counters) {
        const std::string base = obs::prometheusName(key.first) + "_" +
                                 obs::prometheusName(key.second);
        const std::string n = base + "_total";
        helpAndType(out, key.second, n, "counter");
        std::int64_t total = 0;
        for (const CounterSample& s : samples) {
            labeled(out, n, s.worker);
            out << s.value << "\n";
            total += s.value;
        }
        const std::string roll = obs::prometheusName(key.first) +
                                 "_cluster_" +
                                 obs::prometheusName(key.second) + "_total";
        helpAndType(out, key.second, roll, "counter");
        out << roll << " " << total << "\n";
    }

    // Gauges: per-worker samples only (summing last-value metrics
    // across workers rarely means anything).
    for (const auto& [key, samples] : gauges) {
        const std::string n = obs::prometheusName(key.first) + "_" +
                              obs::prometheusName(key.second);
        helpAndType(out, key.second, n, "gauge");
        for (const GaugeSample& s : samples) {
            labeled(out, n, s.worker);
            appendNum(out, s.value);
            out << "\n";
        }
    }

    // Histograms: per-worker summaries, then a bucket-wise merged
    // cluster rollup with re-derived quantiles.
    for (const auto& [key, samples] : hists) {
        const std::string n = obs::prometheusName(key.first) + "_" +
                              obs::prometheusName(key.second);
        helpAndType(out, key.second, n, "summary");
        obs::Histogram merged;
        for (const HistSample& s : samples) {
            renderSummary(out, n, s.worker, s.p50, s.p90, s.p99, s.sum,
                          s.count);
            merged.restore(s.count, s.sum, s.min, s.max, s.buckets);
        }
        const std::string roll = obs::prometheusName(key.first) +
                                 "_cluster_" +
                                 obs::prometheusName(key.second);
        helpAndType(out, key.second, roll, "summary");
        renderSummary(out, roll, "", merged.p50(), merged.p90(),
                      merged.p99(), merged.sum(), merged.count());
    }

    // The scrape itself.
    const std::string pre = "phpf";
    out << "# TYPE " << pre << "_cluster_workers_alive gauge\n"
        << pre << "_cluster_workers_alive " << alive << "\n";
    out << "# TYPE " << pre << "_cluster_workers_known gauge\n"
        << pre << "_cluster_workers_known " << workers.size() << "\n";
    out << "# TYPE " << pre << "_cluster_scrape_errors gauge\n"
        << pre << "_cluster_scrape_errors " << scrapeErrors << "\n";

    return out.str();
}

obs::Json clusterHealthJson(Coordinator& coord, int timeoutMs) {
    const std::vector<KnownWorker> workers = coord.knownWorkers();
    obs::Json doc = obs::Json::object();
    obs::Json arr = obs::Json::array();
    int alive = 0;
    bool degraded = false;
    for (const KnownWorker& w : workers) {
        obs::Json e = obs::Json::object();
        e.set("endpoint", w.endpoint);
        e.set("id", w.id);
        e.set("alive", w.alive);
        if (!w.alive) {
            e.set("status", "dead");
            degraded = true;
            arr.push(std::move(e));
            continue;
        }
        std::string host;
        int port = 0;
        HttpResult r;
        if (parseEndpoint(w.endpoint, &host, &port))
            r = httpGet(host, port, "/healthz", timeoutMs);
        if (!r.ok || r.status != 200) {
            e.set("status", "unreachable");
            degraded = true;
            arr.push(std::move(e));
            continue;
        }
        obs::Json h = obs::Json::parse(r.body);
        const obs::Json* wv = h.find("wire_version");
        const int version =
            wv != nullptr && wv->isNumber() ? static_cast<int>(wv->intValue())
                                            : 0;
        e.set("wire_version", version);
        if (const obs::Json* qd = h.find("queue_depth");
            qd != nullptr && qd->isNumber())
            e.set("queue_depth", qd->intValue());
        if (version != kWireVersion) {
            e.set("status", "wire-mismatch");
            degraded = true;
        } else {
            e.set("status", "ok");
            ++alive;
        }
        arr.push(std::move(e));
    }
    doc.set("status", alive == 0          ? "down"
                      : degraded         ? "degraded"
                                          : "ok");
    doc.set("wire_version", kWireVersion);
    doc.set("workers_alive", alive);
    doc.set("workers_known", static_cast<std::int64_t>(workers.size()));
    doc.set("workers", std::move(arr));
    return doc;
}

service::HttpReply handleClusterRequest(Coordinator& coord,
                                        const service::HttpRequest& req,
                                        int timeoutMs) {
    service::HttpReply reply;
    if (req.method == "GET" && req.path == "/cluster/metrics") {
        reply.contentType = "text/plain; version=0.0.4";
        reply.body = clusterMetricsText(coord, timeoutMs);
        return reply;
    }
    if (req.method == "GET" && req.path == "/cluster/healthz") {
        reply.contentType = "application/json";
        reply.body = clusterHealthJson(coord, timeoutMs).dump();
        return reply;
    }
    reply.status = 404;
    reply.contentType = "text/plain";
    reply.body = "try /cluster/metrics /cluster/healthz\n";
    return reply;
}

}  // namespace phpf::cluster
