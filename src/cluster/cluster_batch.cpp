#include "cluster/cluster_batch.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <vector>

namespace phpf::cluster {

using service::BatchJob;
using service::CompileStatus;
using service::ErrorCode;

namespace {

struct Emitter {
    std::mutex mu;
    std::set<std::string> done;
    std::ostream* out = nullptr;
    std::ofstream journal;
    int duplicates = 0;

    /// THE single completion point: a row leaves here once or never.
    /// Journal flush precedes stdout so a crash right after still
    /// leaves the row durable for --resume.
    void emit(const std::string& name, const obs::Json& row) {
        std::lock_guard<std::mutex> lk(mu);
        if (!done.insert(name).second) {
            ++duplicates;  // suppressed, and the batch loses its proof
            return;
        }
        std::string line = row.dump(-1);
        if (journal.is_open()) {
            journal << line << "\n";
            journal.flush();
        }
        (*out) << line << "\n";
        out->flush();
    }
};

obs::Json rowOf(const BatchJob& job, const ClusterOutcome& o, int requeues) {
    obs::Json row = obs::Json::object();
    row.set("job", job.name);
    row.set("status", service::statusName(o.status));
    row.set("code", service::errorCodeName(o.code));
    row.set("ok", o.ok());
    if (o.hasArtifact) {
        row.set("key", o.artifact.key);
        row.set("content_hash", o.artifact.contentHash());
        row.set("total_sec", o.artifact.computeSec + o.artifact.commSec);
    }
    if (!o.worker.empty()) row.set("worker", o.worker);
    if (!o.traceId.empty()) row.set("trace_id", o.traceId);
    row.set("local_hit", o.localHit);
    row.set("peer_hit", o.peerHit);
    row.set("worker_hit", o.workerHit);
    row.set("attempts", o.attempts);
    if (requeues > 0) row.set("requeues", requeues);
    if (!o.error.empty()) row.set("error", o.error);
    return row;
}

}  // namespace

ClusterBatchOutcome runClusterBatch(Coordinator& coord,
                                    const service::BatchSpec& spec,
                                    std::ostream& out,
                                    const ClusterBatchOptions& opts) {
    auto t0 = std::chrono::steady_clock::now();
    ClusterBatchOutcome outcome;
    outcome.jobs = static_cast<int>(spec.jobs.size());

    Emitter emitter;
    emitter.out = &out;

    // Resume: names already journaled by a previous run are done —
    // their jobs are never scheduled, so nothing can run twice.
    if (opts.resume && !opts.journalPath.empty()) {
        std::ifstream in(opts.journalPath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            obs::Json row = obs::Json::parse(line);
            if (!row.isObject() || row.find("summary") != nullptr) continue;
            if (const obs::Json* v = row.find("job"))
                if (v->isString()) emitter.done.insert(v->stringValue());
        }
    }
    if (!opts.journalPath.empty())
        emitter.journal.open(opts.journalPath, std::ios::app);

    // Affinity queues: one per alive worker, each job on its ring
    // owner's queue. Queue fronts are the owner's warm path; thieves
    // take from the back (the classic deque split keeps owner locality
    // where it matters most).
    std::mutex qmu;
    std::condition_variable qcv;
    std::map<std::string, std::deque<int>> queues;
    std::vector<int> requeueCount(spec.jobs.size(), 0);
    int unfinished = 0;

    std::vector<std::string> workers = coord.aliveWorkers();
    for (const std::string& w : workers) queues[w];

    std::mutex statsMu;  // guards the tallies below until threads join
    auto finish = [&](int index, const ClusterOutcome& o) {
        const BatchJob& job = spec.jobs[static_cast<std::size_t>(index)];
        emitter.emit(job.name, rowOf(job, o, requeueCount[index]));
        std::lock_guard<std::mutex> lk(statsMu);
        if (o.ok()) {
            ++outcome.ok;
            if (o.localHit) ++outcome.localHits;
            if (o.peerHit) ++outcome.peerHits;
            if (o.workerHit) ++outcome.workerHits;
            if (!o.localHit && !o.peerHit && !o.workerHit)
                ++outcome.compiles;
        } else {
            ++outcome.failed;
        }
    };

    {
        std::lock_guard<std::mutex> lk(qmu);
        for (std::size_t i = 0; i < spec.jobs.size(); ++i) {
            if (emitter.done.count(spec.jobs[i].name) != 0) {
                ++outcome.skipped;
                continue;
            }
            std::string owner = coord.ownerOf(spec.jobs[i]);
            if (owner.empty()) {
                // No cluster at all: fail the row now, exactly once.
                ClusterOutcome dead;
                dead.code = ErrorCode::RemoteUnreachable;
                dead.error = "no alive worker";
                finish(static_cast<int>(i), dead);
                continue;
            }
            queues[owner].push_back(static_cast<int>(i));
            ++unfinished;
        }
    }

    auto dispatcher = [&](const std::string& myWorker) {
        for (;;) {
            int index = -1;
            bool stolen = false;
            {
                std::unique_lock<std::mutex> lk(qmu);
                for (;;) {
                    if (unfinished == 0) return;
                    auto mine = queues.find(myWorker);
                    if (mine != queues.end() && !mine->second.empty()) {
                        index = mine->second.front();
                        mine->second.pop_front();
                        break;
                    }
                    // Steal from the longest backlog — a dead or slow
                    // worker's queue drains through everyone else.
                    auto victim = queues.end();
                    std::size_t longest = 0;
                    for (auto it = queues.begin(); it != queues.end(); ++it)
                        if (it->first != myWorker &&
                            it->second.size() > longest) {
                            longest = it->second.size();
                            victim = it;
                        }
                    if (victim != queues.end()) {
                        index = victim->second.back();
                        victim->second.pop_back();
                        stolen = true;
                        break;
                    }
                    // Nothing queued but jobs are in flight — one may
                    // be re-queued yet.
                    qcv.wait_for(lk, std::chrono::milliseconds(50));
                }
            }

            ClusterOutcome o = coord.compileJob(
                spec.jobs[static_cast<std::size_t>(index)], myWorker);
            if (stolen) {
                std::lock_guard<std::mutex> lk(statsMu);
                ++outcome.steals;
            }

            bool requeue = false;
            if (!o.ok() && service::isTransient(o.code) &&
                requeueCount[index] < opts.maxRequeues) {
                std::lock_guard<std::mutex> lk(qmu);
                // Current ring owner — a re-owned hash range re-routes
                // the job automatically. Requires a survivor.
                std::string owner =
                    coord.ownerOf(spec.jobs[static_cast<std::size_t>(index)]);
                if (!owner.empty()) {
                    ++requeueCount[index];
                    queues[owner].push_back(index);
                    requeue = true;
                }
            }
            if (requeue) {
                {
                    std::lock_guard<std::mutex> lk(statsMu);
                    ++outcome.requeues;
                }
                qcv.notify_all();
                continue;
            }

            finish(index, o);
            {
                std::lock_guard<std::mutex> lk(qmu);
                --unfinished;
            }
            qcv.notify_all();
        }
    };

    int perWorker = std::max(1, opts.dispatchersPerWorker);
    std::vector<std::thread> threads;
    threads.reserve(workers.size() * static_cast<std::size_t>(perWorker));
    for (const std::string& w : workers)
        for (int d = 0; d < perWorker; ++d)
            threads.emplace_back(dispatcher, w);
    for (std::thread& t : threads) t.join();

    // Jobs that queued but found no surviving worker to re-queue onto
    // were finished inside the loop; `unfinished` is 0 here by
    // construction unless there were no workers at all (no threads).
    if (workers.empty()) {
        std::lock_guard<std::mutex> lk(qmu);
        for (auto& [owner, q] : queues)
            for (int index : q) {
                ClusterOutcome dead;
                dead.code = ErrorCode::RemoteUnreachable;
                dead.error = "no alive worker";
                finish(index, dead);
            }
    }

    outcome.exactlyOnce = emitter.duplicates == 0;
    outcome.wallSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    obs::Json summary = obs::Json::object();
    summary.set("summary", true);
    summary.set("schema", "phpf.cluster_batch_report");
    summary.set("schema_version", 1);
    summary.set("jobs", outcome.jobs);
    summary.set("ok", outcome.ok);
    summary.set("failed", outcome.failed);
    summary.set("skipped", outcome.skipped);
    summary.set("local_hits", outcome.localHits);
    summary.set("peer_hits", outcome.peerHits);
    summary.set("worker_hits", outcome.workerHits);
    summary.set("compiles", outcome.compiles);
    summary.set("steals", outcome.steals);
    summary.set("requeues", outcome.requeues);
    summary.set("exactly_once", outcome.exactlyOnce);
    summary.set("wall_sec", outcome.wallSec);
    obs::Json ws = obs::Json::array();
    for (const std::string& w : coord.aliveWorkers()) ws.push(w);
    summary.set("workers", std::move(ws));
    // Slowest requests with their full causal chains — the batch's own
    // "why was this slow" exemplars, no trace viewer required.
    std::vector<RequestChain> slow = coord.slowRequests();
    if (!slow.empty()) {
        obs::Json sl = obs::Json::array();
        for (const RequestChain& c : slow) sl.push(c.toJson());
        summary.set("slow_requests", std::move(sl));
    }
    out << summary.dump(-1) << "\n";
    out.flush();

    return outcome;
}

}  // namespace phpf::cluster
