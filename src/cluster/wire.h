#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "service/batch.h"
#include "service/compile_service.h"
#include "service/error_code.h"

namespace phpf::cluster {

/// Versioned JSON wire protocol between a coordinator and its workers.
///
/// Every message carries `"v": kWireVersion`; a mismatch is answered
/// (or treated) as ErrorCode::StaleWorker — a restarted or out-of-date
/// peer must be discarded and the job re-routed, never half-parsed.
///
///   POST /compile              body: {"v":1, "job": {<jobs-file row>}}
///   GET  /artifact/<key>       no body
///
/// Both answer a response document:
///
///   {"v":1, "worker": "<id>", "status": "ok", "code": "none",
///    "cache_hit": true, "error": "",
///    "artifact": {"key": ..., "program": ..., "spmd": ...,
///                 "decisions": ..., "cost": {...},
///                 "content_hash": "h<hex16>"}}
///
/// The request payload is exactly the jobs-file row schema
/// (service::parseBatchJob / batchJobToJson with every option key
/// explicit), so the cluster and the batch runner share one codec and
/// a wire request can be pasted into a jobs file verbatim.
inline constexpr int kWireVersion = 1;

/// W3C-traceparent-style distributed trace context: 128-bit trace id,
/// 64-bit parent span id, sampled flag. The coordinator stamps one on
/// every compile POST (as a `"trace_ctx"` sibling of `"job"`) and every
/// artifact GET (as a `?traceparent=` query parameter); a worker opens
/// its request-handling span under `parentSpan` and echoes the id back
/// in its span batch.
///
/// Wire form is the traceparent string:
///   "00-<32 hex trace id>-<16 hex parent span>-<01 sampled | 00 not>"
///
/// The context rides OUTSIDE the content-hashed artifact payload, so a
/// traced compile is bit-identical to an untraced one.
struct TraceContext {
    std::uint64_t traceIdHi = 0;
    std::uint64_t traceIdLo = 0;
    std::uint64_t parentSpan = 0;  ///< coordinator span id, 0 = root
    bool sampled = false;

    [[nodiscard]] bool valid() const { return (traceIdHi | traceIdLo) != 0; }
    [[nodiscard]] std::string traceIdHex() const;  ///< 32 hex chars
    [[nodiscard]] std::string encode() const;
    /// False on anything that is not a well-formed traceparent string.
    static bool decode(const std::string& s, TraceContext* out);
};

/// One completed span crossing the wire inside a traced response, on
/// the *worker's* tracer clock (the coordinator rebases with the
/// estimated clock offset).
struct WireSpan {
    std::string name;
    std::string category;
    std::string threadName;   ///< worker-side thread row name
    std::int64_t startNs = 0;
    std::int64_t durNs = 0;
    std::uint64_t id = 0;      ///< worker-tracer span id
    std::uint64_t parent = 0;  ///< worker-tracer parent id, 0 = root
    /// For request-root spans: the coordinator span id propagated via
    /// TraceContext::parentSpan. 0 everywhere else. This is the one
    /// cross-process edge — it lives in the coordinator's id space.
    std::uint64_t ctx = 0;
    int tid = 0;
};

/// The `"trace"` block of a traced response: a bounded batch of the
/// worker's completed spans plus the timestamps the coordinator needs
/// for NTP-style clock-offset estimation (request recv / response send
/// on the worker's tracer clock). `epoch` is the worker tracer's
/// instance id — it changes when a worker restarts, so span ids from a
/// previous life are never stitched into the wrong timeline.
struct WireTrace {
    bool present = false;
    std::int64_t recvNs = 0;
    std::int64_t sendNs = 0;
    std::uint64_t epoch = 0;
    std::vector<WireSpan> spans;

    [[nodiscard]] obs::Json toJson() const;
    /// Lenient: malformed trace blocks yield present=false rather than
    /// an error — telemetry must never fail a compile.
    static void fromJson(const obs::Json* j, WireTrace* out);
};

/// The subset of a CompileArtifact that crosses the wire: enough for
/// batch rows, bit-identity checks, and peer-cache reuse. (Profiles and
/// full run reports stay worker-local — a coordinator aggregating a
/// thousand jobs wants the decisions and the cost, not megabytes of
/// per-statement traces.)
struct WireArtifact {
    std::string key;          ///< content-addressed request key
    std::string programName;
    std::string spmdText;
    std::string decisionReport;
    double computeSec = 0;
    double commSec = 0;
    std::int64_t messageEvents = 0;
    double commBytes = 0;

    /// Stable hash over every field above ("h<hex16>"). Two workers
    /// compiling the same request must produce the same content hash —
    /// this is what the soak bench compares against a single-process
    /// run to prove distributed results are bit-identical.
    [[nodiscard]] std::string contentHash() const;

    [[nodiscard]] static WireArtifact fromArtifact(
        const service::CompileArtifact& a);
    [[nodiscard]] obs::Json toJson() const;  ///< includes content_hash
    /// False (with *err) on schema mismatch or a content_hash that does
    /// not match the recomputed one (corruption or a lying peer).
    static bool fromJson(const obs::Json& j, WireArtifact* out,
                         std::string* err);
};

/// One parsed response document.
struct WireResponse {
    int version = 0;
    std::string worker;  ///< serving worker's id
    service::CompileStatus status = service::CompileStatus::Error;
    service::ErrorCode code = service::ErrorCode::Internal;
    bool cacheHit = false;
    std::string error;
    bool hasArtifact = false;
    WireArtifact artifact;
    WireTrace trace;  ///< present only on traced responses

    [[nodiscard]] bool ok() const {
        return status == service::CompileStatus::Ok && hasArtifact;
    }
};

/// Build the POST /compile request body for `job`. File jobs are
/// resolved to inline source — workers must not need the coordinator's
/// filesystem. A valid `ctx` rides along as `"trace_ctx"` (outside the
/// job row, outside every hash).
[[nodiscard]] std::string encodeCompileRequest(const service::BatchJob& job,
                                               const TraceContext* ctx =
                                                   nullptr);

/// Parse a POST /compile body. False with *err on malformed JSON, a
/// version mismatch, or a job that fails jobs-file validation. A
/// malformed `trace_ctx` is ignored (ctx stays invalid), never an
/// error.
bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         TraceContext* ctx, std::string* err);
bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         std::string* err);

/// Build a response body from a worker-local CompileResult. A non-null
/// `trace` with present=true appends the span batch as a `"trace"`
/// sibling of `"artifact"` — outside the content hash.
[[nodiscard]] std::string encodeCompileResponse(
    const std::string& workerId, const service::CompileResult& r,
    const WireTrace* trace = nullptr);

/// Build the response body of a successful GET /artifact cache hit.
[[nodiscard]] std::string encodeArtifactResponse(
    const std::string& workerId, const service::CompileArtifact& a,
    const WireTrace* trace = nullptr);

/// Parse a response body. Returns false with *err on malformed JSON or
/// schema violations; a version mismatch PARSES (returns true) with
/// `out->code == StaleWorker` so callers route it through the normal
/// transient-retry policy instead of a parse-error path.
bool parseWireResponse(const std::string& body, WireResponse* out,
                       std::string* err);

}  // namespace phpf::cluster
