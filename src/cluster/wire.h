#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "service/batch.h"
#include "service/compile_service.h"
#include "service/error_code.h"

namespace phpf::cluster {

/// Versioned JSON wire protocol between a coordinator and its workers.
///
/// Every message carries `"v": kWireVersion`; a mismatch is answered
/// (or treated) as ErrorCode::StaleWorker — a restarted or out-of-date
/// peer must be discarded and the job re-routed, never half-parsed.
///
///   POST /compile              body: {"v":1, "job": {<jobs-file row>}}
///   GET  /artifact/<key>       no body
///
/// Both answer a response document:
///
///   {"v":1, "worker": "<id>", "status": "ok", "code": "none",
///    "cache_hit": true, "error": "",
///    "artifact": {"key": ..., "program": ..., "spmd": ...,
///                 "decisions": ..., "cost": {...},
///                 "content_hash": "h<hex16>"}}
///
/// The request payload is exactly the jobs-file row schema
/// (service::parseBatchJob / batchJobToJson with every option key
/// explicit), so the cluster and the batch runner share one codec and
/// a wire request can be pasted into a jobs file verbatim.
inline constexpr int kWireVersion = 1;

/// The subset of a CompileArtifact that crosses the wire: enough for
/// batch rows, bit-identity checks, and peer-cache reuse. (Profiles and
/// full run reports stay worker-local — a coordinator aggregating a
/// thousand jobs wants the decisions and the cost, not megabytes of
/// per-statement traces.)
struct WireArtifact {
    std::string key;          ///< content-addressed request key
    std::string programName;
    std::string spmdText;
    std::string decisionReport;
    double computeSec = 0;
    double commSec = 0;
    std::int64_t messageEvents = 0;
    double commBytes = 0;

    /// Stable hash over every field above ("h<hex16>"). Two workers
    /// compiling the same request must produce the same content hash —
    /// this is what the soak bench compares against a single-process
    /// run to prove distributed results are bit-identical.
    [[nodiscard]] std::string contentHash() const;

    [[nodiscard]] static WireArtifact fromArtifact(
        const service::CompileArtifact& a);
    [[nodiscard]] obs::Json toJson() const;  ///< includes content_hash
    /// False (with *err) on schema mismatch or a content_hash that does
    /// not match the recomputed one (corruption or a lying peer).
    static bool fromJson(const obs::Json& j, WireArtifact* out,
                         std::string* err);
};

/// One parsed response document.
struct WireResponse {
    int version = 0;
    std::string worker;  ///< serving worker's id
    service::CompileStatus status = service::CompileStatus::Error;
    service::ErrorCode code = service::ErrorCode::Internal;
    bool cacheHit = false;
    std::string error;
    bool hasArtifact = false;
    WireArtifact artifact;

    [[nodiscard]] bool ok() const {
        return status == service::CompileStatus::Ok && hasArtifact;
    }
};

/// Build the POST /compile request body for `job`. File jobs are
/// resolved to inline source — workers must not need the coordinator's
/// filesystem.
[[nodiscard]] std::string encodeCompileRequest(const service::BatchJob& job);

/// Parse a POST /compile body. False with *err on malformed JSON, a
/// version mismatch, or a job that fails jobs-file validation.
bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         std::string* err);

/// Build a response body from a worker-local CompileResult.
[[nodiscard]] std::string encodeCompileResponse(
    const std::string& workerId, const service::CompileResult& r);

/// Build the response body of a successful GET /artifact cache hit.
[[nodiscard]] std::string encodeArtifactResponse(
    const std::string& workerId, const service::CompileArtifact& a);

/// Parse a response body. Returns false with *err on malformed JSON or
/// schema violations; a version mismatch PARSES (returns true) with
/// `out->code == StaleWorker` so callers route it through the normal
/// transient-retry policy instead of a parse-error path.
bool parseWireResponse(const std::string& body, WireResponse* out,
                       std::string* err);

}  // namespace phpf::cluster
