#include "cluster/trace_stitch.h"

#include <algorithm>
#include <unordered_map>

namespace phpf::cluster {

std::int64_t estimateClockOffsetNs(std::int64_t sendNs,
                                   std::int64_t remoteRecvNs,
                                   std::int64_t remoteSendNs,
                                   std::int64_t recvNs) {
    // worker + offset = coordinator. From the two one-way legs:
    //   sendNs + delay1 = remoteRecvNs + offset
    //   remoteSendNs + offset + delay2 = recvNs
    // Assume delay1 == delay2 and solve.
    return ((sendNs - remoteRecvNs) + (recvNs - remoteSendNs)) / 2;
}

void SpanStitcher::addBatch(const std::string& workerKey,
                            const std::string& displayName,
                            std::int64_t offsetNs,
                            std::int64_t uncertaintyNs,
                            std::vector<WireSpan> spans) {
    std::lock_guard<std::mutex> lock(mu_);
    WorkerSpans& w = workers_[workerKey];
    if (w.displayName.empty()) w.displayName = displayName;
    if (uncertaintyNs < w.uncertaintyNs) {
        w.uncertaintyNs = uncertaintyNs;
        w.offsetNs = offsetNs;
    }
    for (WireSpan& s : spans) {
        if (total_ >= maxSpans_) {
            ++dropped_;
            continue;
        }
        ++total_;
        w.spans.push_back(std::move(s));
    }
}

std::size_t SpanStitcher::spanCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

StitchStats SpanStitcher::stitchInto(obs::ConcurrentTracer& tracer) {
    std::lock_guard<std::mutex> lock(mu_);
    StitchStats st;
    st.dropped = dropped_;

    for (auto& [key, w] : workers_) {
        if (w.spans.empty()) continue;
        ++st.workers;
        const int pid = tracer.registerProcess(w.displayName);

        // Renumber the worker's whole id space first so in-batch parent
        // references resolve regardless of which response carried which
        // span.
        std::unordered_map<std::uint64_t, std::uint64_t> idMap;
        idMap.reserve(w.spans.size());
        for (const WireSpan& s : w.spans) idMap[s.id] = tracer.allocateSpanId();

        std::uint64_t lostId = 0;
        std::int64_t lostStart = 0, lostEnd = 0;

        for (WireSpan& s : w.spans) {
            obs::ConcurrentSpan cs;
            cs.name = std::move(s.name);
            cs.category = std::move(s.category);
            cs.startNs = s.startNs + w.offsetNs;
            cs.durNs = s.durNs < 0 ? 0 : s.durNs;
            cs.id = idMap[s.id];
            cs.tid = s.tid;
            cs.pid = pid;
            if (s.ctx != 0) {
                // The propagated coordinator span id: already in the
                // target id space, the one true cross-process edge.
                cs.parent = s.ctx;
            } else if (s.parent == 0) {
                // A genuine worker-side root (work outside any traced
                // request): floats as a root on the worker's row.
                cs.parent = 0;
            } else if (idMap.count(s.parent) != 0) {
                cs.parent = idMap[s.parent];
            } else {
                // Parent never made it back (worker died mid-request,
                // batch cap, dropped response). Keep the span; hang it
                // under a synthetic per-worker "lost" row.
                if (lostId == 0) {
                    lostId = tracer.allocateSpanId();
                    lostStart = cs.startNs;
                    lostEnd = cs.startNs + cs.durNs;
                }
                lostStart = std::min(lostStart, cs.startNs);
                lostEnd = std::max(lostEnd, cs.startNs + cs.durNs);
                cs.parent = lostId;
                ++st.orphans;
            }
            if (!s.threadName.empty())
                tracer.setRemoteThreadName(pid, s.tid, s.threadName);
            tracer.addRemoteSpan(std::move(cs));
            ++st.spans;
        }

        if (lostId != 0) {
            obs::ConcurrentSpan lost;
            lost.name = "lost:" + w.displayName;
            lost.category = "cluster";
            lost.startNs = lostStart;
            lost.durNs = lostEnd - lostStart;
            lost.id = lostId;
            lost.tid = 0;
            lost.pid = pid;
            tracer.setRemoteThreadName(pid, 0, "(lost spans)");
            tracer.addRemoteSpan(std::move(lost));
        }
    }

    workers_.clear();
    total_ = 0;
    dropped_ = 0;
    return st;
}

}  // namespace phpf::cluster
