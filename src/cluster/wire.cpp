#include "cluster/wire.h"

#include <cinttypes>
#include <cstdio>

#include "service/fingerprint.h"

namespace phpf::cluster {
namespace {

using service::CompileStatus;
using service::ErrorCode;

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

bool parseStatus(const std::string& s, CompileStatus* out) {
    if (s == "ok") *out = CompileStatus::Ok;
    else if (s == "parse-error") *out = CompileStatus::ParseError;
    else if (s == "deadline-exceeded") *out = CompileStatus::DeadlineExceeded;
    else if (s == "error") *out = CompileStatus::Error;
    else return false;
    return true;
}

bool parseCode(const std::string& s, ErrorCode* out) {
    for (ErrorCode c : {ErrorCode::None, ErrorCode::ParseError,
                        ErrorCode::EmptyRequest, ErrorCode::BuilderFailed,
                        ErrorCode::DeadlineExceeded, ErrorCode::Cancelled,
                        ErrorCode::TransientFault, ErrorCode::MemoryPressure,
                        ErrorCode::Internal, ErrorCode::RemoteUnreachable,
                        ErrorCode::PeerTimeout, ErrorCode::StaleWorker}) {
        if (s == service::errorCodeName(c)) {
            *out = c;
            return true;
        }
    }
    return false;
}

}  // namespace

std::string WireArtifact::contentHash() const {
    // Chain one FNV-1a stream through every field; field separators
    // ('\x1f') keep ("ab","c") distinct from ("a","bc").
    std::uint64_t h = service::fnv1a64(key);
    auto mix = [&h](const std::string& s) {
        h = service::fnv1a64("\x1f", h);
        h = service::fnv1a64(s, h);
    };
    mix(programName);
    mix(spmdText);
    mix(decisionReport);
    // Doubles hash at the wire's serialization precision (obs::Json
    // emits %.12g) so the hash survives a JSON round trip.
    char num[128];
    std::snprintf(num, sizeof num, "%.12g|%.12g|%lld|%.12g", computeSec,
                  commSec, static_cast<long long>(messageEvents), commBytes);
    mix(num);
    return "h" + hex16(h);
}

WireArtifact WireArtifact::fromArtifact(const service::CompileArtifact& a) {
    WireArtifact w;
    w.key = a.key;
    w.programName = a.programName;
    w.spmdText = a.spmdText;
    w.decisionReport = a.decisionReport;
    w.computeSec = a.cost.computeSec;
    w.commSec = a.cost.commSec;
    w.messageEvents = a.cost.messageEvents;
    w.commBytes = a.cost.commBytes;
    return w;
}

obs::Json WireArtifact::toJson() const {
    obs::Json j = obs::Json::object();
    j.set("key", key);
    j.set("program", programName);
    j.set("spmd", spmdText);
    j.set("decisions", decisionReport);
    obs::Json cost = obs::Json::object();
    cost.set("compute_sec", computeSec);
    cost.set("comm_sec", commSec);
    cost.set("message_events", messageEvents);
    cost.set("comm_bytes", commBytes);
    j.set("cost", std::move(cost));
    j.set("content_hash", contentHash());
    return j;
}

bool WireArtifact::fromJson(const obs::Json& j, WireArtifact* out,
                            std::string* err) {
    if (!j.isObject()) {
        if (err) *err = "artifact: not an object";
        return false;
    }
    WireArtifact w;
    const obs::Json* f = j.find("key");
    if (f == nullptr || !f->isString()) {
        if (err) *err = "artifact: missing key";
        return false;
    }
    w.key = f->stringValue();
    w.programName = j.at("program").stringValue();
    w.spmdText = j.at("spmd").stringValue();
    w.decisionReport = j.at("decisions").stringValue();
    const obs::Json& cost = j.at("cost");
    w.computeSec = cost.at("compute_sec").numberValue();
    w.commSec = cost.at("comm_sec").numberValue();
    w.messageEvents = cost.at("message_events").intValue();
    w.commBytes = cost.at("comm_bytes").numberValue();
    const obs::Json* hash = j.find("content_hash");
    if (hash == nullptr || !hash->isString() ||
        hash->stringValue() != w.contentHash()) {
        if (err) *err = "artifact: content hash mismatch";
        return false;
    }
    *out = std::move(w);
    return true;
}

std::string encodeCompileRequest(const service::BatchJob& job) {
    obs::Json j = obs::Json::object();
    j.set("v", kWireVersion);
    j.set("job", service::batchJobToJson(job, /*resolveFiles=*/true));
    return j.dump(-1);
}

bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         std::string* err) {
    std::string perr;
    obs::Json j = obs::Json::parse(body, &perr);
    if (!j.isObject()) {
        if (err) *err = "malformed request JSON: " + perr;
        return false;
    }
    const obs::Json* v = j.find("v");
    if (v == nullptr || !v->isNumber() || v->intValue() != kWireVersion) {
        if (err) *err = "wire version mismatch";
        return false;
    }
    const obs::Json* job = j.find("job");
    if (job == nullptr) {
        if (err) *err = "missing job";
        return false;
    }
    return service::parseBatchJob(*job, 0, out, err);
}

namespace {

std::string encodeResponseDoc(const std::string& workerId,
                              CompileStatus status, ErrorCode code,
                              bool cacheHit, const std::string& error,
                              const service::CompileArtifact* artifact) {
    obs::Json j = obs::Json::object();
    j.set("v", kWireVersion);
    j.set("worker", workerId);
    j.set("status", service::statusName(status));
    j.set("code", service::errorCodeName(code));
    j.set("cache_hit", cacheHit);
    if (!error.empty()) j.set("error", error);
    if (artifact != nullptr)
        j.set("artifact", WireArtifact::fromArtifact(*artifact).toJson());
    return j.dump(-1);
}

}  // namespace

std::string encodeCompileResponse(const std::string& workerId,
                                  const service::CompileResult& r) {
    return encodeResponseDoc(workerId, r.status, r.code, r.cacheHit, r.error,
                             r.artifact.get());
}

std::string encodeArtifactResponse(const std::string& workerId,
                                   const service::CompileArtifact& a) {
    return encodeResponseDoc(workerId, CompileStatus::Ok, ErrorCode::None,
                             /*cacheHit=*/true, "", &a);
}

bool parseWireResponse(const std::string& body, WireResponse* out,
                       std::string* err) {
    std::string perr;
    obs::Json j = obs::Json::parse(body, &perr);
    if (!j.isObject()) {
        if (err) *err = "malformed response JSON: " + perr;
        return false;
    }
    WireResponse r;
    const obs::Json* v = j.find("v");
    r.version = (v != nullptr && v->isNumber())
                    ? static_cast<int>(v->intValue())
                    : 0;
    r.worker = j.at("worker").stringValue();
    if (r.version != kWireVersion) {
        // A peer speaking another protocol version is a routing fact,
        // not a parse failure: surface it as StaleWorker so the caller
        // re-routes through the ordinary transient-retry policy.
        r.status = CompileStatus::Error;
        r.code = ErrorCode::StaleWorker;
        r.error = "wire version mismatch";
        *out = std::move(r);
        return true;
    }
    if (!parseStatus(j.at("status").stringValue(), &r.status)) {
        if (err) *err = "unknown status";
        return false;
    }
    if (!parseCode(j.at("code").stringValue(), &r.code)) {
        if (err) *err = "unknown error code";
        return false;
    }
    const obs::Json* hit = j.find("cache_hit");
    r.cacheHit = hit != nullptr && hit->kind() == obs::Json::Kind::Bool &&
                 hit->boolValue();
    const obs::Json* e = j.find("error");
    if (e != nullptr && e->isString()) r.error = e->stringValue();
    const obs::Json* art = j.find("artifact");
    if (art != nullptr) {
        if (!WireArtifact::fromJson(*art, &r.artifact, err)) return false;
        r.hasArtifact = true;
    }
    if (r.status == CompileStatus::Ok && !r.hasArtifact) {
        if (err) *err = "ok response without artifact";
        return false;
    }
    *out = std::move(r);
    return true;
}

}  // namespace phpf::cluster
