#include "cluster/wire.h"

#include <cinttypes>
#include <cstring>
#include <cstdlib>
#include <cstdio>

#include "service/fingerprint.h"

namespace phpf::cluster {
namespace {

using service::CompileStatus;
using service::ErrorCode;

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

bool parseStatus(const std::string& s, CompileStatus* out) {
    if (s == "ok") *out = CompileStatus::Ok;
    else if (s == "parse-error") *out = CompileStatus::ParseError;
    else if (s == "deadline-exceeded") *out = CompileStatus::DeadlineExceeded;
    else if (s == "error") *out = CompileStatus::Error;
    else return false;
    return true;
}

bool parseCode(const std::string& s, ErrorCode* out) {
    for (ErrorCode c : {ErrorCode::None, ErrorCode::ParseError,
                        ErrorCode::EmptyRequest, ErrorCode::BuilderFailed,
                        ErrorCode::DeadlineExceeded, ErrorCode::Cancelled,
                        ErrorCode::TransientFault, ErrorCode::MemoryPressure,
                        ErrorCode::Internal, ErrorCode::RemoteUnreachable,
                        ErrorCode::PeerTimeout, ErrorCode::StaleWorker}) {
        if (s == service::errorCodeName(c)) {
            *out = c;
            return true;
        }
    }
    return false;
}

/// Parse exactly `n` lowercase/uppercase hex chars; false on anything
/// else (traceparent fields are fixed-width).
bool parseHexField(const std::string& s, std::size_t pos, std::size_t n,
                   std::uint64_t* out) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const char c = s[pos + i];
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    *out = v;
    return true;
}

}  // namespace

std::string TraceContext::traceIdHex() const {
    return hex16(traceIdHi) + hex16(traceIdLo);
}

std::string TraceContext::encode() const {
    return "00-" + traceIdHex() + "-" + hex16(parentSpan) + "-" +
           (sampled ? "01" : "00");
}

bool TraceContext::decode(const std::string& s, TraceContext* out) {
    // "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex = 55 chars.
    if (s.size() != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' ||
        s[35] != '-' || s[52] != '-')
        return false;
    TraceContext c;
    std::uint64_t flags = 0;
    if (!parseHexField(s, 3, 16, &c.traceIdHi) ||
        !parseHexField(s, 19, 16, &c.traceIdLo) ||
        !parseHexField(s, 36, 16, &c.parentSpan) ||
        !parseHexField(s, 53, 2, &flags))
        return false;
    c.sampled = (flags & 1) != 0;
    if (!c.valid()) return false;
    *out = c;
    return true;
}

obs::Json WireTrace::toJson() const {
    obs::Json j = obs::Json::object();
    j.set("recv_ns", recvNs);
    j.set("send_ns", sendNs);
    j.set("epoch", static_cast<std::int64_t>(epoch));
    obs::Json arr = obs::Json::array();
    for (const WireSpan& s : spans) {
        obs::Json e = obs::Json::object();
        e.set("n", s.name);
        e.set("c", s.category);
        if (!s.threadName.empty()) e.set("tn", s.threadName);
        e.set("s", s.startNs);
        e.set("d", s.durNs);
        e.set("id", static_cast<std::int64_t>(s.id));
        if (s.parent != 0) e.set("p", static_cast<std::int64_t>(s.parent));
        if (s.ctx != 0) e.set("ctx", static_cast<std::int64_t>(s.ctx));
        e.set("tid", s.tid);
        arr.push(std::move(e));
    }
    j.set("spans", std::move(arr));
    return j;
}

void WireTrace::fromJson(const obs::Json* j, WireTrace* out) {
    *out = WireTrace{};
    if (j == nullptr || !j->isObject()) return;
    const obs::Json* recv = j->find("recv_ns");
    const obs::Json* send = j->find("send_ns");
    const obs::Json* spans = j->find("spans");
    if (recv == nullptr || !recv->isNumber() || send == nullptr ||
        !send->isNumber() || spans == nullptr || !spans->isArray())
        return;
    WireTrace t;
    t.recvNs = recv->intValue();
    t.sendNs = send->intValue();
    const obs::Json* epoch = j->find("epoch");
    if (epoch != nullptr && epoch->isNumber())
        t.epoch = static_cast<std::uint64_t>(epoch->intValue());
    for (const obs::Json& e : spans->items()) {
        if (!e.isObject()) return;
        const obs::Json* id = e.find("id");
        if (id == nullptr || !id->isNumber()) return;
        WireSpan s;
        s.id = static_cast<std::uint64_t>(id->intValue());
        if (const obs::Json* f = e.find("n"); f && f->isString())
            s.name = f->stringValue();
        if (const obs::Json* f = e.find("c"); f && f->isString())
            s.category = f->stringValue();
        if (const obs::Json* f = e.find("tn"); f && f->isString())
            s.threadName = f->stringValue();
        if (const obs::Json* f = e.find("s"); f && f->isNumber())
            s.startNs = f->intValue();
        if (const obs::Json* f = e.find("d"); f && f->isNumber())
            s.durNs = f->intValue();
        if (const obs::Json* f = e.find("p"); f && f->isNumber())
            s.parent = static_cast<std::uint64_t>(f->intValue());
        if (const obs::Json* f = e.find("ctx"); f && f->isNumber())
            s.ctx = static_cast<std::uint64_t>(f->intValue());
        if (const obs::Json* f = e.find("tid"); f && f->isNumber())
            s.tid = static_cast<int>(f->intValue());
        t.spans.push_back(std::move(s));
    }
    t.present = true;
    *out = std::move(t);
}

std::string WireArtifact::contentHash() const {
    // Chain one FNV-1a stream through every field; field separators
    // ('\x1f') keep ("ab","c") distinct from ("a","bc").
    std::uint64_t h = service::fnv1a64(key);
    auto mix = [&h](const std::string& s) {
        h = service::fnv1a64("\x1f", h);
        h = service::fnv1a64(s, h);
    };
    mix(programName);
    mix(spmdText);
    mix(decisionReport);
    // Doubles hash at the wire's serialization precision (obs::Json
    // emits %.12g) so the hash survives a JSON round trip.
    char num[128];
    std::snprintf(num, sizeof num, "%.12g|%.12g|%lld|%.12g", computeSec,
                  commSec, static_cast<long long>(messageEvents), commBytes);
    mix(num);
    return "h" + hex16(h);
}

WireArtifact WireArtifact::fromArtifact(const service::CompileArtifact& a) {
    WireArtifact w;
    w.key = a.key;
    w.programName = a.programName;
    w.spmdText = a.spmdText;
    w.decisionReport = a.decisionReport;
    w.computeSec = a.cost.computeSec;
    w.commSec = a.cost.commSec;
    w.messageEvents = a.cost.messageEvents;
    w.commBytes = a.cost.commBytes;
    return w;
}

obs::Json WireArtifact::toJson() const {
    obs::Json j = obs::Json::object();
    j.set("key", key);
    j.set("program", programName);
    j.set("spmd", spmdText);
    j.set("decisions", decisionReport);
    obs::Json cost = obs::Json::object();
    cost.set("compute_sec", computeSec);
    cost.set("comm_sec", commSec);
    cost.set("message_events", messageEvents);
    cost.set("comm_bytes", commBytes);
    j.set("cost", std::move(cost));
    j.set("content_hash", contentHash());
    return j;
}

bool WireArtifact::fromJson(const obs::Json& j, WireArtifact* out,
                            std::string* err) {
    if (!j.isObject()) {
        if (err) *err = "artifact: not an object";
        return false;
    }
    WireArtifact w;
    const obs::Json* f = j.find("key");
    if (f == nullptr || !f->isString()) {
        if (err) *err = "artifact: missing key";
        return false;
    }
    w.key = f->stringValue();
    w.programName = j.at("program").stringValue();
    w.spmdText = j.at("spmd").stringValue();
    w.decisionReport = j.at("decisions").stringValue();
    const obs::Json& cost = j.at("cost");
    w.computeSec = cost.at("compute_sec").numberValue();
    w.commSec = cost.at("comm_sec").numberValue();
    w.messageEvents = cost.at("message_events").intValue();
    w.commBytes = cost.at("comm_bytes").numberValue();
    const obs::Json* hash = j.find("content_hash");
    if (hash == nullptr || !hash->isString() ||
        hash->stringValue() != w.contentHash()) {
        if (err) *err = "artifact: content hash mismatch";
        return false;
    }
    *out = std::move(w);
    return true;
}

std::string encodeCompileRequest(const service::BatchJob& job,
                                 const TraceContext* ctx) {
    obs::Json j = obs::Json::object();
    j.set("v", kWireVersion);
    if (ctx != nullptr && ctx->valid()) j.set("trace_ctx", ctx->encode());
    j.set("job", service::batchJobToJson(job, /*resolveFiles=*/true));
    return j.dump(-1);
}

bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         TraceContext* ctx, std::string* err) {
    if (ctx != nullptr) *ctx = TraceContext{};
    std::string perr;
    obs::Json j = obs::Json::parse(body, &perr);
    if (!j.isObject()) {
        if (err) *err = "malformed request JSON: " + perr;
        return false;
    }
    const obs::Json* v = j.find("v");
    if (v == nullptr || !v->isNumber() || v->intValue() != kWireVersion) {
        if (err) *err = "wire version mismatch";
        return false;
    }
    if (ctx != nullptr) {
        const obs::Json* t = j.find("trace_ctx");
        if (t != nullptr && t->isString()) {
            // Best-effort: an unparsable context means "untraced", never
            // a rejected compile.
            TraceContext c;
            if (TraceContext::decode(t->stringValue(), &c)) *ctx = c;
        }
    }
    const obs::Json* job = j.find("job");
    if (job == nullptr) {
        if (err) *err = "missing job";
        return false;
    }
    return service::parseBatchJob(*job, 0, out, err);
}

bool parseCompileRequest(const std::string& body, service::BatchJob* out,
                         std::string* err) {
    return parseCompileRequest(body, out, nullptr, err);
}

namespace {

/// Serialize the span batch by direct string append. This sits on the
/// per-request hot path of every traced response; building an
/// obs::Json tree here costs ~10x what the rest of the traced request
/// handling does, which is what the <2% overhead gate measures.
void appendTraceJson(const WireTrace& t, std::string& out) {
    out += "\"trace\":{\"recv_ns\":";
    out += std::to_string(t.recvNs);
    out += ",\"send_ns\":";
    out += std::to_string(t.sendNs);
    out += ",\"epoch\":";
    out += std::to_string(t.epoch);
    out += ",\"spans\":[";
    bool first = true;
    for (const WireSpan& s : t.spans) {
        if (!first) out += ',';
        first = false;
        out += "{\"n\":\"";
        out += obs::jsonEscape(s.name);
        out += "\",\"c\":\"";
        out += obs::jsonEscape(s.category);
        if (!s.threadName.empty()) {
            out += "\",\"tn\":\"";
            out += obs::jsonEscape(s.threadName);
        }
        out += "\",\"s\":";
        out += std::to_string(s.startNs);
        out += ",\"d\":";
        out += std::to_string(s.durNs);
        out += ",\"id\":";
        out += std::to_string(s.id);
        if (s.parent != 0) {
            out += ",\"p\":";
            out += std::to_string(s.parent);
        }
        if (s.ctx != 0) {
            out += ",\"ctx\":";
            out += std::to_string(s.ctx);
        }
        out += ",\"tid\":";
        out += std::to_string(s.tid);
        out += '}';
    }
    out += "]}";
}

std::string encodeResponseDoc(const std::string& workerId,
                              CompileStatus status, ErrorCode code,
                              bool cacheHit, const std::string& error,
                              const service::CompileArtifact* artifact,
                              const WireTrace* trace) {
    obs::Json j = obs::Json::object();
    j.set("v", kWireVersion);
    j.set("worker", workerId);
    j.set("status", service::statusName(status));
    j.set("code", service::errorCodeName(code));
    j.set("cache_hit", cacheHit);
    if (!error.empty()) j.set("error", error);
    if (artifact != nullptr)
        j.set("artifact", WireArtifact::fromArtifact(*artifact).toJson());
    std::string out = j.dump(-1);
    // The span batch is a sibling of the artifact: the content hash
    // covers artifact fields only, so traced and untraced responses
    // carry bit-identical artifacts. Spliced in after the dump so the
    // hot path skips the obs::Json tree for it.
    if (trace != nullptr && trace->present) {
        std::string tj;
        tj.reserve(96 + 96 * trace->spans.size());
        tj += ',';
        appendTraceJson(*trace, tj);
        out.insert(out.size() - 1, tj);
    }
    return out;
}

/// Fast scanner for the trace block appendTraceJson() emits. The
/// general obs::Json parser costs a few microseconds per NODE, and a
/// span batch is dozens of tiny nodes — on the traced request path
/// that dwarfed every other cost. This scanner handles exactly the
/// shapes our own encoder produces (flat keys, escape-free strings)
/// and reports failure on anything else so the caller can fall back
/// to the tree parser. `pos` points at the opening '"' of "trace";
/// on success `*end` is one past the object's closing '}'.
bool scanTraceBlock(const std::string& body, std::size_t pos, WireTrace* out,
                    std::size_t* end) {
    const char* p = body.c_str() + pos;
    const char* const last = body.c_str() + body.size();
    auto lit = [&](const char* s) {
        const std::size_t n = std::strlen(s);
        if (static_cast<std::size_t>(last - p) < n ||
            std::memcmp(p, s, n) != 0)
            return false;
        p += n;
        return true;
    };
    auto num = [&](std::int64_t* v) {
        char* q = nullptr;
        *v = std::strtoll(p, &q, 10);
        if (q == p || q > last) return false;
        p = q;
        return true;
    };
    auto unum = [&](std::uint64_t* v) {
        char* q = nullptr;
        *v = std::strtoull(p, &q, 10);
        if (q == p || q > last) return false;
        p = q;
        return true;
    };
    // A raw string run: no escapes (our encoder only emits them for
    // exotic span names; those take the fallback path).
    auto str = [&](std::string* v) {
        if (p >= last || *p != '"') return false;
        const char* q = p + 1;
        while (q < last && *q != '"' && *q != '\\') ++q;
        if (q >= last || *q != '"') return false;
        v->assign(p + 1, q);
        p = q + 1;
        return true;
    };

    WireTrace t;
    std::int64_t sv = 0;
    std::uint64_t uv = 0;
    if (!lit("\"trace\":{\"recv_ns\":") || !num(&t.recvNs)) return false;
    if (!lit(",\"send_ns\":") || !num(&t.sendNs)) return false;
    if (!lit(",\"epoch\":") || !unum(&t.epoch)) return false;
    if (!lit(",\"spans\":[")) return false;
    if (p < last && *p == ']') {
        ++p;
    } else {
        for (;;) {
            WireSpan s;
            if (!lit("{\"n\":") || !str(&s.name)) return false;
            if (!lit(",\"c\":") || !str(&s.category)) return false;
            if (lit(",\"tn\":") && !str(&s.threadName)) return false;
            if (!lit(",\"s\":") || !num(&s.startNs)) return false;
            if (!lit(",\"d\":") || !num(&s.durNs)) return false;
            if (!lit(",\"id\":") || !unum(&s.id)) return false;
            if (lit(",\"p\":") && !unum(&s.parent)) return false;
            if (lit(",\"ctx\":") && !unum(&s.ctx)) return false;
            if (!lit(",\"tid\":") || !num(&sv)) return false;
            s.tid = static_cast<int>(sv);
            if (!lit("}")) return false;
            t.spans.push_back(std::move(s));
            if (lit(",")) continue;
            if (!lit("]")) return false;
            break;
        }
    }
    if (!lit("}")) return false;
    (void)uv;
    t.present = true;
    *out = std::move(t);
    *end = static_cast<std::size_t>(p - body.c_str());
    return true;
}

}  // namespace

std::string encodeCompileResponse(const std::string& workerId,
                                  const service::CompileResult& r,
                                  const WireTrace* trace) {
    return encodeResponseDoc(workerId, r.status, r.code, r.cacheHit, r.error,
                             r.artifact.get(), trace);
}

std::string encodeArtifactResponse(const std::string& workerId,
                                   const service::CompileArtifact& a,
                                   const WireTrace* trace) {
    return encodeResponseDoc(workerId, CompileStatus::Ok, ErrorCode::None,
                             /*cacheHit=*/true, "", &a, trace);
}

bool parseWireResponse(const std::string& body, WireResponse* out,
                       std::string* err) {
    // Peel the span batch off the tail before the tree parse: our own
    // encoder splices it there, and scanning it directly keeps the
    // traced request path within the overhead budget. Any mismatch
    // (foreign encoder, escaped name) leaves the block in place for
    // WireTrace::fromJson below.
    WireTrace fastTrace;
    std::string stripped;
    const std::string* doc = &body;
    const std::size_t tpos = body.rfind(",\"trace\":{");
    if (tpos != std::string::npos && !body.empty() && body.back() == '}') {
        std::size_t tend = 0;
        const bool sOK = scanTraceBlock(body, tpos + 1, &fastTrace, &tend);
        if (sOK && tend == body.size() - 1) {
            stripped.assign(body, 0, tpos);
            stripped += '}';
            doc = &stripped;
        } else {
            fastTrace = WireTrace{};
        }
    }
    std::string perr;
    obs::Json j = obs::Json::parse(*doc, &perr);
    if (!j.isObject()) {
        if (err) *err = "malformed response JSON: " + perr;
        return false;
    }
    WireResponse r;
    const obs::Json* v = j.find("v");
    r.version = (v != nullptr && v->isNumber())
                    ? static_cast<int>(v->intValue())
                    : 0;
    r.worker = j.at("worker").stringValue();
    if (r.version != kWireVersion) {
        // A peer speaking another protocol version is a routing fact,
        // not a parse failure: surface it as StaleWorker so the caller
        // re-routes through the ordinary transient-retry policy.
        r.status = CompileStatus::Error;
        r.code = ErrorCode::StaleWorker;
        r.error = "wire version mismatch";
        *out = std::move(r);
        return true;
    }
    if (!parseStatus(j.at("status").stringValue(), &r.status)) {
        if (err) *err = "unknown status";
        return false;
    }
    if (!parseCode(j.at("code").stringValue(), &r.code)) {
        if (err) *err = "unknown error code";
        return false;
    }
    const obs::Json* hit = j.find("cache_hit");
    r.cacheHit = hit != nullptr && hit->kind() == obs::Json::Kind::Bool &&
                 hit->boolValue();
    const obs::Json* e = j.find("error");
    if (e != nullptr && e->isString()) r.error = e->stringValue();
    const obs::Json* art = j.find("artifact");
    if (art != nullptr) {
        if (!WireArtifact::fromJson(*art, &r.artifact, err)) return false;
        r.hasArtifact = true;
    }
    if (fastTrace.present)
        r.trace = std::move(fastTrace);
    else
        WireTrace::fromJson(j.find("trace"), &r.trace);
    if (r.status == CompileStatus::Ok && !r.hasArtifact) {
        if (err) *err = "ok response without artifact";
        return false;
    }
    *out = std::move(r);
    return true;
}

}  // namespace phpf::cluster
