#include "cluster/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace phpf::cluster {
namespace {

using service::ErrorCode;

void setDeadlines(int fd, int timeoutMs) {
    timeval tv{};
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = (timeoutMs % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool sendAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                         MSG_NOSIGNAL
#else
                         0
#endif
        );
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

HttpResult fail(ErrorCode code, std::string detail) {
    HttpResult r;
    r.code = code;
    r.error = std::move(detail);
    return r;
}

HttpResult exchange(const std::string& host, int port,
                    const std::string& request, int timeoutMs) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail(ErrorCode::RemoteUnreachable, "socket() failed");
    setDeadlines(fd, timeoutMs);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close(fd);
        return fail(ErrorCode::RemoteUnreachable, "bad address " + host);
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        // A connect that timed out is a timeout; anything else (refused,
        // reset, unreachable) means no process is listening there.
        ErrorCode code = (errno == EINPROGRESS || errno == ETIMEDOUT ||
                          errno == EAGAIN || errno == EWOULDBLOCK)
                             ? ErrorCode::PeerTimeout
                             : ErrorCode::RemoteUnreachable;
        std::string detail = std::string("connect: ") + std::strerror(errno);
        close(fd);
        return fail(code, std::move(detail));
    }
    if (!sendAll(fd, request)) {
        std::string detail = std::string("send: ") + std::strerror(errno);
        close(fd);
        return fail(ErrorCode::RemoteUnreachable, std::move(detail));
    }

    // Read until the peer closes or we have headers + Content-Length
    // bytes of body. The servers we talk to always send Content-Length
    // and close per-request, so either condition completes a response.
    std::string raw;
    std::size_t headerEnd = std::string::npos;
    std::size_t contentLength = std::string::npos;
    char buf[8192];
    for (;;) {
        ssize_t n = recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            bool timedOut = errno == EAGAIN || errno == EWOULDBLOCK;
            close(fd);
            return fail(timedOut ? ErrorCode::PeerTimeout
                                 : ErrorCode::RemoteUnreachable,
                        std::string("recv: ") + std::strerror(errno));
        }
        if (n == 0) break;  // orderly close
        raw.append(buf, static_cast<std::size_t>(n));
        if (headerEnd == std::string::npos) {
            headerEnd = raw.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                // Scan headers for Content-Length (case-insensitive).
                std::size_t pos = 0;
                while (pos < headerEnd) {
                    std::size_t eol = raw.find("\r\n", pos);
                    if (eol == std::string::npos || eol > headerEnd) break;
                    std::string line = raw.substr(pos, eol - pos);
                    std::size_t colon = line.find(':');
                    if (colon != std::string::npos) {
                        std::string name = line.substr(0, colon);
                        for (char& c : name)
                            c = static_cast<char>(
                                std::tolower(static_cast<unsigned char>(c)));
                        if (name == "content-length")
                            contentLength = static_cast<std::size_t>(
                                std::strtoull(line.c_str() + colon + 1,
                                              nullptr, 10));
                    }
                    pos = eol + 2;
                }
            }
        }
        if (headerEnd != std::string::npos &&
            contentLength != std::string::npos &&
            raw.size() >= headerEnd + 4 + contentLength)
            break;
    }
    close(fd);

    if (headerEnd == std::string::npos) {
        // Connection dropped before headers completed — the abrupt-death
        // signature (a killed worker, or closeAbruptly in tests).
        return fail(ErrorCode::RemoteUnreachable,
                    raw.empty() ? "connection closed without response"
                                : "connection closed mid-headers");
    }

    HttpResult r;
    // Status line: "HTTP/1.1 200 OK"
    std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > headerEnd)
        return fail(ErrorCode::RemoteUnreachable, "malformed status line");
    r.status = static_cast<int>(std::strtol(raw.c_str() + sp + 1, nullptr, 10));
    if (r.status < 100 || r.status > 599)
        return fail(ErrorCode::RemoteUnreachable, "malformed status code");
    std::size_t bodyStart = headerEnd + 4;
    r.body = contentLength != std::string::npos
                 ? raw.substr(bodyStart, contentLength)
                 : raw.substr(bodyStart);
    r.ok = true;
    r.code = ErrorCode::None;
    return r;
}

}  // namespace

HttpResult httpGet(const std::string& host, int port, const std::string& path,
                   int timeoutMs) {
    std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                      "\r\nConnection: close\r\n\r\n";
    return exchange(host, port, req, timeoutMs);
}

HttpResult httpPost(const std::string& host, int port, const std::string& path,
                    const std::string& body, int timeoutMs) {
    std::string req = "POST " + path + " HTTP/1.1\r\nHost: " + host +
                      "\r\nContent-Type: application/json\r\nContent-Length: " +
                      std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n" + body;
    return exchange(host, port, req, timeoutMs);
}

bool parseEndpoint(const std::string& endpoint, std::string* host, int* port) {
    std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size())
        return false;
    long p = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
    if (p < 1 || p > 65535) return false;
    *host = endpoint.substr(0, colon);
    *port = static_cast<int>(p);
    return true;
}

}  // namespace phpf::cluster
