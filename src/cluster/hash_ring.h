#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace phpf::cluster {

/// Consistent-hash ring over named nodes (worker endpoints). Each node
/// owns `replicas` virtual points on a 64-bit circle; a key is owned by
/// the first virtual point at or clockwise after its hash. Adding or
/// removing one node therefore moves only ~1/N of the key space — the
/// property that makes worker death survivable without re-routing the
/// whole cluster's cache.
///
/// Deterministic: point positions depend only on node names, so every
/// coordinator (and every run) derives the identical ownership map.
/// Not internally synchronized — the owner serializes access.
class HashRing {
public:
    explicit HashRing(int replicas = 64);

    /// Idempotent; re-adding an existing node is a no-op.
    void add(const std::string& node);
    /// Idempotent; removing an absent node is a no-op.
    void remove(const std::string& node);

    [[nodiscard]] bool contains(const std::string& node) const;
    [[nodiscard]] std::size_t size() const { return nodes_.size(); }
    [[nodiscard]] bool empty() const { return nodes_.empty(); }
    [[nodiscard]] std::vector<std::string> nodes() const;

    /// The node owning `key`, or "" when the ring is empty.
    [[nodiscard]] std::string ownerOf(const std::string& key) const;

    /// Distinct nodes in ownership order starting at `key`'s owner —
    /// the failover sequence (try owner, then the next clockwise node,
    /// ...). At most `count` entries.
    [[nodiscard]] std::vector<std::string> ownersOf(const std::string& key,
                                                    std::size_t count) const;

private:
    int replicas_;
    std::set<std::string> nodes_;
    std::map<std::uint64_t, std::string> ring_;  ///< point -> node
};

}  // namespace phpf::cluster
