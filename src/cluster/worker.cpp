#include "cluster/worker.h"

#include <unistd.h>

#include "service/batch.h"

namespace phpf::cluster {

using service::CompileStatus;
using service::ErrorCode;
using service::HttpReply;
using service::HttpRequest;

namespace {

constexpr const char* kJsonType = "application/json";

/// A response doc for failures that never reached the service.
std::string errorDoc(const std::string& workerId, ErrorCode code,
                     const std::string& message) {
    service::CompileResult r;
    r.status = code == ErrorCode::None ? CompileStatus::Ok
                                       : CompileStatus::Error;
    r.code = code;
    r.error = message;
    return encodeCompileResponse(workerId, r);
}

}  // namespace

Worker::Worker(WorkerConfig cfg) : cfg_(std::move(cfg)), server_(cfg_.port) {
    const FaultInjector* inj = cfg_.faults != nullptr
                                   ? cfg_.faults
                                   : FaultInjector::processIfEnabled();
    if (inj != nullptr)
        killSite_ = inj->find(faultsite::kClusterWorkerKill);
    svc_ = std::make_unique<service::CompileService>(cfg_.service);

    server_.setConnectionThreads(cfg_.connectionThreads);
    server_.setLimits(cfg_.limits);
    server_.addRegistry("phpf", &svc_->metrics());
    server_.addRegistry("phpf", &registry_);
    server_.setApiHandler(
        [this](const HttpRequest& req) { return handle(req); });
    server_.setHealthProvider([this] {
        obs::Json h = obs::Json::object();
        h.set("worker", cfg_.id);
        h.set("wire_version", cfg_.wireVersion);
        service::ServiceStats s = svc_->stats();
        h.set("queue_depth", static_cast<std::int64_t>(s.queueDepth));
        h.set("active_jobs", s.activeJobs);
        h.set("cached_artifacts", static_cast<std::int64_t>(s.cache.size));
        return h;
    });
    server_.setReportProvider([this] { return svc_->metricsJson(); });
}

Worker::~Worker() { stop(); }

bool Worker::start(std::string* err) {
    if (!server_.start(err)) return false;
    if (cfg_.id.empty())
        cfg_.id = "worker-" + std::to_string(server_.port());
    return true;
}

void Worker::stop() { server_.stop(); }

HttpReply Worker::handle(const HttpRequest& req) {
    HttpReply reply;
    reply.contentType = kJsonType;

    if (killed_.load(std::memory_order_acquire)) {
        // Dead workers answer nothing — not even an error document.
        reply.closeAbruptly = true;
        return reply;
    }

    if (req.method == "POST" && req.path == "/compile") {
        if (FaultInjector::poll(killSite_)) {
            registry_.counter("cluster.worker.kills").add();
            if (cfg_.killMode == KillMode::Exit) {
                // The deterministic stand-in for kill -9: no unwinding,
                // no flushes, sockets reset by the kernel.
                _exit(137);
            }
            killed_.store(true, std::memory_order_release);
            // Mute EVERYTHING — health probes included. A corpse that
            // still answered /healthz would keep getting routed to.
            server_.setMuted(true);
            server_.requestQuit();
            reply.closeAbruptly = true;
            return reply;
        }
        registry_.counter("cluster.worker.compile_requests").add();
        service::BatchJob job;
        std::string err;
        if (!parseCompileRequest(req.body, &job, &err)) {
            registry_.counter("cluster.worker.bad_requests").add();
            reply.status = 400;
            reply.body = errorDoc(cfg_.id, ErrorCode::ParseError, err);
            return reply;
        }
        service::CompileRequest creq;
        if (!service::requestOfJob(job, &creq, &err)) {
            registry_.counter("cluster.worker.bad_requests").add();
            reply.status = 400;
            reply.body = errorDoc(cfg_.id, ErrorCode::ParseError, err);
            return reply;
        }
        service::CompileResult result = svc_->compile(creq);
        reply.body = encodeCompileResponse(cfg_.id, result);
    } else if (req.method == "GET" &&
               req.path.rfind("/artifact/", 0) == 0) {
        registry_.counter("cluster.worker.artifact_requests").add();
        std::string key = req.path.substr(10);
        std::shared_ptr<const service::CompileArtifact> art =
            svc_->cachedArtifact(key);
        if (art == nullptr) {
            registry_.counter("cluster.worker.artifact_misses").add();
            reply.status = 404;
            reply.body = errorDoc(cfg_.id, ErrorCode::Internal,
                                  "artifact not cached: " + key);
            return reply;
        }
        registry_.counter("cluster.worker.artifact_hits").add();
        reply.body = encodeArtifactResponse(cfg_.id, *art);
    } else {
        reply.status = 404;
        reply.body = errorDoc(cfg_.id, ErrorCode::Internal,
                              "no such endpoint: " + req.path);
        return reply;
    }

    // Test hook: fake an out-of-date peer by restamping the version.
    if (cfg_.wireVersion != kWireVersion) {
        obs::Json doc = obs::Json::parse(reply.body);
        doc.set("v", cfg_.wireVersion);
        reply.body = doc.dump(-1);
    }
    return reply;
}

}  // namespace phpf::cluster
