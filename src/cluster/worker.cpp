#include "cluster/worker.h"

#include <unistd.h>

#include "service/batch.h"
#include "support/thread_registry.h"

namespace phpf::cluster {

using service::CompileStatus;
using service::ErrorCode;
using service::HttpReply;
using service::HttpRequest;

namespace {

constexpr const char* kJsonType = "application/json";

/// A response doc for failures that never reached the service.
std::string errorDoc(const std::string& workerId, ErrorCode code,
                     const std::string& message) {
    service::CompileResult r;
    r.status = code == ErrorCode::None ? CompileStatus::Ok
                                       : CompileStatus::Error;
    r.code = code;
    r.error = message;
    return encodeCompileResponse(workerId, r);
}

/// Value of one `key=value` parameter in a raw query string ("" when
/// absent). No %-decoding: traceparent values are plain hex and '-'.
std::string queryParam(const std::string& query, const std::string& key) {
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos) amp = query.size();
        const std::size_t eq = query.find('=', pos);
        if (eq != std::string::npos && eq < amp &&
            query.compare(pos, eq - pos, key) == 0)
            return query.substr(eq + 1, amp - eq - 1);
        pos = amp + 1;
    }
    return "";
}

}  // namespace

Worker::Worker(WorkerConfig cfg) : cfg_(std::move(cfg)), server_(cfg_.port) {
    const FaultInjector* inj = cfg_.faults != nullptr
                                   ? cfg_.faults
                                   : FaultInjector::processIfEnabled();
    if (inj != nullptr)
        killSite_ = inj->find(faultsite::kClusterWorkerKill);
    // The service records its compile-stage spans on the worker's
    // tracer so a traced request's span batch covers the whole
    // pipeline, not just the RPC envelope. An explicitly configured
    // tracer (in-process tests) wins.
    if (cfg_.service.tracer == nullptr) cfg_.service.tracer = &tracer_;
    svc_ = std::make_unique<service::CompileService>(cfg_.service);

    server_.setConnectionThreads(cfg_.connectionThreads);
    server_.setLimits(cfg_.limits);
    server_.addRegistry("phpf", &svc_->metrics());
    server_.addRegistry("phpf", &registry_);
    server_.setApiHandler(
        [this](const HttpRequest& req) { return handle(req); });
    server_.setHealthProvider([this] {
        obs::Json h = obs::Json::object();
        h.set("worker", cfg_.id);
        h.set("wire_version", cfg_.wireVersion);
        service::ServiceStats s = svc_->stats();
        h.set("queue_depth", static_cast<std::int64_t>(s.queueDepth));
        h.set("active_jobs", s.activeJobs);
        h.set("cached_artifacts", static_cast<std::int64_t>(s.cache.size));
        return h;
    });
    server_.setReportProvider([this] { return svc_->metricsJson(); });
}

Worker::~Worker() { stop(); }

bool Worker::start(std::string* err) {
    if (!server_.start(err)) return false;
    if (cfg_.id.empty())
        cfg_.id = "worker-" + std::to_string(server_.port());
    return true;
}

void Worker::stop() { server_.stop(); }

HttpReply Worker::handle(const HttpRequest& req) {
    HttpReply reply;
    reply.contentType = kJsonType;

    if (killed_.load(std::memory_order_acquire)) {
        // Dead workers answer nothing — not even an error document.
        reply.closeAbruptly = true;
        return reply;
    }

    if (req.method == "POST" && req.path == "/compile") {
        if (FaultInjector::poll(killSite_)) {
            registry_.counter("cluster.worker.kills").add();
            if (cfg_.killMode == KillMode::Exit) {
                // The deterministic stand-in for kill -9: no unwinding,
                // no flushes, sockets reset by the kernel.
                _exit(137);
            }
            killed_.store(true, std::memory_order_release);
            // Mute EVERYTHING — health probes included. A corpse that
            // still answered /healthz would keep getting routed to.
            server_.setMuted(true);
            server_.requestQuit();
            reply.closeAbruptly = true;
            return reply;
        }
        registry_.counter("cluster.worker.compile_requests").add();
        service::BatchJob job;
        TraceContext tctx;
        std::string err;
        if (!parseCompileRequest(req.body, &job, &tctx, &err)) {
            registry_.counter("cluster.worker.bad_requests").add();
            reply.status = 400;
            reply.body = errorDoc(cfg_.id, ErrorCode::ParseError, err);
            return reply;
        }
        service::CompileRequest creq;
        if (!service::requestOfJob(job, &creq, &err)) {
            registry_.counter("cluster.worker.bad_requests").add();
            reply.status = 400;
            reply.body = errorDoc(cfg_.id, ErrorCode::ParseError, err);
            return reply;
        }
        const bool traced = tctx.valid() && tctx.sampled;
        std::int64_t recvNs = 0;
        obs::ConcurrentTracer::Handle span{};
        if (traced) {
            // Sticky arming: the first sampled request turns the tracer
            // on for the rest of the worker's life; untraced workers
            // only ever pay the enabled() branch.
            if (!tracer_.enabled()) tracer_.setEnabled(true);
            recvNs = tracer_.nowNs();
            span = tracer_.begin("rpc:compile", "cluster");
            if (span.id != 0) noteRootContext(span.id, tctx.parentSpan);
        }
        service::CompileResult result = svc_->compile(creq);
        if (traced) {
            tracer_.end(span);
            const WireTrace wt = harvestTrace(recvNs);
            reply.body = encodeCompileResponse(cfg_.id, result, &wt);
        } else {
            reply.body = encodeCompileResponse(cfg_.id, result);
        }
    } else if (req.method == "GET" &&
               req.path.rfind("/artifact/", 0) == 0) {
        registry_.counter("cluster.worker.artifact_requests").add();
        std::string key = req.path.substr(10);
        // Peer fetches carry trace context as `?traceparent=` (GETs
        // have no body to put a trace_ctx field in).
        TraceContext tctx;
        const std::size_t q = key.find('?');
        if (q != std::string::npos) {
            const std::string query = key.substr(q + 1);
            key.resize(q);
            const std::string tp = queryParam(query, "traceparent");
            if (!tp.empty()) TraceContext::decode(tp, &tctx);
        }
        const bool traced = tctx.valid() && tctx.sampled;
        std::int64_t recvNs = 0;
        obs::ConcurrentTracer::Handle span{};
        if (traced) {
            if (!tracer_.enabled()) tracer_.setEnabled(true);
            recvNs = tracer_.nowNs();
            span = tracer_.begin("rpc:artifact", "cluster");
            if (span.id != 0) noteRootContext(span.id, tctx.parentSpan);
        }
        std::shared_ptr<const service::CompileArtifact> art =
            svc_->cachedArtifact(key);
        if (art == nullptr) {
            registry_.counter("cluster.worker.artifact_misses").add();
            if (traced) tracer_.end(span);
            reply.status = 404;
            reply.body = errorDoc(cfg_.id, ErrorCode::Internal,
                                  "artifact not cached: " + key);
            return reply;
        }
        registry_.counter("cluster.worker.artifact_hits").add();
        if (traced) {
            tracer_.end(span);
            const WireTrace wt = harvestTrace(recvNs);
            reply.body = encodeArtifactResponse(cfg_.id, *art, &wt);
        } else {
            reply.body = encodeArtifactResponse(cfg_.id, *art);
        }
    } else {
        reply.status = 404;
        reply.body = errorDoc(cfg_.id, ErrorCode::Internal,
                              "no such endpoint: " + req.path);
        return reply;
    }

    // Test hook: fake an out-of-date peer by restamping the version.
    if (cfg_.wireVersion != kWireVersion) {
        obs::Json doc = obs::Json::parse(reply.body);
        doc.set("v", cfg_.wireVersion);
        reply.body = doc.dump(-1);
    }
    return reply;
}

void Worker::noteRootContext(std::uint64_t spanId, std::uint64_t ctx) {
    if (ctx == 0) return;
    std::lock_guard<std::mutex> lock(traceMu_);
    // A map this big means batches stopped shipping (coordinator quit
    // sampling mid-flight); dropping the bridge only degrades
    // parenting, never correctness.
    if (rootCtx_.size() > 4096) rootCtx_.clear();
    rootCtx_[spanId] = ctx;
}

WireTrace Worker::harvestTrace(std::int64_t recvNs) {
    WireTrace t;
    t.present = true;
    t.recvNs = recvNs;
    t.epoch = tracer_.instanceId();
    // Drain whatever has finished — including spans from concurrent
    // requests whose own response already shipped. The coordinator
    // stitches per worker, not per request, so every closed span gets
    // home eventually; which response carries it does not matter.
    std::vector<obs::ConcurrentSpan> spans =
        tracer_.drainClosed(cfg_.maxSpanBatch);
    t.spans.reserve(spans.size());
    std::lock_guard<std::mutex> lock(traceMu_);
    for (obs::ConcurrentSpan& s : spans) {
        WireSpan w;
        w.name = std::move(s.name);
        w.category = std::move(s.category);
        w.threadName = thread_registry::nameOf(s.tid);
        w.startNs = s.startNs;
        w.durNs = s.durNs;
        w.id = s.id;
        w.parent = s.parent;
        w.tid = s.tid;
        auto it = rootCtx_.find(s.id);
        if (it != rootCtx_.end()) {
            w.ctx = it->second;
            rootCtx_.erase(it);
        }
        t.spans.push_back(std::move(w));
    }
    t.sendNs = tracer_.nowNs();
    return t;
}

}  // namespace phpf::cluster
