#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/trace_stitch.h"
#include "cluster/wire.h"
#include "obs/concurrent_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/batch.h"
#include "support/fault.h"

namespace phpf::cluster {

struct CoordinatorConfig {
    /// Per-request wall budget of one POST /compile exchange. Generous:
    /// a slow compile is not a dead worker.
    int requestTimeoutMs = 30000;
    /// Health-probe budget (GET /healthz). Tight: probes answer from
    /// memory, so a slow probe IS a sick worker.
    int probeTimeoutMs = 2000;
    int peerFetchTimeoutMs = 5000;
    /// Total remote attempts per job across workers (first try
    /// included). Each transient failure re-routes to the next ring
    /// owner after an exponentially growing backoff.
    int maxAttempts = 4;
    std::int64_t retryBackoffMs = 2;  ///< first backoff; doubles
    /// Coordinator-local artifact tier. Deliberately small by default:
    /// the workers hold the real cache, and a tight local tier is what
    /// makes the peer-fetch path actually exercise (and show up in
    /// metrics) instead of being shadowed.
    std::size_t cacheCapacity = 64;
    int ringReplicas = 64;
    /// Fault source for cluster.partition (null = process injector).
    const FaultInjector* faults = nullptr;
    /// Distributed tracing. When set (and enabled), sampled requests
    /// open a coordinator span, stamp a TraceContext onto every wire
    /// exchange, and collect the workers' span batches for stitching
    /// (stitchTrace() at export time).
    obs::ConcurrentTracer* tracer = nullptr;
    /// Sample every Nth request (1 = all, 0 = none). Unsampled requests
    /// carry no context and pay no tracing cost beyond one counter.
    /// The default of 8 keeps the armed tracer inside the repo's 2%
    /// telemetry overhead budget (bench_trace_propagation): a fully
    /// traced compile ships ~40+ stage spans, which costs ~10-15% of
    /// that one request — amortized over 8 requests it disappears into
    /// the budget while a soak still collects hundreds of exemplar
    /// traces. Set 1 (--trace-sample=1 in phpfc) for full-fidelity
    /// capture of short runs.
    int traceSampleEvery = 8;
    /// How many slowest request chains to keep as exemplars.
    int slowExemplars = 8;
};

/// One hop of a request's causal chain (slow-request exemplars).
struct RequestHop {
    std::string kind;    ///< "local-hit" | "peer-fetch" | "post"
    std::string worker;  ///< endpoint touched ("" for local)
    double us = 0;       ///< hop latency
    std::string code;    ///< error code name ("none" on success)
};

/// The full causal chain of one (slow) request: route taken, retries,
/// per-hop latencies. Dumped into the flight recorder as it happens and
/// into the batch summary at the end.
struct RequestChain {
    std::string job;      ///< row name (or routing key when unnamed)
    std::string traceId;  ///< 32-hex distributed trace id ("" unsampled)
    double totalUs = 0;
    std::string route;  ///< "local-hit" | "peer-hit" | "compute" | "failed"
    std::string worker;  ///< endpoint that served it
    int attempts = 0;
    std::vector<RequestHop> hops;

    [[nodiscard]] obs::Json toJson() const;
};

/// A worker the coordinator has ever known, dead or alive (federation
/// reports both).
struct KnownWorker {
    std::string endpoint;
    std::string id;
    bool alive = false;
};

/// Outcome of one cluster compile as seen by the coordinator.
struct ClusterOutcome {
    service::CompileStatus status = service::CompileStatus::Error;
    service::ErrorCode code = service::ErrorCode::Internal;
    bool localHit = false;   ///< served from the coordinator tier
    bool peerHit = false;    ///< served by GET /artifact from a peer
    bool workerHit = false;  ///< the executing worker's own cache hit
    int attempts = 0;        ///< remote exchanges performed
    std::string worker;      ///< endpoint that served it (empty on local)
    std::string error;
    std::string traceId;     ///< distributed trace id ("" when unsampled)
    bool hasArtifact = false;
    WireArtifact artifact;

    [[nodiscard]] bool ok() const {
        return status == service::CompileStatus::Ok && hasArtifact;
    }
};

/// Result of probing one worker's /healthz.
struct ProbeResult {
    bool alive = false;
    std::string id;
    int wireVersion = 0;
    std::string error;
};

/// The cluster's routing brain: owns the consistent-hash ring of live
/// workers and a two-tier artifact cache, and turns one BatchJob into
/// one artifact by walking the tiers:
///
///   1. local LRU (coordinator tier) — keyed by the job's routing key
///   2. peer fetch — GET /artifact/<key> from the worker that last
///      compiled it (location hints; subject to cluster.partition)
///   3. compute — POST /compile on the preferred worker (work
///      stealing) or the ring owner, with retry-with-backoff across
///      ring successors on transient ErrorCodes
///
/// A worker that fails a request AND its follow-up health probe is
/// declared dead: removed from the ring (its hash range re-owned by
/// the survivors) until a later probe revives it. Thread-safe — the
/// batch scheduler calls compileJob from many dispatcher threads.
class Coordinator {
public:
    explicit Coordinator(CoordinatorConfig cfg = {});

    /// Probe `endpoint` and add it to the ring. False (with *err) when
    /// the probe fails or the worker speaks the wrong wire version.
    bool addWorker(const std::string& endpoint, std::string* err = nullptr);

    /// Probe a known worker now: revives it when it answers, declares
    /// it dead when it does not.
    ProbeResult probeWorker(const std::string& endpoint);

    /// Alive workers' endpoints (= current ring membership).
    [[nodiscard]] std::vector<std::string> aliveWorkers() const;
    [[nodiscard]] std::size_t workerCount() const;

    /// Every worker ever added, dead or alive, endpoint-sorted.
    [[nodiscard]] std::vector<KnownWorker> knownWorkers() const;

    /// Routing key of a job: a stable hash of its canonical wire form.
    /// (Not the content-addressed artifact key — that needs a parse,
    /// which is the workers' job. Hints map routing keys to true keys.)
    [[nodiscard]] static std::string routingKey(const service::BatchJob& job);

    /// Ring owner of `job` right now ("" when no worker is alive).
    [[nodiscard]] std::string ownerOf(const service::BatchJob& job) const;

    /// Compile `job` through the tiers. `preferred` (a worker endpoint)
    /// overrides ring routing for the compute tier when alive — the
    /// work-stealing scheduler passes its own worker so stolen jobs
    /// execute on the thief.
    [[nodiscard]] ClusterOutcome compileJob(const service::BatchJob& job,
                                            const std::string& preferred = {});

    [[nodiscard]] const obs::MetricRegistry& metrics() const {
        return registry_;
    }
    [[nodiscard]] obs::MetricRegistry& metricsMutable() { return registry_; }

    /// Merge every span batch collected so far into cfg_.tracer (one
    /// process row per worker, cross-process parents resolved). Call
    /// once, at trace-export time. No-op without a tracer.
    StitchStats stitchTrace();

    /// The top-N slowest request chains so far, slowest first.
    [[nodiscard]] std::vector<RequestChain> slowRequests() const;

private:
    /// Per-request trace/exemplar state threaded through the tiers.
    struct ReqCtx {
        bool sampled = false;
        TraceContext base;  ///< parentSpan rewritten per network hop
        std::uint64_t requestSpan = 0;
        std::vector<RequestHop> hops;
        /// routingKey(job), computed once per request — it re-encodes
        /// the whole job, so every extra call shows up in the overhead
        /// bench.
        std::string rkey;
    };

    struct WorkerInfo {
        std::string id;  ///< worker-reported identity (probe-time)
        bool alive = false;
    };
    struct Hint {
        std::string artifactKey;
        std::string worker;  ///< endpoint that last produced it
    };

    void markDead(const std::string& endpoint);
    void markAlive(const std::string& endpoint, const std::string& id);
    [[nodiscard]] ClusterOutcome compileTiers(const service::BatchJob& job,
                                              const std::string& preferred,
                                              ReqCtx& rc);
    [[nodiscard]] ClusterOutcome computeTier(const service::BatchJob& job,
                                             const std::string& rkey,
                                             const std::string& preferred,
                                             ReqCtx& rc);
    bool cacheGet(const std::string& rkey, WireArtifact* out);
    void cachePut(const std::string& rkey, const WireArtifact& a);
    /// Fold a traced response's span batch into the stitcher.
    void collectTrace(const WireResponse& wr, std::int64_t sendNs,
                      std::int64_t recvNs);
    /// Consider this request for the slow-exemplar set.
    void noteRequest(const service::BatchJob& job, const ClusterOutcome& out,
                     double us, ReqCtx& rc);

    CoordinatorConfig cfg_;
    FaultSite* partitionSite_ = nullptr;

    mutable std::mutex mu_;  ///< ring, workers, hints
    HashRing ring_;
    std::unordered_map<std::string, WorkerInfo> workers_;  ///< by endpoint
    std::unordered_map<std::string, Hint> hints_;  ///< routing key -> hint

    std::mutex cacheMu_;
    std::list<std::pair<std::string, WireArtifact>> lru_;  ///< front = hottest
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, WireArtifact>>::iterator>
        cacheIndex_;

    obs::MetricRegistry registry_;

    SpanStitcher stitcher_;
    std::atomic<std::uint64_t> sampleCounter_{0};

    mutable std::mutex slowMu_;
    std::vector<RequestChain> slow_;  ///< unordered top-N by totalUs
};

}  // namespace phpf::cluster
