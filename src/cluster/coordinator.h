#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/wire.h"
#include "obs/metrics.h"
#include "service/batch.h"
#include "support/fault.h"

namespace phpf::cluster {

struct CoordinatorConfig {
    /// Per-request wall budget of one POST /compile exchange. Generous:
    /// a slow compile is not a dead worker.
    int requestTimeoutMs = 30000;
    /// Health-probe budget (GET /healthz). Tight: probes answer from
    /// memory, so a slow probe IS a sick worker.
    int probeTimeoutMs = 2000;
    int peerFetchTimeoutMs = 5000;
    /// Total remote attempts per job across workers (first try
    /// included). Each transient failure re-routes to the next ring
    /// owner after an exponentially growing backoff.
    int maxAttempts = 4;
    std::int64_t retryBackoffMs = 2;  ///< first backoff; doubles
    /// Coordinator-local artifact tier. Deliberately small by default:
    /// the workers hold the real cache, and a tight local tier is what
    /// makes the peer-fetch path actually exercise (and show up in
    /// metrics) instead of being shadowed.
    std::size_t cacheCapacity = 64;
    int ringReplicas = 64;
    /// Fault source for cluster.partition (null = process injector).
    const FaultInjector* faults = nullptr;
};

/// Outcome of one cluster compile as seen by the coordinator.
struct ClusterOutcome {
    service::CompileStatus status = service::CompileStatus::Error;
    service::ErrorCode code = service::ErrorCode::Internal;
    bool localHit = false;   ///< served from the coordinator tier
    bool peerHit = false;    ///< served by GET /artifact from a peer
    bool workerHit = false;  ///< the executing worker's own cache hit
    int attempts = 0;        ///< remote exchanges performed
    std::string worker;      ///< endpoint that served it (empty on local)
    std::string error;
    bool hasArtifact = false;
    WireArtifact artifact;

    [[nodiscard]] bool ok() const {
        return status == service::CompileStatus::Ok && hasArtifact;
    }
};

/// Result of probing one worker's /healthz.
struct ProbeResult {
    bool alive = false;
    std::string id;
    int wireVersion = 0;
    std::string error;
};

/// The cluster's routing brain: owns the consistent-hash ring of live
/// workers and a two-tier artifact cache, and turns one BatchJob into
/// one artifact by walking the tiers:
///
///   1. local LRU (coordinator tier) — keyed by the job's routing key
///   2. peer fetch — GET /artifact/<key> from the worker that last
///      compiled it (location hints; subject to cluster.partition)
///   3. compute — POST /compile on the preferred worker (work
///      stealing) or the ring owner, with retry-with-backoff across
///      ring successors on transient ErrorCodes
///
/// A worker that fails a request AND its follow-up health probe is
/// declared dead: removed from the ring (its hash range re-owned by
/// the survivors) until a later probe revives it. Thread-safe — the
/// batch scheduler calls compileJob from many dispatcher threads.
class Coordinator {
public:
    explicit Coordinator(CoordinatorConfig cfg = {});

    /// Probe `endpoint` and add it to the ring. False (with *err) when
    /// the probe fails or the worker speaks the wrong wire version.
    bool addWorker(const std::string& endpoint, std::string* err = nullptr);

    /// Probe a known worker now: revives it when it answers, declares
    /// it dead when it does not.
    ProbeResult probeWorker(const std::string& endpoint);

    /// Alive workers' endpoints (= current ring membership).
    [[nodiscard]] std::vector<std::string> aliveWorkers() const;
    [[nodiscard]] std::size_t workerCount() const;

    /// Routing key of a job: a stable hash of its canonical wire form.
    /// (Not the content-addressed artifact key — that needs a parse,
    /// which is the workers' job. Hints map routing keys to true keys.)
    [[nodiscard]] static std::string routingKey(const service::BatchJob& job);

    /// Ring owner of `job` right now ("" when no worker is alive).
    [[nodiscard]] std::string ownerOf(const service::BatchJob& job) const;

    /// Compile `job` through the tiers. `preferred` (a worker endpoint)
    /// overrides ring routing for the compute tier when alive — the
    /// work-stealing scheduler passes its own worker so stolen jobs
    /// execute on the thief.
    [[nodiscard]] ClusterOutcome compileJob(const service::BatchJob& job,
                                            const std::string& preferred = {});

    [[nodiscard]] const obs::MetricRegistry& metrics() const {
        return registry_;
    }
    [[nodiscard]] obs::MetricRegistry& metricsMutable() { return registry_; }

private:
    struct WorkerInfo {
        std::string id;  ///< worker-reported identity (probe-time)
        bool alive = false;
    };
    struct Hint {
        std::string artifactKey;
        std::string worker;  ///< endpoint that last produced it
    };

    void markDead(const std::string& endpoint);
    void markAlive(const std::string& endpoint, const std::string& id);
    [[nodiscard]] ClusterOutcome compileTiers(const service::BatchJob& job,
                                              const std::string& preferred);
    [[nodiscard]] ClusterOutcome computeTier(const service::BatchJob& job,
                                             const std::string& rkey,
                                             const std::string& preferred);
    bool cacheGet(const std::string& rkey, WireArtifact* out);
    void cachePut(const std::string& rkey, const WireArtifact& a);

    CoordinatorConfig cfg_;
    FaultSite* partitionSite_ = nullptr;

    mutable std::mutex mu_;  ///< ring, workers, hints
    HashRing ring_;
    std::unordered_map<std::string, WorkerInfo> workers_;  ///< by endpoint
    std::unordered_map<std::string, Hint> hints_;  ///< routing key -> hint

    std::mutex cacheMu_;
    std::list<std::pair<std::string, WireArtifact>> lru_;  ///< front = hottest
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, WireArtifact>>::iterator>
        cacheIndex_;

    obs::MetricRegistry registry_;
};

}  // namespace phpf::cluster
