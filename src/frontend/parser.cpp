#include "frontend/parser.h"

#include <algorithm>

#include "analysis/affine.h"

namespace phpf {

Parser::Parser(std::string source, DiagEngine& diags) : diags_(diags) {
    Lexer lexer(std::move(source), diags);
    toks_ = lexer.run();
    blockStack_.push_back(&prog_.top);
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

const Token& Parser::peek(int ahead) const {
    const size_t i = std::min(pos_ + static_cast<size_t>(ahead),
                              toks_.size() - 1);
    return toks_[i];
}

const Token& Parser::advance() {
    const Token& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
}

bool Parser::accept(TokKind k) {
    if (check(k)) {
        advance();
        return true;
    }
    return false;
}

const Token* Parser::expect(TokKind k, const std::string& what) {
    if (check(k)) return &advance();
    diags_.error(peek().loc, "expected " + what);
    return nullptr;
}

bool Parser::checkIdent(const std::string& word) const {
    return peek().kind == TokKind::Ident && peek().text == word;
}

bool Parser::acceptIdent(const std::string& word) {
    if (checkIdent(word)) {
        advance();
        return true;
    }
    return false;
}

void Parser::expectNewline() {
    if (!accept(TokKind::Newline) && !check(TokKind::EndOfFile)) {
        diags_.error(peek().loc, "expected end of statement");
        skipToNewline();
    }
}

void Parser::skipToNewline() {
    while (!check(TokKind::Newline) && !check(TokKind::EndOfFile)) advance();
    accept(TokKind::Newline);
}

// ---------------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------------

SymbolId Parser::declare(const std::string& name, ScalarType type,
                         std::vector<ArrayDim> dims, SourceLoc loc) {
    if (prog_.findSymbol(name) != kNoSymbol) {
        diags_.error(loc, "redeclaration of " + name);
        return prog_.findSymbol(name);
    }
    return prog_.addSymbol(name, type, std::move(dims));
}

SymbolId Parser::lookupOrImplicit(const std::string& name, SourceLoc loc) {
    const SymbolId s = prog_.findSymbol(name);
    if (s != kNoSymbol) return s;
    // Fortran implicit typing: i..n INTEGER, everything else REAL.
    const char c = name.empty() ? 'x' : name[0];
    const ScalarType type =
        (c >= 'i' && c <= 'n') ? ScalarType::Int : ScalarType::Real;
    return declare(name, type, {}, loc);
}

// ---------------------------------------------------------------------------
// Declarations and directives
// ---------------------------------------------------------------------------

void Parser::parseDeclaration(ScalarType type) {
    do {
        const Token* name = expect(TokKind::Ident, "variable name");
        if (name == nullptr) {
            skipToNewline();
            return;
        }
        std::vector<ArrayDim> dims;
        if (accept(TokKind::LParen)) {
            do {
                // dim := expr | expr ':' expr   (constant-folded)
                Expr* first = foldConstants(prog_, parseExpr());
                ArrayDim dim;
                if (accept(TokKind::Colon)) {
                    Expr* second = foldConstants(prog_, parseExpr());
                    dim.lb = first != nullptr && first->kind == ExprKind::IntLit
                                 ? first->ival
                                 : 1;
                    dim.ub = second != nullptr &&
                                     second->kind == ExprKind::IntLit
                                 ? second->ival
                                 : 1;
                } else {
                    dim.lb = 1;
                    dim.ub = first != nullptr && first->kind == ExprKind::IntLit
                                 ? first->ival
                                 : 1;
                    if (first == nullptr || first->kind != ExprKind::IntLit)
                        diags_.error(name->loc,
                                     "array bound of " + name->text +
                                         " must be a constant");
                }
                dims.push_back(dim);
            } while (accept(TokKind::Comma));
            expect(TokKind::RParen, ")");
        }
        declare(name->text, type, std::move(dims), name->loc);
    } while (accept(TokKind::Comma));
    expectNewline();
}

void Parser::parseParameter() {
    expect(TokKind::LParen, "(");
    do {
        const Token* name = expect(TokKind::Ident, "parameter name");
        expect(TokKind::Assign, "=");
        Expr* value = parseExpr();
        if (name != nullptr && value != nullptr &&
            value->kind == ExprKind::IntLit) {
            parameters_[name->text] = value->ival;
        } else if (name != nullptr) {
            diags_.error(name->loc, "parameter value must be constant");
        }
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen, ")");
    expectNewline();
}

std::vector<DistSpec> Parser::parseDistSpecs() {
    std::vector<DistSpec> specs;
    expect(TokKind::LParen, "(");
    do {
        DistSpec spec;
        if (accept(TokKind::Star)) {
            spec.kind = DistKind::Serial;
        } else if (acceptIdent("block")) {
            spec.kind = DistKind::Block;
        } else if (acceptIdent("cyclic")) {
            spec.kind = DistKind::Cyclic;
            if (accept(TokKind::LParen)) {
                const Token* width = expect(TokKind::IntLit, "block width");
                if (width != nullptr && width->ival > 1) {
                    spec.kind = DistKind::BlockCyclic;
                    spec.blockSize = static_cast<int>(width->ival);
                }
                expect(TokKind::RParen, ")");
            }
        } else {
            diags_.error(peek().loc, "expected distribution format");
            advance();
        }
        specs.push_back(spec);
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen, ")");
    return specs;
}

void Parser::parseDistribute() {
    // Form 1: distribute A(block,*)
    // Form 2: distribute (block,*) :: A, B
    if (check(TokKind::LParen)) {
        std::vector<DistSpec> specs = parseDistSpecs();
        expect(TokKind::ColonColon, "::");
        do {
            const Token* name = expect(TokKind::Ident, "array name");
            if (name != nullptr) {
                const SymbolId s = prog_.findSymbol(name->text);
                if (s == kNoSymbol) {
                    diags_.error(name->loc, "unknown array " + name->text);
                } else {
                    prog_.distributes.push_back({s, specs});
                }
            }
        } while (accept(TokKind::Comma));
    } else {
        const Token* name = expect(TokKind::Ident, "array name");
        if (name == nullptr) {
            skipToNewline();
            return;
        }
        const SymbolId s = prog_.findSymbol(name->text);
        if (s == kNoSymbol)
            diags_.error(name->loc, "unknown array " + name->text);
        std::vector<DistSpec> specs = parseDistSpecs();
        if (s != kNoSymbol) prog_.distributes.push_back({s, std::move(specs)});
    }
    expectNewline();
}

void Parser::parseAlign() {
    // Form 1: align B(i,j) with A(i,j+1)
    // Form 2: align (i) with A(i) :: B, C
    // Form 3: align B with A(*)        (scalar-shaped source)
    std::vector<std::string> dummies;
    std::vector<std::string> sources;
    bool listForm = false;

    if (check(TokKind::LParen)) {
        listForm = true;
        advance();
        do {
            const Token* d = expect(TokKind::Ident, "align dummy");
            if (d != nullptr) dummies.push_back(d->text);
        } while (accept(TokKind::Comma));
        expect(TokKind::RParen, ")");
    } else {
        const Token* src = expect(TokKind::Ident, "align source");
        if (src == nullptr) {
            skipToNewline();
            return;
        }
        sources.push_back(src->text);
        if (accept(TokKind::LParen)) {
            do {
                const Token* d = expect(TokKind::Ident, "align dummy");
                if (d != nullptr) dummies.push_back(d->text);
            } while (accept(TokKind::Comma));
            expect(TokKind::RParen, ")");
        }
    }

    if (!acceptIdent("with")) {
        diags_.error(peek().loc, "expected WITH in ALIGN");
        skipToNewline();
        return;
    }
    const Token* target = expect(TokKind::Ident, "align target");
    if (target == nullptr) {
        skipToNewline();
        return;
    }
    const SymbolId targetSym = prog_.findSymbol(target->text);
    if (targetSym == kNoSymbol) {
        diags_.error(target->loc, "unknown align target " + target->text);
        skipToNewline();
        return;
    }

    std::vector<AlignDim> specs;
    expect(TokKind::LParen, "(");
    do {
        AlignDim ad;
        if (accept(TokKind::Star)) {
            ad.kind = AlignDim::Kind::Replicate;
        } else if (check(TokKind::IntLit)) {
            ad.kind = AlignDim::Kind::Const;
            ad.constPos = advance().ival;
        } else {
            const Token* d = expect(TokKind::Ident, "align dummy or *");
            if (d == nullptr) break;
            const auto it = std::find(dummies.begin(), dummies.end(), d->text);
            if (it == dummies.end()) {
                diags_.error(d->loc, "unknown align dummy " + d->text);
                break;
            }
            ad.kind = AlignDim::Kind::SourceDim;
            ad.sourceDim = static_cast<int>(it - dummies.begin());
            if (accept(TokKind::Plus)) {
                const Token* off = expect(TokKind::IntLit, "offset");
                if (off != nullptr) ad.offset = off->ival;
            } else if (accept(TokKind::Minus)) {
                const Token* off = expect(TokKind::IntLit, "offset");
                if (off != nullptr) ad.offset = -off->ival;
            }
        }
        specs.push_back(ad);
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen, ")");

    if (listForm) {
        expect(TokKind::ColonColon, "::");
        do {
            const Token* name = expect(TokKind::Ident, "aligned array");
            if (name != nullptr) sources.push_back(name->text);
        } while (accept(TokKind::Comma));
    }
    for (const std::string& src : sources) {
        const SymbolId s = prog_.findSymbol(src);
        if (s == kNoSymbol) {
            diags_.error(target->loc, "unknown align source " + src);
            continue;
        }
        prog_.aligns.push_back({s, targetSym, specs});
    }
    expectNewline();
}

void Parser::parseDirective() {
    if (acceptIdent("processors")) {
        // processors rank(N)   or   processors P(n1,n2,...)
        const Token* name = expect(TokKind::Ident, "processors name");
        expect(TokKind::LParen, "(");
        int rank = 0;
        if (name != nullptr && name->text == "rank") {
            const Token* r = expect(TokKind::IntLit, "rank");
            rank = r != nullptr ? static_cast<int>(r->ival) : 1;
        } else {
            do {
                expect(TokKind::IntLit, "grid extent");
                ++rank;
            } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, ")");
        prog_.gridRank = std::max(rank, 1);
        expectNewline();
    } else if (acceptIdent("distribute")) {
        parseDistribute();
    } else if (acceptIdent("align")) {
        parseAlign();
    } else if (acceptIdent("independent")) {
        pendingIndependent_ = true;
        pendingNewVars_.clear();
        if (accept(TokKind::Comma)) {
            if (acceptIdent("new")) {
                expect(TokKind::LParen, "(");
                do {
                    const Token* v = expect(TokKind::Ident, "NEW variable");
                    if (v != nullptr)
                        pendingNewVars_.push_back(
                            lookupOrImplicit(v->text, v->loc));
                } while (accept(TokKind::Comma));
                expect(TokKind::RParen, ")");
            } else {
                diags_.error(peek().loc, "expected NEW clause");
            }
        }
        expectNewline();
    } else {
        diags_.error(peek().loc, "unknown HPF directive");
        skipToNewline();
    }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Parser::append(Stmt* s) { blockStack_.back()->push_back(s); }

void Parser::parseStatements(const std::string& endKeyword) {
    while (!check(TokKind::EndOfFile)) {
        accept(TokKind::Newline);
        if (checkIdent("end")) {
            // "end", "end do", "end if", "endif", "enddo"
            if (endKeyword.empty()) return;  // top level: caller eats END
            const size_t save = pos_;
            advance();
            if (acceptIdent(endKeyword)) return;
            pos_ = save;
            return;  // plain END also terminates (caller validates)
        }
        if (checkIdent("enddo") && endKeyword == "do") {
            advance();
            return;
        }
        if (checkIdent("endif") && endKeyword == "if") {
            advance();
            return;
        }
        if (checkIdent("else") && endKeyword == "if") return;
        parseStatement();
    }
}

void Parser::parseStatement() {
    if (check(TokKind::HpfDirective)) {
        advance();
        parseDirective();
        return;
    }
    int label = -1;
    if (check(TokKind::IntLit)) {
        label = static_cast<int>(advance().ival);
    }
    if (checkIdent("real")) {
        advance();
        parseDeclaration(ScalarType::Real);
        return;
    }
    if (checkIdent("integer")) {
        advance();
        parseDeclaration(ScalarType::Int);
        return;
    }
    if (checkIdent("parameter")) {
        advance();
        parseParameter();
        return;
    }
    if (checkIdent("do")) {
        advance();
        parseDo(label);
        return;
    }
    if (checkIdent("if")) {
        advance();
        parseIf(label);
        return;
    }
    if (checkIdent("goto") ||
        (checkIdent("go") && peek(1).kind == TokKind::Ident &&
         peek(1).text == "to")) {
        if (acceptIdent("go")) acceptIdent("to");
        else acceptIdent("goto");
        const Token* target = expect(TokKind::IntLit, "label");
        Stmt* s = prog_.newStmt(StmtKind::Goto);
        s->label = label;
        s->gotoTarget = target != nullptr ? static_cast<int>(target->ival) : 0;
        append(s);
        expectNewline();
        return;
    }
    if (checkIdent("continue")) {
        advance();
        Stmt* s = prog_.newStmt(StmtKind::Continue);
        s->label = label;
        append(s);
        expectNewline();
        return;
    }
    // Assignment: ref = expr
    if (check(TokKind::Ident)) {
        const Token name = advance();
        Expr* lhs = parseRef(name.text, name.loc);
        expect(TokKind::Assign, "=");
        Expr* rhs = parseExpr();
        Stmt* s = prog_.newStmt(StmtKind::Assign);
        s->label = label;
        s->loc = name.loc;
        s->lhs = lhs;
        s->rhs = rhs;
        append(s);
        expectNewline();
        return;
    }
    diags_.error(peek().loc, "expected a statement");
    skipToNewline();
}

void Parser::parseDo(int label) {
    const Token* var = expect(TokKind::Ident, "loop variable");
    expect(TokKind::Assign, "=");
    Expr* lb = parseExpr();
    expect(TokKind::Comma, ",");
    Expr* ub = parseExpr();
    Expr* step = nullptr;
    if (accept(TokKind::Comma)) step = parseExpr();
    expectNewline();

    Stmt* s = prog_.newStmt(StmtKind::Do);
    s->label = label;
    s->loopVar = var != nullptr ? lookupOrImplicit(var->text, var->loc)
                                : kNoSymbol;
    s->lb = lb;
    s->ub = ub;
    s->step = step;
    if (pendingIndependent_) {
        s->independent = true;
        s->newVars = pendingNewVars_;
        pendingIndependent_ = false;
        pendingNewVars_.clear();
    }
    append(s);
    blockStack_.push_back(&s->body);
    parseStatements("do");
    blockStack_.pop_back();
    expectNewline();
}

void Parser::parseIf(int label) {
    expect(TokKind::LParen, "(");
    Expr* cond = parseExpr();
    expect(TokKind::RParen, ")");

    Stmt* s = prog_.newStmt(StmtKind::If);
    s->label = label;
    s->cond = cond;
    append(s);

    if (acceptIdent("then")) {
        expectNewline();
        blockStack_.push_back(&s->thenBody);
        parseStatements("if");
        blockStack_.pop_back();
        if (acceptIdent("else")) {
            expectNewline();
            blockStack_.push_back(&s->elseBody);
            parseStatements("if");
            blockStack_.pop_back();
        }
        expectNewline();
    } else {
        // Logical one-line IF: the statement joins the then-branch.
        blockStack_.push_back(&s->thenBody);
        parseStatement();
        blockStack_.pop_back();
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Expr* Parser::intLit(std::int64_t v) {
    Expr* e = prog_.newExpr(ExprKind::IntLit);
    e->ival = v;
    return e;
}

Expr* Parser::parseExpr() { return parseOr(); }

Expr* Parser::parseOr() {
    Expr* lhs = parseAnd();
    while (accept(TokKind::OrOp)) {
        Expr* e = prog_.newExpr(ExprKind::Binary);
        e->bop = BinaryOp::Or;
        e->args = {lhs, parseAnd()};
        lhs = e;
    }
    return lhs;
}

Expr* Parser::parseAnd() {
    Expr* lhs = parseNot();
    while (accept(TokKind::AndOp)) {
        Expr* e = prog_.newExpr(ExprKind::Binary);
        e->bop = BinaryOp::And;
        e->args = {lhs, parseNot()};
        lhs = e;
    }
    return lhs;
}

Expr* Parser::parseNot() {
    if (accept(TokKind::NotOp)) {
        Expr* e = prog_.newExpr(ExprKind::Unary);
        e->uop = UnaryOp::Not;
        e->args = {parseNot()};
        return e;
    }
    return parseComparison();
}

Expr* Parser::parseComparison() {
    Expr* lhs = parseAddSub();
    BinaryOp op;
    if (accept(TokKind::Lt)) op = BinaryOp::Lt;
    else if (accept(TokKind::Le)) op = BinaryOp::Le;
    else if (accept(TokKind::Gt)) op = BinaryOp::Gt;
    else if (accept(TokKind::Ge)) op = BinaryOp::Ge;
    else if (accept(TokKind::EqEq)) op = BinaryOp::Eq;
    else if (accept(TokKind::NeOp)) op = BinaryOp::Ne;
    else return lhs;
    Expr* e = prog_.newExpr(ExprKind::Binary);
    e->bop = op;
    e->args = {lhs, parseAddSub()};
    return e;
}

Expr* Parser::parseAddSub() {
    Expr* lhs = parseMulDiv();
    while (check(TokKind::Plus) || check(TokKind::Minus)) {
        const BinaryOp op =
            advance().kind == TokKind::Plus ? BinaryOp::Add : BinaryOp::Sub;
        Expr* e = prog_.newExpr(ExprKind::Binary);
        e->bop = op;
        e->args = {lhs, parseMulDiv()};
        lhs = e;
    }
    return lhs;
}

Expr* Parser::parseMulDiv() {
    Expr* lhs = parseUnary();
    while (check(TokKind::Star) || check(TokKind::Slash)) {
        const BinaryOp op =
            advance().kind == TokKind::Star ? BinaryOp::Mul : BinaryOp::Div;
        Expr* e = prog_.newExpr(ExprKind::Binary);
        e->bop = op;
        e->args = {lhs, parseUnary()};
        lhs = e;
    }
    return lhs;
}

Expr* Parser::parseUnary() {
    if (accept(TokKind::Minus)) {
        Expr* e = prog_.newExpr(ExprKind::Unary);
        e->uop = UnaryOp::Neg;
        e->args = {parseUnary()};
        return e;
    }
    accept(TokKind::Plus);
    return parsePower();
}

Expr* Parser::parsePower() {
    Expr* lhs = parsePrimary();
    if (accept(TokKind::StarStar)) {
        Expr* e = prog_.newExpr(ExprKind::Binary);
        e->bop = BinaryOp::Pow;
        e->args = {lhs, parseUnary()};  // right associative
        return e;
    }
    return lhs;
}

Expr* Parser::parseRef(const std::string& name, SourceLoc loc) {
    const SymbolId sym = lookupOrImplicit(name, loc);
    if (!check(TokKind::LParen)) {
        Expr* e = prog_.newExpr(ExprKind::VarRef);
        e->sym = sym;
        e->loc = loc;
        return e;
    }
    advance();
    Expr* e = prog_.newExpr(ExprKind::ArrayRef);
    e->sym = sym;
    e->loc = loc;
    do {
        e->args.push_back(parseExpr());
    } while (accept(TokKind::Comma));
    expect(TokKind::RParen, ")");
    if (!prog_.sym(sym).isArray())
        diags_.error(loc, name + " is not an array");
    else if (static_cast<int>(e->args.size()) != prog_.sym(sym).rank())
        diags_.error(loc, "wrong subscript count for " + name);
    return e;
}

Expr* Parser::parsePrimary() {
    if (check(TokKind::IntLit)) {
        const Token& t = advance();
        return intLit(t.ival);
    }
    if (check(TokKind::RealLit)) {
        const Token& t = advance();
        Expr* e = prog_.newExpr(ExprKind::RealLit);
        e->rval = t.rval;
        return e;
    }
    if (accept(TokKind::LParen)) {
        Expr* e = parseExpr();
        expect(TokKind::RParen, ")");
        return e;
    }
    if (check(TokKind::Ident)) {
        const Token name = advance();
        // Parameter constant?
        const auto it = parameters_.find(name.text);
        if (it != parameters_.end()) return intLit(it->second);
        // Intrinsic call?
        static const std::pair<const char*, Intrinsic> kIntrinsics[] = {
            {"abs", Intrinsic::Abs},   {"max", Intrinsic::Max},
            {"min", Intrinsic::Min},   {"sqrt", Intrinsic::Sqrt},
            {"mod", Intrinsic::Mod},   {"sign", Intrinsic::Sign},
            {"exp", Intrinsic::Exp},
        };
        if (check(TokKind::LParen) && prog_.findSymbol(name.text) == kNoSymbol) {
            for (const auto& [iname, fn] : kIntrinsics) {
                if (name.text == iname) {
                    advance();  // (
                    Expr* e = prog_.newExpr(ExprKind::Call);
                    e->fn = fn;
                    do {
                        e->args.push_back(parseExpr());
                    } while (accept(TokKind::Comma));
                    expect(TokKind::RParen, ")");
                    return e;
                }
            }
        }
        return parseRef(name.text, name.loc);
    }
    diags_.error(peek().loc, "expected an expression");
    advance();
    return intLit(0);
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

Program Parser::parse() {
    accept(TokKind::Newline);
    if (acceptIdent("program")) {
        const Token* name = expect(TokKind::Ident, "program name");
        if (name != nullptr) prog_.name = name->text;
        expectNewline();
    }
    parseStatements("");
    if (!acceptIdent("end"))
        diags_.error(peek().loc, "expected END");
    if (!diags_.hasErrors()) prog_.finalize();
    return std::move(prog_);
}

Program parseProgramOrDie(const std::string& source) {
    DiagEngine diags;
    Parser parser(source, diags);
    Program p = parser.parse();
    if (diags.hasErrors()) internalError("parse failed:\n" + diags.dump());
    return p;
}

}  // namespace phpf
