#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

namespace phpf {

Lexer::Lexer(std::string source, DiagEngine& diags)
    : src_(std::move(source)), diags_(diags) {}

char Lexer::peek(int ahead) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void Lexer::lexNumber(std::vector<Token>& out) {
    Token t;
    t.loc = here();
    std::string num;
    bool isReal = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    // A '.' starts a fraction only if not a dot-operator like "1.and.".
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        isReal = true;
        num += advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) num += advance();
    } else if (peek() == '.' &&
               !std::isalpha(static_cast<unsigned char>(peek(1)))) {
        isReal = true;
        num += advance();
    }
    if (peek() == 'e' || peek() == 'E' || peek() == 'd' || peek() == 'D') {
        const char next = peek(1);
        if (std::isdigit(static_cast<unsigned char>(next)) || next == '+' ||
            next == '-') {
            isReal = true;
            advance();
            num += 'e';
            if (peek() == '+' || peek() == '-') num += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                num += advance();
        }
    }
    if (isReal) {
        t.kind = TokKind::RealLit;
        t.rval = std::strtod(num.c_str(), nullptr);
    } else {
        t.kind = TokKind::IntLit;
        t.ival = std::strtoll(num.c_str(), nullptr, 10);
    }
    t.text = num;
    out.push_back(std::move(t));
}

void Lexer::lexIdent(std::vector<Token>& out) {
    Token t;
    t.loc = here();
    t.kind = TokKind::Ident;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        t.text += static_cast<char>(
            std::tolower(static_cast<unsigned char>(advance())));
    out.push_back(std::move(t));
}

void Lexer::lexDotOperator(std::vector<Token>& out) {
    const SourceLoc loc = here();
    advance();  // '.'
    std::string word;
    while (std::isalpha(static_cast<unsigned char>(peek())))
        word += static_cast<char>(
            std::tolower(static_cast<unsigned char>(advance())));
    if (peek() == '.') advance();
    Token t;
    t.loc = loc;
    if (word == "and") t.kind = TokKind::AndOp;
    else if (word == "or") t.kind = TokKind::OrOp;
    else if (word == "not") t.kind = TokKind::NotOp;
    else if (word == "lt") t.kind = TokKind::Lt;
    else if (word == "le") t.kind = TokKind::Le;
    else if (word == "gt") t.kind = TokKind::Gt;
    else if (word == "ge") t.kind = TokKind::Ge;
    else if (word == "eq") t.kind = TokKind::EqEq;
    else if (word == "ne") t.kind = TokKind::NeOp;
    else {
        diags_.error(loc, "unknown operator .");
        return;
    }
    out.push_back(std::move(t));
}

std::vector<Token> Lexer::run() {
    std::vector<Token> out;
    auto push = [&](TokKind k) {
        Token t;
        t.kind = k;
        t.loc = here();
        out.push_back(std::move(t));
    };
    while (!atEnd()) {
        const char c = peek();
        if (c == '\n') {
            // Collapse consecutive newlines.
            if (!out.empty() && out.back().kind != TokKind::Newline)
                push(TokKind::Newline);
            advance();
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            advance();
            continue;
        }
        if (c == '!') {
            // "!hpf$" directive sentinel; anything else is a comment.
            if ((peek(1) == 'h' || peek(1) == 'H') &&
                (peek(2) == 'p' || peek(2) == 'P') &&
                (peek(3) == 'f' || peek(3) == 'F') && peek(4) == '$') {
                push(TokKind::HpfDirective);
                for (int i = 0; i < 5; ++i) advance();
                continue;
            }
            while (!atEnd() && peek() != '\n') advance();
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            lexNumber(out);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            lexIdent(out);
            continue;
        }
        if (c == '.') {
            if (std::isdigit(static_cast<unsigned char>(peek(1)))) {
                lexNumber(out);
            } else {
                lexDotOperator(out);
            }
            continue;
        }
        const SourceLoc loc = here();
        advance();
        Token t;
        t.loc = loc;
        switch (c) {
            case '(': t.kind = TokKind::LParen; break;
            case ')': t.kind = TokKind::RParen; break;
            case ',': t.kind = TokKind::Comma; break;
            case ':':
                if (peek() == ':') {
                    advance();
                    t.kind = TokKind::ColonColon;
                } else {
                    t.kind = TokKind::Colon;
                }
                break;
            case '+': t.kind = TokKind::Plus; break;
            case '-': t.kind = TokKind::Minus; break;
            case '*':
                if (peek() == '*') {
                    advance();
                    t.kind = TokKind::StarStar;
                } else {
                    t.kind = TokKind::Star;
                }
                break;
            case '/':
                if (peek() == '=') {
                    advance();
                    t.kind = TokKind::NeOp;
                } else {
                    t.kind = TokKind::Slash;
                }
                break;
            case '=':
                if (peek() == '=') {
                    advance();
                    t.kind = TokKind::EqEq;
                } else {
                    t.kind = TokKind::Assign;
                }
                break;
            case '<':
                if (peek() == '=') {
                    advance();
                    t.kind = TokKind::Le;
                } else {
                    t.kind = TokKind::Lt;
                }
                break;
            case '>':
                if (peek() == '=') {
                    advance();
                    t.kind = TokKind::Ge;
                } else {
                    t.kind = TokKind::Gt;
                }
                break;
            default:
                diags_.error(loc, std::string("unexpected character '") + c +
                                      "'");
                continue;
        }
        out.push_back(std::move(t));
    }
    if (!out.empty() && out.back().kind != TokKind::Newline) {
        Token nl;
        nl.kind = TokKind::Newline;
        nl.loc = here();
        out.push_back(std::move(nl));
    }
    Token eof;
    eof.kind = TokKind::EndOfFile;
    eof.loc = here();
    out.push_back(std::move(eof));
    return out;
}

}  // namespace phpf
