#pragma once

#include "frontend/lexer.h"
#include "ir/program.h"

namespace phpf {

/// Recursive-descent parser for the mini-HPF dialect:
///
///     program demo
///       parameter (n = 64)
///       real A(n), B(n)
///     !hpf$ distribute A(block)
///     !hpf$ align B(i) with A(i)
///     !hpf$ independent, new(w)
///       do i = 2, n-1
///         w = B(i-1) + B(i+1)
///         A(i) = 0.5 * w
///       end do
///     end
///
/// Supported: REAL/INTEGER declarations with bounds, PARAMETER
/// constants, implicit Fortran typing (i-n integer), DO / block IF /
/// logical one-line IF / GOTO / CONTINUE with labels, the intrinsic
/// functions of the IR, and the HPF directives PROCESSORS, DISTRIBUTE
/// (both `distribute A(block)` and `distribute (block) :: A, B`),
/// ALIGN (both `align B(i) with A(i)` and `align (i) with A(i) :: B,C`)
/// and INDEPENDENT [, NEW(...)].
class Parser {
public:
    Parser(std::string source, DiagEngine& diags);

    /// Parse the whole source. On error the diagnostics engine holds the
    /// messages and the returned program may be incomplete.
    [[nodiscard]] Program parse();

private:
    // --- token stream ---
    [[nodiscard]] const Token& peek(int ahead = 0) const;
    const Token& advance();
    [[nodiscard]] bool check(TokKind k) const { return peek().kind == k; }
    bool accept(TokKind k);
    const Token* expect(TokKind k, const std::string& what);
    [[nodiscard]] bool checkIdent(const std::string& word) const;
    bool acceptIdent(const std::string& word);
    void expectNewline();
    void skipToNewline();

    // --- symbols ---
    SymbolId declare(const std::string& name, ScalarType type,
                     std::vector<ArrayDim> dims, SourceLoc loc);
    SymbolId lookupOrImplicit(const std::string& name, SourceLoc loc);

    // --- grammar ---
    void parseDeclaration(ScalarType type);
    void parseParameter();
    void parseDirective();
    void parseDistribute();
    void parseAlign();
    std::vector<DistSpec> parseDistSpecs();
    void parseStatements(const std::string& endKeyword);
    void parseStatement();
    void parseDo(int label);
    void parseIf(int label);
    Expr* parseExpr();
    Expr* parseOr();
    Expr* parseAnd();
    Expr* parseNot();
    Expr* parseComparison();
    Expr* parseAddSub();
    Expr* parseMulDiv();
    Expr* parseUnary();
    Expr* parsePower();
    Expr* parsePrimary();
    Expr* parseRef(const std::string& name, SourceLoc loc);

    Expr* intLit(std::int64_t v);
    void append(Stmt* s);

    std::vector<Token> toks_;
    size_t pos_ = 0;
    DiagEngine& diags_;
    Program prog_;
    std::vector<std::vector<Stmt*>*> blockStack_;
    std::unordered_map<std::string, std::int64_t> parameters_;
    // INDEPENDENT directive waiting for its DO.
    bool pendingIndependent_ = false;
    std::vector<SymbolId> pendingNewVars_;
};

/// Convenience wrapper: parse `source`, raising InternalError on parse
/// failure (tests and examples use this; the compiler driver uses the
/// class to report diagnostics gracefully).
[[nodiscard]] Program parseProgramOrDie(const std::string& source);

}  // namespace phpf
