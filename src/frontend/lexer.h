#pragma once

#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace phpf {

enum class TokKind : std::uint8_t {
    Ident,
    IntLit,
    RealLit,
    // punctuation / operators
    LParen, RParen, Comma, Colon, ColonColon,
    Assign,      // =
    Plus, Minus, Star, StarStar, Slash,
    Lt, Le, Gt, Ge, EqEq, NeOp,  // == and /=
    AndOp, OrOp, NotOp,          // .and. .or. .not.
    HpfDirective,                // the "!hpf$" sentinel
    Newline,
    EndOfFile,
};

struct Token {
    TokKind kind = TokKind::EndOfFile;
    std::string text;        ///< identifier (lower-cased) or literal text
    std::int64_t ival = 0;
    double rval = 0.0;
    SourceLoc loc;
};

/// Tokenizer for the mini-HPF dialect: free-form, case-insensitive,
/// newline-terminated statements, `!` comments, with `!hpf$` lines
/// surfaced as directive tokens rather than skipped.
class Lexer {
public:
    Lexer(std::string source, DiagEngine& diags);

    /// Tokenize the whole input (always ends with EndOfFile).
    [[nodiscard]] std::vector<Token> run();

private:
    [[nodiscard]] char peek(int ahead = 0) const;
    char advance();
    [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
    void lexNumber(std::vector<Token>& out);
    void lexIdent(std::vector<Token>& out);
    void lexDotOperator(std::vector<Token>& out);
    [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

    std::string src_;
    DiagEngine& diags_;
    size_t pos_ = 0;
    std::int32_t line_ = 1;
    std::int32_t col_ = 1;
};

}  // namespace phpf
