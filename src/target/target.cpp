#include "target/target.h"

namespace phpf {

namespace target_detail {
// Defined in message_passing.cpp / shared_memory.cpp.
const Target& messagePassingTarget();
const Target& sharedMemoryTarget();
}  // namespace target_detail

std::unique_ptr<SpmdLowering> Target::lower(
    Program& p, const SsaForm& ssa, const DataMapping& dm,
    const MappingDecisions& decisions,
    const std::vector<ReductionInfo>& reductions) const {
    // Both built-in targets share the guard/comm-op lowering: a placed
    // comm op reads as "vectorized message" under mp and as "sync epoch
    // + coherence read" under shm, but the set of points where data
    // must become visible to another processor is the same machine-
    // independent fact about the program.
    auto low = std::make_unique<SpmdLowering>(p, ssa, dm, decisions,
                                              reductions);
    low->run();
    return low;
}

const Target& targetFor(TargetKind kind) {
    return kind == TargetKind::SharedMemory
               ? target_detail::sharedMemoryTarget()
               : target_detail::messagePassingTarget();
}

}  // namespace phpf
