#pragma once

#include <memory>
#include <string>
#include <vector>

#include "driver/options.h"
#include "obs/json.h"
#include "privatize/mapping_pass.h"
#include "spmd/cost_eval.h"
#include "spmd/cost_report.h"
#include "spmd/lowering.h"

namespace phpf {

/// One compilation backend: everything that depends on WHAT machine the
/// SPMD program runs on — mapping-decision pricing, lowering, analytic
/// cost prediction, and text/report emission. The pipeline stays
/// target-independent and calls through this interface; TargetKind
/// (carried by TargetConfig) selects the implementation via
/// targetFor().
///
/// The contract a backend must keep (see DESIGN.md for the narrative
/// version):
///  - lower() must produce a lowering every engine of the functional
///    simulator can execute: the guard/comm-op STRUCTURE is shared
///    across targets, only its interpretation (messages vs. coherence
///    reads) differs. A target that needs structurally different
///    lowering must also teach SpmdSimulator its semantics.
///  - mappingHooks() prices decision-log alternatives; it must not
///    change which alternative the mapping algorithm picks (decisions
///    are structural, which is what keeps every target able to compile
///    and simulate the same kernels).
///  - predictCost()/predictDetailed()/costReport() must agree with each
///    other (same totals) and be deterministic for a given
///    (lowering, config).
///  - describe() returns the machine-model parameters the run report
///    embeds, so a cached artifact's report is self-explanatory.
///
/// Implementations are stateless singletons (all state lives in the
/// TargetConfig / lowering they are handed), so targetFor() can return
/// shared const references that live forever.
class Target {
public:
    virtual ~Target() = default;

    [[nodiscard]] virtual TargetKind kind() const = 0;
    /// Stable short name ("mp" / "shm") — the CLI/report/cache spelling.
    [[nodiscard]] const char* name() const { return targetKindName(kind()); }
    /// Human-readable machine description for reports and --help.
    [[nodiscard]] virtual const char* displayName() const = 0;

    /// Decision-log pricing hooks for MappingPass (annotation only;
    /// never changes decisions — see MappingCostHooks).
    [[nodiscard]] virtual MappingCostHooks mappingHooks(
        const TargetConfig& config) const = 0;

    /// Lower the mapped program to SPMD form for this target. The
    /// default is the shared guard/comm-op lowering both built-in
    /// targets use.
    [[nodiscard]] virtual std::unique_ptr<SpmdLowering> lower(
        Program& p, const SsaForm& ssa, const DataMapping& dm,
        const MappingDecisions& decisions,
        const std::vector<ReductionInfo>& reductions) const;

    /// Analytic performance prediction on this target's machine model.
    [[nodiscard]] virtual CostBreakdown predictCost(
        const SpmdLowering& low, const TargetConfig& config) const = 0;
    /// Same with per-statement / per-op attribution.
    [[nodiscard]] virtual DetailedCost predictDetailed(
        const SpmdLowering& low, const TargetConfig& config) const = 0;
    /// Itemized attribution report (phpfc --cost).
    [[nodiscard]] virtual CostReport costReport(
        const SpmdLowering& low, const TargetConfig& config) const = 0;

    /// Human-readable emission of the lowered program in this target's
    /// idiom (message-passing pseudo-Fortran+MPL / OpenMP-style
    /// annotated Fortran).
    [[nodiscard]] virtual std::string emitText(
        const SpmdLowering& low) const = 0;

    /// Machine-model parameters as a JSON object for the run report.
    [[nodiscard]] virtual obs::Json describe(
        const TargetConfig& config) const = 0;
};

/// The stateless singleton backend for `kind`; valid forever.
[[nodiscard]] const Target& targetFor(TargetKind kind);

}  // namespace phpf
