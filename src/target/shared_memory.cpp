#include <set>
#include <sstream>
#include <unordered_map>

#include "ir/printer.h"
#include "spmd/local_bounds.h"
#include "target/target.h"

namespace phpf {
namespace target_detail {

namespace {

/// OpenMP-style emission of the lowered program: the same guard/comm-op
/// structure as the message-passing text, read through the
/// shared-memory dictionary — privatized variables become
/// !$omp threadprivate copies, owner-computes guards become the static
/// schedule, placed comm ops become barrier-then-shared-read sync
/// epochs, and reduction combines become combiner trees. This is the
/// human-readable form of what an AutOMP-style code generator would
/// emit as Fortran+OpenMP.
class ShmEmitter {
public:
    explicit ShmEmitter(const SpmdLowering& low)
        : low_(low), prog_(low.program()) {
        for (const CommOp& op : low.commOps()) {
            if (op.placementLevel == 0) {
                topOps_.push_back(&op);
            } else {
                const Stmt* loop =
                    prog_.enclosingLoopAtLevel(op.atStmt, op.placementLevel);
                if (loop != nullptr) opsByLoop_[loop].push_back(&op);
            }
        }
    }

    std::string run() {
        os_ << "! shared-memory (OpenMP-style) form of '" << prog_.name
            << "' on " << low_.dataMapping().grid().totalProcs()
            << " threads, grid " << low_.dataMapping().grid().str() << "\n";
        emitThreadprivate();
        os_ << "!$omp parallel\n";
        for (const CommOp* op : topOps_) emitOp(op, 0);
        emitBlock(prog_.top, 0);
        os_ << "!$omp end parallel\n";
        return os_.str();
    }

private:
    /// One threadprivate directive naming every privatized variable:
    /// the scalar definitions the mapping pass privatized (aligned or
    /// not) and the NEW-clause arrays it privatized fully or partially.
    /// A partially privatized array is listed with the grid dims its
    /// private copies span.
    void emitThreadprivate() {
        std::set<std::string> privScalars;
        for (const auto& [defId, d] : low_.decisions().scalars()) {
            if (d.kind == ScalarMapKind::Replicated) continue;
            const SsaDef& def = low_.ssa().defs()[static_cast<size_t>(defId)];
            if (def.sym != kNoSymbol) privScalars.insert(prog_.sym(def.sym).name);
        }
        std::set<std::string> privArrays;
        for (const ArrayPrivDecision& d : low_.decisions().arrays()) {
            if (d.kind == ArrayPrivDecision::Kind::Replicated) continue;
            std::string entry = prog_.sym(d.array).name;
            if (d.kind == ArrayPrivDecision::Kind::Partial) {
                entry += " /partial:";
                for (size_t g = 0; g < d.privatizedGrid.size(); ++g)
                    if (d.privatizedGrid[g] != 0)
                        entry += "g" + std::to_string(g);
                entry += "/";
            }
            privArrays.insert(std::move(entry));
        }
        if (privScalars.empty() && privArrays.empty()) return;
        os_ << "!$omp threadprivate(";
        bool first = true;
        for (const auto& n : privScalars) {
            os_ << (first ? "" : ", ") << n;
            first = false;
        }
        for (const auto& n : privArrays) {
            os_ << (first ? "" : ", ") << n;
            first = false;
        }
        os_ << ")\n";
    }

    void emitOp(const CommOp* op, int indent) {
        pad(indent);
        if (op->isReductionCombine) {
            os_ << "! sync: combine " << printExpr(prog_, op->ref)
                << " via combiner tree across grid dims {";
            for (size_t i = 0; i < op->combineGridDims.size(); ++i)
                os_ << (i ? "," : "") << op->combineGridDims[i];
            os_ << "}\n";
            return;
        }
        os_ << "! sync: barrier; read " << printExpr(prog_, op->ref)
            << " from shared (" << commPatternName(op->req.overall)
            << ", epoch at level " << op->placementLevel << ")\n";
    }

    void guardComment(const Stmt* s) {
        const StmtExec& ex = low_.execOf(s);
        switch (ex.guard) {
            case StmtExec::Guard::All:
                os_ << "   ! on every thread";
                break;
            case StmtExec::Guard::OwnerOf:
                os_ << "   ! my schedule chunk: owner of "
                    << (ex.guardRef != nullptr ? printExpr(prog_, ex.guardRef)
                                               : std::string("<target>"));
                break;
            case StmtExec::Guard::Union:
                os_ << "   ! with the iteration's executing threads";
                break;
        }
    }

    void emitBlock(const std::vector<Stmt*>& block, int indent) {
        for (const Stmt* s : block) emitStmt(s, indent);
    }

    void emitStmt(const Stmt* s, int indent) {
        switch (s->kind) {
            case StmtKind::Assign:
                pad(indent);
                os_ << printExpr(prog_, s->lhs) << " = "
                    << printExpr(prog_, s->rhs);
                guardComment(s);
                os_ << "\n";
                break;
            case StmtKind::If:
                pad(indent);
                os_ << "if (" << printExpr(prog_, s->cond) << ") then";
                guardComment(s);
                os_ << "\n";
                emitBlock(s->thenBody, indent + 2);
                if (!s->elseBody.empty()) {
                    pad(indent);
                    os_ << "else\n";
                    emitBlock(s->elseBody, indent + 2);
                }
                pad(indent);
                os_ << "end if\n";
                break;
            case StmtKind::Do: {
                const ShrinkInfo shrink = analyzeShrink(low_, s);
                pad(indent);
                if (shrink.shrinkable) {
                    os_ << "!$omp do schedule(static)   ! chunked on grid dim "
                        << shrink.gridDim << "\n";
                    pad(indent);
                }
                os_ << "do " << prog_.sym(s->loopVar).name << " = "
                    << printExpr(prog_, s->lb) << ", "
                    << printExpr(prog_, s->ub);
                if (s->step != nullptr) os_ << ", " << printExpr(prog_, s->step);
                os_ << "\n";
                auto it = opsByLoop_.find(s);
                if (it != opsByLoop_.end())
                    for (const CommOp* op : it->second) emitOp(op, indent + 2);
                emitBlock(s->body, indent + 2);
                pad(indent);
                os_ << "end do\n";
                if (shrink.shrinkable) {
                    pad(indent);
                    os_ << "!$omp end do\n";
                }
                break;
            }
            case StmtKind::Goto:
                pad(indent);
                os_ << "go to " << s->gotoTarget;
                guardComment(s);
                os_ << "\n";
                break;
            case StmtKind::Continue:
                pad(indent);
                if (s->label >= 0) os_ << s->label << " ";
                os_ << "continue\n";
                break;
        }
    }

    void pad(int indent) { os_ << std::string(static_cast<size_t>(indent), ' '); }

    const SpmdLowering& low_;
    const Program& prog_;
    std::ostringstream os_;
    std::vector<const CommOp*> topOps_;
    std::unordered_map<const Stmt*, std::vector<const CommOp*>> opsByLoop_;
};

/// Shared-memory (OpenMP-style) backend: one SMP node with the SP2's
/// per-CPU flop rate, so comparing it against MessagePassingTarget
/// isolates the communication architecture. Lowering structure is
/// shared with mp (Target::lower); what changes is the pricing — no
/// transfer phase, no per-message α, costs dominated by barriers,
/// combiner trees, coherence reads and false sharing (ShmCostModel) —
/// and the emitted idiom (threadprivate copies, combiner trees).
class SharedMemoryTarget final : public Target {
public:
    [[nodiscard]] TargetKind kind() const override {
        return TargetKind::SharedMemory;
    }
    [[nodiscard]] const char* displayName() const override {
        return "shared memory (OpenMP-style SMP)";
    }

    [[nodiscard]] MappingCostHooks mappingHooks(
        const TargetConfig& config) const override {
        const ShmCostModel sm = config.shmModel;
        MappingCostHooks hooks;
        // A fixed-owner element reaching its consumer each iteration is
        // a barrier plus one line ping-ponging between the pair.
        hooks.elementMessage = [sm](double bytes) {
            return sm.barrier() + sm.sharedRead(bytes) +
                   sm.falseSharing(bytes, 2);
        };
        hooks.reduceCombine = [sm](int procs, double bytes) {
            (void)bytes;  // the combiner tree moves one line per stage
            return sm.combine(procs);
        };
        // Replication's "broadcast" is every thread pulling the value's
        // line: contended read plus the sub-line sharing penalty.
        hooks.broadcast = [sm](int procs, double bytes) {
            if (procs <= 1) return 0.0;
            return sm.barrier() + sm.sharedRead(bytes, procs) +
                   sm.falseSharing(bytes, procs);
        };
        return hooks;
    }

    [[nodiscard]] CostBreakdown predictCost(
        const SpmdLowering& low, const TargetConfig& config) const override {
        CostEvaluator eval(low, config.costModel, &config.shmModel);
        return eval.evaluate();
    }

    [[nodiscard]] DetailedCost predictDetailed(
        const SpmdLowering& low, const TargetConfig& config) const override {
        CostEvaluator eval(low, config.costModel, &config.shmModel);
        return eval.evaluateDetailed();
    }

    [[nodiscard]] CostReport costReport(
        const SpmdLowering& low, const TargetConfig& config) const override {
        return buildCostReport(low, config.costModel, &config.shmModel);
    }

    [[nodiscard]] std::string emitText(
        const SpmdLowering& low) const override {
        return ShmEmitter(low).run();
    }

    [[nodiscard]] obs::Json describe(
        const TargetConfig& config) const override {
        const ShmCostModel& sm = config.shmModel;
        obs::Json j = obs::Json::object();
        j.set("kind", name());
        j.set("display", displayName());
        j.set("barrier_sec", sm.barrierSec);
        j.set("combine_stage_sec", sm.combineStageSec);
        j.set("line_sec", sm.lineSec);
        j.set("shared_bw_sec_per_byte", sm.sharedBwSecPerByte);
        j.set("cache_line_bytes", sm.cacheLineBytes);
        j.set("flop_sec", config.costModel.flopSec);
        j.set("elem_bytes", config.costModel.elemBytes);
        return j;
    }
};

}  // namespace

const Target& sharedMemoryTarget() {
    static const SharedMemoryTarget t;
    return t;
}

}  // namespace target_detail
}  // namespace phpf
