#include "spmd/spmd_text.h"
#include "target/target.h"

namespace phpf {
namespace target_detail {

namespace {

/// The paper's evaluated backend: distributed-memory SPMD on the SP2
/// model. This class is a straight port of the pre-Target code paths —
/// CostEvaluator with the SP2 CostModel, emitSpmdText, and the
/// CostModel-based decision-log pricing — so everything it produces is
/// bit-identical to the pre-refactor compiler.
class MessagePassingTarget final : public Target {
public:
    [[nodiscard]] TargetKind kind() const override {
        return TargetKind::MessagePassing;
    }
    [[nodiscard]] const char* displayName() const override {
        return "message passing (SP2 distributed memory)";
    }

    [[nodiscard]] MappingCostHooks mappingHooks(
        const TargetConfig& config) const override {
        // Explicit hooks, but the exact CostModel formulas MappingPass
        // defaults to — the log's costs stay bit-identical.
        const CostModel cm = config.costModel;
        MappingCostHooks hooks;
        hooks.elementMessage = [cm](double bytes) { return cm.message(bytes); };
        hooks.reduceCombine = [cm](int procs, double bytes) {
            return cm.reduce(procs, bytes);
        };
        hooks.broadcast = [cm](int procs, double bytes) {
            return cm.broadcast(procs, bytes);
        };
        return hooks;
    }

    [[nodiscard]] CostBreakdown predictCost(
        const SpmdLowering& low, const TargetConfig& config) const override {
        CostEvaluator eval(low, config.costModel);
        return eval.evaluate();
    }

    [[nodiscard]] DetailedCost predictDetailed(
        const SpmdLowering& low, const TargetConfig& config) const override {
        CostEvaluator eval(low, config.costModel);
        return eval.evaluateDetailed();
    }

    [[nodiscard]] CostReport costReport(
        const SpmdLowering& low, const TargetConfig& config) const override {
        return buildCostReport(low, config.costModel);
    }

    [[nodiscard]] std::string emitText(
        const SpmdLowering& low) const override {
        return emitSpmdText(low);
    }

    [[nodiscard]] obs::Json describe(
        const TargetConfig& config) const override {
        const CostModel& cm = config.costModel;
        obs::Json j = obs::Json::object();
        j.set("kind", name());
        j.set("display", displayName());
        j.set("alpha_sec", cm.alphaSec);
        j.set("beta_sec_per_byte", cm.betaSecPerByte);
        j.set("flop_sec", cm.flopSec);
        j.set("elem_bytes", cm.elemBytes);
        j.set("combine_messages", cm.combineMessages);
        return j;
    }
};

}  // namespace

const Target& messagePassingTarget() {
    static const MessagePassingTarget t;
    return t;
}

}  // namespace target_detail
}  // namespace phpf
