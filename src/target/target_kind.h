#pragma once

#include <cstdint>
#include <string_view>

namespace phpf {

/// What machine model the compilation lowers FOR. The kind selects a
/// Target implementation (src/target/target.h) that owns lowering, cost
/// modeling, and SPMD-text/report emission; it is part of the artifact
/// identity (the service fingerprints it) because the same kernel
/// produces different predicted tables, different emitted text, and
/// different simulation accounting per target.
enum class TargetKind : std::uint8_t {
    /// Message-passing SPMD on the distributed-memory SP2 model of the
    /// paper's evaluation: privatized variables are per-processor
    /// copies, cross-processor reads are explicit placed messages, and
    /// reductions combine via log2(P) message stages.
    MessagePassing,
    /// Shared-memory (OpenMP-style) threads on one SMP node: privatized
    /// variables are threadprivate copies, remote reads are coherence
    /// traffic on shared lines (no transfer phase), and reductions
    /// combine through an unordered combiner tree between barriers.
    SharedMemory,
};

/// Stable short name: "mp" | "shm" (the CLI/jobs-file/report spelling).
[[nodiscard]] inline const char* targetKindName(TargetKind k) {
    return k == TargetKind::SharedMemory ? "shm" : "mp";
}

/// Parses "mp" | "shm"; returns false (and leaves `out` untouched) on
/// anything else.
[[nodiscard]] inline bool parseTargetKind(std::string_view s,
                                          TargetKind* out) {
    if (s == "mp") {
        *out = TargetKind::MessagePassing;
        return true;
    }
    if (s == "shm") {
        *out = TargetKind::SharedMemory;
        return true;
    }
    return false;
}

}  // namespace phpf
