#include "ir/builder.h"
#include "programs/programs.h"

namespace phpf::programs {

Program fig1(std::int64_t n) {
    ProgramBuilder b("fig1");
    auto A = b.realArray("A", {n + 1});
    auto B = b.realArray("B", {n});
    auto C = b.realArray("C", {n});
    auto D = b.realArray("D", {n + 1});
    auto E = b.realArray("E", {n});
    auto F = b.realArray("F", {n});
    auto m = b.integerVar("m");
    auto x = b.realVar("x");
    auto y = b.realVar("y");
    auto z = b.realVar("z");
    auto i = b.integerVar("i");

    b.distribute(A, {{DistKind::Block, 0}});
    // Align (i) with A(i) :: B, C, D
    for (SymbolId s : {B, C, D})
        b.align(s, A, {{AlignDim::Kind::SourceDim, 0, 0, 0}});
    // Align (i) with A(*) :: E, F
    for (SymbolId s : {E, F})
        b.align(s, A, {{AlignDim::Kind::Replicate, -1, 0, 0}});

    b.assign(b.idx(m), b.lit(std::int64_t{2}));
    b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
        b.assign(b.idx(m), b.idx(m) + b.lit(std::int64_t{1}));      // S1
        b.assign(b.idx(x), b.ref(B, {b.idx(i)}) + b.ref(C, {b.idx(i)}));  // S2
        b.assign(b.idx(y), b.ref(A, {b.idx(i)}) + b.ref(B, {b.idx(i)}));  // S3
        b.assign(b.idx(z), b.ref(E, {b.idx(i)}) + b.ref(F, {b.idx(i)}));  // S4
        b.assign(b.ref(A, {b.idx(i) + b.lit(std::int64_t{1})}),
                 b.idx(y) / b.idx(z));                               // S5
        b.assign(b.ref(D, {b.idx(m)}), b.idx(x) / b.idx(z));         // S6
    });
    return b.finish();
}

Program fig2(std::int64_t n) {
    ProgramBuilder b("fig2");
    auto H = b.realArray("H", {n, n});
    auto G = b.realArray("G", {n, n});
    auto A = b.realArray("A", {n});
    auto B = b.integerArray("B", {n});
    auto C = b.integerArray("C", {n});
    auto p = b.integerVar("p");
    auto q = b.integerVar("q");
    auto i = b.integerVar("i");

    b.distribute(H, {{DistKind::Block, 0}, {DistKind::Serial, 0}});
    b.alignIdentity(G, H);
    // Align A(i) with H(i,*)
    b.align(A, H,
            {{AlignDim::Kind::SourceDim, 0, 0, 0},
             {AlignDim::Kind::Replicate, -1, 0, 0}});

    b.doLoop(i, b.lit(std::int64_t{1}), b.lit(n), [&] {
        b.assign(b.idx(p), b.ref(B, {b.idx(i)}));  // not needed on all procs
        b.assign(b.idx(q), b.ref(C, {b.idx(i)}));  // needed on all procs
        b.assign(b.ref(A, {b.idx(i)}),
                 b.ref(H, {b.idx(i), b.idx(p)}) +
                     b.ref(G, {b.idx(q), b.idx(i)}));
    });
    return b.finish();
}

Program fig4(std::int64_t n) {
    ProgramBuilder b("fig4");
    auto A = b.realArray("A", {n, n, n});
    auto B = b.realArray("B", {2 * n, n, n});
    auto s = b.integerVar("s");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");
    auto k = b.integerVar("k");

    const std::vector<DistSpec> spec{{DistKind::Block, 0},
                                     {DistKind::Block, 0},
                                     {DistKind::Serial, 0}};
    b.distribute(A, spec);
    b.distribute(B, spec);
    b.processors(2);

    b.doLoop(i, b.lit(std::int64_t{1}), b.lit(n), [&] {
        b.doLoop(j, b.lit(std::int64_t{1}), b.lit(n), [&] {
            b.assign(b.idx(s), b.idx(i) + b.idx(j));
            b.doLoop(k, b.lit(std::int64_t{1}), b.lit(n), [&] {
                b.assign(b.ref(A, {b.idx(i), b.idx(j), b.idx(k)}),
                         b.lit(1.0));  // AlignLevel(A(i,j,k)) = 2
                b.assign(b.ref(B, {b.idx(s), b.idx(j), b.idx(k)}),
                         b.lit(2.0));  // AlignLevel(B(s,j,k)) = 3
            });
        });
    });
    return b.finish();
}

Program fig5(std::int64_t n) {
    ProgramBuilder b("fig5");
    auto A = b.realArray("A", {n, n});
    auto B = b.realArray("B", {n});
    auto s = b.realVar("s");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");

    b.processors(2);
    b.distribute(A, {{DistKind::Block, 0}, {DistKind::Block, 0}});
    // Align B(i) with A(i,*)
    b.align(B, A,
            {{AlignDim::Kind::SourceDim, 0, 0, 0},
             {AlignDim::Kind::Replicate, -1, 0, 0}});

    b.doLoop(i, b.lit(std::int64_t{1}), b.lit(n), [&] {
        b.assign(b.idx(s), b.lit(0.0));
        b.doLoop(j, b.lit(std::int64_t{1}), b.lit(n), [&] {
            b.assign(b.idx(s), b.idx(s) + b.ref(A, {b.idx(i), b.idx(j)}));
        });
        b.assign(b.ref(B, {b.idx(i)}), b.idx(s));
    });
    return b.finish();
}

Program fig6(std::int64_t nx, std::int64_t ny, std::int64_t nz) {
    ProgramBuilder b("fig6");
    auto rsd = b.realArray("rsd", {5, nx, ny, nz});
    auto c = b.realArray("c", {nx, ny, 5});
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");
    auto k = b.integerVar("k");

    b.processors(2);
    b.distribute(rsd, {{DistKind::Serial, 0},
                       {DistKind::Serial, 0},
                       {DistKind::Block, 0},
                       {DistKind::Block, 0}});

    b.independentDo(k, b.lit(std::int64_t{2}), b.lit(nz - 1), {c}, [&] {
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(ny - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(nx - 1), [&] {
                b.assign(
                    b.ref(c, {b.idx(i), b.idx(j), b.lit(std::int64_t{1})}),
                    b.lit(0.25) *
                        (b.ref(rsd, {b.lit(std::int64_t{1}), b.idx(i),
                                     b.idx(j), b.idx(k)}) +
                         b.ref(rsd, {b.lit(std::int64_t{2}), b.idx(i),
                                     b.idx(j), b.idx(k)})));
            });
        });
        b.doLoop(j, b.lit(std::int64_t{3}), b.lit(ny - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(nx - 1), [&] {
                b.assign(
                    b.ref(rsd, {b.lit(std::int64_t{1}), b.idx(i), b.idx(j),
                                b.idx(k)}),
                    b.ref(rsd, {b.lit(std::int64_t{1}), b.idx(i), b.idx(j),
                                b.idx(k)}) +
                        b.ref(c, {b.idx(i), b.idx(j) - b.lit(std::int64_t{1}),
                                  b.lit(std::int64_t{1})}));
            });
        });
    });
    return b.finish();
}

Program fig7(std::int64_t n) {
    ProgramBuilder b("fig7");
    auto A = b.realArray("A", {n});
    auto B = b.realArray("B", {n});
    auto C = b.realArray("C", {n});
    auto i = b.integerVar("i");

    b.distribute(A, {{DistKind::Block, 0}});
    b.alignIdentity(B, A);
    b.alignIdentity(C, A);

    b.doLoop(i, b.lit(std::int64_t{1}), b.lit(n), [&] {
        b.ifStmt(
            ne(b.ref(B, {b.idx(i)}), b.lit(0.0)),
            [&] {
                b.assign(b.ref(A, {b.idx(i)}),
                         b.ref(A, {b.idx(i)}) / b.ref(B, {b.idx(i)}));
                b.ifStmt(b.ref(B, {b.idx(i)}) < b.lit(0.0),
                         [&] { b.gotoStmt(100); });
            },
            [&] {
                b.assign(b.ref(A, {b.idx(i)}), b.ref(C, {b.idx(i)}));
                b.assign(b.ref(C, {b.idx(i)}),
                         b.ref(C, {b.idx(i)}) * b.ref(C, {b.idx(i)}));
            });
        b.continueStmt(100);
    });
    return b.finish();
}

}  // namespace phpf::programs
