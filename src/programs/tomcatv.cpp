#include "ir/builder.h"
#include "programs/programs.h"

namespace phpf::programs {

// TOMCATV's main computational loop nest (SPEC92FP mesh generation with
// Thompson's solver), reduced to the structure that drives the paper's
// Table 1: per-point privatizable scalars (xx, yx, xy, yy, a, bb, cc)
// computed from 5-point stencils of x and y, feeding residual arrays rx
// and ry, followed by the relaxation update. Arrays are distributed
// (*,block) as in the paper.
Program tomcatv(std::int64_t n, std::int64_t niter) {
    ProgramBuilder b("tomcatv");
    auto X = b.realArray("x", {n, n});
    auto Y = b.realArray("y", {n, n});
    auto RX = b.realArray("rx", {n, n});
    auto RY = b.realArray("ry", {n, n});
    auto xx = b.realVar("xx");
    auto yx = b.realVar("yx");
    auto xy = b.realVar("xy");
    auto yy = b.realVar("yy");
    auto a = b.realVar("a");
    auto bb = b.realVar("bb");
    auto cc = b.realVar("cc");
    auto it = b.integerVar("iter");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");

    const std::vector<DistSpec> colBlock{{DistKind::Serial, 0},
                                         {DistKind::Block, 0}};
    b.distribute(X, colBlock);
    b.alignIdentity(Y, X);
    b.alignIdentity(RX, X);
    b.alignIdentity(RY, X);

    auto one = [&] { return b.lit(std::int64_t{1}); };
    auto at = [&](SymbolId arr, Ex ii, Ex jj) { return b.ref(arr, {ii, jj}); };

    b.doLoop(it, b.lit(std::int64_t{1}), b.lit(niter), [&] {
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
                b.assign(b.idx(xx), at(X, b.idx(i) + one(), b.idx(j)) -
                                        at(X, b.idx(i) - one(), b.idx(j)));
                b.assign(b.idx(yx), at(Y, b.idx(i) + one(), b.idx(j)) -
                                        at(Y, b.idx(i) - one(), b.idx(j)));
                b.assign(b.idx(xy), at(X, b.idx(i), b.idx(j) + one()) -
                                        at(X, b.idx(i), b.idx(j) - one()));
                b.assign(b.idx(yy), at(Y, b.idx(i), b.idx(j) + one()) -
                                        at(Y, b.idx(i), b.idx(j) - one()));
                b.assign(b.idx(a), b.lit(0.25) * (b.idx(xy) * b.idx(xy) +
                                                  b.idx(yy) * b.idx(yy)));
                b.assign(b.idx(bb), b.lit(0.25) * (b.idx(xx) * b.idx(xx) +
                                                   b.idx(yx) * b.idx(yx)));
                b.assign(b.idx(cc), b.lit(0.125) * (b.idx(xx) * b.idx(xy) +
                                                    b.idx(yx) * b.idx(yy)));
                b.assign(
                    at(RX, b.idx(i), b.idx(j)),
                    b.idx(a) * (at(X, b.idx(i) - one(), b.idx(j)) -
                                b.lit(2.0) * at(X, b.idx(i), b.idx(j)) +
                                at(X, b.idx(i) + one(), b.idx(j))) +
                        b.idx(bb) * (at(X, b.idx(i), b.idx(j) - one()) -
                                     b.lit(2.0) * at(X, b.idx(i), b.idx(j)) +
                                     at(X, b.idx(i), b.idx(j) + one())) -
                        b.idx(cc));
                b.assign(
                    at(RY, b.idx(i), b.idx(j)),
                    b.idx(a) * (at(Y, b.idx(i) - one(), b.idx(j)) -
                                b.lit(2.0) * at(Y, b.idx(i), b.idx(j)) +
                                at(Y, b.idx(i) + one(), b.idx(j))) +
                        b.idx(bb) * (at(Y, b.idx(i), b.idx(j) - one()) -
                                     b.lit(2.0) * at(Y, b.idx(i), b.idx(j)) +
                                     at(Y, b.idx(i), b.idx(j) + one())) -
                        b.idx(cc));
            });
        });
        // Relaxation update.
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
                b.assign(at(X, b.idx(i), b.idx(j)),
                         at(X, b.idx(i), b.idx(j)) +
                             b.lit(0.3) * at(RX, b.idx(i), b.idx(j)));
                b.assign(at(Y, b.idx(i), b.idx(j)),
                         at(Y, b.idx(i), b.idx(j)) +
                             b.lit(0.3) * at(RY, b.idx(i), b.idx(j)));
            });
        });
    });
    return b.finish();
}

}  // namespace phpf::programs
