#include "ir/builder.h"
#include "programs/programs.h"

namespace phpf::programs {

// LINPACK DGEFA: LU factorization with partial pivoting. The matrix is
// partitioned column-wise in a cyclic manner, (*,cyclic), exactly as in
// the paper's Table 2 experiment. The MAXLOC pivot search over column k
// is the guarded reduction the paper's Section 2.3 optimization maps to
// the single processor owning that column.
Program dgefa(std::int64_t n) {
    ProgramBuilder b("dgefa");
    auto A = b.realArray("A", {n, n});
    auto t = b.realVar("t");
    auto l = b.integerVar("l");
    auto tmp = b.realVar("tmp");
    auto k = b.integerVar("k");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");

    b.distribute(A, {{DistKind::Serial, 0}, {DistKind::Cyclic, 0}});

    auto at = [&](Ex ii, Ex jj) { return b.ref(A, {ii, jj}); };
    auto one = [&] { return b.lit(std::int64_t{1}); };

    b.doLoop(k, b.lit(std::int64_t{1}), b.lit(n - 1), [&] {
        // MAXLOC over column k (partial pivoting).
        b.assign(b.idx(t), b.lit(0.0));
        b.assign(b.idx(l), b.idx(k));
        b.doLoop(i, b.idx(k), b.lit(n), [&] {
            b.ifStmt(b.call(Intrinsic::Abs, {at(b.idx(i), b.idx(k))}) >
                         b.idx(t),
                     [&] {
                         b.assign(b.idx(t), b.call(Intrinsic::Abs,
                                                   {at(b.idx(i), b.idx(k))}));
                         b.assign(b.idx(l), b.idx(i));
                     });
        });
        // Swap rows l and k across all remaining columns.
        b.doLoop(j, b.idx(k), b.lit(n), [&] {
            b.assign(b.idx(tmp), at(b.idx(l), b.idx(j)));
            b.assign(at(b.idx(l), b.idx(j)), at(b.idx(k), b.idx(j)));
            b.assign(at(b.idx(k), b.idx(j)), b.idx(tmp));
        });
        // Scale the pivot column.
        b.doLoop(i, b.idx(k) + one(), b.lit(n), [&] {
            b.assign(at(b.idx(i), b.idx(k)),
                     at(b.idx(i), b.idx(k)) / at(b.idx(k), b.idx(k)));
        });
        // Rank-1 update of the trailing submatrix.
        b.doLoop(j, b.idx(k) + one(), b.lit(n), [&] {
            b.doLoop(i, b.idx(k) + one(), b.lit(n), [&] {
                b.assign(at(b.idx(i), b.idx(j)),
                         at(b.idx(i), b.idx(j)) -
                             at(b.idx(i), b.idx(k)) * at(b.idx(k), b.idx(j)));
            });
        });
    });
    return b.finish();
}

}  // namespace phpf::programs
