#pragma once

#include "ir/program.h"

namespace phpf::programs {

/// The exact example programs of the paper's figures, built through the
/// IR builder. Each function documents the compiler behaviour the paper
/// derives from the code.

/// Fig. 1 — different alignments of privatized scalars: induction
/// variable m (no alignment), x (consumer alignment), y (producer
/// alignment), z (privatization without alignment).
[[nodiscard]] Program fig1(std::int64_t n);

/// Fig. 2 — availability requirements for subscripts: p's consumer is
/// A(i) (subscript of a no-comm reference); q must be replicated.
[[nodiscard]] Program fig2(std::int64_t n);

/// Fig. 4 — AlignLevel: A(i,j,k) has AlignLevel 2, B(s,j,k) has 3.
[[nodiscard]] Program fig4(std::int64_t n);

/// Fig. 5 — scalar s in a sum reduction over the j loop; aligned with
/// row i of A, replicated across the second grid dimension.
[[nodiscard]] Program fig5(std::int64_t n);

/// Fig. 6 — APPSP fragment needing partial privatization of c.
[[nodiscard]] Program fig6(std::int64_t nx, std::int64_t ny, std::int64_t nz);

/// Fig. 7 — privatized execution of control flow statements.
[[nodiscard]] Program fig7(std::int64_t n);

/// TOMCATV relaxation kernel (SPEC92FP mesh generator), (*,block)
/// distribution; privatizable scalars xx, yx, xy, yy, a, b, c per inner
/// iteration. Table 1.
[[nodiscard]] Program tomcatv(std::int64_t n, std::int64_t niter);

/// DGEFA (LINPACK) Gaussian elimination with partial pivoting on a
/// (*,cyclic) matrix; MAXLOC reduction scalars t and l. Table 2.
[[nodiscard]] Program dgefa(std::int64_t n);

/// APPSP-style pseudo-application: 3-D sweeps with an INDEPENDENT,
/// NEW(c) work array. `oneD` selects the 1-D (k-block with a modelled
/// transpose for the z sweep) vs. the 2-D ((j,k) block) distribution.
/// Table 3.
[[nodiscard]] Program appsp(std::int64_t nx, std::int64_t ny, std::int64_t nz,
                            std::int64_t niter, bool oneD);

/// ADI-style alternating-direction sweeps: a line-solve recurrence
/// along the serial dimension (local) and along the distributed
/// dimension (per-block-boundary pipeline communication), plus a
/// privatizable update scalar. Complementary stress test for the
/// placement analysis.
[[nodiscard]] Program adi(std::int64_t n, std::int64_t niter);

}  // namespace phpf::programs
