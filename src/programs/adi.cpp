#include "ir/builder.h"
#include "programs/programs.h"

namespace phpf::programs {

// ADI-style alternating-direction sweeps (a classic HPF line-solve
// pattern, complementary to the paper's benchmarks): the x sweep
// recurrence runs along the serial dimension (local), the y sweep
// recurrence crosses the distributed dimension — its boundary value
// du(i,j-1) must be communicated once per j block boundary and, unlike
// the stencil codes, cannot be hoisted out of the j loop (du is written
// in the same loop). The update uses a privatizable scalar.
Program adi(std::int64_t n, std::int64_t niter) {
    ProgramBuilder b("adi");
    auto U = b.realArray("u", {n, n});
    auto DU = b.realArray("du", {n, n});
    auto tmp = b.realVar("tmp");
    auto it = b.integerVar("iter");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");

    b.distribute(U, {{DistKind::Serial, 0}, {DistKind::Block, 0}});
    b.alignIdentity(DU, U);

    auto one = [&] { return b.lit(std::int64_t{1}); };
    auto at = [&](SymbolId a, Ex ii, Ex jj) { return b.ref(a, {ii, jj}); };

    b.doLoop(it, b.lit(std::int64_t{1}), b.lit(niter), [&] {
        // x-direction: recurrence along the serial dimension — local.
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
                b.assign(at(DU, b.idx(i), b.idx(j)),
                         b.lit(0.5) * at(DU, b.idx(i) - one(), b.idx(j)) +
                             at(U, b.idx(i), b.idx(j)));
            });
        });
        // y-direction: recurrence along the distributed dimension — the
        // boundary column crosses processors every block.
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
                b.assign(at(DU, b.idx(i), b.idx(j)),
                         b.lit(0.5) * at(DU, b.idx(i), b.idx(j) - one()) +
                             at(U, b.idx(i), b.idx(j)));
            });
        });
        // Relaxation update with a privatizable scalar.
        b.doLoop(j, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
            b.doLoop(i, b.lit(std::int64_t{2}), b.lit(n - 1), [&] {
                b.assign(b.idx(tmp),
                         b.lit(0.2) * at(DU, b.idx(i), b.idx(j)));
                b.assign(at(U, b.idx(i), b.idx(j)),
                         at(U, b.idx(i), b.idx(j)) - b.idx(tmp));
            });
        });
    });
    return b.finish();
}

}  // namespace phpf::programs
