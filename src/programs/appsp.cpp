#include "ir/builder.h"
#include "programs/programs.h"

namespace phpf::programs {

// APPSP-style pseudo-application (NAS benchmarks): per-iteration flux
// computation into a work array c that is privatizable with respect to
// the k loop (INDEPENDENT, NEW(c)) but not the j loop, a j-direction
// sweep consuming c, and a z-direction sweep.
//
// oneD = true  : (*,*,*,block) distribution; the z sweep runs through an
//                explicitly transposed copy (the paper's 1-D version
//                redistributes in sweepz).
// oneD = false : fixed (*,*,block,block) distribution on a 2-D grid; the
//                z sweep is a k-direction stencil with neighbour shifts.
Program appsp(std::int64_t nx, std::int64_t ny, std::int64_t nz,
              std::int64_t niter, bool oneD) {
    ProgramBuilder b(oneD ? "appsp_1d" : "appsp_2d");
    auto rsd = b.realArray("rsd", {5, nx, ny, nz});
    auto c = b.realArray("c", {nx, ny, 5});
    auto it = b.integerVar("iter");
    auto i = b.integerVar("i");
    auto j = b.integerVar("j");
    auto k = b.integerVar("k");

    SymbolId rsdt = kNoSymbol;
    if (oneD) {
        b.processors(1);
        b.distribute(rsd, {{DistKind::Serial, 0},
                           {DistKind::Serial, 0},
                           {DistKind::Serial, 0},
                           {DistKind::Block, 0}});
        rsdt = b.realArray("rsdt", {nx, ny, nz});
        b.distribute(rsdt, {{DistKind::Serial, 0},
                            {DistKind::Block, 0},
                            {DistKind::Serial, 0}});
    } else {
        b.processors(2);
        b.distribute(rsd, {{DistKind::Serial, 0},
                           {DistKind::Serial, 0},
                           {DistKind::Block, 0},
                           {DistKind::Block, 0}});
    }

    auto I1 = [&] { return b.lit(std::int64_t{1}); };
    auto I2 = [&] { return b.lit(std::int64_t{2}); };
    auto R = [&](std::int64_t m, Ex ii, Ex jj, Ex kk) {
        return b.ref(rsd, {b.lit(m), ii, jj, kk});
    };

    b.doLoop(it, b.lit(std::int64_t{1}), b.lit(niter), [&] {
        // --- j-direction sweep with the privatizable work array c ---
        b.independentDo(k, I2(), b.lit(nz - 1), {c}, [&] {
            b.doLoop(j, I2(), b.lit(ny - 1), [&] {
                b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                    b.assign(b.ref(c, {b.idx(i), b.idx(j), I1()}),
                             b.lit(0.25) * (R(1, b.idx(i), b.idx(j), b.idx(k)) +
                                            R(2, b.idx(i), b.idx(j), b.idx(k))));
                    b.assign(b.ref(c, {b.idx(i), b.idx(j), I2()}),
                             b.lit(0.25) * (R(2, b.idx(i), b.idx(j), b.idx(k)) -
                                            R(1, b.idx(i), b.idx(j), b.idx(k))));
                });
            });
            b.doLoop(j, b.lit(std::int64_t{3}), b.lit(ny - 1), [&] {
                b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                    b.assign(R(1, b.idx(i), b.idx(j), b.idx(k)),
                             R(1, b.idx(i), b.idx(j), b.idx(k)) +
                                 b.ref(c, {b.idx(i), b.idx(j) - I1(), I1()}) -
                                 b.ref(c, {b.idx(i), b.idx(j), I2()}));
                });
            });
        });

        // --- z-direction sweep ---
        if (oneD) {
            // Redistribute (transpose) so the k direction is local, sweep,
            // and redistribute back — the paper's sweepz strategy.
            b.doLoop(k, I2(), b.lit(nz - 1), [&] {
                b.doLoop(j, I2(), b.lit(ny - 1), [&] {
                    b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                        b.assign(b.ref(rsdt, {b.idx(i), b.idx(j), b.idx(k)}),
                                 R(2, b.idx(i), b.idx(j), b.idx(k)));
                    });
                });
            });
            b.doLoop(k, b.lit(std::int64_t{3}), b.lit(nz - 1), [&] {
                b.doLoop(j, I2(), b.lit(ny - 1), [&] {
                    b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                        b.assign(
                            b.ref(rsdt, {b.idx(i), b.idx(j), b.idx(k)}),
                            b.ref(rsdt, {b.idx(i), b.idx(j), b.idx(k)}) +
                                b.lit(0.5) *
                                    b.ref(rsdt, {b.idx(i), b.idx(j),
                                                 b.idx(k) - I1()}));
                    });
                });
            });
            b.doLoop(k, b.lit(std::int64_t{3}), b.lit(nz - 1), [&] {
                b.doLoop(j, I2(), b.lit(ny - 1), [&] {
                    b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                        b.assign(R(2, b.idx(i), b.idx(j), b.idx(k)),
                                 b.ref(rsdt, {b.idx(i), b.idx(j), b.idx(k)}));
                    });
                });
            });
        } else {
            b.doLoop(k, b.lit(std::int64_t{3}), b.lit(nz - 1), [&] {
                b.doLoop(j, I2(), b.lit(ny - 1), [&] {
                    b.doLoop(i, I2(), b.lit(nx - 1), [&] {
                        b.assign(R(2, b.idx(i), b.idx(j), b.idx(k)),
                                 R(2, b.idx(i), b.idx(j), b.idx(k)) +
                                     b.lit(0.5) * R(1, b.idx(i), b.idx(j),
                                                    b.idx(k) - I1()));
                    });
                });
            });
        }
    });
    return b.finish();
}

}  // namespace phpf::programs
