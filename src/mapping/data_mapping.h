#pragma once

#include <vector>

#include "ir/program.h"
#include "mapping/dist.h"
#include "mapping/proc_grid.h"

namespace phpf {

/// A set of processors described per grid dimension: a specific
/// coordinate, or -1 meaning "every coordinate along this dimension".
/// This is the shape ownership queries take under HPF mappings —
/// replication is always axis-aligned.
struct GridSet {
    std::vector<int> coord;  ///< per grid dim; -1 = all

    [[nodiscard]] bool isAllProcs() const {
        for (int c : coord)
            if (c != -1) return false;
        return true;
    }
    [[nodiscard]] bool isSingleProc() const {
        for (int c : coord)
            if (c == -1) return false;
        return true;
    }
    [[nodiscard]] int procCount(const ProcGrid& g) const {
        int n = 1;
        for (int d = 0; d < g.rank(); ++d)
            if (coord[static_cast<size_t>(d)] == -1) n *= g.extent(d);
        return n;
    }
    [[nodiscard]] bool contains(const std::vector<int>& c) const {
        for (size_t d = 0; d < coord.size(); ++d)
            if (coord[d] != -1 && coord[d] != c[d]) return false;
        return true;
    }
    friend bool operator==(const GridSet&, const GridSet&) = default;
};

/// Mapping of one array dimension.
struct ArrayDimMap {
    int gridDim = -1;              ///< -1: serial (dimension not partitioned)
    DimDist dist;                  ///< owner arithmetic (target index space)
    std::int64_t alignOffset = 0;  ///< owner(idx) = dist.ownerOf(idx + alignOffset)

    [[nodiscard]] bool partitioned() const { return gridDim >= 0; }
};

/// Fully resolved mapping of one array (or scalar: zero dims) after
/// chasing ALIGN chains down to a DISTRIBUTE.
struct ArrayMap {
    SymbolId symbol = kNoSymbol;
    std::vector<ArrayDimMap> dims;   ///< per array dimension
    std::vector<char> replicatedGrid;  ///< per grid dim: replicated there?
    std::vector<int> fixedCoord;       ///< per grid dim: pinned coordinate, or -1
    bool hasMapping = false;  ///< false: no directive — default replicated

    [[nodiscard]] bool anyPartitionedDim() const {
        for (const auto& d : dims)
            if (d.partitioned()) return true;
        return false;
    }
    /// Replicated on every processor (the penalty case of Section 1).
    [[nodiscard]] bool fullyReplicated() const {
        if (anyPartitionedDim()) return false;
        for (int c : fixedCoord)
            if (c != -1) return false;
        return true;
    }
    /// Grid dim that array dim `d` is partitioned over, or -1.
    [[nodiscard]] int gridDimOf(int d) const {
        return dims[static_cast<size_t>(d)].gridDim;
    }
    /// Array dim partitioned over grid dim `g`, or -1.
    [[nodiscard]] int arrayDimOnGrid(int g) const {
        for (size_t d = 0; d < dims.size(); ++d)
            if (dims[d].gridDim == g) return static_cast<int>(d);
        return -1;
    }

    /// Owner set of element `idx` (empty idx for scalars).
    [[nodiscard]] GridSet ownerOf(const std::vector<std::int64_t>& idx,
                                  const ProcGrid& grid) const;
};

/// Resolves the program's DISTRIBUTE / ALIGN directives against a
/// concrete processor grid. Arrays without directives — and all scalars
/// — default to full replication, matching the naive compiler the paper
/// measures first.
class DataMapping {
public:
    DataMapping(const Program& p, const ProcGrid& grid);

    [[nodiscard]] const ProcGrid& grid() const { return grid_; }
    [[nodiscard]] const ArrayMap& mapOf(SymbolId s) const {
        return maps_[static_cast<size_t>(s)];
    }
    [[nodiscard]] bool isPartitioned(SymbolId s) const {
        return mapOf(s).anyPartitionedDim();
    }
    /// Next free grid dimension when a DISTRIBUTE names fewer dims than
    /// the grid rank (used by partial privatization to pick the
    /// privatized dims).
    [[nodiscard]] int gridRank() const { return grid_.rank(); }

    /// Replace a map (partial privatization rewrites the work array's
    /// mapping).
    void overrideMap(SymbolId s, ArrayMap m) {
        maps_[static_cast<size_t>(s)] = std::move(m);
    }

private:
    ArrayMap resolve(const Program& p, SymbolId s, int depth);

    ProcGrid grid_;
    std::vector<ArrayMap> maps_;
};

}  // namespace phpf
