#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace phpf {

/// A logical multi-dimensional processor grid (HPF PROCESSORS array).
/// Coordinates are row-major linearized for the simulator.
class ProcGrid {
public:
    ProcGrid() : extents_{1} {}
    explicit ProcGrid(std::vector<int> extents) : extents_(std::move(extents)) {
        PHPF_ASSERT(!extents_.empty(), "grid must have rank >= 1");
        for (int e : extents_) PHPF_ASSERT(e >= 1, "grid extents must be >= 1");
    }

    [[nodiscard]] int rank() const { return static_cast<int>(extents_.size()); }
    [[nodiscard]] int extent(int dim) const {
        return extents_[static_cast<size_t>(dim)];
    }
    [[nodiscard]] const std::vector<int>& extents() const { return extents_; }
    [[nodiscard]] int totalProcs() const {
        int n = 1;
        for (int e : extents_) n *= e;
        return n;
    }

    [[nodiscard]] int linearize(const std::vector<int>& coords) const {
        PHPF_ASSERT(coords.size() == extents_.size(), "coord rank mismatch");
        int lin = 0;
        for (size_t d = 0; d < extents_.size(); ++d) {
            PHPF_ASSERT(coords[d] >= 0 && coords[d] < extents_[d],
                        "grid coordinate out of range");
            lin = lin * extents_[d] + coords[d];
        }
        return lin;
    }

    [[nodiscard]] std::vector<int> coordsOf(int linear) const {
        std::vector<int> c(extents_.size());
        for (size_t d = extents_.size(); d-- > 0;) {
            c[d] = linear % extents_[d];
            linear /= extents_[d];
        }
        return c;
    }

    [[nodiscard]] std::string str() const {
        std::string s = "(";
        for (size_t d = 0; d < extents_.size(); ++d) {
            if (d > 0) s += "x";
            s += std::to_string(extents_[d]);
        }
        return s + ")";
    }

private:
    std::vector<int> extents_;
};

}  // namespace phpf
