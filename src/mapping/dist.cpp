#include "mapping/dist.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace phpf {

DimDist::DimDist(DistKind kind, std::int64_t lb, std::int64_t ub, int procs,
                 int blockSize)
    : kind_(kind), lb_(lb), ub_(ub), procs_(procs) {
    PHPF_ASSERT(ub >= lb, "empty distribution range");
    PHPF_ASSERT(procs >= 1, "need at least one processor");
    switch (kind) {
        case DistKind::Block:
            block_ = (extent() + procs - 1) / procs;
            break;
        case DistKind::Cyclic:
            block_ = 1;
            break;
        case DistKind::BlockCyclic:
            PHPF_ASSERT(blockSize >= 1, "CYCLIC(k) needs k >= 1");
            block_ = blockSize;
            break;
        case DistKind::Serial:
            block_ = extent();
            break;
    }
    blockMagic_ = magicFor(static_cast<std::uint64_t>(block_));
    procsMagic_ = magicFor(static_cast<std::uint64_t>(procs_));
}

std::uint64_t DimDist::magicFor(std::uint64_t d) const {
    // Exactness of the multiply-high needs off * d < 2^64 for every
    // offset this dim can produce; off < extent and d <= max(extent,
    // procs), so extent < 2^31 (procs is an int) is sufficient.
    if (d <= 1 || extent() >= (std::int64_t{1} << 31)) return 0;
    return ~std::uint64_t{0} / d + 1;
}

std::int64_t DimDist::localCount(int p) const {
    return localCountInRange(p, lb_, ub_);
}

std::int64_t DimDist::localCountInRange(int p, std::int64_t first,
                                        std::int64_t last) const {
    first = std::max(first, lb_);
    last = std::min(last, ub_);
    if (first > last) return 0;
    const std::int64_t n = last - first + 1;
    switch (kind_) {
        case DistKind::Serial:
            return n;
        case DistKind::Block: {
            // Owned global range of p is [lb + p*b, lb + (p+1)*b - 1].
            const std::int64_t ownedFirst = lb_ + static_cast<std::int64_t>(p) * block_;
            const std::int64_t ownedLast = std::min(ub_, ownedFirst + block_ - 1);
            const std::int64_t lo = std::max(first, ownedFirst);
            const std::int64_t hi = std::min(last, ownedLast);
            return hi >= lo ? hi - lo + 1 : 0;
        }
        case DistKind::Cyclic: {
            // Indices congruent to p modulo procs within [first, last].
            const std::int64_t offFirst = first - lb_;
            std::int64_t firstOwned = offFirst + ((p - offFirst) % procs_ + procs_) % procs_;
            if (firstOwned > last - lb_) return 0;
            return (last - lb_ - firstOwned) / procs_ + 1;
        }
        case DistKind::BlockCyclic: {
            // Walk whole blocks; ranges here are small in practice
            // (benchmarks use BLOCK/CYCLIC), so O(blocks) is fine.
            std::int64_t count = 0;
            for (std::int64_t blockStart = lb_; blockStart <= ub_;
                 blockStart += block_) {
                const int owner =
                    static_cast<int>(((blockStart - lb_) / block_) % procs_);
                if (owner != p) continue;
                const std::int64_t blockEnd =
                    std::min(ub_, blockStart + block_ - 1);
                const std::int64_t lo = std::max(first, blockStart);
                const std::int64_t hi = std::min(last, blockEnd);
                if (hi >= lo) count += hi - lo + 1;
            }
            return count;
        }
    }
    return 0;
}

std::int64_t DimDist::maxLocalCount() const {
    std::int64_t mx = 0;
    for (int p = 0; p < procs_; ++p) mx = std::max(mx, localCount(p));
    return mx;
}

}  // namespace phpf
