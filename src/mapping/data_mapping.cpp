#include "mapping/data_mapping.h"

#include "support/diagnostics.h"

namespace phpf {

GridSet ArrayMap::ownerOf(const std::vector<std::int64_t>& idx,
                          const ProcGrid& grid) const {
    PHPF_ASSERT(idx.size() == dims.size(), "subscript rank mismatch");
    GridSet out;
    out.coord.assign(static_cast<size_t>(grid.rank()), -1);
    for (int g = 0; g < grid.rank(); ++g) {
        if (fixedCoord[static_cast<size_t>(g)] >= 0)
            out.coord[static_cast<size_t>(g)] = fixedCoord[static_cast<size_t>(g)];
    }
    for (size_t d = 0; d < dims.size(); ++d) {
        const ArrayDimMap& m = dims[d];
        if (!m.partitioned()) continue;
        out.coord[static_cast<size_t>(m.gridDim)] =
            m.dist.ownerOf(idx[d] + m.alignOffset);
    }
    // replicatedGrid dims stay at -1 (all coordinates).
    return out;
}

DataMapping::DataMapping(const Program& p, const ProcGrid& grid) : grid_(grid) {
    maps_.resize(p.symbols.size());
    for (const auto& s : p.symbols)
        maps_[static_cast<size_t>(s.id)] = resolve(p, s.id, 0);
}

ArrayMap DataMapping::resolve(const Program& p, SymbolId sid, int depth) {
    PHPF_ASSERT(depth < 16, "ALIGN chain too deep (cycle?)");
    const Symbol& sym = p.sym(sid);

    ArrayMap out;
    out.symbol = sid;
    out.dims.resize(static_cast<size_t>(sym.rank()));
    out.replicatedGrid.assign(static_cast<size_t>(grid_.rank()), 0);
    out.fixedCoord.assign(static_cast<size_t>(grid_.rank()), -1);

    if (const DistributeDirective* dd = p.distributeOf(sid)) {
        out.hasMapping = true;
        int nextGridDim = 0;
        for (int d = 0; d < sym.rank(); ++d) {
            const DistSpec& spec = dd->specs[static_cast<size_t>(d)];
            if (spec.kind == DistKind::Serial) continue;
            // More partitioned dims than the grid has: the surplus dims
            // degrade to serial (the whole extent lives with each owner
            // of the mapped dims), mirroring how HPF compilers fold a
            // distribution onto a smaller machine.
            if (nextGridDim >= grid_.rank()) continue;
            ArrayDimMap& m = out.dims[static_cast<size_t>(d)];
            m.gridDim = nextGridDim;
            m.dist = DimDist(spec.kind, sym.dims[static_cast<size_t>(d)].lb,
                             sym.dims[static_cast<size_t>(d)].ub,
                             grid_.extent(nextGridDim), spec.blockSize);
            ++nextGridDim;
        }
        return out;
    }

    if (const AlignDirective* ad = p.alignOf(sid)) {
        out.hasMapping = true;
        const ArrayMap target = resolve(p, ad->target, depth + 1);
        // Pinned / replicated constraints of the target itself carry over.
        out.fixedCoord = target.fixedCoord;
        for (int g = 0; g < grid_.rank(); ++g)
            if (target.replicatedGrid[static_cast<size_t>(g)])
                out.replicatedGrid[static_cast<size_t>(g)] = 1;
        for (size_t t = 0; t < ad->dims.size(); ++t) {
            const AlignDim& adim = ad->dims[t];
            const ArrayDimMap& tmap = target.dims[t];
            switch (adim.kind) {
                case AlignDim::Kind::SourceDim: {
                    PHPF_ASSERT(adim.sourceDim >= 0 && adim.sourceDim < sym.rank(),
                                "bad ALIGN source dim");
                    ArrayDimMap& m = out.dims[static_cast<size_t>(adim.sourceDim)];
                    if (tmap.partitioned()) {
                        m.gridDim = tmap.gridDim;
                        m.dist = tmap.dist;
                        m.alignOffset = tmap.alignOffset + adim.offset;
                    }
                    break;
                }
                case AlignDim::Kind::Replicate:
                    if (tmap.partitioned())
                        out.replicatedGrid[static_cast<size_t>(tmap.gridDim)] = 1;
                    break;
                case AlignDim::Kind::Const:
                    if (tmap.partitioned())
                        out.fixedCoord[static_cast<size_t>(tmap.gridDim)] =
                            tmap.dist.ownerOf(adim.constPos + tmap.alignOffset);
                    break;
            }
        }
        return out;
    }

    // No directive: default replicated everywhere.
    return out;
}

}  // namespace phpf
