#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/ssa.h"
#include "mapping/data_mapping.h"

namespace phpf {

/// How a privatized (or not) scalar definition is mapped (Section 2.1's
/// three alternatives).
enum class ScalarMapKind : std::uint8_t {
    Replicated,         ///< default: every processor computes it
    Aligned,            ///< owned by the owner of `alignRef`
    PrivatizedNoAlign,  ///< private per executing processor, no owner
};

struct ScalarMapDecision {
    ScalarMapKind kind = ScalarMapKind::Replicated;
    /// Alignment target reference (consumer or producer); meaningful for
    /// Aligned.
    const Expr* alignRef = nullptr;
    bool viaConsumer = false;  ///< target was a consumer reference
    int alignLevel = 0;        ///< AlignLevel(alignRef), Fig. 4
    /// Loop with respect to which the definition is privatized (Aligned
    /// and PrivatizedNoAlign).
    const Stmt* privLoop = nullptr;

    // Reduction results (Section 2.3):
    bool isReductionResult = false;
    /// Grid dims the reduction spans — the scalar is replicated across
    /// these and aligned with `alignRef` in the rest.
    std::vector<int> reductionGridDims;

    std::string rationale;  ///< one line for the compilation report
};

/// Mapping chosen for a privatizable array within its INDEPENDENT loop
/// (Section 3).
struct ArrayPrivDecision {
    SymbolId array = kNoSymbol;
    const Stmt* loop = nullptr;  ///< the NEW(...) loop

    enum class Kind : std::uint8_t {
        Replicated,  ///< privatization disabled/failed: every proc computes
        Full,        ///< privatized in every grid dimension
        Partial,     ///< partitioned in some grid dims, privatized in others
    };
    Kind kind = Kind::Replicated;

    const Expr* alignRef = nullptr;  ///< target used to derive the mapping
    /// Per grid dim: 1 if the array is privatized across that dim.
    std::vector<char> privatizedGrid;
    /// Effective mapping of the array inside `loop` (partitioned dims
    /// set; privatized dims appear as replicated since each executor
    /// holds a private copy).
    ArrayMap mapInLoop;

    std::string rationale;
};

/// All mapping decisions of one compilation. Acts as the oracle the
/// communication analysis consults; scalars without an entry are
/// replicated (the paper's default).
class MappingDecisions {
public:
    void setScalar(int defId, ScalarMapDecision d) {
        scalar_[defId] = std::move(d);
    }
    [[nodiscard]] const ScalarMapDecision* forDef(int defId) const {
        auto it = scalar_.find(defId);
        return it == scalar_.end() ? nullptr : &it->second;
    }
    /// Decision governing scalar use `e`: recorded with its first
    /// reaching definition (the algorithm guarantees all reaching defs
    /// agree).
    [[nodiscard]] const ScalarMapDecision* forUse(const SsaForm& ssa,
                                                  const Expr* e) const {
        const auto rds = ssa.reachingDefs(e);
        if (rds.empty()) return nullptr;
        return forDef(rds.front());
    }

    void addArray(ArrayPrivDecision d) { arrays_.push_back(std::move(d)); }
    /// Decision for `array` in effect at statement `context` (i.e. the
    /// privatizing loop encloses the statement).
    [[nodiscard]] const ArrayPrivDecision* forArrayAt(SymbolId array,
                                                      const Stmt* context) const {
        for (const auto& d : arrays_) {
            if (d.array != array) continue;
            for (const Stmt* l = context; l != nullptr; l = l->parent)
                if (l == d.loop) return &d;
        }
        return nullptr;
    }
    [[nodiscard]] const std::vector<ArrayPrivDecision>& arrays() const {
        return arrays_;
    }
    [[nodiscard]] const std::unordered_map<int, ScalarMapDecision>& scalars()
        const {
        return scalar_;
    }

    void setControlPrivatized(const Stmt* s, bool v) { cf_[s] = v; }
    /// Privatized execution of control flow statement `s` (Section 4).
    [[nodiscard]] bool controlPrivatized(const Stmt* s) const {
        auto it = cf_.find(s);
        return it != cf_.end() && it->second;
    }

private:
    std::unordered_map<int, ScalarMapDecision> scalar_;
    std::vector<ArrayPrivDecision> arrays_;
    std::unordered_map<const Stmt*, bool> cf_;
};

}  // namespace phpf
