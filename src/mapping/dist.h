#pragma once

#include <cstdint>

#include "ir/directive.h"

namespace phpf {

/// Distribution of one global index range [lb, ub] over `procs`
/// processors along one grid dimension. Encapsulates all the HPF
/// owner-arithmetic for BLOCK, CYCLIC and CYCLIC(k).
class DimDist {
public:
    DimDist() = default;
    DimDist(DistKind kind, std::int64_t lb, std::int64_t ub, int procs,
            int blockSize = 0);

    [[nodiscard]] DistKind kind() const { return kind_; }
    [[nodiscard]] int procs() const { return procs_; }
    [[nodiscard]] std::int64_t lb() const { return lb_; }
    [[nodiscard]] std::int64_t ub() const { return ub_; }
    [[nodiscard]] std::int64_t extent() const { return ub_ - lb_ + 1; }
    /// Effective block size: ceil(N/P) for BLOCK, 1 for CYCLIC, k for
    /// CYCLIC(k); the whole extent for Serial.
    [[nodiscard]] std::int64_t blockSize() const { return block_; }

    /// Which processor (coordinate in this grid dim) owns global index
    /// `idx`. Serial distributions return 0 (conceptually every
    /// processor in this dim holds the dimension; callers treat Serial
    /// dims as non-partitioning).
    ///
    /// Hot: the SPMD simulator calls this once per statement instance
    /// per partitioned grid dim, so the owner divisions are strength-
    /// reduced to a multiply-high against a magic reciprocal fixed at
    /// construction (exact for every offset when extent < 2^31; wider
    /// ranges fall back to hardware division).
    [[nodiscard]] int ownerOf(std::int64_t idx) const {
        // Alignment offsets can push derived positions slightly past
        // the template bounds (HPF clamps the mapping at the edge).
        idx = idx < lb_ ? lb_ : idx > ub_ ? ub_ : idx;
        const std::uint64_t off = static_cast<std::uint64_t>(idx - lb_);
        switch (kind_) {
            case DistKind::Block:
                return static_cast<int>(
                    fastDiv(off, static_cast<std::uint64_t>(block_),
                            blockMagic_));
            case DistKind::Cyclic: {
                const std::uint64_t d = static_cast<std::uint64_t>(procs_);
                return static_cast<int>(off -
                                        fastDiv(off, d, procsMagic_) * d);
            }
            case DistKind::BlockCyclic: {
                const std::uint64_t b = fastDiv(
                    off, static_cast<std::uint64_t>(block_), blockMagic_);
                const std::uint64_t d = static_cast<std::uint64_t>(procs_);
                return static_cast<int>(b - fastDiv(b, d, procsMagic_) * d);
            }
            case DistKind::Serial:
                return 0;
        }
        return 0;
    }

    /// Number of indices of [lb, ub] owned by processor `p`.
    [[nodiscard]] std::int64_t localCount(int p) const;
    /// Max over processors of localCount — the load-balance bound used
    /// by the analytic cost model.
    [[nodiscard]] std::int64_t maxLocalCount() const;
    /// Number of indices in [first, last] owned by processor `p`.
    [[nodiscard]] std::int64_t localCountInRange(int p, std::int64_t first,
                                                 std::int64_t last) const;

private:
    /// floor(n / d) via multiply-high with the round-up magic
    /// m = floor(2^64 / d) + 1: exact whenever n * d < 2^64 (Granlund &
    /// Montgomery), which the constructor guarantees before arming a
    /// magic. magic == 0 means "not armed" — divide the slow way.
    static std::uint64_t fastDiv(std::uint64_t n, std::uint64_t d,
                                 std::uint64_t magic) {
#ifdef __SIZEOF_INT128__
        if (magic != 0)
            return static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(n) * magic) >> 64);
#else
        (void)magic;
#endif
        return d <= 1 ? n : n / d;
    }

    /// Arm a magic for divisor `d`, or 0 when multiply-high would not
    /// be exact across this dim's offsets (or d needs no division).
    [[nodiscard]] std::uint64_t magicFor(std::uint64_t d) const;

    DistKind kind_ = DistKind::Serial;
    std::int64_t lb_ = 1;
    std::int64_t ub_ = 1;
    int procs_ = 1;
    std::int64_t block_ = 1;
    std::uint64_t blockMagic_ = 0;
    std::uint64_t procsMagic_ = 0;
};

}  // namespace phpf
