#pragma once

#include <cstdint>

#include "ir/directive.h"

namespace phpf {

/// Distribution of one global index range [lb, ub] over `procs`
/// processors along one grid dimension. Encapsulates all the HPF
/// owner-arithmetic for BLOCK, CYCLIC and CYCLIC(k).
class DimDist {
public:
    DimDist() = default;
    DimDist(DistKind kind, std::int64_t lb, std::int64_t ub, int procs,
            int blockSize = 0);

    [[nodiscard]] DistKind kind() const { return kind_; }
    [[nodiscard]] int procs() const { return procs_; }
    [[nodiscard]] std::int64_t lb() const { return lb_; }
    [[nodiscard]] std::int64_t ub() const { return ub_; }
    [[nodiscard]] std::int64_t extent() const { return ub_ - lb_ + 1; }
    /// Effective block size: ceil(N/P) for BLOCK, 1 for CYCLIC, k for
    /// CYCLIC(k); the whole extent for Serial.
    [[nodiscard]] std::int64_t blockSize() const { return block_; }

    /// Which processor (coordinate in this grid dim) owns global index
    /// `idx`. Serial distributions return 0 (conceptually every
    /// processor in this dim holds the dimension; callers treat Serial
    /// dims as non-partitioning).
    [[nodiscard]] int ownerOf(std::int64_t idx) const;

    /// Number of indices of [lb, ub] owned by processor `p`.
    [[nodiscard]] std::int64_t localCount(int p) const;
    /// Max over processors of localCount — the load-balance bound used
    /// by the analytic cost model.
    [[nodiscard]] std::int64_t maxLocalCount() const;
    /// Number of indices in [first, last] owned by processor `p`.
    [[nodiscard]] std::int64_t localCountInRange(int p, std::int64_t first,
                                                 std::int64_t last) const;

private:
    DistKind kind_ = DistKind::Serial;
    std::int64_t lb_ = 1;
    std::int64_t ub_ = 1;
    int procs_ = 1;
    std::int64_t block_ = 1;
};

}  // namespace phpf
