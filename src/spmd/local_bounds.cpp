#include "spmd/local_bounds.h"

#include <algorithm>

namespace phpf {

ShrinkInfo analyzeShrink(const SpmdLowering& low, const Stmt* loop) {
    ShrinkInfo info;
    if (loop->kind != StmtKind::Do) return info;

    bool first = true;
    bool ok = true;
    std::function<void(const std::vector<Stmt*>&)> walk =
        [&](const std::vector<Stmt*>& body) {
            for (const Stmt* s : body) {
                if (!ok) return;
                switch (s->kind) {
                    case StmtKind::Assign: {
                        const StmtExec& ex = low.execOf(s);
                        if (ex.guard == StmtExec::Guard::All) {
                            ok = false;
                            return;
                        }
                        // Find the dim partitioned by this loop's index.
                        bool found = false;
                        for (size_t g = 0; g < ex.execDesc.dims.size(); ++g) {
                            const RefDim& dim = ex.execDesc.dims[g];
                            if (!dim.partitioned()) continue;
                            if (!dim.subscript.affine) continue;
                            const std::int64_t coeff =
                                dim.subscript.coeffOf(loop);
                            if (coeff == 0) continue;
                            if (coeff != 1 ||
                                dim.dist.kind() != DistKind::Block) {
                                ok = false;
                                return;
                            }
                            // Offset must be constant w.r.t. this loop:
                            // subscript = i + c with no other terms? Other
                            // terms vary with other loops; conservative:
                            // require a single term.
                            if (dim.subscript.terms.size() != 1) {
                                ok = false;
                                return;
                            }
                            const std::int64_t off =
                                dim.subscript.c0 + dim.offset;
                            if (first) {
                                info.gridDim = static_cast<int>(g);
                                info.dist = dim.dist;
                                info.subscriptOffset = off;
                                first = false;
                            } else if (info.gridDim != static_cast<int>(g) ||
                                       info.subscriptOffset != off) {
                                ok = false;
                                return;
                            }
                            found = true;
                        }
                        if (!found) {
                            ok = false;
                            return;
                        }
                        break;
                    }
                    case StmtKind::If:
                        walk(s->thenBody);
                        walk(s->elseBody);
                        break;
                    case StmtKind::Do:
                        walk(s->body);
                        break;
                    case StmtKind::Goto:
                    case StmtKind::Continue:
                        break;
                }
            }
        };
    walk(loop->body);
    info.shrinkable = ok && !first;
    if (!info.shrinkable) info.gridDim = -1;
    return info;
}

LocalRange localRange(const ShrinkInfo& info, int coord, std::int64_t lb,
                      std::int64_t ub) {
    if (!info.shrinkable) return {lb, ub};
    // Owned positions of `coord`: block [tlb + coord*b, tlb + (coord+1)*b - 1]
    // in the distribution's index space; loop index i maps to position
    // i + subscriptOffset.
    const std::int64_t b = info.dist.blockSize();
    const std::int64_t ownedFirst =
        info.dist.lb() + static_cast<std::int64_t>(coord) * b;
    const std::int64_t ownedLast = std::min(info.dist.ub(), ownedFirst + b - 1);
    LocalRange r;
    r.lb = std::max(lb, ownedFirst - info.subscriptOffset);
    r.ub = std::min(ub, ownedLast - info.subscriptOffset);
    return r;
}

}  // namespace phpf
