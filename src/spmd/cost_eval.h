#pragma once

#include <unordered_map>

#include "comm/cost_model.h"
#include "spmd/lowering.h"

namespace phpf {

/// Predicted execution profile of the SPMD program on the modelled
/// machine.
struct CostBreakdown {
    double computeSec = 0.0;
    double commSec = 0.0;
    std::int64_t messageEvents = 0;  ///< placed (vectorized) messages
    double commBytes = 0.0;          ///< per-processor bytes moved

    [[nodiscard]] double totalSec() const { return computeSec + commSec; }
};

/// CostBreakdown plus per-statement / per-comm-op attribution (used by
/// the cost report).
struct DetailedCost {
    CostBreakdown totals;
    std::unordered_map<const Stmt*, double> stmtCompute;
    std::unordered_map<int, double> opComm;          ///< by CommOp::id
    std::unordered_map<int, std::int64_t> opEvents;  ///< by CommOp::id
};

/// Analytic performance evaluation of a lowered SPMD program: walks the
/// loop tree, computes per-processor iteration counts from the
/// distribution arithmetic, and charges each communication op at its
/// vectorization level with the SP2 cost model. Loops whose bodies are
/// iteration-independent are evaluated once and scaled by their trip
/// count; triangular nests (DGEFA) iterate the outer loop numerically.
///
/// The result is the "execution time" our reproduction reports in place
/// of the paper's wall-clock SP2 measurements.
class CostEvaluator {
public:
    /// `shm` non-null switches communication charging to the
    /// shared-memory machine model: comm ops price as barrier +
    /// coherence reads (+ false sharing) and reduction combines as
    /// combiner trees, while the loop-walking / trip-count / volume
    /// machinery — and the compute charge, same-era CPUs — stay the
    /// target-independent code path. Null (the default) is the exact
    /// pre-Target message-passing evaluation, bit for bit.
    CostEvaluator(const SpmdLowering& low, const CostModel& cm,
                  const ShmCostModel* shm = nullptr);

    [[nodiscard]] CostBreakdown evaluate();
    /// Same evaluation with per-statement / per-op attribution.
    [[nodiscard]] DetailedCost evaluateDetailed();

private:
    using Env = std::unordered_map<SymbolId, std::int64_t>;

    void evalBlock(const std::vector<Stmt*>& block, Env& env,
                   DetailedCost& out);
    void evalLoop(const Stmt* loop, Env& env, DetailedCost& out);
    void evalStmtCompute(const Stmt* s, DetailedCost& out);
    void chargeCommOp(const CommOp& op, const Env& env, DetailedCost& out);
    /// Charge a set of ops placed at the same point, combining messages
    /// of the same pattern into one latency term when the cost model's
    /// combineMessages optimization is on.
    void chargeOpsAt(const std::vector<const CommOp*>& ops, const Env& env,
                     DetailedCost& out);
    struct OpCharge {
        bool valid = false;
        double cost = 0.0;     ///< full message cost (latency + volume)
        double latency = 0.0;  ///< the per-message latency component
        double bytes = 0.0;
        int key = 0;           ///< combining group (pattern x procs)
    };
    [[nodiscard]] OpCharge computeOpCharge(const CommOp& op,
                                           const Env& env) const;

    [[nodiscard]] std::int64_t evalInt(const Expr* e, const Env& env) const;
    [[nodiscard]] std::int64_t tripsOf(const Stmt* loop, const Env& env) const;
    [[nodiscard]] double flopsOf(const Expr* e) const;
    /// Number of processors the executor set of `desc` divides loop
    /// `l`'s iterations across (1 if the loop doesn't traverse a
    /// partitioned dim of `desc`).
    [[nodiscard]] std::int64_t divisorFor(const RefDesc& desc,
                                          const Stmt* l) const;
    [[nodiscard]] double perProcDivisor(const Stmt* s) const;
    [[nodiscard]] bool bodyDependsOnVar(const Stmt* loop) const;

    const SpmdLowering& low_;
    const CostModel& cm_;
    const ShmCostModel* shm_ = nullptr;  ///< non-null: shared-memory charging
    const Program& prog_;
    AffineAnalyzer aff_;

    std::unordered_map<const Stmt*, std::vector<const CommOp*>> opsByLoop_;
    std::vector<const CommOp*> topOps_;
    mutable std::unordered_map<const Stmt*, double> divisorCache_;
    mutable std::unordered_map<const Stmt*, int> bodyDepCache_;
};

}  // namespace phpf
