#include "spmd/cost_eval.h"

#include <algorithm>
#include <map>
#include <cmath>

#include "support/diagnostics.h"

namespace phpf {

CostEvaluator::CostEvaluator(const SpmdLowering& low, const CostModel& cm,
                             const ShmCostModel* shm)
    : low_(low), cm_(cm), shm_(shm), prog_(low.program()),
      aff_(prog_, &low.ssa()) {
    for (const CommOp& op : low_.commOps()) {
        if (op.placementLevel == 0) {
            topOps_.push_back(&op);
            continue;
        }
        const Stmt* loop =
            prog_.enclosingLoopAtLevel(op.atStmt, op.placementLevel);
        PHPF_ASSERT(loop != nullptr, "comm op placed deeper than its nest");
        opsByLoop_[loop].push_back(&op);
    }
}

CostBreakdown CostEvaluator::evaluate() { return evaluateDetailed().totals; }

DetailedCost CostEvaluator::evaluateDetailed() {
    DetailedCost out;
    Env env;
    chargeOpsAt(topOps_, env, out);
    auto& top = const_cast<Program&>(prog_).top;
    evalBlock(top, env, out);
    return out;
}

void CostEvaluator::evalBlock(const std::vector<Stmt*>& block, Env& env,
                              DetailedCost& out) {
    for (const Stmt* s : block) {
        switch (s->kind) {
            case StmtKind::Assign:
                evalStmtCompute(s, out);
                break;
            case StmtKind::If:
                evalStmtCompute(s, out);
                evalBlock(s->thenBody, env, out);
                evalBlock(s->elseBody, env, out);
                break;
            case StmtKind::Do:
                evalLoop(s, env, out);
                break;
            case StmtKind::Goto:
            case StmtKind::Continue:
                break;
        }
    }
}

bool CostEvaluator::bodyDependsOnVar(const Stmt* loop) const {
    auto it = bodyDepCache_.find(loop);
    if (it != bodyDepCache_.end()) return it->second != 0;
    bool depends = false;
    std::function<void(const std::vector<Stmt*>&)> walk =
        [&](const std::vector<Stmt*>& blk) {
            for (const Stmt* s : blk) {
                if (s->kind == StmtKind::Do) {
                    for (const Expr* b : {s->lb, s->ub, s->step}) {
                        if (b == nullptr) continue;
                        Program::walkExpr(const_cast<Expr*>(b), [&](Expr* e) {
                            if (e->kind == ExprKind::VarRef &&
                                e->sym == loop->loopVar)
                                depends = true;
                        });
                    }
                    walk(s->body);
                } else if (s->kind == StmtKind::If) {
                    walk(s->thenBody);
                    walk(s->elseBody);
                }
            }
        };
    walk(loop->body);
    bodyDepCache_[loop] = depends ? 1 : 0;
    return depends;
}

void CostEvaluator::evalLoop(const Stmt* loop, Env& env, DetailedCost& out) {
    const std::int64_t lb = evalInt(loop->lb, env);
    const std::int64_t ub = evalInt(loop->ub, env);
    const std::int64_t step =
        loop->step != nullptr ? evalInt(loop->step, env) : 1;
    PHPF_ASSERT(step != 0, "zero loop step");
    const std::int64_t trips =
        step > 0 ? (ub >= lb ? (ub - lb) / step + 1 : 0)
                 : (lb >= ub ? (lb - ub) / (-step) + 1 : 0);
    if (trips <= 0) return;

    auto perIteration = [&](std::int64_t iv, DetailedCost& acc) {
        env[loop->loopVar] = iv;
        auto it = opsByLoop_.find(loop);
        if (it != opsByLoop_.end()) chargeOpsAt(it->second, env, acc);
        evalBlock(loop->body, env, acc);
        env.erase(loop->loopVar);
    };

    if (!bodyDependsOnVar(loop)) {
        DetailedCost one;
        perIteration(lb, one);
        const double t = static_cast<double>(trips);
        out.totals.computeSec += one.totals.computeSec * t;
        out.totals.commSec += one.totals.commSec * t;
        out.totals.messageEvents += one.totals.messageEvents * trips;
        out.totals.commBytes += one.totals.commBytes * t;
        for (const auto& [st, v] : one.stmtCompute) out.stmtCompute[st] += v * t;
        for (const auto& [id, v] : one.opComm) out.opComm[id] += v * t;
        for (const auto& [id, n] : one.opEvents) out.opEvents[id] += n * trips;
        return;
    }
    for (std::int64_t iv = lb; step > 0 ? iv <= ub : iv >= ub; iv += step)
        perIteration(iv, out);
}

double CostEvaluator::flopsOf(const Expr* e) const {
    if (e == nullptr) return 0.0;
    double flops = 0.0;
    Program::walkExpr(const_cast<Expr*>(e), [&](Expr* n) {
        if (n->kind == ExprKind::Binary || n->kind == ExprKind::Unary)
            flops += 1.0;
        else if (n->kind == ExprKind::Call)
            flops += n->fn == Intrinsic::Sqrt || n->fn == Intrinsic::Exp ? 8.0
                                                                         : 1.0;
    });
    return flops;
}

std::int64_t CostEvaluator::divisorFor(const RefDesc& desc,
                                       const Stmt* l) const {
    std::int64_t div = 1;
    for (const auto& dim : desc.dims) {
        if (!dim.partitioned()) continue;
        if (dim.subscript.affine && dim.subscript.coeffOf(l) != 0)
            div *= dim.dist.procs();
    }
    return std::max<std::int64_t>(div, 1);
}

double CostEvaluator::perProcDivisor(const Stmt* s) const {
    auto it = divisorCache_.find(s);
    if (it != divisorCache_.end()) return it->second;
    const RefDesc& desc = low_.execOf(s).execDesc;
    double div = 1.0;
    for (const Stmt* l : prog_.enclosingLoops(s))
        div *= static_cast<double>(divisorFor(desc, l));
    divisorCache_[s] = div;
    return div;
}

void CostEvaluator::evalStmtCompute(const Stmt* s, DetailedCost& out) {
    const double flops =
        s->kind == StmtKind::Assign
            ? flopsOf(s->rhs) + 1.0  // +1 for the store/copy
            : flopsOf(s->cond) + 1.0;
    const double sec = cm_.compute(flops) / perProcDivisor(s);
    out.totals.computeSec += sec;
    out.stmtCompute[s] += sec;
}

void CostEvaluator::chargeCommOp(const CommOp& op, const Env& env,
                                 DetailedCost& out) {
    if (op.isReductionCombine) {
        chargeOpsAt({&op}, env, out);
        return;
    }
    const OpCharge c = computeOpCharge(op, env);
    if (!c.valid) return;
    out.totals.commSec += c.cost;
    out.totals.commBytes += c.bytes;
    out.totals.messageEvents += 1;
    out.opComm[op.id] += c.cost;
    out.opEvents[op.id] += 1;
}

void CostEvaluator::chargeOpsAt(const std::vector<const CommOp*>& ops,
                                const Env& env, DetailedCost& out) {
    // Reduction combines are always individual.
    std::vector<std::pair<const CommOp*, OpCharge>> charges;
    for (const CommOp* op : ops) {
        if (op->isReductionCombine) {
            int procs = 1;
            for (int g : op->combineGridDims)
                procs *= low_.dataMapping().grid().extent(g);
            if (procs > 1) {
                // Shared memory: the combine is a barrier plus log2(P)
                // combiner-tree stages over thread-private partials, not
                // log2(P) messages.
                const double sec = shm_ != nullptr
                                       ? shm_->combine(procs)
                                       : cm_.reduce(procs, cm_.elemBytes);
                out.totals.commSec += sec;
                out.totals.messageEvents += 1;
                out.totals.commBytes += cm_.elemBytes;
                out.opComm[op->id] += sec;
                out.opEvents[op->id] += 1;
            }
            continue;
        }
        const OpCharge c = computeOpCharge(*op, env);
        if (c.valid) charges.emplace_back(op, c);
    }
    if (!cm_.combineMessages) {
        for (const auto& [op, c] : charges) {
            out.totals.commSec += c.cost;
            out.totals.commBytes += c.bytes;
            out.totals.messageEvents += 1;
            out.opComm[op->id] += c.cost;
            out.opEvents[op->id] += 1;
        }
        return;
    }
    // Combine: messages of the same pattern/extent placed here share one
    // latency term; payloads concatenate.
    std::map<int, std::vector<std::pair<const CommOp*, OpCharge>>> groups;
    for (const auto& pc : charges) groups[pc.second.key].push_back(pc);
    for (const auto& [key, group] : groups) {
        (void)key;
        double maxLat = 0.0;
        for (const auto& [op, c] : group) maxLat = std::max(maxLat, c.latency);
        double groupCost = maxLat;
        for (const auto& [op, c] : group) groupCost += c.cost - c.latency;
        out.totals.commSec += groupCost;
        out.totals.messageEvents += 1;
        for (const auto& [op, c] : group) {
            out.totals.commBytes += c.bytes;
            out.opComm[op->id] +=
                (c.cost - c.latency) +
                maxLat / static_cast<double>(group.size());
            out.opEvents[op->id] += 1;
        }
    }
}

CostEvaluator::OpCharge CostEvaluator::computeOpCharge(const CommOp& op,
                                                       const Env& env) const {
    OpCharge charge;
    if (op.isReductionCombine) {
        return charge;  // handled by chargeOpsAt
    }

    // Vectorized message: aggregate over the loops between the placement
    // level and the consuming statement — but only loops that actually
    // index the communicated reference; other loops reuse the same data
    // and vectorization deduplicates it.
    const auto loops = prog_.enclosingLoops(op.atStmt);
    double total = 1.0;     // distinct elements moved
    double srcLocal = 1.0;  // per-source-processor share of them
    for (const Stmt* l : loops) {
        if (l->loopNestingLevel() <= op.placementLevel) continue;
        bool indexes = false;
        if (op.ref->kind == ExprKind::ArrayRef) {
            for (const auto& dim : op.srcDesc.dims) {
                if (!dim.partitioned()) continue;
                if (dim.subscript.affine ? dim.subscript.coeffOf(l) != 0
                                         : dim.subscript.varLevel >=
                                               l->loopNestingLevel())
                    indexes = true;
            }
            // Serial (unpartitioned) dims also enlarge the section.
            for (const Expr* sub : op.ref->args) {
                const AffineForm f = aff_.analyze(sub);
                if (f.affine ? f.coeffOf(l) != 0
                             : f.varLevel >= l->loopNestingLevel())
                    indexes = true;
            }
        }
        if (!indexes) continue;
        Env inner = env;
        const std::int64_t t = tripsOf(l, inner);
        total *= static_cast<double>(t);
        double local = static_cast<double>(t) /
                       static_cast<double>(divisorFor(op.srcDesc, l));
        // Shifted dims: only the boundary strip moves.
        for (size_t g = 0; g < op.req.dims.size(); ++g) {
            if (op.req.dims[g].pattern != CommPattern::Shift) continue;
            const RefDim& sd = op.srcDesc.dims[g];
            if (sd.partitioned() && sd.subscript.affine &&
                sd.subscript.coeffOf(l) != 0) {
                local = static_cast<double>(
                    std::min<std::int64_t>(std::abs(op.req.dims[g].shift),
                                           std::max<std::int64_t>(t, 1)));
            }
        }
        srcLocal *= std::max(local, 1.0);
    }

    const double elemBytes = static_cast<double>(cm_.elemBytes);
    int patternProcs = 1;
    for (size_t g = 0; g < op.req.dims.size(); ++g)
        if (op.req.dims[g].pattern != CommPattern::None)
            patternProcs *= low_.dataMapping().grid().extent(static_cast<int>(g));
    if (patternProcs <= 1) return charge;  // single processor along affected dims

    double cost = 0.0;
    double bytes = 0.0;
    double latency = 0.0;
    switch (op.req.overall) {
        case CommPattern::None:
            return charge;
        case CommPattern::Shift: {
            bytes = srcLocal * elemBytes;
            cost = cm_.shift(bytes);
            latency = cm_.alphaSec;
            // A shift placed at instance level (the shifted dimension's
            // loop is at or outside the placement) only actually crosses
            // a processor boundary for |shift|/blockSize of the events;
            // interior instances find the neighbour element locally.
            double fraction = 1.0;
            for (size_t g = 0; g < op.req.dims.size(); ++g) {
                if (op.req.dims[g].pattern != CommPattern::Shift) continue;
                const RefDim& sd = op.srcDesc.dims[g];
                if (!sd.partitioned() || !sd.subscript.affine) continue;
                bool traversedInside = false;
                for (const Stmt* l : loops) {
                    if (l->loopNestingLevel() <= op.placementLevel) continue;
                    if (sd.subscript.coeffOf(l) != 0) traversedInside = true;
                }
                if (!traversedInside && sd.dist.blockSize() > 0) {
                    fraction = std::min(
                        fraction,
                        static_cast<double>(std::abs(op.req.dims[g].shift)) /
                            static_cast<double>(sd.dist.blockSize()));
                }
            }
            cost *= std::min(fraction, 1.0);
            latency *= std::min(fraction, 1.0);
            bytes *= std::min(fraction, 1.0);
            break;
        }
        case CommPattern::Broadcast:
            bytes = srcLocal * elemBytes;
            cost = cm_.broadcast(patternProcs, bytes);
            latency = cm_.broadcast(patternProcs, 0.0);
            break;
        case CommPattern::AllGather:
            bytes = total * elemBytes;
            cost = cm_.allGather(patternProcs, bytes);
            latency = cm_.allGather(patternProcs, 0.0);
            break;
        case CommPattern::Gather:
            bytes = total * elemBytes;
            cost = cm_.gather(patternProcs, bytes);
            latency = cm_.gather(patternProcs, 0.0);
            break;
        case CommPattern::PointToPoint:
            bytes = srcLocal * elemBytes;
            cost = cm_.pointToPoint(bytes);
            latency = cm_.alphaSec;
            break;
        case CommPattern::General: {
            // If the source's partitioned subscripts are invariant across
            // the traversal loops, the data lives on one processor per
            // event: this is a one-to-many broadcast (DGEFA's pivot
            // column / pivot index), not an all-to-all.
            bool srcSingle = true;
            for (const auto& dim : op.srcDesc.dims) {
                if (!dim.partitioned()) continue;
                if (!dim.subscript.affine) {
                    srcSingle = false;
                    continue;
                }
                for (const Stmt* l : loops) {
                    if (l->loopNestingLevel() <= op.placementLevel) continue;
                    if (dim.subscript.coeffOf(l) != 0) srcSingle = false;
                }
            }
            bytes = total * elemBytes;
            if (srcSingle) {
                cost = cm_.broadcast(patternProcs, bytes);
                latency = cm_.broadcast(patternProcs, 0.0);
            } else {
                // Irregular redistribution (e.g. transpose): every
                // processor exchanges its share with every other — α per
                // partner plus its slice of the volume.
                cost = static_cast<double>(patternProcs - 1) * cm_.alphaSec +
                       bytes / static_cast<double>(patternProcs) *
                           cm_.betaSecPerByte;
                latency = static_cast<double>(patternProcs - 1) * cm_.alphaSec;
            }
            break;
        }
    }
    if (shm_ != nullptr) {
        // Shared memory: the volume (`bytes`, shift boundary fractions
        // included) is target-independent — what changes is how moving
        // it costs. There is no per-message α; the op becomes "producers
        // reach a barrier, consumers pull the lines": one barrier, a
        // coherence read with bus contention when many threads pull the
        // same data, and a false-sharing penalty on sub-line payloads.
        const ShmCostModel& sm = *shm_;
        const bool manyReaders = op.req.overall == CommPattern::Broadcast ||
                                 op.req.overall == CommPattern::AllGather ||
                                 op.req.overall == CommPattern::General;
        const int readers = manyReaders ? patternProcs : 1;
        // A moved line always has at least producer + consumer touching
        // it, so sub-line payloads ping-pong between ≥ 2 sharers.
        const int sharers = manyReaders ? patternProcs : 2;
        cost = sm.barrier() + sm.sharedRead(bytes, readers) +
               sm.falseSharing(bytes, sharers);
        latency = sm.barrier();
    }
    charge.valid = true;
    charge.cost = cost;
    charge.latency = latency;
    charge.bytes = bytes;
    charge.key = static_cast<int>(op.req.overall) * 1024 + patternProcs;
    return charge;
}

std::int64_t CostEvaluator::tripsOf(const Stmt* loop, const Env& env) const {
    Env padded = env;
    // A traversal loop's bound may reference a sibling traversal loop's
    // index (rare); approximate with that loop's own lower bound.
    std::function<std::int64_t(const Expr*)> ev = [&](const Expr* e)
        -> std::int64_t { return evalInt(e, padded); };
    const std::int64_t lb = ev(loop->lb);
    const std::int64_t ub = ev(loop->ub);
    const std::int64_t step = loop->step != nullptr ? ev(loop->step) : 1;
    if (step > 0) return ub >= lb ? (ub - lb) / step + 1 : 0;
    return lb >= ub ? (lb - ub) / (-step) + 1 : 0;
}

std::int64_t CostEvaluator::evalInt(const Expr* e, const Env& env) const {
    switch (e->kind) {
        case ExprKind::IntLit:
            return e->ival;
        case ExprKind::RealLit:
            return static_cast<std::int64_t>(e->rval);
        case ExprKind::VarRef: {
            auto it = env.find(e->sym);
            if (it != env.end()) return it->second;
            // Unbound scalar in a bound expression: fall back to the
            // midpoint assumption of 1 (documented approximation).
            return 1;
        }
        case ExprKind::Unary:
            return e->uop == UnaryOp::Neg ? -evalInt(e->args[0], env)
                                          : !evalInt(e->args[0], env);
        case ExprKind::Binary: {
            const std::int64_t a = evalInt(e->args[0], env);
            const std::int64_t b = evalInt(e->args[1], env);
            switch (e->bop) {
                case BinaryOp::Add: return a + b;
                case BinaryOp::Sub: return a - b;
                case BinaryOp::Mul: return a * b;
                case BinaryOp::Div: return b != 0 ? a / b : 0;
                default: return 0;
            }
        }
        case ExprKind::Call: {
            if (e->fn == Intrinsic::Max)
                return std::max(evalInt(e->args[0], env),
                                evalInt(e->args[1], env));
            if (e->fn == Intrinsic::Min)
                return std::min(evalInt(e->args[0], env),
                                evalInt(e->args[1], env));
            if (e->fn == Intrinsic::Abs)
                return std::abs(evalInt(e->args[0], env));
            return 0;
        }
        default:
            return 0;
    }
}

}  // namespace phpf
