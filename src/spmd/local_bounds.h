#pragma once

#include <optional>

#include "spmd/lowering.h"

namespace phpf {

/// Loop-bound shrinking (Section 4: "the loop bounds can be shrunk in
/// the final SPMD code"). For a loop whose body statements are all
/// owner-computes partitioned by the loop index along one grid
/// dimension with a BLOCK distribution, each processor only iterates
/// over its own block. This computes the per-processor iteration range.
struct LocalRange {
    std::int64_t lb = 1;
    std::int64_t ub = 0;  ///< empty when ub < lb

    [[nodiscard]] std::int64_t trips() const { return ub >= lb ? ub - lb + 1 : 0; }
};

/// Analysis result for one loop: which grid dim its iterations are
/// partitioned over (if any), and the underlying distribution.
struct ShrinkInfo {
    bool shrinkable = false;
    int gridDim = -1;
    DimDist dist;
    std::int64_t subscriptOffset = 0;  ///< index -> distributed position
};

/// Determine whether loop `loop`'s iterations can be shrunk: every
/// Assign in its body (including nested non-loop statements) must have
/// an OwnerOf/Union executor whose descriptor partitions by this loop's
/// index along a single consistent grid dim with a BLOCK distribution
/// and constant offset. Conservative: anything else is unshrinkable
/// (the loop runs with full bounds plus guards).
[[nodiscard]] ShrinkInfo analyzeShrink(const SpmdLowering& low,
                                       const Stmt* loop);

/// Local iteration range of processor coordinate `coord` (along the
/// shrink grid dim) for global bounds [lb, ub].
[[nodiscard]] LocalRange localRange(const ShrinkInfo& info, int coord,
                                    std::int64_t lb, std::int64_t ub);

}  // namespace phpf
