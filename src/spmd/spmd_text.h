#pragma once

#include <string>

#include "spmd/lowering.h"

namespace phpf {

/// Emit the lowered program as annotated SPMD pseudo-code: every
/// statement carries its computation-partitioning guard, shrinkable
/// loops show their per-processor local bounds, and the placed
/// (vectorized) communication operations appear at their hoisting
/// points. This is the human-readable form of what phpf's code
/// generator would emit as Fortran+MPL.
[[nodiscard]] std::string emitSpmdText(const SpmdLowering& low);

}  // namespace phpf
