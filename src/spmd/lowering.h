#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/reduction.h"
#include "comm/classify.h"
#include "mapping/decisions.h"

namespace phpf {

/// Computation-partitioning guard of one statement in the SPMD program.
struct StmtExec {
    enum class Guard : std::uint8_t {
        All,         ///< executed by every processor (replicated lhs /
                     ///< unprivatized control flow)
        OwnerOf,     ///< owner-computes: owner of `guardRef` executes
        Union,       ///< privatized without alignment: union of the
                     ///< iteration's other executors (Section 2.1 / 4)
    };
    Guard guard = Guard::All;
    const Expr* guardRef = nullptr;
    /// Ownership descriptor of the executor set (for Union: borrowed
    /// from a partitioned statement of the same loop body).
    RefDesc execDesc;
};

/// One communication operation of the lowered program.
struct CommOp {
    int id = -1;
    const Expr* ref = nullptr;   ///< data moved
    const Stmt* atStmt = nullptr;  ///< consuming statement
    CommRequirement req;
    /// Loop nesting level the (vectorized) message executes at: the op
    /// runs once per iteration of the level-`placementLevel` loop
    /// enclosing `atStmt` (0 = once, fully hoisted).
    int placementLevel = 0;
    RefDesc execDesc;  ///< destination processors
    RefDesc srcDesc;   ///< data location

    bool isReductionCombine = false;
    std::vector<int> combineGridDims;
};

/// Lowers a mapped program to SPMD form: a guard per statement plus a
/// list of placed communication operations. This is the phpf back end
/// step the paper's cost discussion assumes (guards, loop-bound
/// shrinking, message vectorization); the analytic cost evaluator and
/// the functional simulator both consume it.
class SpmdLowering {
public:
    SpmdLowering(Program& p, const SsaForm& ssa, const DataMapping& dm,
                 const MappingDecisions& decisions,
                 const std::vector<ReductionInfo>& reductions);

    void run();

    [[nodiscard]] const StmtExec& execOf(const Stmt* s) const;
    [[nodiscard]] const std::vector<CommOp>& commOps() const { return ops_; }
    /// Comm ops consumed by statement `s`.
    [[nodiscard]] std::vector<const CommOp*> opsAt(const Stmt* s) const;
    [[nodiscard]] const DataMapping& dataMapping() const { return dm_; }
    [[nodiscard]] const MappingDecisions& decisions() const { return decisions_; }
    [[nodiscard]] const std::vector<ReductionInfo>& reductions() const {
        return reductions_;
    }
    [[nodiscard]] const SsaForm& ssa() const { return ssa_; }
    [[nodiscard]] Program& program() const { return prog_; }

    [[nodiscard]] std::string dump() const;

private:
    void lowerStmt(Stmt* s);
    void addCommFor(Stmt* s, Expr* ref, const RefDesc& execDesc);
    [[nodiscard]] RefDescriber describer() const {
        return RefDescriber(prog_, dm_, &ssa_, &decisions_, aff_);
    }
    /// Executor descriptor for Union-guarded statements: borrowed from
    /// the first owner-computes statement in the same loop body.
    [[nodiscard]] RefDesc unionDescFor(const Stmt* s) const;
    /// Owner-computes executor descriptor of an assignment (guards of
    /// privatized arrays / aligned scalars included).
    [[nodiscard]] RefDesc ownerDescOfAssign(const Stmt* s) const;

    Program& prog_;
    const SsaForm& ssa_;
    const DataMapping& dm_;
    const MappingDecisions& decisions_;
    const std::vector<ReductionInfo>& reductions_;
    AffineAnalyzer aff_;
    std::unordered_map<const Stmt*, StmtExec> exec_;
    std::vector<CommOp> ops_;
};

}  // namespace phpf
