#pragma once

#include <string>
#include <vector>

#include "spmd/cost_eval.h"

namespace phpf {

/// Itemized cost attribution: which statements and which communication
/// operations the predicted time goes to. Used by `phpfc --cost` and the
/// examples to explain *why* a mapping variant wins.
struct CostItem {
    const Stmt* stmt = nullptr;
    std::string what;        ///< rendered statement / comm description
    double seconds = 0.0;
    bool isComm = false;
    std::int64_t events = 0;
};

struct CostReport {
    std::vector<CostItem> items;  ///< sorted by cost, descending
    CostBreakdown total;

    [[nodiscard]] std::string str(const Program& p, int topN = 10) const;
};

/// Evaluate the lowered program and attribute cost per statement and
/// per communication op. `shm` non-null prices communication with the
/// shared-memory model (CostEvaluator's shm mode); null is the exact
/// message-passing attribution.
[[nodiscard]] CostReport buildCostReport(const SpmdLowering& low,
                                         const CostModel& cm,
                                         const ShmCostModel* shm = nullptr);

}  // namespace phpf
