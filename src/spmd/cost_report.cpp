#include "spmd/cost_report.h"

#include <algorithm>
#include <sstream>

#include "ir/printer.h"

namespace phpf {

CostReport buildCostReport(const SpmdLowering& low, const CostModel& cm,
                           const ShmCostModel* shm) {
    CostEvaluator eval(low, cm, shm);
    const DetailedCost detail = eval.evaluateDetailed();

    CostReport report;
    report.total = detail.totals;
    const Program& p = low.program();

    for (const auto& [stmt, sec] : detail.stmtCompute) {
        CostItem item;
        item.stmt = stmt;
        item.seconds = sec;
        item.isComm = false;
        if (stmt->kind == StmtKind::Assign)
            item.what = printExpr(p, stmt->lhs) + " = " +
                        printExpr(p, stmt->rhs);
        else
            item.what = "if (" + printExpr(p, stmt->cond) + ")";
        report.items.push_back(std::move(item));
    }
    for (const CommOp& op : low.commOps()) {
        auto it = detail.opComm.find(op.id);
        if (it == detail.opComm.end()) continue;
        CostItem item;
        item.stmt = op.atStmt;
        item.seconds = it->second;
        item.isComm = true;
        auto ev = detail.opEvents.find(op.id);
        item.events = ev != detail.opEvents.end() ? ev->second : 0;
        if (op.isReductionCombine)
            item.what = "combine " + printExpr(p, op.ref);
        else
            item.what = std::string(commPatternName(op.req.overall)) + " " +
                        printExpr(p, op.ref) + " @level " +
                        std::to_string(op.placementLevel);
        report.items.push_back(std::move(item));
    }
    std::sort(report.items.begin(), report.items.end(),
              [](const CostItem& a, const CostItem& b) {
                  return a.seconds > b.seconds;
              });
    return report;
}

std::string CostReport::str(const Program& p, int topN) const {
    (void)p;
    std::ostringstream os;
    os << "cost attribution (top " << topN << "):\n";
    int n = 0;
    for (const CostItem& item : items) {
        if (n++ >= topN) break;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%12.6f s  %s", item.seconds,
                      item.isComm ? "comm " : "calc ");
        os << buf << item.what;
        if (item.isComm) os << "  (" << item.events << " events)";
        os << "\n";
    }
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "total: %.6f s (compute %.6f, comm %.6f, %lld messages)\n",
                  total.totalSec(), total.computeSec, total.commSec,
                  static_cast<long long>(total.messageEvents));
    os << buf;
    return os.str();
}

}  // namespace phpf
