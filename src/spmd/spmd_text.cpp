#include "spmd/spmd_text.h"

#include <sstream>

#include "ir/printer.h"
#include "spmd/local_bounds.h"

namespace phpf {

namespace {

class Emitter {
public:
    explicit Emitter(const SpmdLowering& low)
        : low_(low), prog_(low.program()) {
        for (const CommOp& op : low.commOps()) {
            if (op.placementLevel == 0) {
                topOps_.push_back(&op);
            } else {
                const Stmt* loop =
                    prog_.enclosingLoopAtLevel(op.atStmt, op.placementLevel);
                if (loop != nullptr) opsByLoop_[loop].push_back(&op);
            }
        }
    }

    std::string run() {
        os_ << "! SPMD form of '" << prog_.name << "' on grid "
            << low_.dataMapping().grid().str() << "\n";
        for (const CommOp* op : topOps_) emitOp(op, 0);
        emitBlock(prog_.top, 0);
        return os_.str();
    }

private:
    void emitOp(const CommOp* op, int indent) {
        pad(indent);
        if (op->isReductionCombine) {
            os_ << "! comm: combine reduction " << printExpr(prog_, op->ref)
                << " across grid dims {";
            for (size_t i = 0; i < op->combineGridDims.size(); ++i)
                os_ << (i ? "," : "") << op->combineGridDims[i];
            os_ << "}\n";
            return;
        }
        os_ << "! comm: " << commPatternName(op->req.overall) << " "
            << printExpr(prog_, op->ref) << " (vectorized at level "
            << op->placementLevel << ")\n";
    }

    void guardComment(const Stmt* s) {
        const StmtExec& ex = low_.execOf(s);
        switch (ex.guard) {
            case StmtExec::Guard::All:
                os_ << "   ! on every processor";
                break;
            case StmtExec::Guard::OwnerOf:
                os_ << "   ! if I own "
                    << (ex.guardRef != nullptr ? printExpr(prog_, ex.guardRef)
                                               : std::string("<target>"));
                break;
            case StmtExec::Guard::Union:
                os_ << "   ! with the iteration's executors";
                break;
        }
    }

    void emitBlock(const std::vector<Stmt*>& block, int indent) {
        for (const Stmt* s : block) emitStmt(s, indent);
    }

    void emitStmt(const Stmt* s, int indent) {
        switch (s->kind) {
            case StmtKind::Assign:
                pad(indent);
                os_ << printExpr(prog_, s->lhs) << " = "
                    << printExpr(prog_, s->rhs);
                guardComment(s);
                os_ << "\n";
                break;
            case StmtKind::If:
                pad(indent);
                os_ << "if (" << printExpr(prog_, s->cond) << ") then";
                guardComment(s);
                os_ << "\n";
                emitBlock(s->thenBody, indent + 2);
                if (!s->elseBody.empty()) {
                    pad(indent);
                    os_ << "else\n";
                    emitBlock(s->elseBody, indent + 2);
                }
                pad(indent);
                os_ << "end if\n";
                break;
            case StmtKind::Do: {
                const ShrinkInfo shrink = analyzeShrink(low_, s);
                pad(indent);
                os_ << "do " << prog_.sym(s->loopVar).name << " = ";
                if (shrink.shrinkable) {
                    os_ << "mylo(" << printExpr(prog_, s->lb) << "), myhi("
                        << printExpr(prog_, s->ub) << ")"
                        << "   ! bounds shrunk to my block on grid dim "
                        << shrink.gridDim;
                } else {
                    os_ << printExpr(prog_, s->lb) << ", "
                        << printExpr(prog_, s->ub);
                    if (s->step != nullptr)
                        os_ << ", " << printExpr(prog_, s->step);
                }
                os_ << "\n";
                auto it = opsByLoop_.find(s);
                if (it != opsByLoop_.end())
                    for (const CommOp* op : it->second) emitOp(op, indent + 2);
                emitBlock(s->body, indent + 2);
                pad(indent);
                os_ << "end do\n";
                break;
            }
            case StmtKind::Goto:
                pad(indent);
                os_ << "go to " << s->gotoTarget;
                guardComment(s);
                os_ << "\n";
                break;
            case StmtKind::Continue:
                pad(indent);
                if (s->label >= 0) os_ << s->label << " ";
                os_ << "continue\n";
                break;
        }
    }

    void pad(int indent) { os_ << std::string(static_cast<size_t>(indent), ' '); }

    const SpmdLowering& low_;
    const Program& prog_;
    std::ostringstream os_;
    std::vector<const CommOp*> topOps_;
    std::unordered_map<const Stmt*, std::vector<const CommOp*>> opsByLoop_;
};

}  // namespace

std::string emitSpmdText(const SpmdLowering& low) { return Emitter(low).run(); }

}  // namespace phpf
