#include "spmd/lowering.h"

#include <sstream>

#include "ir/printer.h"
#include "support/diagnostics.h"

namespace phpf {

SpmdLowering::SpmdLowering(Program& p, const SsaForm& ssa,
                           const DataMapping& dm,
                           const MappingDecisions& decisions,
                           const std::vector<ReductionInfo>& reductions)
    : prog_(p), ssa_(ssa), dm_(dm), decisions_(decisions),
      reductions_(reductions), aff_(p, &ssa) {}

namespace {

/// For privatized-array writes the executor follows the alignment
/// target in the privatized grid dims, provided the target's subscript
/// is a function of loops that also enclose the writing statement
/// (shared loops); otherwise the dimension degrades to replicated
/// (redundant execution).
RefDim contextualize(const RefDim& dim, const Stmt* writer) {
    if (!dim.partitioned()) return dim;
    if (dim.subscript.affine) {
        for (const auto& t : dim.subscript.terms) {
            bool encloses = false;
            for (const Stmt* l = writer->parent; l != nullptr; l = l->parent)
                if (l == t.loop) encloses = true;
            if (!encloses) return RefDim{};  // replicated
        }
        return dim;
    }
    return RefDim{};
}

}  // namespace

RefDesc SpmdLowering::ownerDescOfAssign(const Stmt* s) const {
    const RefDescriber rd = describer();
    if (s->lhs->kind == ExprKind::ArrayRef) {
        const ArrayPrivDecision* ad = decisions_.forArrayAt(s->lhs->sym, s);
        if (ad != nullptr && ad->kind != ArrayPrivDecision::Kind::Replicated) {
            RefDesc desc = ad->kind == ArrayPrivDecision::Kind::Partial
                               ? rd.describeWithMap(s->lhs, ad->mapInLoop)
                               : RefDesc::replicated(dm_.grid().rank());
            if (ad->alignRef != nullptr) {
                const RefDesc tgt = rd.describe(ad->alignRef);
                for (size_t g = 0; g < desc.dims.size(); ++g) {
                    if (ad->privatizedGrid[g] && tgt.dims[g].partitioned())
                        desc.dims[g] = contextualize(tgt.dims[g], s);
                }
            }
            return desc;
        }
        return rd.describe(s->lhs);
    }
    const int defId = ssa_.defIdOfAssign(s);
    const ScalarMapDecision* dec = defId >= 0 ? decisions_.forDef(defId) : nullptr;
    if (dec != nullptr && dec->kind == ScalarMapKind::Aligned) {
        RefDesc d = rd.describe(dec->alignRef);
        // Only the accumulating statement itself partitions along the
        // reduction dims; other statements of the group (the identity
        // initialization) run replicated across them so every partial
        // starts out defined.
        bool isAccumulation = false;
        for (const auto& r : reductions_)
            if (r.stmt == s || r.locStmt == s) isAccumulation = true;
        if (!isAccumulation) {
            for (int g : dec->reductionGridDims)
                d.dims[static_cast<size_t>(g)] = RefDim{};
        }
        return d;
    }
    return RefDesc::replicated(dm_.grid().rank());
}

RefDesc SpmdLowering::unionDescFor(const Stmt* s) const {
    // Borrow the executor of the first owner-computes assignment in the
    // innermost enclosing loop's body: a Union-guarded statement runs
    // wherever the iteration's real work runs.
    const auto loops = prog_.enclosingLoops(s);
    RefDesc out = RefDesc::replicated(dm_.grid().rank());
    if (loops.empty()) return out;
    const Stmt* loop = loops.back();
    bool found = false;
    prog_.forEachStmt([&](const Stmt* t) {
        if (found || t == s || t->kind != StmtKind::Assign) return;
        if (!Program::isInsideLoop(t, loop)) return;
        const RefDesc d = ownerDescOfAssign(t);
        if (d.anyConstrained()) {
            out = d;
            found = true;
        }
    });
    return out;
}

void SpmdLowering::addCommFor(Stmt* s, Expr* root, const RefDesc& execDesc) {
    if (root == nullptr) return;
    const RefDescriber rd = describer();
    Program::walkExpr(root, [&](Expr* e) {
        if (!e->isRef()) return;
        const RefDesc src = rd.describe(e);
        const CommRequirement req = classifyComm(execDesc, src);
        if (!req.needed) return;
        CommOp op;
        op.id = static_cast<int>(ops_.size());
        op.ref = e;
        op.atStmt = s;
        op.req = req;
        op.placementLevel = commPlacementLevel(prog_, &ssa_, e);
        op.execDesc = execDesc;
        op.srcDesc = src;
        ops_.push_back(std::move(op));
    });
}

void SpmdLowering::lowerStmt(Stmt* s) {
    const RefDescriber rd = describer();
    StmtExec ex;
    ex.execDesc = RefDesc::replicated(dm_.grid().rank());

    switch (s->kind) {
        case StmtKind::Assign: {
            const int defId = s->lhs->kind == ExprKind::VarRef
                                  ? ssa_.defIdOfAssign(s)
                                  : -1;
            const ScalarMapDecision* dec =
                defId >= 0 ? decisions_.forDef(defId) : nullptr;
            if (dec != nullptr && dec->kind == ScalarMapKind::PrivatizedNoAlign) {
                ex.guard = StmtExec::Guard::Union;
                ex.execDesc = unionDescFor(s);
            } else {
                const RefDesc d = ownerDescOfAssign(s);
                if (d.anyConstrained()) {
                    ex.guard = StmtExec::Guard::OwnerOf;
                    ex.guardRef = s->lhs->kind == ExprKind::ArrayRef
                                      ? s->lhs
                                      : (dec != nullptr ? dec->alignRef
                                                        : nullptr);
                    ex.execDesc = d;
                } else {
                    ex.guard = StmtExec::Guard::All;
                }
            }
            addCommFor(s, s->rhs, ex.execDesc);
            break;
        }
        case StmtKind::If: {
            if (decisions_.controlPrivatized(s)) {
                ex.guard = StmtExec::Guard::Union;
                // Section 4: predicate data goes to the union of the
                // executors of the control-dependent statements.
                RefDesc dep = RefDesc::replicated(dm_.grid().rank());
                bool found = false;
                std::function<void(const std::vector<Stmt*>&)> scan =
                    [&](const std::vector<Stmt*>& body) {
                        for (const Stmt* t : body) {
                            if (found) return;
                            if (t->kind == StmtKind::Assign) {
                                const RefDesc d = ownerDescOfAssign(t);
                                if (d.anyConstrained()) {
                                    dep = d;
                                    found = true;
                                }
                            } else if (t->kind == StmtKind::If) {
                                scan(t->thenBody);
                                scan(t->elseBody);
                            } else if (t->kind == StmtKind::Do) {
                                scan(t->body);
                            }
                        }
                    };
                scan(s->thenBody);
                scan(s->elseBody);
                ex.execDesc = found ? dep : unionDescFor(s);
            } else {
                ex.guard = StmtExec::Guard::All;
            }
            addCommFor(s, s->cond, ex.execDesc);
            break;
        }
        case StmtKind::Do: {
            // Loop control is replicated: bounds must be everywhere.
            ex.guard = StmtExec::Guard::All;
            addCommFor(s, s->lb, ex.execDesc);
            addCommFor(s, s->ub, ex.execDesc);
            addCommFor(s, s->step, ex.execDesc);
            break;
        }
        case StmtKind::Goto:
        case StmtKind::Continue:
            ex.guard = decisions_.controlPrivatized(s)
                           ? StmtExec::Guard::Union
                           : StmtExec::Guard::All;
            if (ex.guard == StmtExec::Guard::Union)
                ex.execDesc = unionDescFor(s);
            break;
    }
    exec_[s] = std::move(ex);
}

void SpmdLowering::run() {
    prog_.forEachStmt([&](Stmt* s) { lowerStmt(s); });

    // Global combining step for mapped reductions that span grid dims.
    for (const auto& red : reductions_) {
        const int defId = ssa_.defIdOfAssign(red.stmt);
        const ScalarMapDecision* dec =
            defId >= 0 ? decisions_.forDef(defId) : nullptr;
        if (dec == nullptr || !dec->isReductionResult ||
            dec->reductionGridDims.empty())
            continue;
        CommOp op;
        op.id = static_cast<int>(ops_.size());
        op.ref = red.stmt->lhs;
        op.atStmt = red.stmt;
        op.isReductionCombine = true;
        op.combineGridDims = dec->reductionGridDims;
        op.placementLevel = red.loops.front()->loopNestingLevel() - 1;
        op.execDesc = RefDesc::replicated(dm_.grid().rank());
        op.srcDesc = op.execDesc;
        op.req.needed = true;
        op.req.overall = CommPattern::Broadcast;
        op.req.dims.resize(static_cast<size_t>(dm_.grid().rank()));
        ops_.push_back(std::move(op));
    }
}

const StmtExec& SpmdLowering::execOf(const Stmt* s) const {
    auto it = exec_.find(s);
    PHPF_ASSERT(it != exec_.end(), "statement not lowered");
    return it->second;
}

std::vector<const CommOp*> SpmdLowering::opsAt(const Stmt* s) const {
    std::vector<const CommOp*> out;
    for (const auto& op : ops_)
        if (op.atStmt == s) out.push_back(&op);
    return out;
}

std::string SpmdLowering::dump() const {
    std::ostringstream os;
    prog_.forEachStmt([&](const Stmt* s) {
        auto it = exec_.find(s);
        if (it == exec_.end()) return;
        os << "s" << s->id << " [";
        switch (it->second.guard) {
            case StmtExec::Guard::All: os << "all"; break;
            case StmtExec::Guard::OwnerOf:
                os << "owner("
                   << (it->second.guardRef != nullptr
                           ? printExpr(prog_, it->second.guardRef)
                           : std::string("?"))
                   << ")";
                break;
            case StmtExec::Guard::Union: os << "union"; break;
        }
        os << "]\n";
    });
    for (const auto& op : ops_) {
        os << "  comm#" << op.id << " at s" << op.atStmt->id << " level "
           << op.placementLevel << " ";
        if (op.isReductionCombine)
            os << "reduction-combine";
        else
            os << printExpr(prog_, op.ref) << " " << op.req.str();
        os << "\n";
    }
    return os.str();
}

}  // namespace phpf
