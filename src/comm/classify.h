#pragma once

#include "comm/ref_desc.h"

namespace phpf {

/// Communication pattern along one grid dimension, or the combined
/// severity of a whole message.
enum class CommPattern : std::uint8_t {
    None,          ///< data already where the executor runs
    Shift,         ///< constant-offset neighbour exchange (vectorizable)
    Broadcast,     ///< one coordinate to all along the dimension
    AllGather,     ///< all partitions to all coordinates
    Gather,        ///< all partitions to one coordinate
    PointToPoint,  ///< one fixed coordinate to another
    General,       ///< irregular — unanalyzable subscript or dist mismatch
};

[[nodiscard]] const char* commPatternName(CommPattern p);

struct DimComm {
    CommPattern pattern = CommPattern::None;
    std::int64_t shift = 0;  ///< Shift only
};

/// Result of comparing the executor descriptor against the data
/// descriptor of a consumed reference.
struct CommRequirement {
    bool needed = false;
    CommPattern overall = CommPattern::None;  ///< most severe dimension
    std::vector<DimComm> dims;                ///< per grid dimension

    [[nodiscard]] std::string str() const;
};

/// Classify the communication needed to bring data described by
/// `source` to the processors described by `executor`, per grid
/// dimension (Section 2.1's analysis of alignment alternatives).
[[nodiscard]] CommRequirement classifyComm(const RefDesc& executor,
                                           const RefDesc& source);

/// Message-vectorization placement (paper Section 1: "optimizations like
/// message vectorization"): the communication for `ref` can be hoisted
/// to just inside the loop at this nesting level (0 = fully hoisted
/// outside all loops). The constraint is dataflow: a message must follow
/// every definition of the communicated data that reaches it, so the
/// placement is the innermost loop that still contains such a
/// definition together with the use.
[[nodiscard]] int commPlacementLevel(const Program& p, const SsaForm* ssa,
                                     const Expr* ref);

/// True when the communication for `ref` would execute inside the
/// innermost loop containing its statement — the "inner loop
/// communication" the mapping algorithm avoids (Fig. 3).
[[nodiscard]] bool isInnerLoopComm(const Program& p, const SsaForm* ssa,
                                   const Expr* ref);

}  // namespace phpf
