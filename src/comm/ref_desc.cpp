#include "comm/ref_desc.h"

#include "support/diagnostics.h"

namespace phpf {

RefDesc RefDescriber::describeWithMap(const Expr* ref,
                                      const ArrayMap& map) const {
    const int rank = gridRank();
    RefDesc out = RefDesc::replicated(rank);
    for (int g = 0; g < rank; ++g) {
        RefDim& dim = out.dims[static_cast<size_t>(g)];
        if (map.fixedCoord[static_cast<size_t>(g)] >= 0) {
            dim.kind = RefDim::Kind::Fixed;
            dim.fixedCoord = map.fixedCoord[static_cast<size_t>(g)];
        }
        // replicatedGrid dims stay Replicated.
    }
    for (size_t d = 0; d < map.dims.size(); ++d) {
        const ArrayDimMap& m = map.dims[d];
        if (!m.partitioned()) continue;
        RefDim& dim = out.dims[static_cast<size_t>(m.gridDim)];
        dim.kind = RefDim::Kind::Partitioned;
        dim.dist = m.dist;
        dim.offset = m.alignOffset;
        dim.subscript = aff_.analyze(ref->args[d]);
        dim.subscriptExpr = ref->args[d];
    }
    return out;
}

RefDesc RefDescriber::describeAt(const Expr* ref, int depth) const {
    const int rank = gridRank();
    if (depth > 8) return RefDesc::replicated(rank);  // alignment cycle guard

    if (ref->kind == ExprKind::VarRef) {
        const ScalarMapDecision* dec =
            (decisions_ != nullptr && ssa_ != nullptr)
                ? decisions_->forUse(*ssa_, ref)
                : nullptr;
        if (dec == nullptr || dec->kind == ScalarMapKind::Replicated ||
            dec->kind == ScalarMapKind::PrivatizedNoAlign ||
            dec->alignRef == nullptr)
            return RefDesc::replicated(rank);
        RefDesc out = describeAt(dec->alignRef, depth + 1);
        for (int g : dec->reductionGridDims) {
            RefDim& dim = out.dims[static_cast<size_t>(g)];
            dim = RefDim{};  // replicated across the reduction dimension
        }
        return out;
    }

    PHPF_ASSERT(ref->kind == ExprKind::ArrayRef, "describe() needs a reference");
    // Privatized array in scope? Use its in-loop mapping.
    if (decisions_ != nullptr && ref->parentStmt != nullptr) {
        if (const ArrayPrivDecision* ad =
                decisions_->forArrayAt(ref->sym, ref->parentStmt)) {
            switch (ad->kind) {
                case ArrayPrivDecision::Kind::Replicated:
                    return RefDesc::replicated(rank);
                case ArrayPrivDecision::Kind::Full:
                    // Private copy wherever the loop executes: reads are
                    // local, so the descriptor is replicated.
                    return RefDesc::replicated(rank);
                case ArrayPrivDecision::Kind::Partial:
                    return describeWithMap(ref, ad->mapInLoop);
            }
        }
    }
    return describeWithMap(ref, dm_.mapOf(ref->sym));
}

}  // namespace phpf
