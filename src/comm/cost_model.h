#pragma once

#include <cmath>
#include <cstdint>

namespace phpf {

/// Linear (latency + bandwidth) communication cost model calibrated to
/// an IBM SP2 thin node with the MPL/MPI user-space library, the
/// machine of the paper's evaluation:
///   - message latency ~ 40 µs
///   - point-to-point bandwidth ~ 35 MB/s
///   - ~ 266 MFLOPS peak, of which stencil codes sustain a fraction
/// Collectives use log2(P) stages. Absolute times are not expected to
/// match the 1997 hardware exactly; the model preserves the *ratios*
/// the paper's tables exhibit (latency-bound inner-loop messages vs.
/// vectorized bulk transfers).
struct CostModel {
    double alphaSec = 40e-6;            ///< per-message latency (s)
    double betaSecPerByte = 1.0 / 35e6; ///< inverse bandwidth (s/B)
    double flopSec = 1.0 / 50e6;        ///< sustained per-flop time (s)
    int elemBytes = 8;                  ///< REAL is double precision
    /// Global message combining across loop nests — the optimization the
    /// paper observes phpf lacks ("there is considerable scope for
    /// improving the performance of that version by global message
    /// combining across loop nests"). When on, messages of the same
    /// pattern placed at the same point share one latency term.
    bool combineMessages = false;

    [[nodiscard]] double message(double bytes) const {
        return alphaSec + bytes * betaSecPerByte;
    }
    /// Neighbour shift exchange: one message each way per processor pair,
    /// modelled as a single message of the boundary volume.
    [[nodiscard]] double shift(double bytes) const { return message(bytes); }
    /// Broadcast of `bytes` along a dimension of `procs` coordinates.
    [[nodiscard]] double broadcast(int procs, double bytes) const {
        if (procs <= 1) return 0.0;
        return std::ceil(std::log2(static_cast<double>(procs))) * message(bytes);
    }
    /// All partitions to every coordinate (total volume `totalBytes`).
    [[nodiscard]] double allGather(int procs, double totalBytes) const {
        if (procs <= 1) return 0.0;
        return std::ceil(std::log2(static_cast<double>(procs))) * alphaSec +
               totalBytes * betaSecPerByte;
    }
    /// All partitions to a single coordinate.
    [[nodiscard]] double gather(int procs, double totalBytes) const {
        return allGather(procs, totalBytes);
    }
    [[nodiscard]] double pointToPoint(double bytes) const {
        return message(bytes);
    }
    /// Combining reduction of `bytes` across `procs` coordinates.
    [[nodiscard]] double reduce(int procs, double bytes) const {
        return broadcast(procs, bytes);
    }
    [[nodiscard]] double compute(double flops) const { return flops * flopSec; }
};

}  // namespace phpf
