#pragma once

#include <cmath>
#include <cstdint>

namespace phpf {

/// Linear (latency + bandwidth) communication cost model calibrated to
/// an IBM SP2 thin node with the MPL/MPI user-space library, the
/// machine of the paper's evaluation:
///   - message latency ~ 40 µs
///   - point-to-point bandwidth ~ 35 MB/s
///   - ~ 266 MFLOPS peak, of which stencil codes sustain a fraction
/// Collectives use log2(P) stages. Absolute times are not expected to
/// match the 1997 hardware exactly; the model preserves the *ratios*
/// the paper's tables exhibit (latency-bound inner-loop messages vs.
/// vectorized bulk transfers).
struct CostModel {
    double alphaSec = 40e-6;            ///< per-message latency (s)
    double betaSecPerByte = 1.0 / 35e6; ///< inverse bandwidth (s/B)
    double flopSec = 1.0 / 50e6;        ///< sustained per-flop time (s)
    int elemBytes = 8;                  ///< REAL is double precision
    /// Global message combining across loop nests — the optimization the
    /// paper observes phpf lacks ("there is considerable scope for
    /// improving the performance of that version by global message
    /// combining across loop nests"). When on, messages of the same
    /// pattern placed at the same point share one latency term.
    bool combineMessages = false;

    [[nodiscard]] double message(double bytes) const {
        return alphaSec + bytes * betaSecPerByte;
    }
    /// Neighbour shift exchange: one message each way per processor pair,
    /// modelled as a single message of the boundary volume.
    [[nodiscard]] double shift(double bytes) const { return message(bytes); }
    /// Broadcast of `bytes` along a dimension of `procs` coordinates.
    [[nodiscard]] double broadcast(int procs, double bytes) const {
        if (procs <= 1) return 0.0;
        return std::ceil(std::log2(static_cast<double>(procs))) * message(bytes);
    }
    /// All partitions to every coordinate (total volume `totalBytes`).
    [[nodiscard]] double allGather(int procs, double totalBytes) const {
        if (procs <= 1) return 0.0;
        return std::ceil(std::log2(static_cast<double>(procs))) * alphaSec +
               totalBytes * betaSecPerByte;
    }
    /// All partitions to a single coordinate.
    [[nodiscard]] double gather(int procs, double totalBytes) const {
        return allGather(procs, totalBytes);
    }
    [[nodiscard]] double pointToPoint(double bytes) const {
        return message(bytes);
    }
    /// Combining reduction of `bytes` across `procs` coordinates.
    [[nodiscard]] double reduce(int procs, double bytes) const {
        return broadcast(procs, bytes);
    }
    [[nodiscard]] double compute(double flops) const { return flops * flopSec; }
};

/// Shared-memory (OpenMP-style) cost model of the SharedMemoryTarget:
/// the same-era SMP alternative to the SP2 — think a bus-based
/// PowerPC SMP node with the SP2's per-processor flop rate, so the
/// target comparison isolates the communication architecture, not the
/// CPU generation. There is no transfer phase and no per-message α;
/// instead the cost is dominated by
///   - barrier time at every synchronization point (a would-be message
///     becomes "producers reach the barrier, consumers read shared
///     lines"),
///   - combiner-tree stages for reductions (log2(P) lock/cache-line
///     handoffs instead of log2(P) messages), and
///   - coherence traffic: every shared line a consumer touches is one
///     line transfer, with a false-sharing penalty when many threads
///     pull a line that holds less than a line's worth of payload
///     (the privatized-copy analogue of the paper's replicated arrays
///     avoids exactly this traffic).
struct ShmCostModel {
    double barrierSec = 10e-6;        ///< all-threads barrier (centralized)
    double combineStageSec = 1.5e-6;  ///< one combiner-tree stage
    double lineSec = 0.5e-6;          ///< coherence transfer of one line
    double sharedBwSecPerByte = 1.0 / 200e6;  ///< shared-bus copy bandwidth
    int cacheLineBytes = 64;

    /// One synchronization point: producers reach the barrier before
    /// consumers may read what they wrote.
    [[nodiscard]] double barrier() const { return barrierSec; }
    /// Consumer-side read of `bytes` of another thread's data: line
    /// transfers plus the bus volume. `readers` > 1 models contention —
    /// concurrent pulls of the same lines serialize on the bus
    /// logarithmically (snoop/queueing), not linearly.
    [[nodiscard]] double sharedRead(double bytes, int readers = 1) const {
        const double lines =
            std::ceil(bytes / static_cast<double>(cacheLineBytes));
        const double contention =
            readers > 1
                ? 1.0 + std::ceil(std::log2(static_cast<double>(readers)))
                : 1.0;
        return lines * lineSec * contention + bytes * sharedBwSecPerByte;
    }
    /// False-sharing penalty: `readers` threads each pulling a line that
    /// carries under one line of payload (an element-sized shared
    /// scalar ping-pongs its whole line around the machine).
    [[nodiscard]] double falseSharing(double bytes, int readers) const {
        if (bytes >= static_cast<double>(cacheLineBytes) || readers <= 1)
            return 0.0;
        return static_cast<double>(readers) * lineSec;
    }
    /// Combiner tree across `procs` thread-private partial results.
    [[nodiscard]] double combine(int procs) const {
        if (procs <= 1) return 0.0;
        return barrierSec +
               std::ceil(std::log2(static_cast<double>(procs))) *
                   (combineStageSec + lineSec);
    }
};

}  // namespace phpf
