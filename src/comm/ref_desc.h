#pragma once

#include "analysis/affine.h"
#include "mapping/decisions.h"

namespace phpf {

/// Effective ownership of one reference along one grid dimension.
struct RefDim {
    enum class Kind : std::uint8_t {
        Replicated,   ///< available on / executed by every coordinate
        Fixed,        ///< a single pinned coordinate
        Partitioned,  ///< coordinate = dist.ownerOf(subscript + offset)
    };
    Kind kind = Kind::Replicated;
    int fixedCoord = -1;
    DimDist dist;
    AffineForm subscript;        ///< Partitioned: global index expression
    /// The actual subscript Expr (for runtime evaluation of owners when
    /// the affine form alone is not enough, e.g. pivot rows A(l,k)).
    const Expr* subscriptExpr = nullptr;
    std::int64_t offset = 0;     ///< alignment offset added before ownerOf

    [[nodiscard]] bool partitioned() const { return kind == Kind::Partitioned; }
};

/// Ownership descriptor of a reference (data location) or of a
/// statement's executor set, per grid dimension. This is what the
/// paper's "realistic communication cost model" compares: the owner of
/// the consumed data against the owner of the computation.
struct RefDesc {
    std::vector<RefDim> dims;  ///< per grid dimension
    bool analyzable = true;

    [[nodiscard]] bool fullyReplicated() const {
        for (const auto& d : dims)
            if (d.kind != RefDim::Kind::Replicated) return false;
        return true;
    }
    [[nodiscard]] bool anyPartitioned() const {
        for (const auto& d : dims)
            if (d.kind == RefDim::Kind::Partitioned) return true;
        return false;
    }
    [[nodiscard]] bool anyConstrained() const {
        for (const auto& d : dims)
            if (d.kind != RefDim::Kind::Replicated) return true;
        return false;
    }

    static RefDesc replicated(int gridRank) {
        RefDesc r;
        r.dims.resize(static_cast<size_t>(gridRank));
        return r;
    }
};

/// Computes RefDescs, consulting the mapping decisions made so far:
/// undecided / replicated scalars are replicated; aligned scalars take
/// their target's descriptor (with reduction dims forced replicated);
/// privatized-without-alignment values are viewed as replicated for
/// communication analysis (Section 2.1); privatized arrays use their
/// in-loop mapping.
class RefDescriber {
public:
    RefDescriber(const Program& p, const DataMapping& dm, const SsaForm* ssa,
                 const MappingDecisions* decisions, const AffineAnalyzer& aff)
        : prog_(p), dm_(dm), ssa_(ssa), decisions_(decisions), aff_(aff) {}

    [[nodiscard]] RefDesc describe(const Expr* ref) const {
        return describeAt(ref, 0);
    }
    /// Descriptor from a raw ArrayMap plus a concrete reference
    /// (used for partial-privatization in-loop maps).
    [[nodiscard]] RefDesc describeWithMap(const Expr* ref,
                                          const ArrayMap& map) const;

    [[nodiscard]] const DataMapping& dataMapping() const { return dm_; }
    [[nodiscard]] int gridRank() const { return dm_.grid().rank(); }

private:
    [[nodiscard]] RefDesc describeAt(const Expr* ref, int depth) const;

    const Program& prog_;
    const DataMapping& dm_;
    const SsaForm* ssa_;
    const MappingDecisions* decisions_;
    const AffineAnalyzer& aff_;
};

}  // namespace phpf
