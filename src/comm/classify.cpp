#include "comm/classify.h"

#include <algorithm>
#include <climits>
#include <optional>
#include <sstream>

#include "analysis/dependence.h"
#include "support/diagnostics.h"

namespace phpf {

const char* commPatternName(CommPattern p) {
    switch (p) {
        case CommPattern::None: return "none";
        case CommPattern::Shift: return "shift";
        case CommPattern::Broadcast: return "broadcast";
        case CommPattern::AllGather: return "allgather";
        case CommPattern::Gather: return "gather";
        case CommPattern::PointToPoint: return "p2p";
        case CommPattern::General: return "general";
    }
    return "?";
}

std::string CommRequirement::str() const {
    std::ostringstream os;
    os << (needed ? "comm" : "local") << " [" << commPatternName(overall) << "]";
    return os.str();
}

namespace {

/// Do two affine subscripts differ by a constant (same loop
/// coefficients)? Returns the constant difference a - b.
std::optional<std::int64_t> constantDiff(const AffineForm& a,
                                         const AffineForm& b) {
    if (!a.affine || !b.affine) return std::nullopt;
    for (const auto& t : a.terms)
        if (b.coeffOf(t.loop) != t.coeff) return std::nullopt;
    for (const auto& t : b.terms)
        if (a.coeffOf(t.loop) != t.coeff) return std::nullopt;
    return a.c0 - b.c0;
}

bool sameDist(const DimDist& a, const DimDist& b) {
    return a.kind() == b.kind() && a.procs() == b.procs() &&
           a.blockSize() == b.blockSize() && a.lb() == b.lb();
}

DimComm classifyDim(const RefDim& exec, const RefDim& src) {
    using K = RefDim::Kind;
    if (src.kind == K::Replicated) return {CommPattern::None, 0};

    if (src.kind == K::Fixed) {
        switch (exec.kind) {
            case K::Fixed:
                return exec.fixedCoord == src.fixedCoord
                           ? DimComm{CommPattern::None, 0}
                           : DimComm{CommPattern::PointToPoint, 0};
            case K::Replicated:
            case K::Partitioned:
                return {CommPattern::Broadcast, 0};
        }
    }

    // src partitioned
    switch (exec.kind) {
        case K::Replicated:
            return {CommPattern::AllGather, 0};
        case K::Fixed:
            return {CommPattern::Gather, 0};
        case K::Partitioned: {
            if (!sameDist(exec.dist, src.dist))
                return {CommPattern::General, 0};
            const auto diff = constantDiff(src.subscript, exec.subscript);
            if (!diff) return {CommPattern::General, 0};
            const std::int64_t total = *diff + src.offset - exec.offset;
            if (total == 0) return {CommPattern::None, 0};
            return {CommPattern::Shift, total};
        }
    }
    return {CommPattern::General, 0};
}

int severity(CommPattern p) { return static_cast<int>(p); }

}  // namespace

CommRequirement classifyComm(const RefDesc& executor, const RefDesc& source) {
    PHPF_ASSERT(executor.dims.size() == source.dims.size(),
                "grid rank mismatch in classifyComm");
    CommRequirement out;
    out.dims.resize(executor.dims.size());
    for (size_t g = 0; g < executor.dims.size(); ++g) {
        out.dims[g] = classifyDim(executor.dims[g], source.dims[g]);
        if (out.dims[g].pattern != CommPattern::None) {
            out.needed = true;
            if (severity(out.dims[g].pattern) > severity(out.overall))
                out.overall = out.dims[g].pattern;
        }
    }
    return out;
}

int commPlacementLevel(const Program& p, const SsaForm* ssa, const Expr* ref) {
    const Stmt* s = ref->parentStmt;
    PHPF_ASSERT(s != nullptr, "placement needs parentStmt links");
    int level = 0;
    if (ref->kind == ExprKind::VarRef) {
        if (ssa != nullptr) {
            for (int d : ssa->reachingDefs(ref)) {
                const SsaDef& def = ssa->def(d);
                if (def.stmt == nullptr) continue;
                if (const Stmt* cl = p.innermostCommonLoop(def.stmt, s))
                    level = std::max(level, cl->loopNestingLevel());
            }
        }
        return level;
    }
    // Array: non-index scalars in the subscripts pin the message to the
    // loops that compute them (an irregular G(q,i) access cannot be
    // hoisted past q's definition).
    if (ssa != nullptr) {
        for (const Expr* sub : ref->args) {
            Program::walkExpr(const_cast<Expr*>(sub), [&](Expr* e) {
                if (e->kind != ExprKind::VarRef) return;
                for (int d : ssa->reachingDefs(e)) {
                    const SsaDef& def = ssa->def(d);
                    if (def.kind != SsaDef::Kind::Assign) continue;
                    if (const Stmt* cl = p.innermostCommonLoop(def.stmt, s))
                        level = std::max(level, cl->loopNestingLevel());
                }
            });
        }
    }
    // A flow dependence from any store to this read constrains the
    // message to stay inside the dependence's carrier loop: the data is
    // only ready once per carrier iteration. Independent stores (DGEFA's
    // trailing-submatrix columns vs. the pivot column) don't constrain;
    // constant-distance recurrences (ADI's du(i,j-1)) hoist out of the
    // loops deeper than the carrier.
    const DependenceTester tester(p, ssa);
    p.forEachStmt([&](const Stmt* t) {
        if (t->kind != StmtKind::Assign) return;
        if (t->lhs->kind != ExprKind::ArrayRef || t->lhs->sym != ref->sym)
            return;
        const auto dep = tester.test(t, t->lhs, s, ref);
        if (!dep) return;
        if (dep->carrier != nullptr) {
            level = std::max(level, dep->carrier->loopNestingLevel());
        } else if (const Stmt* cl = p.innermostCommonLoop(t, s)) {
            level = std::max(level, cl->loopNestingLevel());
        }
    });
    return level;
}

bool isInnerLoopComm(const Program& p, const SsaForm* ssa, const Expr* ref) {
    const Stmt* s = ref->parentStmt;
    if (s == nullptr || s->level == 0) return false;
    return commPlacementLevel(p, ssa, ref) >= s->level;
}

}  // namespace phpf
