#pragma once

#include <set>
#include <string>

#include "analysis/reduction.h"
#include "comm/ref_desc.h"
#include "mapping/decisions.h"

namespace phpf {

/// Compiler options selecting between the paper's evaluated variants.
struct MappingOptions {
    /// Master switch (Table 1 "Replication" column when false).
    bool privatization = true;

    enum class AlignPolicy : std::uint8_t {
        Selected,      ///< full Fig. 3 algorithm (Table 1 "Selected Alignment")
        ProducerOnly,  ///< always align with a partitioned producer
                       ///< (Table 1 "Producer Alignment")
    };
    AlignPolicy alignPolicy = AlignPolicy::Selected;

    /// Section 2.3 special mapping of reduction results (Table 2).
    bool reductionAlignment = true;
    /// Section 3.1 array privatization from NEW clauses (Table 3).
    bool arrayPrivatization = true;
    /// Section 3.2 partial privatization (Table 3).
    bool partialPrivatization = true;
    /// Automatic array privatization without NEW clauses — the paper's
    /// future-work extension (analysis/array_priv.h). Off by default to
    /// match phpf, which relied on directives.
    bool autoArrayPrivatization = false;
    /// Section 4 privatized execution of control flow statements.
    bool controlFlowPrivatization = true;
};

/// The paper's core contribution: decides the mapping of every
/// privatizable scalar definition (Fig. 3's DetermineMapping), of
/// privatizable arrays including partial privatization, of reduction
/// results, and of control flow statements. Runs as a first pass of
/// communication analysis, exactly as in phpf (Section 2.2).
class MappingPass {
public:
    MappingPass(Program& p, const SsaForm& ssa, const DataMapping& dm,
                MappingOptions opts = {});

    void run();

    [[nodiscard]] const MappingDecisions& decisions() const { return decisions_; }
    [[nodiscard]] const std::vector<ReductionInfo>& reductions() const {
        return reductions_;
    }
    [[nodiscard]] const MappingOptions& options() const { return opts_; }
    /// Human-readable summary of every decision (used by examples and
    /// the driver's -report mode).
    [[nodiscard]] std::string report() const;

private:
    struct ConsumerSelection {
        const Expr* ref = nullptr;
        bool dummyReplicated = false;  ///< value must be available everywhere
    };

    void determineMapping(int defId);
    void handleReduction(const ReductionInfo& red);
    [[nodiscard]] ConsumerSelection selectConsumerRef(int defId);
    [[nodiscard]] const Expr* selectProducerRef(const Stmt* s);
    [[nodiscard]] bool rhsReplicated(const Stmt* s) const;
    [[nodiscard]] bool alignmentCausesInnerComm(const Stmt* s,
                                                const Expr* target) const;
    /// AlignLevel(ref) (Fig. 4): max SubscriptAlignLevel over the
    /// partitioned dims of `ref`, skipping grid dims in `skipGrid`.
    [[nodiscard]] int alignLevelOf(const Expr* ref,
                                   const std::set<int>& skipGrid = {}) const;
    [[nodiscard]] int scoreCandidate(const Expr* ref, const Stmt* defStmt) const;
    void recordForGroup(int defId, const ScalarMapDecision& d);
    void decideArrays();
    void decideOneArray(SymbolId array, Stmt* loop);
    void decideControlFlow();
    void resolveNoAlignList();
    [[nodiscard]] RefDescriber describer() const {
        return RefDescriber(prog_, dm_, &ssa_, &decisions_, aff_);
    }

    Program& prog_;
    const SsaForm& ssa_;
    const DataMapping& dm_;
    MappingOptions opts_;
    AffineAnalyzer aff_;
    std::vector<ReductionInfo> reductions_;
    MappingDecisions decisions_;
    std::vector<char> visited_;
    std::vector<char> inProgress_;
    std::vector<int> noAlignList_;
};

}  // namespace phpf
