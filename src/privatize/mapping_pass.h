#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_map>

#include "analysis/reduction.h"
#include "comm/cost_model.h"
#include "comm/ref_desc.h"
#include "mapping/decisions.h"
#include "obs/decision_log.h"

namespace phpf {

/// Target-specific pricing of the mapping alternatives recorded in the
/// decision log (DetermineMapping consults these when it annotates a
/// DecisionRecord's rejected alternatives). The hooks price, they do
/// not decide: the Fig. 3 mapping algorithm itself is structural and
/// target-independent, which is what guarantees every target compiles
/// and simulates the identical kernel. Unset members fall back to the
/// message-passing CostModel formulas the log has always used, so a
/// default-constructed hooks struct is bit-identical to the
/// pre-Target-interface behaviour. Targets supply theirs via
/// Target::mappingHooks() (src/target/target.h).
struct MappingCostHooks {
    /// Per-iteration move of one fixed-owner element to its consumer
    /// (the score-1 alignment alternative).
    std::function<double(double bytes)> elementMessage;
    /// Global combine of a reduction result across `procs`.
    std::function<double(int procs, double bytes)> reduceCombine;
    /// One value made visible on all `procs` (the replication penalty).
    std::function<double(int procs, double bytes)> broadcast;
};

/// Compiler options selecting between the paper's evaluated variants.
struct MappingOptions {
    /// Master switch (Table 1 "Replication" column when false).
    bool privatization = true;

    enum class AlignPolicy : std::uint8_t {
        Selected,      ///< full Fig. 3 algorithm (Table 1 "Selected Alignment")
        ProducerOnly,  ///< always align with a partitioned producer
                       ///< (Table 1 "Producer Alignment")
    };
    AlignPolicy alignPolicy = AlignPolicy::Selected;

    /// Section 2.3 special mapping of reduction results (Table 2).
    bool reductionAlignment = true;
    /// Section 3.1 array privatization from NEW clauses (Table 3).
    bool arrayPrivatization = true;
    /// Section 3.2 partial privatization (Table 3).
    bool partialPrivatization = true;
    /// Automatic array privatization without NEW clauses — the paper's
    /// future-work extension (analysis/array_priv.h). Off by default to
    /// match phpf, which relied on directives.
    bool autoArrayPrivatization = false;
    /// Section 4 privatized execution of control flow statements.
    bool controlFlowPrivatization = true;
};

/// The paper's core contribution: decides the mapping of every
/// privatizable scalar definition (Fig. 3's DetermineMapping), of
/// privatizable arrays including partial privatization, of reduction
/// results, and of control flow statements. Runs as a first pass of
/// communication analysis, exactly as in phpf (Section 2.2).
class MappingPass {
public:
    MappingPass(Program& p, const SsaForm& ssa, const DataMapping& dm,
                MappingOptions opts = {}, CostModel costModel = {},
                MappingCostHooks hooks = {});

    void run();

    [[nodiscard]] const MappingDecisions& decisions() const { return decisions_; }
    [[nodiscard]] const std::vector<ReductionInfo>& reductions() const {
        return reductions_;
    }
    [[nodiscard]] const MappingOptions& options() const { return opts_; }
    /// Human-readable summary of every decision (used by examples and
    /// the driver's -report mode).
    [[nodiscard]] std::string report() const;
    /// Structured decision records: the chosen mapping alternative per
    /// variable plus the modeled cost of every rejected alternative.
    /// Populated by run(); consumed by the JSON run report.
    [[nodiscard]] const obs::DecisionLog& decisionLog() const {
        return decisionLog_;
    }

private:
    struct ConsumerSelection {
        const Expr* ref = nullptr;
        bool dummyReplicated = false;  ///< value must be available everywhere
        int score = 0;                 ///< scoreCandidate of `ref`
    };

    /// Alternatives weighed for one scalar definition, captured during
    /// determineMapping for the decision log (records are built after
    /// the deferred no-align resolution, when decisions are final).
    struct ScalarAlternatives {
        const Expr* consumerRef = nullptr;
        int consumerScore = 0;
        bool consumerDummyReplicated = false;
        const Expr* producerRef = nullptr;
        int producerScore = 0;
        bool noAlignFeasible = false;
        bool privatizable = false;
        int partitionedRhsRefs = 0;
    };

    void determineMapping(int defId);
    void handleReduction(const ReductionInfo& red);
    [[nodiscard]] ConsumerSelection selectConsumerRef(int defId);
    [[nodiscard]] const Expr* selectProducerRef(const Stmt* s,
                                                int* scoreOut = nullptr);
    [[nodiscard]] bool rhsReplicated(const Stmt* s) const;
    [[nodiscard]] bool alignmentCausesInnerComm(const Stmt* s,
                                                const Expr* target) const;
    /// AlignLevel(ref) (Fig. 4): max SubscriptAlignLevel over the
    /// partitioned dims of `ref`, skipping grid dims in `skipGrid`.
    [[nodiscard]] int alignLevelOf(const Expr* ref,
                                   const std::set<int>& skipGrid = {}) const;
    [[nodiscard]] int scoreCandidate(const Expr* ref, const Stmt* defStmt) const;
    void recordForGroup(int defId, const ScalarMapDecision& d);
    void decideArrays();
    void decideOneArray(SymbolId array, Stmt* loop);
    void logArrayDecision(const ArrayPrivDecision& d, bool fullFeasible,
                          bool partialFeasible);
    void decideControlFlow();
    void resolveNoAlignList();
    /// Decision-log support: count of partitioned (non-replicated) data
    /// references on the rhs of `s` — what replication would broadcast.
    [[nodiscard]] int countPartitionedRhsRefs(const Stmt* s) const;
    /// Producer candidate for logging only: like selectProducerRef but
    /// without recursing into undecided scalar defs (no side effects).
    [[nodiscard]] std::pair<const Expr*, int> producerCandidateForLog(
        const Stmt* s) const;
    /// Build one DecisionRecord per scalar definition from the final
    /// decisions plus the captured alternatives; called at end of run().
    void buildScalarDecisionRecords();
    /// Modeled per-iteration cost of an alignment candidate with the
    /// given selection score (2 = moves with the iteration, 1 = fixed
    /// owner, i.e. one element message per iteration).
    [[nodiscard]] double alignedCandidateCost(int score) const;
    /// Hook-or-default pricing for the decision log (MappingCostHooks).
    [[nodiscard]] double priceElementMessage(double bytes) const;
    [[nodiscard]] double priceReduceCombine(int procs, double bytes) const;
    [[nodiscard]] double priceBroadcast(int procs, double bytes) const;
    [[nodiscard]] RefDescriber describer() const {
        return RefDescriber(prog_, dm_, &ssa_, &decisions_, aff_);
    }

    Program& prog_;
    const SsaForm& ssa_;
    const DataMapping& dm_;
    MappingOptions opts_;
    CostModel cm_;
    MappingCostHooks hooks_;
    AffineAnalyzer aff_;
    std::vector<ReductionInfo> reductions_;
    MappingDecisions decisions_;
    std::vector<char> visited_;
    std::vector<char> inProgress_;
    std::vector<int> noAlignList_;
    std::unordered_map<int, ScalarAlternatives> scalarAlts_;
    obs::DecisionLog decisionLog_;
};

}  // namespace phpf
