#pragma once

#include <optional>

#include "ir/program.h"

namespace phpf {

/// Where a scalar use occurs within its statement — the distinctions
/// the consumer-reference rules of Section 2.1 / Fig. 2 draw.
struct UseSite {
    enum class Where : std::uint8_t {
        RhsValue,      ///< contributes to the computed value
        RhsSubscript,  ///< inside a subscript of an rhs array reference
        LhsSubscript,  ///< inside a subscript of the stored-to reference
        Cond,          ///< in an IF predicate
        LoopBound,     ///< in a DO bound or step
    };
    Where where = Where::RhsValue;
    /// For RhsSubscript/LhsSubscript: the array reference whose subscript
    /// contains the use.
    const Expr* enclosingRef = nullptr;
};

/// Locate `use` within its parent statement. Returns nullopt only if the
/// use is not actually part of the statement's expression trees (an
/// internal error in practice).
[[nodiscard]] std::optional<UseSite> locateUse(const Stmt* s, const Expr* use);

}  // namespace phpf
