#include "privatize/mapping_pass.h"

#include <algorithm>
#include <sstream>

#include "analysis/array_priv.h"
#include "analysis/privatizable.h"
#include "comm/classify.h"
#include "ir/printer.h"
#include "privatize/use_site.h"
#include "support/diagnostics.h"

namespace phpf {

MappingPass::MappingPass(Program& p, const SsaForm& ssa, const DataMapping& dm,
                         MappingOptions opts, CostModel costModel,
                         MappingCostHooks hooks)
    : prog_(p), ssa_(ssa), dm_(dm), opts_(opts), cm_(costModel),
      hooks_(std::move(hooks)), aff_(p, &ssa) {
    visited_.assign(ssa.defs().size(), 0);
    inProgress_.assign(ssa.defs().size(), 0);
}

void MappingPass::run() {
    reductions_ = findReductions(ssa_);
    // Arrays first: scalar consumer analysis consults array decisions.
    decideArrays();
    decideControlFlow();
    for (const auto& d : ssa_.defs())
        if (d.kind == SsaDef::Kind::Assign) determineMapping(d.id);
    resolveNoAlignList();
    // Decisions are final only now (the no-align list was deferred), so
    // the structured records are built last.
    buildScalarDecisionRecords();
}

// ---------------------------------------------------------------------------
// Scalars (Fig. 3)
// ---------------------------------------------------------------------------

void MappingPass::determineMapping(int defId) {
    if (visited_[static_cast<size_t>(defId)] ||
        inProgress_[static_cast<size_t>(defId)])
        return;
    const SsaDef& def = ssa_.def(defId);
    if (def.kind != SsaDef::Kind::Assign) return;
    inProgress_[static_cast<size_t>(defId)] = 1;
    Stmt* s = def.stmt;

    ScalarMapDecision dec;  // default: replicated
    dec.rationale = "replicated (default)";

    // Alternatives weighed along the way, captured for the decision log.
    // Kept local and committed at every exit: recursive determineMapping
    // calls may rehash scalarAlts_, so no reference is held across them.
    ScalarAlternatives alt;

    auto finish = [&]() {
        inProgress_[static_cast<size_t>(defId)] = 0;
        visited_[static_cast<size_t>(defId)] = 1;
        scalarAlts_[defId] = alt;
        if (decisions_.forDef(defId) == nullptr) decisions_.setScalar(defId, dec);
    };

    if (!opts_.privatization) {
        finish();
        return;
    }

    // Reduction results take the Section 2.3 path.
    if (const ReductionInfo* red = reductionOfStmt(reductions_, s)) {
        if (red->stmt == s || red->locStmt == s) {
            inProgress_[static_cast<size_t>(defId)] = 0;
            handleReduction(*red);
            visited_[static_cast<size_t>(defId)] = 1;
            return;
        }
    }

    const Stmt* privLoop = outermostPrivatizationLoop(ssa_, defId);
    if (privLoop == nullptr) {
        dec.rationale = "replicated (not privatizable in any loop)";
        finish();
        return;
    }
    alt.privatizable = true;

    const bool rhsRepl = rhsReplicated(s);
    const bool noAlignCandidate = rhsRepl && ssa_.isUniqueDef(defId);
    alt.noAlignFeasible = noAlignCandidate;
    alt.partitionedRhsRefs = countPartitionedRhsRefs(s);

    const Expr* alignRef = nullptr;
    bool viaConsumer = false;
    if (opts_.alignPolicy == MappingOptions::AlignPolicy::Selected) {
        const ConsumerSelection consumer = selectConsumerRef(defId);
        alt.consumerRef = consumer.ref;
        alt.consumerScore = consumer.score;
        alt.consumerDummyReplicated = consumer.dummyReplicated;
        if (consumer.dummyReplicated) {
            // A reached use must be available on every processor (loop
            // bound / guard / broadcast subscript): the value stays
            // replicated — privatization without alignment would only
            // cover the executing union.
            dec.rationale = "replicated (use needed on all processors)";
            finish();
            return;
        }
        alignRef = consumer.ref;
        viaConsumer = alignRef != nullptr;
        if (!rhsRepl &&
            (alignRef == nullptr || alignmentCausesInnerComm(s, alignRef))) {
            int prodScore = 0;
            if (const Expr* prod = selectProducerRef(s, &prodScore)) {
                alignRef = prod;
                viaConsumer = false;
                alt.producerRef = prod;
                alt.producerScore = prodScore;
            }
        }
    } else {  // ProducerOnly
        int prodScore = 0;
        alignRef = selectProducerRef(s, &prodScore);
        viaConsumer = false;
        alt.producerRef = alignRef;
        alt.producerScore = prodScore;
    }

    // The recursive consumer/producer analysis may have decided this
    // definition already (e.g. as part of a reduction group). Keep the
    // group's decision — Section 2.2 requires consistency.
    if (decisions_.forDef(defId) != nullptr) {
        inProgress_[static_cast<size_t>(defId)] = 0;
        visited_[static_cast<size_t>(defId)] = 1;
        scalarAlts_[defId] = alt;
        return;
    }

    if (alignRef != nullptr) {
        const int al = alignLevelOf(alignRef);
        // The alignment is well-defined only inside the loop at nesting
        // level AlignLevel (Fig. 4). Privatize with respect to the
        // outermost enclosing loop at that level or deeper for which the
        // definition is privatizable.
        const Stmt* chosen = nullptr;
        for (const Stmt* l : prog_.enclosingLoops(s)) {
            if (l->loopNestingLevel() < al) continue;
            if (isPrivatizableAt(ssa_, defId, l)) {
                chosen = l;
                break;
            }
        }
        if (chosen != nullptr) {
            dec.kind = ScalarMapKind::Aligned;
            dec.alignRef = alignRef;
            dec.viaConsumer = viaConsumer;
            dec.alignLevel = al;
            dec.privLoop = chosen;
            dec.rationale =
                std::string("aligned with ") +
                (viaConsumer ? "consumer " : "producer ") +
                printExpr(prog_, alignRef);
            inProgress_[static_cast<size_t>(defId)] = 0;
            visited_[static_cast<size_t>(defId)] = 1;
            scalarAlts_[defId] = alt;
            recordForGroup(defId, dec);
            if (noAlignCandidate) noAlignList_.push_back(defId);
            return;
        }
        dec.rationale = "replicated (alignment invalid at privatization level)";
    } else if (!noAlignCandidate) {
        dec.rationale = "replicated (no alignment target)";
    }
    if (noAlignCandidate) noAlignList_.push_back(defId);
    finish();
}

void MappingPass::recordForGroup(int defId, const ScalarMapDecision& d) {
    // The compiler imposes: all reaching definitions of every reached use
    // get an identical mapping (Section 2.2).
    decisions_.setScalar(defId, d);
    const UseClosure closure = ssa_.reachedUses(defId);
    for (const Expr* u : closure.uses) {
        for (int rd : ssa_.reachingDefs(u)) {
            if (rd == defId) continue;
            decisions_.setScalar(rd, d);
            visited_[static_cast<size_t>(rd)] = 1;
        }
    }
}

bool MappingPass::rhsReplicated(const Stmt* s) const {
    if (s->rhs == nullptr) return true;
    const RefDescriber rd = describer();
    bool allRepl = true;
    Program::walkExpr(const_cast<Expr*>(s->rhs), [&](Expr* e) {
        if (!allRepl || !e->isRef()) return;
        if (!rd.describe(e).fullyReplicated()) allRepl = false;
    });
    return allRepl;
}

MappingPass::ConsumerSelection MappingPass::selectConsumerRef(int defId) {
    const SsaDef& def = ssa_.def(defId);
    const UseClosure closure = ssa_.reachedUses(defId);
    const RefDescriber rd = describer();

    const Expr* best = nullptr;
    int bestScore = 0;
    for (const Expr* u : closure.uses) {
        const Stmt* su = u->parentStmt;
        const auto site = locateUse(su, u);
        if (!site) continue;
        switch (site->where) {
            case UseSite::Where::LoopBound:
                return {nullptr, true};
            case UseSite::Where::Cond:
                // Predicate data must reach the union of executors of
                // the dependent statements; treated as replicated here
                // (the control-flow rules of Section 4 narrow the set
                // when the statement's execution is privatized).
                return {nullptr, true};
            case UseSite::Where::LhsSubscript:
                // Needed to evaluate the computation-partitioning guard
                // on every processor.
                return {nullptr, true};
            case UseSite::Where::RhsSubscript: {
                // If the enclosing reference needs no communication, only
                // the executing processor needs the subscript: consumer is
                // the lhs. Otherwise the subscript must be broadcast.
                const Expr* lhsRef =
                    su->kind == StmtKind::Assign ? su->lhs : nullptr;
                if (lhsRef == nullptr) return {nullptr, true};
                const CommRequirement req = classifyComm(
                    rd.describe(lhsRef), rd.describe(site->enclosingRef));
                if (req.needed) return {nullptr, true};
                const int score = scoreCandidate(lhsRef, def.stmt);
                if (score > bestScore) {
                    bestScore = score;
                    best = lhsRef;
                }
                break;
            }
            case UseSite::Where::RhsValue: {
                if (su->kind != StmtKind::Assign) break;
                const Expr* lhsRef = su->lhs;
                const Expr* candidate = nullptr;
                if (lhsRef->kind == ExprKind::VarRef) {
                    // A privatizable consumer may itself need mapping
                    // first (the recursive case of Section 2.2).
                    const int ld = ssa_.defIdOfAssign(su);
                    if (ld >= 0) const_cast<MappingPass*>(this)->determineMapping(ld);
                    const ScalarMapDecision* ldec =
                        ld >= 0 ? decisions_.forDef(ld) : nullptr;
                    if (ldec != nullptr && ldec->kind == ScalarMapKind::Aligned)
                        candidate = ldec->alignRef;
                } else {
                    if (rd.describe(lhsRef).anyConstrained()) candidate = lhsRef;
                }
                if (candidate != nullptr &&
                    candidate->kind == ExprKind::ArrayRef) {
                    const int score = scoreCandidate(candidate, def.stmt);
                    if (score > bestScore) {
                        bestScore = score;
                        best = candidate;
                    }
                }
                break;
            }
        }
    }
    return {best, false, bestScore};
}

const Expr* MappingPass::selectProducerRef(const Stmt* s, int* scoreOut) {
    if (s->rhs == nullptr) return nullptr;
    const Expr* best = nullptr;
    int bestScore = 0;
    // A producer is a partitioned array *or scalar* reference on the
    // statement (Section 2.2); a privatized scalar producer stands for
    // its own alignment target.
    Program::walkExpr(const_cast<Expr*>(s->rhs), [&](Expr* e) {
        if (!e->isRef()) return;
        const Expr* candidate = nullptr;
        if (e->kind == ExprKind::ArrayRef) {
            if (describer().describe(e).anyConstrained()) candidate = e;
        } else {
            for (int rd : ssa_.reachingDefs(e)) determineMapping(rd);
            const ScalarMapDecision* dec = decisions_.forUse(ssa_, e);
            if (dec != nullptr && dec->kind == ScalarMapKind::Aligned)
                candidate = dec->alignRef;
        }
        if (candidate == nullptr) return;
        const int score = scoreCandidate(candidate, s);
        if (score > bestScore) {
            bestScore = score;
            best = candidate;
        }
    });
    if (scoreOut != nullptr) *scoreOut = bestScore;
    return best;
}

int MappingPass::scoreCandidate(const Expr* ref, const Stmt* defStmt) const {
    if (ref->kind != ExprKind::ArrayRef) return 0;
    const RefDesc desc = describer().describe(ref);
    if (!desc.anyConstrained()) return 0;
    int score = 1;
    // Prefer a reference that traverses a distributed dimension in the
    // innermost common loop (Section 2.2: A(i) over A(1)), so the scalar
    // moves across processors with the iteration.
    const Stmt* common = prog_.innermostCommonLoop(defStmt, ref->parentStmt);
    if (common != nullptr) {
        for (const auto& dim : desc.dims) {
            if (!dim.partitioned()) continue;
            if (dim.subscript.affine && dim.subscript.coeffOf(common) != 0)
                score = 2;
        }
    }
    return score;
}

bool MappingPass::alignmentCausesInnerComm(const Stmt* s,
                                           const Expr* target) const {
    if (s->rhs == nullptr || s->level == 0) return false;
    const RefDescriber rd = describer();
    const RefDesc execDesc = rd.describe(target);
    bool inner = false;
    Program::walkExpr(const_cast<Expr*>(s->rhs), [&](Expr* e) {
        if (inner || !e->isRef()) return;
        const CommRequirement req = classifyComm(execDesc, rd.describe(e));
        if (req.needed && isInnerLoopComm(prog_, &ssa_, e)) inner = true;
    });
    return inner;
}

int MappingPass::alignLevelOf(const Expr* ref,
                              const std::set<int>& skipGrid) const {
    if (ref->kind != ExprKind::ArrayRef) return 0;
    const RefDesc desc = describer().describe(ref);
    int level = 0;
    // AlignLevel = max SubscriptAlignLevel over partitioned dims of the
    // reference (Fig. 4); partial privatization skips the partitioned
    // (non-privatized) grid dims (Section 3.2).
    for (size_t g = 0; g < desc.dims.size(); ++g) {
        const RefDim& dim = desc.dims[g];
        if (!dim.partitioned()) continue;
        if (skipGrid.count(static_cast<int>(g)) > 0) continue;
        const int sal = dim.subscript.affine ? dim.subscript.varLevel
                                             : dim.subscript.varLevel + 1;
        level = std::max(level, sal);
    }
    return level;
}

// ---------------------------------------------------------------------------
// Reductions (Section 2.3)
// ---------------------------------------------------------------------------

void MappingPass::handleReduction(const ReductionInfo& red) {
    const int valDef = ssa_.defIdOfAssign(red.stmt);
    const int locDef =
        red.locStmt != nullptr ? ssa_.defIdOfAssign(red.locStmt) : -1;

    auto markVisited = [&](const ScalarMapDecision& d) {
        // Propagate to the whole reaching-def group (Section 2.2's
        // consistency restriction): e.g. the l = k initialization before
        // a MAXLOC must carry the same mapping as the reduction result.
        if (valDef >= 0) {
            visited_[static_cast<size_t>(valDef)] = 1;
            recordForGroup(valDef, d);
        }
        if (locDef >= 0) {
            visited_[static_cast<size_t>(locDef)] = 1;
            recordForGroup(locDef, d);
        }
    };

    ScalarMapDecision dec;
    dec.isReductionResult = true;
    dec.rationale = "replicated (reduction, alignment disabled)";
    if (!opts_.reductionAlignment) {
        markVisited(dec);
        return;
    }

    // The result must be privatizable w.r.t. the loop immediately
    // surrounding the reduction loop nest.
    const Stmt* outermostRed = red.loops.front();
    const auto enclosing = prog_.enclosingLoops(outermostRed);
    const Stmt* surrounding = enclosing.empty() ? nullptr : enclosing.back();
    if (surrounding != nullptr && valDef >= 0 &&
        !isPrivatizableAt(ssa_, valDef, surrounding)) {
        dec.rationale = "replicated (reduction result live outside loop)";
        markVisited(dec);
        return;
    }

    // Alignment target: the partitioned reference whose ownership
    // partitions the local reduction.
    const Expr* searchRoot =
        red.guard != nullptr ? red.guard->cond : red.stmt->rhs;
    const RefDescriber rd = describer();
    const Expr* target = nullptr;
    int bestScore = 0;
    Program::walkExpr(const_cast<Expr*>(searchRoot), [&](Expr* e) {
        if (e->kind != ExprKind::ArrayRef) return;
        if (!rd.describe(e).anyConstrained()) return;
        const int score = scoreCandidate(e, red.stmt);
        if (score > bestScore) {
            bestScore = score;
            target = e;
        }
    });
    if (target == nullptr) {
        dec.rationale = "replicated (reduction over replicated data)";
        markVisited(dec);
        return;
    }

    // Grid dims the reduction spans: dims whose subscript varies with a
    // reduction loop. The scalar is replicated across those and aligned
    // with the target in the rest.
    const RefDesc tdesc = rd.describe(target);
    std::set<int> redDims;
    for (size_t g = 0; g < tdesc.dims.size(); ++g) {
        const RefDim& dim = tdesc.dims[g];
        if (!dim.partitioned()) continue;
        for (const Stmt* l : red.loops) {
            const bool varies = dim.subscript.affine
                                    ? dim.subscript.coeffOf(l) != 0
                                    : dim.subscript.varLevel >=
                                          l->loopNestingLevel();
            if (varies) redDims.insert(static_cast<int>(g));
        }
    }

    const int al = alignLevelOf(target, redDims);
    const int validLevel = surrounding != nullptr
                               ? surrounding->loopNestingLevel()
                               : 0;
    if (surrounding != nullptr && al > validLevel) {
        dec.rationale = "replicated (reduction alignment invalid)";
        markVisited(dec);
        return;
    }

    dec.kind = ScalarMapKind::Aligned;
    dec.alignRef = target;
    dec.viaConsumer = false;
    dec.alignLevel = al;
    dec.privLoop = surrounding;
    dec.reductionGridDims.assign(redDims.begin(), redDims.end());
    dec.rationale = "reduction result aligned with " + printExpr(prog_, target);
    markVisited(dec);
}

// ---------------------------------------------------------------------------
// Deferred privatization without alignment
// ---------------------------------------------------------------------------

void MappingPass::resolveNoAlignList() {
    // Re-examine: if every rhs datum is still replicated now that all
    // mapping decisions are in, privatize without alignment (Fig. 3's
    // NoAlignExam deferral).
    for (int defId : noAlignList_) {
        const SsaDef& def = ssa_.def(defId);
        if (!rhsReplicated(def.stmt)) continue;
        const Stmt* privLoop = outermostPrivatizationLoop(ssa_, defId);
        ScalarMapDecision dec;
        dec.kind = ScalarMapKind::PrivatizedNoAlign;
        dec.privLoop = privLoop;
        dec.rationale = "privatized without alignment (rhs replicated)";
        recordForGroup(defId, dec);
    }
}

// ---------------------------------------------------------------------------
// Arrays (Section 3)
// ---------------------------------------------------------------------------

void MappingPass::decideArrays() {
    prog_.forEachStmt([&](Stmt* s) {
        if (s->kind != StmtKind::Do || !s->independent) return;
        for (SymbolId v : s->newVars)
            if (prog_.sym(v).isArray()) decideOneArray(v, s);
    });
    if (!opts_.autoArrayPrivatization) return;
    // Future-work extension: arrays proven privatizable without a NEW
    // clause go through the same mapping procedure.
    for (const AutoPrivArray& ap : findAutoPrivatizableArrays(prog_, ssa_)) {
        if (decisions_.forArrayAt(ap.array, ap.loop->body.empty()
                                                ? static_cast<const Stmt*>(ap.loop)
                                                : ap.loop->body.front()) != nullptr)
            continue;  // a NEW clause already covered it
        decideOneArray(ap.array, ap.loop);
    }
}

void MappingPass::decideOneArray(SymbolId array, Stmt* loop) {
    ArrayPrivDecision dec;
    dec.array = array;
    dec.loop = loop;
    const int rank = dm_.grid().rank();
    dec.privatizedGrid.assign(static_cast<size_t>(rank), 0);
    dec.rationale = "replicated (array privatization disabled)";

    if (!opts_.privatization || !opts_.arrayPrivatization) {
        logArrayDecision(dec, false, false);
        decisions_.addArray(std::move(dec));
        return;
    }

    // Collect reads of the array inside the loop; their statements' lhs
    // references are the consumer candidates.
    const RefDescriber rd = describer();
    const Expr* target = nullptr;
    const Expr* sourceUse = nullptr;
    int bestScore = 0;
    prog_.forEachStmt([&](Stmt* s) {
        if (s->kind != StmtKind::Assign || !Program::isInsideLoop(s, loop))
            return;
        Program::walkExpr(s->rhs, [&](Expr* e) {
            if (e->kind != ExprKind::ArrayRef || e->sym != array) return;
            const Expr* lhsRef = s->lhs;
            if (lhsRef->kind != ExprKind::ArrayRef) return;
            if (!rd.describe(lhsRef).anyConstrained()) return;
            const int score = scoreCandidate(lhsRef, s);
            if (score > bestScore) {
                bestScore = score;
                target = lhsRef;
                sourceUse = e;
            }
        });
    });

    const int privLevel = loop->loopNestingLevel();
    if (target == nullptr) {
        // No partitioned consumer: private copies everywhere are enough.
        dec.kind = ArrayPrivDecision::Kind::Full;
        std::fill(dec.privatizedGrid.begin(), dec.privatizedGrid.end(), 1);
        dec.rationale = "fully privatized (no partitioned consumer)";
        logArrayDecision(dec, true, false);
        decisions_.addArray(std::move(dec));
        return;
    }

    dec.alignRef = target;
    // Full privatization: valid when the target's alignment is
    // well-defined throughout the privatizing loop in all grid dims.
    if (alignLevelOf(target) <= privLevel) {
        dec.kind = ArrayPrivDecision::Kind::Full;
        std::fill(dec.privatizedGrid.begin(), dec.privatizedGrid.end(), 1);
        dec.rationale =
            "fully privatized, aligned with " + printExpr(prog_, target);
        logArrayDecision(dec, true, false);
        decisions_.addArray(std::move(dec));
        return;
    }

    if (!opts_.partialPrivatization) {
        dec.rationale = "replicated (full privatization invalid; partial "
                        "privatization disabled)";
        logArrayDecision(dec, false, false);
        decisions_.addArray(std::move(dec));
        return;
    }

    // Partial privatization (Section 3.2): partition the array dims that
    // correspond (through a shared loop index) to partitioned dims of the
    // target; privatize across the remaining grid dims.
    const Symbol& asym = prog_.sym(array);
    const Symbol& tsym = prog_.sym(target->sym);
    const RefDesc tdesc = rd.describe(target);
    (void)tsym;

    ArrayMap inLoop;
    inLoop.symbol = array;
    inLoop.hasMapping = true;
    inLoop.dims.resize(static_cast<size_t>(asym.rank()));
    inLoop.replicatedGrid.assign(static_cast<size_t>(rank), 0);
    inLoop.fixedCoord.assign(static_cast<size_t>(rank), -1);

    std::set<int> privatizedDims;
    for (int g = 0; g < rank; ++g) {
        const RefDim& tdim = tdesc.dims[static_cast<size_t>(g)];
        if (!tdim.partitioned()) continue;
        // Match: a source-use subscript affine in the same single loop as
        // the target subscript in this grid dim.
        bool matched = false;
        if (tdim.subscript.affine && tdim.subscript.terms.size() == 1) {
            const Stmt* tLoop = tdim.subscript.terms[0].loop;
            for (int sd = 0; sd < asym.rank(); ++sd) {
                const AffineForm sf =
                    aff_.analyze(sourceUse->args[static_cast<size_t>(sd)]);
                if (!sf.affine || sf.terms.size() != 1) continue;
                if (sf.terms[0].loop != tLoop) continue;
                if (sf.terms[0].coeff != tdim.subscript.terms[0].coeff)
                    continue;
                ArrayDimMap& m = inLoop.dims[static_cast<size_t>(sd)];
                m.gridDim = g;
                m.dist = tdim.dist;
                // Source element x sits where the target index
                // (x - c_src + c_tgt) sits.
                m.alignOffset =
                    tdim.subscript.c0 - sf.c0 + tdim.offset;
                matched = true;
                break;
            }
        }
        if (!matched) {
            privatizedDims.insert(g);
            inLoop.replicatedGrid[static_cast<size_t>(g)] = 1;
            dec.privatizedGrid[static_cast<size_t>(g)] = 1;
        }
    }

    // Validity: AlignLevel restricted to the privatized grid dims.
    std::set<int> skip;
    for (int g = 0; g < rank; ++g)
        if (privatizedDims.count(g) == 0) skip.insert(g);
    if (alignLevelOf(target, skip) > privLevel) {
        dec.kind = ArrayPrivDecision::Kind::Replicated;
        dec.rationale = "replicated (partial privatization invalid)";
        logArrayDecision(dec, false, false);
        decisions_.addArray(std::move(dec));
        return;
    }

    dec.kind = ArrayPrivDecision::Kind::Partial;
    dec.mapInLoop = std::move(inLoop);
    std::ostringstream os;
    os << "partially privatized: partitioned in grid dims {";
    bool first = true;
    for (int g = 0; g < rank; ++g) {
        if (dec.privatizedGrid[static_cast<size_t>(g)]) continue;
        os << (first ? "" : ",") << g;
        first = false;
    }
    os << "}, privatized in {";
    first = true;
    for (int g : privatizedDims) {
        os << (first ? "" : ",") << g;
        first = false;
    }
    os << "}, aligned with " << printExpr(prog_, target);
    dec.rationale = os.str();
    logArrayDecision(dec, false, true);
    decisions_.addArray(std::move(dec));
}

void MappingPass::logArrayDecision(const ArrayPrivDecision& d, bool fullFeasible,
                                   bool partialFeasible) {
    obs::DecisionRecord rec;
    rec.kind = obs::DecisionRecord::Kind::Array;
    rec.variable = prog_.sym(d.array).name;
    rec.stmtId = d.loop->id;
    rec.rationale = d.rationale;
    if (d.alignRef != nullptr) {
        rec.alignTarget = printExpr(prog_, d.alignRef);
        rec.alignLevel = alignLevelOf(d.alignRef);
    }
    switch (d.kind) {
        case ArrayPrivDecision::Kind::Full: rec.chosen = "full-private"; break;
        case ArrayPrivDecision::Kind::Partial:
            rec.chosen = "partial-private";
            break;
        case ArrayPrivDecision::Kind::Replicated:
            rec.chosen = "replicated";
            break;
    }

    obs::AlternativeCost full;
    full.name = "full-private";
    full.feasible = fullFeasible;
    full.chosen = d.kind == ArrayPrivDecision::Kind::Full;
    if (!fullFeasible)
        full.note = "alignment not valid across all grid dims at the "
                    "privatization level";
    rec.alternatives.push_back(std::move(full));

    obs::AlternativeCost partial;
    partial.name = "partial-private";
    partial.feasible = partialFeasible;
    partial.chosen = d.kind == ArrayPrivDecision::Kind::Partial;
    if (!partialFeasible)
        partial.note = fullFeasible ? "not needed (full privatization valid)"
                                    : "no valid partition/privatize split";
    rec.alternatives.push_back(std::move(partial));

    obs::AlternativeCost repl;
    repl.name = "replicated";
    repl.feasible = true;
    repl.chosen = d.kind == ArrayPrivDecision::Kind::Replicated;
    repl.note = "every executor computes the whole array";
    rec.alternatives.push_back(std::move(repl));

    decisionLog_.add(std::move(rec));
}

// ---------------------------------------------------------------------------
// Control flow (Section 4)
// ---------------------------------------------------------------------------

void MappingPass::decideControlFlow() {
    prog_.forEachStmt([&](Stmt* s) {
        if (s->kind != StmtKind::If && s->kind != StmtKind::Goto) return;
        const auto loops = prog_.enclosingLoops(s);
        if (loops.empty()) return;

        obs::DecisionRecord rec;
        rec.kind = obs::DecisionRecord::Kind::ControlFlow;
        rec.variable = (s->kind == StmtKind::If ? "if@s" : "goto@s") +
                       std::to_string(s->id);
        rec.stmtId = s->id;

        if (!opts_.controlFlowPrivatization || !opts_.privatization) {
            decisions_.setControlPrivatized(s, false);
            rec.chosen = "all-processors";
            rec.rationale = "control-flow privatization disabled";
            rec.alternatives.push_back(
                {"privatized-execution", false, false, 0.0, "",
                 "disabled by options"});
            rec.alternatives.push_back(
                {"all-processors", true, true, 0.0, "", ""});
            decisionLog_.add(std::move(rec));
            return;
        }
        const Stmt* innermost = loops.back();
        bool privatized = true;
        if (s->kind == StmtKind::Goto) {
            const Stmt* tgt = prog_.findLabel(s->gotoTarget);
            privatized = tgt != nullptr && Program::isInsideLoop(tgt, innermost);
        }
        decisions_.setControlPrivatized(s, privatized);
        rec.chosen = privatized ? "privatized-execution" : "all-processors";
        rec.rationale =
            privatized
                ? "branch targets stay inside the innermost loop (Section 4)"
                : "goto leaves the innermost loop: every processor must follow";
        rec.alternatives.push_back({"privatized-execution", privatized,
                                    privatized, 0.0, "",
                                    privatized ? "" : "target outside loop"});
        rec.alternatives.push_back({"all-processors", true, !privatized, 0.0,
                                    "", "predicate broadcast to all"});
        decisionLog_.add(std::move(rec));
    });
}

// ---------------------------------------------------------------------------
// Decision log (observability)
// ---------------------------------------------------------------------------

int MappingPass::countPartitionedRhsRefs(const Stmt* s) const {
    if (s->rhs == nullptr) return 0;
    const RefDescriber rd = describer();
    int n = 0;
    Program::walkExpr(const_cast<Expr*>(s->rhs), [&](Expr* e) {
        if (e->isRef() && !rd.describe(e).fullyReplicated()) ++n;
    });
    return n;
}

std::pair<const Expr*, int> MappingPass::producerCandidateForLog(
    const Stmt* s) const {
    if (s->rhs == nullptr) return {nullptr, 0};
    const RefDescriber rd = describer();
    const Expr* best = nullptr;
    int bestScore = 0;
    // Same candidate set as selectProducerRef, but consulting only the
    // decisions already made (no recursion, no side effects) — the log
    // builder runs after every decision is final, so this is exact.
    Program::walkExpr(const_cast<Expr*>(s->rhs), [&](Expr* e) {
        if (!e->isRef()) return;
        const Expr* candidate = nullptr;
        if (e->kind == ExprKind::ArrayRef) {
            if (rd.describe(e).anyConstrained()) candidate = e;
        } else {
            const ScalarMapDecision* dec = decisions_.forUse(ssa_, e);
            if (dec != nullptr && dec->kind == ScalarMapKind::Aligned)
                candidate = dec->alignRef;
        }
        if (candidate == nullptr) return;
        const int score = scoreCandidate(candidate, s);
        if (score > bestScore) {
            bestScore = score;
            best = candidate;
        }
    });
    return {best, bestScore};
}

double MappingPass::alignedCandidateCost(int score) const {
    // Score 2: the alignment target traverses a partitioned dimension
    // with the common loop, so the definition travels with the iteration
    // and needs no communication of its own. Score 1: the target pins
    // the value to a fixed owner — one element message per iteration of
    // the privatization loop.
    return score >= 2
               ? 0.0
               : priceElementMessage(static_cast<double>(cm_.elemBytes));
}

double MappingPass::priceElementMessage(double bytes) const {
    return hooks_.elementMessage ? hooks_.elementMessage(bytes)
                                 : cm_.message(bytes);
}

double MappingPass::priceReduceCombine(int procs, double bytes) const {
    return hooks_.reduceCombine ? hooks_.reduceCombine(procs, bytes)
                                : cm_.reduce(procs, bytes);
}

double MappingPass::priceBroadcast(int procs, double bytes) const {
    return hooks_.broadcast ? hooks_.broadcast(procs, bytes)
                            : cm_.broadcast(procs, bytes);
}

void MappingPass::buildScalarDecisionRecords() {
    const int procs = dm_.grid().totalProcs();
    for (const auto& d : ssa_.defs()) {
        if (d.kind != SsaDef::Kind::Assign) continue;
        const ScalarMapDecision* dec = decisions_.forDef(d.id);
        if (dec == nullptr) continue;

        obs::DecisionRecord rec;
        rec.kind = dec->isReductionResult ? obs::DecisionRecord::Kind::Reduction
                                          : obs::DecisionRecord::Kind::Scalar;
        rec.variable = prog_.sym(d.sym).name + "#" + std::to_string(d.version);
        rec.defId = d.id;
        rec.stmtId = d.stmt->id;
        rec.rationale = dec->rationale;
        rec.alignLevel = dec->alignLevel;
        if (dec->alignRef != nullptr)
            rec.alignTarget = printExpr(prog_, dec->alignRef);
        switch (dec->kind) {
            case ScalarMapKind::Aligned:
                rec.chosen = dec->isReductionResult ? "reduction-aligned"
                             : dec->viaConsumer     ? "consumer-aligned"
                                                    : "producer-aligned";
                break;
            case ScalarMapKind::PrivatizedNoAlign:
                rec.chosen = "unaligned-private";
                break;
            case ScalarMapKind::Replicated:
                rec.chosen = "replicated";
                break;
        }

        if (dec->isReductionResult) {
            // Section 2.3 weighs two alternatives: align with the
            // reduced data (one combine at the nest exit) or leave the
            // result replicated (every processor keeps a full copy and
            // the local accumulations must be combined everywhere).
            const bool aligned = dec->kind == ScalarMapKind::Aligned;
            rec.alternatives.push_back(
                {"reduction-aligned", aligned, aligned,
                 priceReduceCombine(procs, static_cast<double>(cm_.elemBytes)),
                 rec.alignTarget,
                 aligned ? "one combine per nest exit" : "alignment invalid"});
            rec.alternatives.push_back(
                {"replicated", true, !aligned,
                 priceBroadcast(procs, static_cast<double>(cm_.elemBytes)),
                 "", "result broadcast to every processor"});
            decisionLog_.add(std::move(rec));
            continue;
        }

        ScalarAlternatives alt;
        if (auto it = scalarAlts_.find(d.id); it != scalarAlts_.end())
            alt = it->second;
        // The algorithm short-circuits the producer scan when a consumer
        // alignment sticks; recover the candidate now that decisions are
        // final so every record carries all three alternative costs.
        if (alt.producerRef == nullptr) {
            const auto [ref, score] = producerCandidateForLog(d.stmt);
            alt.producerRef = ref;
            alt.producerScore = score;
        }

        const bool privOn = opts_.privatization;
        obs::AlternativeCost consumer;
        consumer.name = "consumer-aligned";
        consumer.feasible = privOn && alt.privatizable &&
                            alt.consumerRef != nullptr;
        consumer.chosen = rec.chosen == "consumer-aligned";
        if (alt.consumerRef != nullptr)
            consumer.target = printExpr(prog_, alt.consumerRef);
        if (consumer.feasible) {
            consumer.costSec = alignedCandidateCost(alt.consumerScore);
        } else if (!privOn) {
            consumer.note = "privatization disabled";
        } else if (!alt.privatizable) {
            consumer.note = "not privatizable in any loop";
        } else if (alt.consumerDummyReplicated) {
            consumer.note = "a reached use needs the value on every processor";
        } else if (opts_.alignPolicy == MappingOptions::AlignPolicy::ProducerOnly) {
            consumer.note = "not considered (producer-only policy)";
        } else {
            consumer.note = "no partitioned consumer reference";
        }
        rec.alternatives.push_back(std::move(consumer));

        obs::AlternativeCost producer;
        producer.name = "producer-aligned";
        producer.feasible = privOn && alt.privatizable &&
                            alt.producerRef != nullptr;
        producer.chosen = rec.chosen == "producer-aligned";
        if (alt.producerRef != nullptr)
            producer.target = printExpr(prog_, alt.producerRef);
        if (producer.feasible)
            producer.costSec = alignedCandidateCost(alt.producerScore);
        else if (!privOn)
            producer.note = "privatization disabled";
        else if (!alt.privatizable)
            producer.note = "not privatizable in any loop";
        else
            producer.note = "no partitioned producer reference";
        rec.alternatives.push_back(std::move(producer));

        obs::AlternativeCost noAlign;
        noAlign.name = "unaligned-private";
        noAlign.feasible = privOn && alt.privatizable && alt.noAlignFeasible;
        noAlign.chosen = rec.chosen == "unaligned-private";
        if (noAlign.feasible)
            noAlign.costSec = 0.0;  // rhs replicated: no communication at all
        else if (!privOn)
            noAlign.note = "privatization disabled";
        else if (!alt.privatizable)
            noAlign.note = "not privatizable in any loop";
        else
            noAlign.note = "rhs reads partitioned data or def is not unique";
        rec.alternatives.push_back(std::move(noAlign));

        obs::AlternativeCost repl;
        repl.name = "replicated";
        repl.feasible = true;
        repl.chosen = rec.chosen == "replicated";
        // Replication broadcasts every partitioned rhs operand so all
        // processors can compute the value (the Table 1 penalty).
        repl.costSec =
            static_cast<double>(alt.partitionedRhsRefs) *
            priceBroadcast(procs, static_cast<double>(cm_.elemBytes));
        if (alt.partitionedRhsRefs > 0)
            repl.note = std::to_string(alt.partitionedRhsRefs) +
                        " partitioned rhs operand(s) broadcast per iteration";
        rec.alternatives.push_back(std::move(repl));

        decisionLog_.add(std::move(rec));
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string MappingPass::report() const {
    std::ostringstream os;
    os << "mapping decisions for program '" << prog_.name << "':\n";
    for (const auto& d : ssa_.defs()) {
        if (d.kind != SsaDef::Kind::Assign) continue;
        const ScalarMapDecision* dec = decisions_.forDef(d.id);
        if (dec == nullptr) continue;
        os << "  " << prog_.sym(d.sym).name << "#" << d.version << " @ s"
           << d.stmt->id << ": " << dec->rationale << "\n";
    }
    for (const auto& a : decisions_.arrays())
        os << "  array " << prog_.sym(a.array).name << " @ do "
           << prog_.sym(a.loop->loopVar).name << ": " << a.rationale << "\n";
    prog_.forEachStmt([&](const Stmt* s) {
        if (s->kind != StmtKind::If && s->kind != StmtKind::Goto) return;
        if (prog_.enclosingLoops(s).empty()) return;
        os << "  control s" << s->id << ": "
           << (decisions_.controlPrivatized(s) ? "privatized execution"
                                               : "executed by all processors")
           << "\n";
    });
    return os.str();
}

}  // namespace phpf
