#include "privatize/use_site.h"

namespace phpf {

namespace {

/// Depth-first search for `target` under `root`, remembering the
/// innermost ArrayRef whose subscript subtree we are in.
bool findUnder(const Expr* root, const Expr* target, const Expr* arrayAncestor,
               const Expr** foundAncestor) {
    if (root == target) {
        *foundAncestor = arrayAncestor;
        return true;
    }
    const Expr* nextAncestor =
        root->kind == ExprKind::ArrayRef ? root : arrayAncestor;
    for (const Expr* a : root->args)
        if (findUnder(a, target, nextAncestor, foundAncestor)) return true;
    return false;
}

}  // namespace

std::optional<UseSite> locateUse(const Stmt* s, const Expr* use) {
    const Expr* ancestor = nullptr;
    switch (s->kind) {
        case StmtKind::Assign:
            if (s->rhs != nullptr && findUnder(s->rhs, use, nullptr, &ancestor)) {
                if (ancestor == nullptr)
                    return UseSite{UseSite::Where::RhsValue, nullptr};
                return UseSite{UseSite::Where::RhsSubscript, ancestor};
            }
            if (s->lhs != nullptr && s->lhs->kind == ExprKind::ArrayRef) {
                for (const Expr* sub : s->lhs->args)
                    if (findUnder(sub, use, s->lhs, &ancestor))
                        return UseSite{UseSite::Where::LhsSubscript, s->lhs};
            }
            return std::nullopt;
        case StmtKind::If:
            if (s->cond != nullptr && findUnder(s->cond, use, nullptr, &ancestor))
                return UseSite{UseSite::Where::Cond, ancestor};
            return std::nullopt;
        case StmtKind::Do:
            for (const Expr* bound : {s->lb, s->ub, s->step}) {
                if (bound != nullptr && findUnder(bound, use, nullptr, &ancestor))
                    return UseSite{UseSite::Where::LoopBound, nullptr};
            }
            return std::nullopt;
        default:
            return std::nullopt;
    }
}

}  // namespace phpf
