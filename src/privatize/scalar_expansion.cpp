#include "privatize/scalar_expansion.h"

#include <map>
#include <set>

#include "analysis/affine.h"

namespace phpf {

namespace {

/// Convert a VarRef node in place into `array(subscript)` .
void toArrayRef(Program& p, Expr* node, SymbolId array, const Expr* subscript) {
    node->kind = ExprKind::ArrayRef;
    node->sym = array;
    node->args = {cloneExpr(p, subscript)};
}

}  // namespace

int expandAlignedScalars(Program& p, const SsaForm& ssa, const DataMapping& dm,
                         const MappingDecisions& decisions) {
    // Group decisions by scalar symbol: expansion is per-symbol.
    std::map<SymbolId, const ScalarMapDecision*> candidates;
    for (const auto& [defId, dec] : decisions.scalars()) {
        if (dec.kind != ScalarMapKind::Aligned || dec.isReductionResult)
            continue;
        if (dec.alignRef == nullptr ||
            dec.alignRef->kind != ExprKind::ArrayRef || dec.privLoop == nullptr)
            continue;
        const SsaDef& def = ssa.def(defId);
        candidates.emplace(def.sym, &dec);
    }

    int expanded = 0;
    for (const auto& [sym, dec] : candidates) {
        const Expr* target = dec->alignRef;
        const ArrayMap& tmap = dm.mapOf(target->sym);

        // The expansion dimension: the target's first partitioned dim
        // with a single-loop affine subscript.
        int dimIdx = -1;
        for (int d = 0; d < static_cast<int>(tmap.dims.size()); ++d) {
            if (!tmap.dims[static_cast<size_t>(d)].partitioned()) continue;
            dimIdx = d;
            break;
        }
        if (dimIdx < 0) continue;
        const Expr* subscript = target->args[static_cast<size_t>(dimIdx)];

        // Every def and use of the scalar must live inside the
        // privatizing loop (so one expansion site covers them all).
        bool allInside = true;
        std::vector<Expr*> sites;   // VarRef occurrences (defs' lhs + uses)
        p.forEachStmt([&](Stmt* s) {
            Program::forEachExpr(s, [&](Expr* e) {
                if (e->kind != ExprKind::VarRef || e->sym != sym) return;
                if (!Program::isInsideLoop(s, dec->privLoop)) allInside = false;
                sites.push_back(e);
            });
        });
        if (!allInside || sites.empty()) continue;

        // Declare x_ex with the target dimension's bounds and align it
        // with that dimension of the target array.
        const Symbol& scalar = p.sym(sym);
        const Symbol& tsym = p.sym(target->sym);
        std::string newName = scalar.name + "_ex";
        if (p.findSymbol(newName) != kNoSymbol) continue;  // already expanded
        const SymbolId arr = p.addSymbol(
            newName, scalar.type, {tsym.dims[static_cast<size_t>(dimIdx)]});

        AlignDirective ad;
        ad.source = arr;
        ad.target = target->sym;
        ad.dims.resize(tsym.dims.size());
        for (size_t d = 0; d < tsym.dims.size(); ++d) {
            if (static_cast<int>(d) == dimIdx)
                ad.dims[d] = {AlignDim::Kind::SourceDim, 0, 0, 0};
            else
                ad.dims[d] = {AlignDim::Kind::Replicate, -1, 0, 0};
        }
        p.aligns.push_back(std::move(ad));

        for (Expr* site : sites) toArrayRef(p, site, arr, subscript);
        ++expanded;
    }
    if (expanded > 0) p.finalize();
    return expanded;
}

}  // namespace phpf
