#pragma once

#include "mapping/decisions.h"

namespace phpf {

/// Scalar expansion (Padua & Wolfe, the paper's reference [16]) — the
/// classical alternative to privatization. Each aligned privatizable
/// scalar is expanded into an array indexed by the alignment target's
/// distributed subscript and ALIGNed with the target array, so the
/// values live exactly where privatization would have placed them — at
/// the price of O(extent) storage per scalar.
///
/// Provided for the comparison ablation (bench_ablations): compiling
/// the expanded program with privatization disabled should match the
/// parallelism of the privatized original.
///
/// Only scalars whose every definition and use lies inside the
/// privatizing loop and whose target has a single-loop affine
/// partitioned subscript are expanded; the rest are left alone.
/// Returns the number of scalars expanded. The program is mutated and
/// re-finalized; the caller must recompile it.
int expandAlignedScalars(Program& p, const SsaForm& ssa,
                         const DataMapping& dm,
                         const MappingDecisions& decisions);

}  // namespace phpf
