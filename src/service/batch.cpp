#include "service/batch.h"

#include <chrono>
#include <fstream>
#include <future>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/flight_recorder.h"
#include "programs/programs.h"

namespace phpf::service {

namespace {

std::int64_t orDefault(std::int64_t v, std::int64_t dflt) {
    return v > 0 ? v : dflt;
}

/// Builtin kernels at smoke-friendly default sizes; every parameter can
/// be overridden per job.
bool builtinBuilder(const BatchJob& job, std::function<Program()>* out,
                    std::string* err) {
    const std::string& p = job.program;
    const std::int64_t n = job.n, niter = job.niter;
    const std::int64_t nx = job.nx, ny = job.ny, nz = job.nz;
    if (p == "fig1")
        *out = [n] { return programs::fig1(orDefault(n, 32)); };
    else if (p == "fig2")
        *out = [n] { return programs::fig2(orDefault(n, 32)); };
    else if (p == "fig4")
        *out = [n] { return programs::fig4(orDefault(n, 32)); };
    else if (p == "fig5")
        *out = [n] { return programs::fig5(orDefault(n, 16)); };
    else if (p == "fig6")
        *out = [nx, ny, nz] {
            return programs::fig6(orDefault(nx, 8), orDefault(ny, 8),
                                  orDefault(nz, 8));
        };
    else if (p == "fig7")
        *out = [n] { return programs::fig7(orDefault(n, 32)); };
    else if (p == "tomcatv")
        *out = [n, niter] {
            return programs::tomcatv(orDefault(n, 64), orDefault(niter, 2));
        };
    else if (p == "dgefa")
        *out = [n] { return programs::dgefa(orDefault(n, 16)); };
    else if (p == "appsp")
        *out = [nx, ny, nz, niter] {
            return programs::appsp(orDefault(nx, 8), orDefault(ny, 8),
                                   orDefault(nz, 8), orDefault(niter, 2),
                                   /*oneD=*/true);
        };
    else if (p == "appsp2d")
        *out = [nx, ny, nz, niter] {
            return programs::appsp(orDefault(nx, 8), orDefault(ny, 8),
                                   orDefault(nz, 8), orDefault(niter, 2),
                                   /*oneD=*/false);
        };
    else if (p == "adi")
        *out = [n, niter] {
            return programs::adi(orDefault(n, 16), orDefault(niter, 2));
        };
    else {
        if (err != nullptr) *err = "unknown builtin program '" + p + "'";
        return false;
    }
    return true;
}

bool parseOptions(const obs::Json& o, BatchJob* job, std::string* err) {
    for (const std::string& key : o.keys()) {
        const obs::Json& v = o.at(key);
        MappingOptions& m = job->passes.mapping;
        if (key == "privatization") m.privatization = v.boolValue();
        else if (key == "align_policy") {
            if (v.stringValue() == "selected")
                m.alignPolicy = MappingOptions::AlignPolicy::Selected;
            else if (v.stringValue() == "producer-only")
                m.alignPolicy = MappingOptions::AlignPolicy::ProducerOnly;
            else {
                *err = "bad align_policy '" + v.stringValue() + "'";
                return false;
            }
        } else if (key == "reduction_alignment")
            m.reductionAlignment = v.boolValue();
        else if (key == "array_privatization")
            m.arrayPrivatization = v.boolValue();
        else if (key == "partial_privatization")
            m.partialPrivatization = v.boolValue();
        else if (key == "auto_array_privatization")
            m.autoArrayPrivatization = v.boolValue();
        else if (key == "control_flow_privatization")
            m.controlFlowPrivatization = v.boolValue();
        else if (key == "rewrite_induction")
            job->passes.rewriteInduction = v.boolValue();
        else if (key == "elem_bytes")
            job->target.costModel.elemBytes = static_cast<int>(v.intValue());
        else if (key == "combine_messages")
            job->target.costModel.combineMessages = v.boolValue();
        else if (key == "sim_engine") {
            if (!parseSimEngine(v.stringValue(), &job->passes.simEngine)) {
                *err = "bad sim_engine '" + v.stringValue() +
                       "' (want interp|bytecode)";
                return false;
            }
        } else if (key == "relaxed_merge")
            job->passes.relaxedMerge = v.boolValue();
        else if (key == "target") {
            if (!parseTargetKind(v.stringValue(),
                                 &job->target.targetKind)) {
                *err = "bad target '" + v.stringValue() + "' (want mp|shm)";
                return false;
            }
        } else {
            *err = "unknown option '" + key + "'";
            return false;
        }
    }
    return true;
}

}  // namespace

bool parseBatchJob(const obs::Json& j, int index, BatchJob* job,
                   std::string* err) {
    if (!j.isObject()) {
        *err = "job " + std::to_string(index) + " is not an object";
        return false;
    }
    if (const obs::Json* v = j.find("name")) job->name = v->stringValue();
    if (const obs::Json* v = j.find("program")) job->program = v->stringValue();
    if (const obs::Json* v = j.find("file")) job->file = v->stringValue();
    if (const obs::Json* v = j.find("source")) job->source = v->stringValue();
    if (const obs::Json* v = j.find("n")) job->n = v->intValue();
    if (const obs::Json* v = j.find("niter")) job->niter = v->intValue();
    if (const obs::Json* v = j.find("nx")) job->nx = v->intValue();
    if (const obs::Json* v = j.find("ny")) job->ny = v->intValue();
    if (const obs::Json* v = j.find("nz")) job->nz = v->intValue();
    if (const obs::Json* v = j.find("deadline_ms"))
        job->deadlineMs = v->intValue();
    if (const obs::Json* v = j.find("profile")) job->profile = v->boolValue();
    if (const obs::Json* v = j.find("grid")) {
        if (!v->isArray() || v->size() == 0) {
            *err = "job " + std::to_string(index) + ": grid must be a "
                   "nonempty array";
            return false;
        }
        job->target.gridExtents.clear();
        for (const obs::Json& e : v->items())
            job->target.gridExtents.push_back(static_cast<int>(e.intValue()));
    }
    if (const obs::Json* v = j.find("options")) {
        if (!v->isObject()) {
            *err = "job " + std::to_string(index) + ": options must be an "
                   "object";
            return false;
        }
        std::string oerr;
        if (!parseOptions(*v, job, &oerr)) {
            *err = "job " + std::to_string(index) + ": " + oerr;
            return false;
        }
    }
    const int sources = (job->program.empty() ? 0 : 1) +
                        (job->file.empty() ? 0 : 1) +
                        (job->source.empty() ? 0 : 1);
    if (sources != 1) {
        *err = "job " + std::to_string(index) +
               ": exactly one of program/file/source required";
        return false;
    }
    if (job->name.empty()) {
        std::ostringstream name;
        if (!job->program.empty()) name << job->program;
        else if (!job->file.empty()) name << job->file;
        else name << "inline";
        name << "/grid=";
        for (size_t i = 0; i < job->target.gridExtents.size(); ++i)
            name << (i > 0 ? "x" : "") << job->target.gridExtents[i];
        name << "#" << index;
        job->name = name.str();
    }
    return true;
}

obs::Json batchJobToJson(const BatchJob& job, bool resolveFiles) {
    obs::Json j = obs::Json::object();
    if (!job.name.empty()) j.set("name", job.name);
    if (!job.program.empty()) j.set("program", job.program);
    if (!job.source.empty()) {
        j.set("source", job.source);
    } else if (!job.file.empty()) {
        if (resolveFiles) {
            std::ifstream in(job.file);
            std::stringstream buf;
            buf << in.rdbuf();
            if (in && !buf.str().empty()) {
                j.set("source", buf.str());
            } else {
                // Unreadable here: emit the path unresolved so the
                // consumer's error names the file instead of a
                // baffling empty-source schema violation.
                j.set("file", job.file);
            }
        } else {
            j.set("file", job.file);
        }
    }
    if (job.n > 0) j.set("n", job.n);
    if (job.niter > 0) j.set("niter", job.niter);
    if (job.nx > 0) j.set("nx", job.nx);
    if (job.ny > 0) j.set("ny", job.ny);
    if (job.nz > 0) j.set("nz", job.nz);
    if (job.deadlineMs > 0) j.set("deadline_ms", job.deadlineMs);
    if (job.profile) j.set("profile", true);
    obs::Json grid = obs::Json::array();
    for (int e : job.target.gridExtents) grid.push(e);
    j.set("grid", std::move(grid));
    // Every option explicitly, defaults included: a wire request's
    // meaning must not depend on sender and receiver agreeing on
    // defaults (the keys are exactly parseOptions' vocabulary).
    const MappingOptions& m = job.passes.mapping;
    obs::Json o = obs::Json::object();
    o.set("privatization", m.privatization);
    o.set("align_policy",
          m.alignPolicy == MappingOptions::AlignPolicy::Selected
              ? "selected"
              : "producer-only");
    o.set("reduction_alignment", m.reductionAlignment);
    o.set("array_privatization", m.arrayPrivatization);
    o.set("partial_privatization", m.partialPrivatization);
    o.set("auto_array_privatization", m.autoArrayPrivatization);
    o.set("control_flow_privatization", m.controlFlowPrivatization);
    o.set("rewrite_induction", job.passes.rewriteInduction);
    o.set("elem_bytes", job.target.costModel.elemBytes);
    o.set("combine_messages", job.target.costModel.combineMessages);
    o.set("sim_engine", simEngineName(job.passes.simEngine));
    o.set("relaxed_merge", job.passes.relaxedMerge);
    o.set("target", targetKindName(job.target.targetKind));
    j.set("options", std::move(o));
    return j;
}

const std::vector<std::string>& builtinProgramNames() {
    static const std::vector<std::string> names = {
        "fig1", "fig2",  "fig4",    "fig5", "fig6", "fig7",
        "adi",  "dgefa", "tomcatv", "appsp", "appsp2d"};
    return names;
}

bool parseBatchSpec(const obs::Json& doc, BatchSpec* out, std::string* err) {
    const obs::Json* jobs = nullptr;
    if (doc.isArray()) jobs = &doc;
    else if (doc.isObject()) jobs = doc.find("jobs");
    if (jobs == nullptr || !jobs->isArray()) {
        *err = "expected {\"jobs\": [...]} or a bare array of jobs";
        return false;
    }
    // "repeat" duplicates a row N times — handy for cache/coalescing
    // smoke tests without copy-pasting job objects.
    int index = 0;
    for (const obs::Json& j : jobs->items()) {
        std::int64_t repeat = 1;
        if (j.isObject()) {
            if (const obs::Json* v = j.find("repeat")) repeat = v->intValue();
        }
        if (repeat < 1) repeat = 1;
        for (std::int64_t rep = 0; rep < repeat; ++rep) {
            BatchJob job;
            if (!parseBatchJob(j, index, &job, err)) return false;
            if (repeat > 1 && rep > 0)
                job.name += "~rep" + std::to_string(rep);
            out->jobs.push_back(std::move(job));
            ++index;
        }
    }
    if (out->jobs.empty()) {
        *err = "jobs file contains no jobs";
        return false;
    }
    return true;
}

bool loadBatchFile(const std::string& path, BatchSpec* out, std::string* err) {
    std::ifstream in(path);
    if (!in) {
        *err = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string perr;
    const obs::Json doc = obs::Json::parse(buf.str(), &perr);
    if (!perr.empty()) {
        *err = path + ": " + perr;
        return false;
    }
    return parseBatchSpec(doc, out, err);
}

bool requestOfJob(const BatchJob& job, CompileRequest* out, std::string* err) {
    out->name = job.name;
    out->target = job.target;
    out->passes = job.passes;
    out->deadlineMs = job.deadlineMs;
    out->profile = job.profile;
    if (!job.source.empty()) {
        out->source = job.source;
    } else if (!job.file.empty()) {
        std::ifstream in(job.file);
        if (!in) {
            *err = "cannot open " + job.file;
            return false;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        out->source = buf.str();
        if (out->source.empty()) {
            *err = job.file + " is empty";
            return false;
        }
    } else {
        if (!builtinBuilder(job, &out->build, err)) return false;
    }
    return true;
}

BatchOutcome runBatch(CompileService& svc, const BatchSpec& spec,
                      std::ostream& out, const BatchRunOptions& opts) {
    const auto t0 = std::chrono::steady_clock::now();
    BatchOutcome outcome;
    outcome.jobs = static_cast<int>(spec.jobs.size());

    // Resume: collect the names already journaled by a previous
    // (possibly killed) run. A torn final line — the crash happened
    // mid-write — fails to parse and is simply not counted as done.
    std::set<std::string> done;
    // Per-job model-error MAPE for the summary's calibration section:
    // filled from live profiled rows and — on resume — from journaled
    // rows, so skipped jobs keep their profile data in the summary.
    std::map<std::string, double> mapeByJob;
    if (opts.resume && !opts.journalPath.empty()) {
        std::ifstream in(opts.journalPath);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            std::string perr;
            const obs::Json row = obs::Json::parse(line, &perr);
            if (!perr.empty() || !row.isObject()) continue;
            if (row.find("summary") != nullptr) continue;
            if (const obs::Json* v = row.find("job")) {
                done.insert(v->stringValue());
                if (const obs::Json* cal = row.find("calibration"))
                    if (const obs::Json* m = cal->find("mape_sec_pct"))
                        mapeByJob[v->stringValue()] = m->numberValue();
            }
        }
    }
    std::ofstream journal;
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath, std::ios::app);

    const FaultInjector* finj = opts.faults != nullptr
                                    ? opts.faults
                                    : FaultInjector::processIfEnabled();
    FaultSite* abortSite =
        finj != nullptr ? finj->find(faultsite::kBatchAbort) : nullptr;

    struct Pending {
        const BatchJob* job;
        std::shared_future<CompileResult> fut;
        std::string error;  ///< request construction failure
        bool skipped = false;
    };
    std::vector<Pending> pending;
    pending.reserve(spec.jobs.size());
    for (const BatchJob& job : spec.jobs) {
        Pending p;
        p.job = &job;
        if (done.count(job.name) != 0) {
            p.skipped = true;
            ++outcome.skipped;
        } else {
            CompileRequest req;
            std::string err;
            if (requestOfJob(job, &req, &err))
                p.fut = svc.submit(std::move(req));
            else
                p.error = std::move(err);
        }
        pending.push_back(std::move(p));
    }

    const auto emit = [&](const obs::Json& row) {
        out << row.dump(-1) << "\n";
        if (journal.is_open()) {
            // Append + flush per row: everything this run completed
            // survives a kill at any point.
            journal << row.dump(-1) << "\n";
            journal.flush();
        }
    };

    for (const Pending& p : pending) {
        if (p.skipped) continue;
        obs::Json row = obs::Json::object();
        row.set("job", p.job->name);
        obs::Json grid = obs::Json::array();
        for (int e : p.job->target.gridExtents) grid.push(e);
        row.set("grid", std::move(grid));
        if (!p.error.empty()) {
            row.set("status", "bad-request");
            row.set("code", errorCodeName(ErrorCode::EmptyRequest));
            row.set("error", p.error);
            ++outcome.failed;
            emit(row);
            continue;
        }
        const CompileResult r = p.fut.get();
        row.set("status", statusName(r.status));
        row.set("code", errorCodeName(r.code));
        row.set("cache_hit", r.cacheHit);
        row.set("coalesced", r.coalesced);
        if (r.retries > 0) row.set("retries", r.retries);
        row.set("parse_us", r.parseUs);
        row.set("compile_us", r.compileUs);
        row.set("total_us", r.totalUs);
        if (r.status == CompileStatus::Ok) {
            ++outcome.ok;
            if (r.cacheHit) ++outcome.cacheHits;
            if (r.coalesced) ++outcome.coalesced;
            row.set("program", r.artifact->programName);
            row.set("cost_total_sec", r.artifact->cost.totalSec());
            row.set("cost_compute_sec", r.artifact->cost.computeSec);
            row.set("cost_comm_sec", r.artifact->cost.commSec);
            row.set("message_events", r.artifact->cost.messageEvents);
            row.set("comm_bytes", r.artifact->cost.commBytes);
            row.set("decisions",
                    static_cast<std::int64_t>(
                        r.artifact->runReport.at("decisions").size()));
            row.set("comm_ops",
                    static_cast<std::int64_t>(
                        r.artifact->runReport.at("comm_ops").size()));
            if (r.artifact->profiled) {
                // Cached with the artifact, so warm hits replay the
                // identical calibration the cold compile produced.
                const obs::Json& cs = r.artifact->calibration.at("summary");
                obs::Json cal = obs::Json::object();
                cal.set("mape_sec_pct", cs.at("mape_sec_pct").numberValue());
                cal.set("mape_events_pct",
                        cs.at("mape_events_pct").numberValue());
                cal.set("rows", cs.at("rows").intValue());
                cal.set("joined", cs.at("joined").intValue());
                row.set("calibration", std::move(cal));
                mapeByJob[p.job->name] =
                    cs.at("mape_sec_pct").numberValue();
            }
        } else {
            ++outcome.failed;
            row.set("error", r.error);
            obs::FlightRecorder::global().record(
                "batch.job_fail",
                p.job->name + " " + statusName(r.status));
            if (!opts.flightRecorderPath.empty())
                obs::FlightRecorder::global().dumpJsonl(
                    opts.flightRecorderPath);
        }
        emit(row);
        // Simulated kill of the batch runner: stop right after a row
        // hit the journal — no summary, later jobs never awaited. The
        // deterministic stand-in for SIGKILL that the resume tests and
        // the CI round-trip drive.
        if (FaultInjector::poll(abortSite)) {
            outcome.aborted = true;
            obs::FlightRecorder::global().record("batch.abort",
                                                 "after " + p.job->name);
            if (!opts.flightRecorderPath.empty())
                obs::FlightRecorder::global().dumpJsonl(
                    opts.flightRecorderPath);
            break;
        }
    }

    outcome.wallSec =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()) /
        1e6;
    if (outcome.aborted) return outcome;

    obs::Json summary = obs::Json::object();
    summary.set("summary", true);
    summary.set("schema", "phpf.batch_report");
    // v2: the embedded service registry's histograms gained
    // p50/p90/p99 quantile estimates.
    // v3: profiled jobs carry a per-row "calibration" object and the
    // summary aggregates their model-error MAPE (journaled rows of a
    // resumed run included).
    summary.set("schema_version", 3);
    summary.set("jobs", outcome.jobs);
    summary.set("ok", outcome.ok);
    summary.set("failed", outcome.failed);
    summary.set("cache_hits", outcome.cacheHits);
    summary.set("coalesced_joins", outcome.coalesced);
    summary.set("skipped", outcome.skipped);
    summary.set("wall_sec", outcome.wallSec);
    if (!mapeByJob.empty()) {
        obs::Json cal = obs::Json::object();
        cal.set("jobs_profiled",
                static_cast<std::int64_t>(mapeByJob.size()));
        double sum = 0.0;
        obs::Json perJob = obs::Json::array();
        // Input order, not map order, so the summary reads like the
        // batch.
        for (const BatchJob& job : spec.jobs) {
            const auto it = mapeByJob.find(job.name);
            if (it == mapeByJob.end()) continue;
            sum += it->second;
            obs::Json pj = obs::Json::object();
            pj.set("job", job.name);
            pj.set("mape_sec_pct", it->second);
            perJob.push(std::move(pj));
        }
        cal.set("mean_mape_sec_pct",
                sum / static_cast<double>(mapeByJob.size()));
        cal.set("per_job", std::move(perJob));
        summary.set("calibration", std::move(cal));
    }
    summary.set("service", svc.metricsJson());
    out << summary.dump(-1) << "\n";
    return outcome;
}

}  // namespace phpf::service
