#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/compiler.h"
#include "obs/concurrent_trace.h"
#include "obs/metrics.h"
#include "service/artifact_cache.h"
#include "service/error_code.h"
#include "support/fault.h"
#include "support/parallel.h"

namespace phpf::service {

/// One compile job: a program (mini-HPF source text OR an IR builder
/// producing a fresh Program per call) plus the canonicalized compile
/// configuration. Tracer/diagnostics side channels deliberately have no
/// place here — the service owns per-job sessions, which is what makes
/// requests safe to fingerprint, cache, and coalesce.
struct CompileRequest {
    /// Label for logs and batch rows; not part of the cache key.
    std::string name;
    /// Mini-HPF source text. Mutually exclusive with `build` (source
    /// wins when both are set).
    std::string source;
    /// IR builder invoked once per cache miss (and once per request for
    /// fingerprinting); must return an equivalent fresh Program each
    /// call — compilation mutates its input.
    std::function<Program()> build;
    TargetConfig target;
    PassOptions passes;
    /// Wall-clock budget from submission; 0 = none. An expired budget
    /// cancels the pipeline cleanly at the next stage boundary.
    std::int64_t deadlineMs = 0;
    /// Run the embedded profiled simulation on a cache miss and cache
    /// the per-statement profile + model-error calibration with the
    /// artifact — warm hits replay the identical calibration without
    /// re-simulating. Part of the cache key (profiled and unprofiled
    /// artifacts are distinct entries).
    bool profile = false;
};

enum class CompileStatus : std::uint8_t {
    Ok,
    ParseError,        ///< front end rejected the source (not cached)
    DeadlineExceeded,  ///< cancelled between passes by the deadline
    Error,             ///< builder/pipeline failure (InternalError etc.)
};
[[nodiscard]] const char* statusName(CompileStatus s);

/// The immutable product of one successful compilation, shared
/// read-only between the cache and any number of concurrent readers.
/// Owns its Program, so it stays valid after the request that produced
/// it is gone.
struct CompileArtifact {
    std::string key;          ///< content-addressed request key
    std::string programName;
    std::shared_ptr<const Compilation> compilation;
    std::string spmdText;         ///< annotated SPMD pseudo-code
    std::string decisionReport;   ///< human-readable mapping decisions
    CostBreakdown cost;           ///< analytic prediction
    /// buildRunReport(); includes simulation/profile/calibration
    /// sections when the request asked for a profile.
    obs::Json runReport;
    bool profiled = false;  ///< the sections below are populated
    obs::Json profile;      ///< per-statement profile (schema v3)
    obs::Json calibration;  ///< model-error calibration (schema v3)
};

struct CompileResult {
    CompileStatus status = CompileStatus::Error;
    /// Machine-readable failure class; None iff status is Ok. Retry
    /// policy and tests branch on this, never on `error` text.
    ErrorCode code = ErrorCode::Internal;
    std::shared_ptr<const CompileArtifact> artifact;  ///< null unless Ok
    bool cacheHit = false;
    /// True when this request joined an identical in-flight compile
    /// instead of running its own.
    bool coalesced = false;
    /// Transparent retries this result consumed (transient failures
    /// re-run with backoff; the last attempt's outcome is what you see).
    int retries = 0;
    std::string key;      ///< empty for parse errors
    std::string error;    ///< message for non-Ok statuses
    double parseUs = 0;   ///< parse/build + fingerprint time
    double compileUs = 0; ///< pipeline + artifact assembly (0 on hit/join)
    double totalUs = 0;   ///< submission to completion, queue wait included
};

struct ServiceConfig {
    /// Worker threads of the async submit() pool. 0 = auto
    /// (PHPF_SIM_THREADS, else hardware concurrency, clamped to 8 —
    /// compiles are memory-bound well before that).
    int workers = 0;
    /// Total artifact-cache entries across shards.
    std::size_t cacheCapacity = 256;
    int cacheShards = 8;
    /// Transparent retries of a transient failure (isTransient(code))
    /// per request, each preceded by an exponentially growing backoff.
    /// 0 disables retrying.
    int maxRetries = 2;
    /// First retry backoff; doubles per attempt.
    std::int64_t retryBackoffMs = 1;
    /// Fault source for the svc.* sites. Null consults the process-wide
    /// injector (PHPF_FAULTS / --faults) at construction.
    const FaultInjector* faults = nullptr;
    /// Optional cross-thread tracer. When set, every request records a
    /// root span ("request:<name>"), worker-side spans adopt the
    /// submitting thread's context (so async jobs parent under their
    /// request instead of floating), and each compiled job's per-pass
    /// session spans are imported beneath it. Must outlive the service.
    obs::ConcurrentTracer* tracer = nullptr;
};

struct ServiceStats {
    std::int64_t requests = 0;
    std::int64_t compiles = 0;  ///< misses actually executed
    std::int64_t coalescedJoins = 0;
    std::int64_t parseErrors = 0;
    std::int64_t deadlineExceeded = 0;
    std::int64_t errors = 0;
    std::int64_t retries = 0;         ///< transparent transient re-runs
    std::int64_t transientFaults = 0; ///< transient failures observed
    std::int64_t shedEntries = 0;     ///< cache entries dropped by shedding
    CacheStats cache;
    std::size_t queueDepth = 0;
    int activeJobs = 0;
    int workers = 0;
};

/// Concurrent compile service: fingerprints every request (stable
/// program hash + normalized options key), serves repeats from a
/// bounded sharded LRU of immutable artifacts, coalesces identical
/// in-flight requests onto one execution, enforces per-request
/// deadlines via between-pass cancellation, and records service metrics
/// (hits/misses/evictions, coalesced joins, queue depth, per-stage
/// latency histograms) in an obs::MetricRegistry.
class CompileService {
public:
    explicit CompileService(ServiceConfig cfg = {});
    ~CompileService();  ///< drains the worker pool first

    CompileService(const CompileService&) = delete;
    CompileService& operator=(const CompileService&) = delete;

    /// Synchronous compile on the calling thread (cache hits and
    /// coalesced joins return without compiling anything).
    [[nodiscard]] CompileResult compile(const CompileRequest& req);

    /// Asynchronous compile on the worker pool. The deadline clock
    /// starts now, so queue wait counts against it.
    [[nodiscard]] std::shared_future<CompileResult> submit(CompileRequest req);

    /// Cache-only lookup by content-addressed key: the artifact when
    /// this service has it cached, null otherwise — never compiles.
    /// This is the peer-fetch path of the cluster (GET
    /// /artifact/<key>): any worker can answer for any key it happens
    /// to hold, with strictly bounded work. Counts a cache hit/miss.
    [[nodiscard]] std::shared_ptr<const CompileArtifact> cachedArtifact(
        const std::string& key) {
        return cache_.get(key);
    }

    /// Memory-pressure hook: drop least-recently-used cached artifacts
    /// down to `targetEntries` (default: half the current size). Wired
    /// to the svc.mem_pressure fault site and callable directly by an
    /// embedding host under real memory pressure. Returns entries shed.
    std::size_t shedCache(std::size_t targetEntries);
    std::size_t shedCache() { return shedCache(cache_.stats().size / 2); }

    [[nodiscard]] ServiceStats stats() const;
    /// Service metric snapshot: the registry (counters + per-stage
    /// latency histograms) plus live cache/queue state — ready to embed
    /// in a JSON run report or the batch summary row.
    [[nodiscard]] obs::Json metricsJson() const;

    /// Visit the registry the service records into. (The registry is
    /// itself thread-safe now; this remains for callers that want a
    /// scoped read without naming the member.)
    void withMetrics(const std::function<void(const obs::MetricRegistry&)>& fn) const;

    /// Direct read access to the service's metric registry (thread-safe;
    /// the exposition endpoint scrapes this).
    [[nodiscard]] const obs::MetricRegistry& metrics() const {
        return registry_;
    }

private:
    struct Inflight {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        CompileResult result;
    };

    using Clock = std::chrono::steady_clock;

    [[nodiscard]] CompileResult compileAt(const CompileRequest& req,
                                          Clock::time_point submitted);
    /// Execute a cache miss: run the pipeline with deadline
    /// cancellation, assemble the artifact, fill per-stage metrics.
    [[nodiscard]] CompileResult runJob(const CompileRequest& req,
                                       const std::string& key,
                                       std::unique_ptr<Program> prog,
                                       DiagEngine& diags,
                                       Clock::time_point submitted);
    /// runJob plus the transient-retry loop: a failure with a transient
    /// ErrorCode re-runs (on a freshly built program — the failed
    /// attempt may have mutated the old one) after exponential backoff,
    /// up to ServiceConfig::maxRetries times.
    [[nodiscard]] CompileResult runJobWithRetry(const CompileRequest& req,
                                                const std::string& key,
                                                std::unique_ptr<Program> prog,
                                                DiagEngine& diags,
                                                Clock::time_point submitted);
    void recordOutcome(const CompileResult& r);

    ServiceConfig cfg_;
    ArtifactCache cache_;
    std::unique_ptr<TaskPool> pool_;
    /// svc.* sites resolved once at construction (null = not armed).
    FaultSite* transientSite_ = nullptr;
    FaultSite* memPressureSite_ = nullptr;

    std::mutex inflightMu_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;

    obs::MetricRegistry registry_;
};

}  // namespace phpf::service
