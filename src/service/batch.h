#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"
#include "service/compile_service.h"

namespace phpf::service {

/// One row of a batch jobs file: a program source (builtin kernel name,
/// .hpf file path, or inline source text) × grid × option variant.
struct BatchJob {
    std::string name;     ///< row label; synthesized when absent
    std::string program;  ///< builtin kernel (tomcatv, dgefa, appsp, ...)
    /// Builtin kernel parameters; 0 = the kernel's smoke-size default.
    std::int64_t n = 0, niter = 0, nx = 0, ny = 0, nz = 0;
    std::string file;    ///< path to a .hpf source file
    std::string source;  ///< inline mini-HPF source text
    TargetConfig target;
    PassOptions passes;
    std::int64_t deadlineMs = 0;
    /// Run the profiled embedded simulation (CompileRequest::profile):
    /// the job row gains a "calibration" object and the batch summary a
    /// per-job model-error MAPE.
    bool profile = false;
};

struct BatchSpec {
    std::vector<BatchJob> jobs;
};

/// Names of the builtin kernels a job's "program" field accepts.
[[nodiscard]] const std::vector<std::string>& builtinProgramNames();

/// Parse a jobs document: either {"jobs": [...]} or a bare array of job
/// objects (fields: program|file|source, n/niter/nx/ny/nz, grid,
/// options{...}, deadline_ms, name, repeat). Returns false with *err
/// set on malformed input.
bool parseBatchSpec(const obs::Json& doc, BatchSpec* out, std::string* err);

/// Parse ONE job object (the same schema a jobs-file row uses; `index`
/// only labels errors and the synthesized default name). This is also
/// the cluster wire protocol's request payload codec, so a coordinator
/// and its workers parse requests with exactly the jobs-file rules.
bool parseBatchJob(const obs::Json& j, int index, BatchJob* out,
                   std::string* err);

/// Serialize one job to the jobs-file/wire schema such that
/// parseBatchJob(batchJobToJson(job)) reproduces it. Every options key
/// is spelled explicitly (defaults included) — wire requests must not
/// depend on two builds agreeing on defaults. `file` jobs are emitted
/// as resolved inline `source` when `resolveFiles` is true (the wire
/// case: workers must not need the coordinator's filesystem).
[[nodiscard]] obs::Json batchJobToJson(const BatchJob& job,
                                       bool resolveFiles = false);

/// Read + parse a jobs file from disk.
bool loadBatchFile(const std::string& path, BatchSpec* out, std::string* err);

/// Turn one job into a service request (resolves builtin kernels to IR
/// builders and files to source text). Returns false with *err set for
/// unknown programs or unreadable files.
bool requestOfJob(const BatchJob& job, CompileRequest* out, std::string* err);

struct BatchOutcome {
    int jobs = 0;
    int ok = 0;
    int failed = 0;  ///< parse errors, deadline misses, internal errors
    int cacheHits = 0;
    int coalesced = 0;
    int skipped = 0;  ///< resumed: journal already had the row
    /// True when the batch.abort fault site killed the run mid-matrix
    /// (the simulated crash of the batch runner: later rows were never
    /// awaited and no summary was written).
    bool aborted = false;
    double wallSec = 0;
};

/// Crash-safety knobs of one runBatch() invocation.
struct BatchRunOptions {
    /// Append every completed job row to this JSONL file, flushed
    /// before the next result is awaited — a killed run leaves a valid
    /// journal of everything it finished. Empty disables journaling.
    /// The journal holds job rows only (never the summary row), so
    /// resuming from it is a pure name-set lookup.
    std::string journalPath;
    /// Skip jobs that already have a row in the journal: a kill +
    /// `--resume` sequence completes the matrix with each job having
    /// run exactly once.
    bool resume = false;
    /// Fault source for the batch.abort site (null = the process-wide
    /// injector).
    const FaultInjector* faults = nullptr;
    /// When non-empty, the global flight recorder dumps its event ring
    /// to this JSONL path the moment a job fails or the batch aborts —
    /// the post-mortem is on disk even if the process dies right after.
    std::string flightRecorderPath;
};

/// Run every job through the service concurrently (submit() on the
/// service's worker pool), writing one JSONL row per job in input
/// order, then a final summary row ({"summary": true, ...}) carrying
/// the service metrics snapshot.
BatchOutcome runBatch(CompileService& svc, const BatchSpec& spec,
                      std::ostream& out, const BatchRunOptions& opts = {});

}  // namespace phpf::service
