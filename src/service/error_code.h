#pragma once

#include <cstdint>

namespace phpf::service {

/// Machine-readable failure taxonomy of the compile service. Every
/// CompileResult carries one; `error` strings are for humans only and
/// never drive control flow. The transient/permanent split is the
/// retry policy: transient failures are worth re-running unchanged,
/// permanent ones will fail the same way every time.
enum class ErrorCode : std::uint8_t {
    None = 0,          ///< success
    ParseError,        ///< front end rejected the source (permanent)
    EmptyRequest,      ///< neither source nor builder set (permanent)
    BuilderFailed,     ///< the IR builder callback threw (permanent)
    DeadlineExceeded,  ///< the request's wall-clock budget ran out
    Cancelled,         ///< explicit cancellation (not a deadline)
    TransientFault,    ///< injected or environmental hiccup; retryable
    MemoryPressure,    ///< resources were shed out from under the job
    Internal,          ///< pipeline invariant failure (permanent)
    // Remote layer (cluster coordinator <-> worker over HTTP). All
    // three are transient: the retry policy re-routes them — a dead
    // worker's hash range is re-owned and the job re-queued, so the
    // retry runs somewhere the failure cannot simply repeat.
    RemoteUnreachable,  ///< connect/send to a worker failed outright
    PeerTimeout,        ///< worker accepted but never answered in time
    StaleWorker,        ///< answer from a worker with mismatched
                        ///< protocol version or identity (restarted or
                        ///< out-of-date peer); discard and re-route
};

/// Is this failure worth an automatic retry-with-backoff?
[[nodiscard]] constexpr bool isTransient(ErrorCode c) {
    return c == ErrorCode::TransientFault || c == ErrorCode::MemoryPressure ||
           c == ErrorCode::RemoteUnreachable || c == ErrorCode::PeerTimeout ||
           c == ErrorCode::StaleWorker;
}

/// Stable lower-case label ("transient-fault") for logs and JSON rows.
[[nodiscard]] constexpr const char* errorCodeName(ErrorCode c) {
    switch (c) {
        case ErrorCode::None: return "none";
        case ErrorCode::ParseError: return "parse-error";
        case ErrorCode::EmptyRequest: return "empty-request";
        case ErrorCode::BuilderFailed: return "builder-failed";
        case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
        case ErrorCode::Cancelled: return "cancelled";
        case ErrorCode::TransientFault: return "transient-fault";
        case ErrorCode::MemoryPressure: return "memory-pressure";
        case ErrorCode::Internal: return "internal";
        case ErrorCode::RemoteUnreachable: return "remote-unreachable";
        case ErrorCode::PeerTimeout: return "peer-timeout";
        case ErrorCode::StaleWorker: return "stale-worker";
    }
    return "?";
}

}  // namespace phpf::service
