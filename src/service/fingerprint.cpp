#include "service/fingerprint.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "ir/printer.h"

namespace phpf::service {

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) {
    std::uint64_t h = seed;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

namespace {

void appendDouble(std::string& out, const char* name, double v) {
    char buf[64];
    // %.17g is lossless for doubles, so two cost models differing in
    // any representable way get distinct keys.
    std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
    out += buf;
}

void appendInt(std::string& out, const char* name, std::int64_t v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s=%" PRId64 ";", name, v);
    out += buf;
}

void appendBool(std::string& out, const char* name, bool v) {
    out += name;
    out += v ? "=1;" : "=0;";
}

}  // namespace

std::string canonicalOptionsKey(const TargetConfig& target,
                                const PassOptions& passes) {
    std::string k;
    k.reserve(256);
    // The target kind leads the key: mp and shm artifacts differ in
    // predicted tables, emitted text, and simulation accounting, so
    // they must never share a cache entry. The shared-memory machine
    // parameters join the key only under shm — an mp request's identity
    // must not depend on a model it never consults.
    k += "target=";
    k += targetKindName(target.targetKind);
    k += ';';
    if (target.targetKind == TargetKind::SharedMemory) {
        appendDouble(k, "shm_barrier", target.shmModel.barrierSec);
        appendDouble(k, "shm_stage", target.shmModel.combineStageSec);
        appendDouble(k, "shm_line", target.shmModel.lineSec);
        appendDouble(k, "shm_bw", target.shmModel.sharedBwSecPerByte);
        appendInt(k, "shm_line_bytes", target.shmModel.cacheLineBytes);
    }
    k += "grid=";
    for (size_t i = 0; i < target.gridExtents.size(); ++i) {
        if (i > 0) k += 'x';
        k += std::to_string(target.gridExtents[i]);
    }
    k += ';';
    appendDouble(k, "alpha", target.costModel.alphaSec);
    appendDouble(k, "beta", target.costModel.betaSecPerByte);
    appendDouble(k, "flop", target.costModel.flopSec);
    appendInt(k, "elem_bytes", target.costModel.elemBytes);
    appendBool(k, "combine", target.costModel.combineMessages);
    const MappingOptions& m = passes.mapping;
    appendBool(k, "priv", m.privatization);
    k += m.alignPolicy == MappingOptions::AlignPolicy::Selected
             ? "align=selected;"
             : "align=producer-only;";
    appendBool(k, "red_align", m.reductionAlignment);
    appendBool(k, "array_priv", m.arrayPrivatization);
    appendBool(k, "partial_priv", m.partialPrivatization);
    appendBool(k, "auto_array_priv", m.autoArrayPrivatization);
    appendBool(k, "cf_priv", m.controlFlowPrivatization);
    appendBool(k, "induction", passes.rewriteInduction);
    // The simulator engine and relaxed-merge mode are part of the
    // artifact identity: strict-mode engines are bit-identical, but a
    // cached interp artifact must not satisfy a bytecode request (the
    // report and benchmarks label the engine), and relaxed merges are
    // numerically distinct for non-integer SUM reductions.
    k += passes.simEngine == SimEngine::Bytecode ? "engine=bytecode;"
                                                 : "engine=interp;";
    appendBool(k, "relaxed", passes.relaxedMerge);
    // simThreads intentionally absent: see header.
    return k;
}

std::string programFingerprint(const Program& p) {
    std::string text = printProgram(p);
    // Mini-HPF is case-insensitive (the frontend lowercases every
    // identifier), so case-fold before hashing: a builder-built program
    // and its parsed round-trip must share one fingerprint.
    for (char& c : text)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    char buf[48];
    std::snprintf(buf, sizeof buf, "p%016" PRIx64 "%016" PRIx64,
                  fnv1a64(text),
                  fnv1a64(text, 0x9e3779b97f4a7c15ull));
    return buf;
}

std::string requestKey(const Program& p, const TargetConfig& target,
                       const PassOptions& passes) {
    return programFingerprint(p) + "|" + canonicalOptionsKey(target, passes);
}

}  // namespace phpf::service
