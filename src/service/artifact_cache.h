#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace phpf::service {

struct CompileArtifact;

/// Point-in-time cache counters (monotonic except size).
struct CacheStats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    int shards = 0;
};

/// Bounded, sharded LRU of immutable compile artifacts, keyed by the
/// content-addressed request key (service/fingerprint.h). Each shard is
/// an independent lock + intrusive LRU list, so concurrent batch
/// workers hitting different keys never contend; values are
/// shared_ptr-to-const, so an artifact evicted mid-use stays alive for
/// whoever already holds it.
class ArtifactCache {
public:
    /// `capacity` is the total entry bound across shards (each shard
    /// gets the rounded-up equal split, minimum 1); `shards` is clamped
    /// to [1, 64].
    ArtifactCache(std::size_t capacity, int shards);

    /// Lookup; bumps the entry to most-recently-used and counts a hit
    /// or a miss. `countMiss = false` suppresses the miss counter for
    /// internal double-checks (e.g. the coalescing leader's re-check),
    /// keeping hits + misses == lookups as seen by callers.
    [[nodiscard]] std::shared_ptr<const CompileArtifact> get(
        const std::string& key, bool countMiss = true);

    /// Insert or refresh; evicts the shard's least-recently-used entry
    /// beyond capacity.
    void put(const std::string& key,
             std::shared_ptr<const CompileArtifact> value);

    /// Memory-pressure shedding: drop least-recently-used entries until
    /// at most `targetEntries` remain (spread across shards). Returns
    /// how many entries were dropped; outstanding shared_ptr holders
    /// keep their artifacts alive.
    std::size_t shed(std::size_t targetEntries);

    [[nodiscard]] CacheStats stats() const;

private:
    struct Shard {
        mutable std::mutex mu;
        /// front = most recently used.
        std::list<std::pair<std::string, std::shared_ptr<const CompileArtifact>>>
            lru;
        std::unordered_map<std::string, decltype(lru)::iterator> index;
    };

    [[nodiscard]] Shard& shardFor(const std::string& key);

    std::size_t shardCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<std::int64_t> hits_{0};
    std::atomic<std::int64_t> misses_{0};
    std::atomic<std::int64_t> evictions_{0};
};

}  // namespace phpf::service
