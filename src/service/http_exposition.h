#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace phpf::service {

/// Live telemetry over HTTP, with zero external dependencies: a plain
/// POSIX socket, one dedicated accept thread, one connection at a time.
/// That is exactly the right amount of web server for a compiler — a
/// scrape every few seconds from one Prometheus and the odd curl.
///
/// Endpoints:
///   GET /metrics      Prometheus text exposition of every attached
///                     registry (counters as *_total, histograms as
///                     summaries with p50/p90/p99 quantile samples)
///   GET /healthz      JSON liveness: status, uptime, and whatever the
///                     health provider adds (queue depth, workers)
///   GET /report       JSON from the report provider (a run report);
///                     503 when no provider is attached
///   GET /quitquitquit Acknowledges and sets quitRequested() — the
///                     owner polls it for a clean scripted shutdown
///                     (CI smoke tests curl it instead of kill -9)
///
/// Attach registries and providers before start(); the server never
/// mutates them (registries are internally thread-safe).
class MetricsHttpServer {
public:
    /// `port` 0 binds an ephemeral port (resolved via port() after
    /// start) — tests use this to avoid collisions. Binds loopback
    /// only: this is an operator endpoint, not a public service.
    explicit MetricsHttpServer(int port = 0);
    ~MetricsHttpServer();  ///< stop()s

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    /// Add a registry scraped by /metrics, its metric names prefixed
    /// with `prefix` ("phpf" -> phpf_service_requests_total).
    void addRegistry(const std::string& prefix, const obs::MetricRegistry* reg);

    /// Extra key/values merged into /healthz (called per request from
    /// the server thread; must be thread-safe).
    void setHealthProvider(std::function<obs::Json()> provider);
    /// Body of /report (called per request from the server thread).
    void setReportProvider(std::function<obs::Json()> provider);

    /// Bind + listen + spawn the accept thread. False (with *err set)
    /// when the port cannot be bound.
    bool start(std::string* err = nullptr);
    /// Close the listen socket and join the thread. Idempotent.
    void stop();

    [[nodiscard]] bool running() const {
        return running_.load(std::memory_order_acquire);
    }
    /// The bound port (the resolved one when constructed with 0).
    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] std::int64_t requestsServed() const {
        return requests_.load(std::memory_order_relaxed);
    }
    /// True once /quitquitquit has been hit.
    [[nodiscard]] bool quitRequested() const {
        return quit_.load(std::memory_order_acquire);
    }

private:
    void serveLoop();
    void handleConnection(int fd);
    [[nodiscard]] std::string buildMetricsBody() const;
    [[nodiscard]] std::string buildHealthBody() const;

    int port_;
    // Written by stop() while serveLoop() is blocked in accept() on it.
    std::atomic<int> listenFd_{-1};
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> quit_{false};
    std::atomic<std::int64_t> requests_{0};
    std::vector<std::pair<std::string, const obs::MetricRegistry*>> registries_;
    std::function<obs::Json()> healthProvider_;
    std::function<obs::Json()> reportProvider_;
    std::chrono::steady_clock::time_point started_;
};

}  // namespace phpf::service
