#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace phpf::service {

/// One parsed HTTP request as seen by an ApiHandler: the method and
/// path from the request line plus the (bounded) body.
struct HttpRequest {
    std::string method;  ///< "GET", "POST", ...
    std::string path;    ///< "/compile", "/artifact/p1234..."
    std::string body;    ///< request body (empty for GET)
};

/// What an ApiHandler answers with. `closeAbruptly` makes the server
/// drop the connection without writing a byte — the deterministic
/// stand-in for a worker dying mid-request (cluster.worker_kill in
/// in-process tests; real worker processes _exit instead).
struct HttpReply {
    int status = 200;
    std::string contentType = "text/plain";
    std::string body;
    bool closeAbruptly = false;
};

/// Per-connection hardening knobs. A slow or malicious client must
/// never wedge a serving thread: reads and writes carry socket
/// deadlines, and oversized requests are rejected before they are
/// buffered.
struct HttpLimits {
    /// Socket receive deadline per read() call; a client that connects
    /// and trickles (or sends nothing) is cut off, not waited on.
    int recvTimeoutMs = 5000;
    /// Socket send deadline per write() call (peer stops reading).
    int sendTimeoutMs = 5000;
    /// Maximum accepted request body (Content-Length and actual bytes);
    /// beyond it the server answers 413 and closes.
    std::size_t maxBodyBytes = 4u << 20;  // 4 MiB: a large inline source
    /// Maximum accepted request-line + header bytes (431 beyond).
    std::size_t maxHeaderBytes = 16u << 10;
};

/// Live telemetry and (since the cluster grew around it) a minimal
/// compile API over HTTP, with zero external dependencies: a plain
/// POSIX socket, one accept thread, and a small pool of connection
/// handler threads.
///
/// Built-in endpoints:
///   GET /metrics      Prometheus text exposition of every attached
///                     registry (counters as *_total, histograms as
///                     summaries with p50/p90/p99 quantile samples)
///   GET /metrics.json Structured JSON form of the same registries,
///                     histograms with raw log2 buckets — what the
///                     cluster federation scrapes so it can merge
///                     distributions bucket-wise

///   GET /healthz      JSON liveness: status, uptime, and whatever the
///                     health provider adds (queue depth, workers)
///   GET /report       JSON from the report provider (a run report);
///                     503 when no provider is attached
///   GET /quitquitquit Acknowledges and sets quitRequested() — the
///                     owner polls it for a clean scripted shutdown
///                     (CI smoke tests curl it instead of kill -9)
///
/// Every other (method, path) — notably POST /compile and
/// GET /artifact/<fingerprint> on cluster workers — is routed to the
/// attached ApiHandler; without one the server answers 404/405 as
/// before.
///
/// Attach registries, providers, and the handler before start(); the
/// server never mutates registries (they are internally thread-safe).
/// Requests are parsed fully (request line, headers, Content-Length
/// body) under HttpLimits: read/write socket deadlines and bounded
/// header/body sizes, so one wedged client costs at most one handler
/// thread for one timeout.
class MetricsHttpServer {
public:
    using ApiHandler = std::function<HttpReply(const HttpRequest&)>;

    /// `port` 0 binds an ephemeral port (resolved via port() after
    /// start) — tests use this to avoid collisions. Binds loopback
    /// only: this is an operator/cluster-internal endpoint, not a
    /// public service.
    explicit MetricsHttpServer(int port = 0);
    ~MetricsHttpServer();  ///< stop()s

    MetricsHttpServer(const MetricsHttpServer&) = delete;
    MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

    /// Add a registry scraped by /metrics, its metric names prefixed
    /// with `prefix` ("phpf" -> phpf_service_requests_total).
    void addRegistry(const std::string& prefix, const obs::MetricRegistry* reg);

    /// Extra key/values merged into /healthz (called per request from
    /// a handler thread; must be thread-safe).
    void setHealthProvider(std::function<obs::Json()> provider);
    /// Body of /report (called per request from a handler thread).
    void setReportProvider(std::function<obs::Json()> provider);
    /// Handler for every non-built-in (method, path); must be
    /// thread-safe when connectionThreads > 1.
    void setApiHandler(ApiHandler handler);

    /// Per-connection limits; call before start().
    void setLimits(HttpLimits limits) { limits_ = limits; }
    [[nodiscard]] const HttpLimits& limits() const { return limits_; }

    /// Connection handler threads (clamped to [1, 16]); call before
    /// start(). The default 1 preserves the metrics-only behaviour; a
    /// cluster worker uses several so health probes are answered while
    /// a compile occupies another connection.
    void setConnectionThreads(int n);

    /// Bind + listen + spawn the accept/handler threads. False (with
    /// *err set) when the port cannot be bound.
    bool start(std::string* err = nullptr);
    /// Close the listen socket and join all threads. Idempotent.
    void stop();

    [[nodiscard]] bool running() const {
        return running_.load(std::memory_order_acquire);
    }
    /// The bound port (the resolved one when constructed with 0).
    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] std::int64_t requestsServed() const {
        return requests_.load(std::memory_order_relaxed);
    }
    /// Requests rejected by HttpLimits (timeout, oversized header or
    /// body, malformed request line).
    [[nodiscard]] std::int64_t requestsRejected() const {
        return rejected_.load(std::memory_order_relaxed);
    }
    /// True once /quitquitquit has been hit.
    [[nodiscard]] bool quitRequested() const {
        return quit_.load(std::memory_order_acquire);
    }
    /// Make quitRequested() true without a request (a worker killing
    /// itself from a fault site uses this to leave its serve loop).
    void requestQuit() { quit_.store(true, std::memory_order_release); }

    /// Play dead: every subsequent connection (built-in routes
    /// included) is closed without reading or writing a byte. This is
    /// how an in-process test worker becomes indistinguishable from a
    /// kill -9'd one — even health probes get nothing.
    void setMuted(bool muted) {
        muted_.store(muted, std::memory_order_release);
    }

    [[nodiscard]] std::string buildMetricsBody() const;
    /// Structured form of /metrics (the `GET /metrics.json` body):
    /// {"registries":[{"prefix":..., "metrics": <registry toJson>}]}.
    /// Histograms keep their log2 buckets here, which is what makes
    /// bucket-wise federation merges possible (the text exposition only
    /// carries quantile estimates).
    [[nodiscard]] std::string buildMetricsJsonBody() const;

private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);
    [[nodiscard]] std::string buildHealthBody() const;

    int port_;
    // Written by stop() while acceptLoop() is blocked in accept() on it.
    std::atomic<int> listenFd_{-1};
    std::thread acceptThread_;
    std::vector<std::thread> handlers_;
    int connectionThreads_ = 1;
    HttpLimits limits_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> quit_{false};
    std::atomic<bool> muted_{false};
    std::atomic<std::int64_t> requests_{0};
    std::atomic<std::int64_t> rejected_{0};
    std::vector<std::pair<std::string, const obs::MetricRegistry*>> registries_;
    std::function<obs::Json()> healthProvider_;
    std::function<obs::Json()> reportProvider_;
    ApiHandler apiHandler_;
    std::chrono::steady_clock::time_point started_;

    std::mutex connMu_;
    std::condition_variable connCv_;
    std::deque<int> connQueue_;  ///< accepted fds awaiting a handler
};

}  // namespace phpf::service
