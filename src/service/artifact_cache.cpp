#include "service/artifact_cache.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "service/fingerprint.h"

namespace phpf::service {

ArtifactCache::ArtifactCache(std::size_t capacity, int shards) {
    if (shards < 1) shards = 1;
    if (shards > 64) shards = 64;
    if (capacity < 1) capacity = 1;
    // Never more shards than entries, or per-shard capacity rounds to
    // a uselessly tiny LRU.
    if (static_cast<std::size_t>(shards) > capacity)
        shards = static_cast<int>(capacity);
    shardCapacity_ =
        (capacity + static_cast<std::size_t>(shards) - 1) /
        static_cast<std::size_t>(shards);
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ArtifactCache::Shard& ArtifactCache::shardFor(const std::string& key) {
    // Independent stream from the key hashes embedded in the key text.
    const std::uint64_t h = fnv1a64(key, 0x84222325cbf29ce4ull);
    return *shards_[h % shards_.size()];
}

std::shared_ptr<const CompileArtifact> ArtifactCache::get(
    const std::string& key, bool countMiss) {
    Shard& s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
        if (countMiss) misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
}

void ArtifactCache::put(const std::string& key,
                        std::shared_ptr<const CompileArtifact> value) {
    Shard& s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
        it->second->second = std::move(value);
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        return;
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key, s.lru.begin());
    while (s.lru.size() > shardCapacity_) {
        obs::FlightRecorder::global().record(
            "cache.evict", "key=" + s.lru.back().first.substr(0, 40));
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t ArtifactCache::shed(std::size_t targetEntries) {
    // Walk shards with a global keep budget (one shard lock at a time):
    // each shard keeps what is left of the budget, so at most
    // `targetEntries` survive in total even when the entries are spread
    // one-per-shard. A per-shard equal split cannot guarantee that —
    // ceil(target/shards) >= 1 would keep every singleton shard intact.
    std::size_t keepBudget = targetEntries;
    std::size_t dropped = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        const std::size_t keep = std::min(sh->lru.size(), keepBudget);
        keepBudget -= keep;
        while (sh->lru.size() > keep) {
            sh->index.erase(sh->lru.back().first);
            sh->lru.pop_back();
            ++dropped;
        }
    }
    evictions_.fetch_add(static_cast<std::int64_t>(dropped),
                         std::memory_order_relaxed);
    return dropped;
}

CacheStats ArtifactCache::stats() const {
    CacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.capacity = shardCapacity_ * shards_.size();
    st.shards = static_cast<int>(shards_.size());
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        st.size += sh->lru.size();
    }
    return st;
}

}  // namespace phpf::service
