#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "driver/options.h"

namespace phpf {
class Program;
}

namespace phpf::service {

/// 64-bit FNV-1a over `s`. `seed` defaults to the standard offset
/// basis; passing a different seed yields an independent hash stream
/// (the cache key uses two streams for a 128-bit program fingerprint).
[[nodiscard]] std::uint64_t fnv1a64(
    std::string_view s, std::uint64_t seed = 0xcbf29ce484222325ull);

/// Canonical, order-stable text form of a request's compile-relevant
/// options: every field of TargetConfig and PassOptions spelled out
/// explicitly in a fixed order, so defaulted and explicitly-set
/// requests produce identical keys. The key leads with the target kind
/// (mp/shm artifacts never share an entry) and includes the
/// shared-memory machine parameters only under shm — an mp request's
/// identity must not depend on a model it never consults.
/// PassOptions::simThreads is deliberately EXCLUDED — it changes only
/// how fast the simulator runs, never any compilation result or
/// metric, so requests differing only in simThreads must share one
/// cache entry.
[[nodiscard]] std::string canonicalOptionsKey(const TargetConfig& target,
                                              const PassOptions& passes);

/// Stable program fingerprint: hashes the case-folded canonical printed
/// mini-HPF form (printProgram round-trips through the parser, and the
/// language is case-insensitive), so source-text formatting, comments,
/// identifier case, and builder-vs-frontend provenance do not split
/// cache entries. Returns "p<hex16><hex16>" (two independent FNV-1a
/// streams — 128 bits against accidental collision).
[[nodiscard]] std::string programFingerprint(const Program& p);

/// Full content-addressed cache key of one compile request:
/// programFingerprint + "|" + canonicalOptionsKey.
[[nodiscard]] std::string requestKey(const Program& p,
                                     const TargetConfig& target,
                                     const PassOptions& passes);

}  // namespace phpf::service
