#include "service/compile_service.h"

#include <optional>
#include <thread>

#include "frontend/parser.h"
#include "obs/flight_recorder.h"
#include "service/fingerprint.h"
#include "spmd/spmd_text.h"

namespace phpf::service {

namespace {

double usSince(std::chrono::steady_clock::time_point t0) {
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count()) /
           1000.0;
}

/// Fresh Program for a retry attempt; the failed attempt may have
/// mutated (or adopted) the one it ran on. Null when re-production
/// fails — the caller then keeps the previous result.
std::unique_ptr<Program> remakeProgram(const CompileRequest& req) {
    std::unique_ptr<Program> prog;
    if (!req.source.empty()) {
        DiagEngine diags;
        Parser parser(req.source, diags);
        prog = std::make_unique<Program>(parser.parse());
        if (diags.hasErrors()) return nullptr;
    } else if (req.build) {
        try {
            prog = std::make_unique<Program>(req.build());
        } catch (const std::exception&) {
            return nullptr;
        }
    } else {
        return nullptr;
    }
    prog->finalize();
    return prog;
}

}  // namespace

const char* statusName(CompileStatus s) {
    switch (s) {
        case CompileStatus::Ok: return "ok";
        case CompileStatus::ParseError: return "parse-error";
        case CompileStatus::DeadlineExceeded: return "deadline-exceeded";
        case CompileStatus::Error: return "error";
    }
    return "?";
}

CompileService::CompileService(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(cfg.cacheCapacity, cfg.cacheShards),
      pool_(std::make_unique<TaskPool>(resolveThreadCount(cfg.workers, 8),
                                       "svc-worker")) {
    const FaultInjector* faults =
        cfg_.faults != nullptr ? cfg_.faults : FaultInjector::processIfEnabled();
    if (faults != nullptr) {
        transientSite_ = faults->find(faultsite::kSvcTransient);
        memPressureSite_ = faults->find(faultsite::kSvcMemPressure);
    }
}

CompileService::~CompileService() { pool_->drain(); }

CompileResult CompileService::compile(const CompileRequest& req) {
    return compileAt(req, Clock::now());
}

std::shared_future<CompileResult> CompileService::submit(CompileRequest req) {
    const Clock::time_point submitted = Clock::now();
    // The submitting thread's trace context rides along with the job so
    // the worker's spans parent under the caller's request/batch span.
    obs::SpanContext parent{};
    if (cfg_.tracer != nullptr) parent = cfg_.tracer->currentContext();
    auto promise = std::make_shared<std::promise<CompileResult>>();
    std::shared_future<CompileResult> fut(promise->get_future());
    pool_->post([this, req = std::move(req), submitted, parent,
                 promise = std::move(promise)]() mutable {
        registry_.histogram("service.queue_wait_us").record(usSince(submitted));
        std::optional<obs::ContextScope> scope;
        if (cfg_.tracer != nullptr) scope.emplace(*cfg_.tracer, parent);
        promise->set_value(compileAt(req, submitted));
    });
    registry_.gauge("service.queue.depth")
        .set(static_cast<double>(pool_->queueDepth()));
    return fut;
}

CompileResult CompileService::compileAt(const CompileRequest& req,
                                        Clock::time_point submitted) {
    const std::string spanName =
        "request:" + (req.name.empty() ? std::string("?") : req.name);
    obs::ConcurrentScopedSpan reqSpan(cfg_.tracer, spanName.c_str(), "service");
    CompileResult r;
    const auto finish = [&](CompileResult res) {
        res.totalUs = usSince(submitted);
        recordOutcome(res);
        return res;
    };

    // --- parse / build + fingerprint ---------------------------------
    const Clock::time_point parse0 = Clock::now();
    DiagEngine diags;
    std::unique_ptr<Program> prog;
    if (!req.source.empty()) {
        Parser parser(req.source, diags);
        prog = std::make_unique<Program>(parser.parse());
        if (diags.hasErrors()) {
            r.status = CompileStatus::ParseError;
            r.code = ErrorCode::ParseError;
            r.error = diags.dump();
            r.parseUs = usSince(parse0);
            return finish(std::move(r));
        }
    } else if (req.build) {
        try {
            prog = std::make_unique<Program>(req.build());
        } catch (const std::exception& e) {
            r.status = CompileStatus::Error;
            r.code = ErrorCode::BuilderFailed;
            r.error = std::string("builder failed: ") + e.what();
            r.parseUs = usSince(parse0);
            return finish(std::move(r));
        }
    } else {
        r.status = CompileStatus::Error;
        r.code = ErrorCode::EmptyRequest;
        r.error = "empty request: neither source nor builder set";
        return finish(std::move(r));
    }
    // The printed canonical form requires structural links.
    prog->finalize();
    std::string key = requestKey(*prog, req.target, req.passes);
    // Profiled artifacts carry the embedded simulation's profile and
    // calibration; they must never be served for an unprofiled request
    // (or vice versa), so the flag is part of the key.
    if (req.profile) key += "|profile";
    r.key = key;
    r.parseUs = usSince(parse0);

    // --- cache -------------------------------------------------------
    if (auto hit = cache_.get(key)) {
        r.status = CompileStatus::Ok;
        r.code = ErrorCode::None;
        r.artifact = std::move(hit);
        r.cacheHit = true;
        return finish(std::move(r));
    }

    // --- coalesce with an identical in-flight compile ----------------
    // Joiners only ever adopt a *successful* leader result: adopting a
    // failure would fan one transient hiccup out to every waiter. A
    // joiner that observes a failed leader loops back and compiles for
    // itself (the bound only guards against a pathological key that
    // fails forever under heavy contention).
    std::shared_ptr<Inflight> mine;
    for (int joins = 0; mine == nullptr; ++joins) {
        std::shared_ptr<Inflight> theirs;
        {
            std::unique_lock<std::mutex> lock(inflightMu_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                mine = std::make_shared<Inflight>();
                inflight_.emplace(key, mine);
                break;
            }
            theirs = it->second;
        }
        std::unique_lock<std::mutex> wait(theirs->mu);
        theirs->cv.wait(wait, [&] { return theirs->done; });
        CompileResult joined = theirs->result;
        wait.unlock();
        if (joined.status == CompileStatus::Ok || joins >= 4) {
            joined.coalesced = true;
            joined.cacheHit = false;
            joined.key = key;
            joined.parseUs = r.parseUs;
            joined.compileUs = 0;
            return finish(std::move(joined));
        }
    }

    // A leader may have published between our cache miss and the
    // inflight registration; one re-check keeps that window from
    // recompiling.
    if (auto hit = cache_.get(key, /*countMiss=*/false)) {
        r.status = CompileStatus::Ok;
        r.code = ErrorCode::None;
        r.artifact = std::move(hit);
        r.cacheHit = true;
    } else {
        const double parseUs = r.parseUs;
        r = runJobWithRetry(req, key, std::move(prog), diags, submitted);
        r.parseUs = parseUs;
    }

    // Publish to joiners, then retire the in-flight entry.
    {
        std::lock_guard<std::mutex> done(mine->mu);
        mine->result = r;
        mine->done = true;
    }
    mine->cv.notify_all();
    {
        std::lock_guard<std::mutex> lock(inflightMu_);
        inflight_.erase(key);
    }
    return finish(std::move(r));
}

CompileResult CompileService::runJob(const CompileRequest& req,
                                     const std::string& key,
                                     std::unique_ptr<Program> prog,
                                     DiagEngine& diags,
                                     Clock::time_point submitted) {
    CompileResult r;
    r.key = key;
    const Clock::time_point compile0 = Clock::now();

    // Injected transient failure (svc.transient): the job dies before
    // doing any work, exactly like a worker lost to the environment.
    // The retry wrapper re-runs it; what must NOT happen is this result
    // reaching the artifact cache.
    if (FaultInjector::poll(transientSite_)) {
        r.status = CompileStatus::Error;
        r.code = ErrorCode::TransientFault;
        r.error = "injected transient service fault (site svc.transient)";
        r.compileUs = usSince(compile0);
        return r;
    }

    CancelSource cancel;
    if (req.deadlineMs > 0)
        cancel.setDeadlineAfter(std::chrono::milliseconds(req.deadlineMs) -
                                (Clock::now() - submitted));

    CompileSession session;
    session.tracer = std::make_shared<obs::Tracer>();
    session.diags = &diags;
    session.cancel = cancel.token();
    const std::shared_ptr<obs::Tracer> sessionTracer = session.tracer;
    // Merge the single-threaded session tracer's per-pass spans into
    // the service tracer under this job's context, shifting the
    // session's private timeline onto the service's.
    const auto importSession = [&] {
        if (cfg_.tracer == nullptr || sessionTracer == nullptr) return;
        const std::int64_t offset =
            cfg_.tracer->nowNs() - sessionTracer->nowNs();
        cfg_.tracer->importTracer(*sessionTracer,
                                  cfg_.tracer->currentContext(), offset);
    };

    try {
        CompilePipeline pipe(*prog, req.target, req.passes,
                             std::move(session));
        if (!pipe.run()) {
            importSession();
            r.status = CompileStatus::DeadlineExceeded;
            r.code = ErrorCode::DeadlineExceeded;
            r.error = "deadline of " + std::to_string(req.deadlineMs) +
                      " ms exceeded before stage '" +
                      stageName(pipe.next()) + "'";
            r.compileUs = usSince(compile0);
            return r;
        }

        auto artifact = std::make_shared<CompileArtifact>();
        artifact->key = key;
        Compilation c = std::move(pipe).take();
        artifact->programName = c.program().name;
        // Emission goes through the request's Target so a cached shm
        // artifact carries shm text — artifacts are self-contained
        // per-target (the key already leads with the target kind).
        artifact->spmdText = c.compileTarget().emitText(c.lowering());
        artifact->decisionReport = c.report();
        artifact->cost = c.predictCost();
        // Profiled requests run the embedded simulation here, on the
        // miss path, so the profile and calibration are cached with the
        // artifact; the request's deadline covers the simulation too
        // (a cancelled sim surfaces as the SimFault handled below).
        std::unique_ptr<SpmdSimulator> sim;
        if (req.profile) {
            SimulationRequest sreq;
            sreq.profile = true;
            sreq.cancel = cancel.token();
            sim = c.simulate(sreq);
        }
        artifact->runReport = c.buildRunReport(sim.get());
        if (sim != nullptr && sim->profile() != nullptr) {
            artifact->profiled = true;
            artifact->profile = artifact->runReport.at("profile");
            artifact->calibration = artifact->runReport.at("calibration");
        }
        auto owned = std::make_shared<Compilation>(std::move(c));
        owned->adoptProgram(std::move(prog));
        artifact->compilation = std::move(owned);

        importSession();
        // Per-stage latency histograms from the pipeline's own spans.
        for (const obs::TraceSpan& s :
             artifact->compilation->tracer()->spans()) {
            if (s.category != "pass" || !s.closed() || s.name == "compile")
                continue;
            registry_.histogram("service.stage." + s.name + "_us")
                .record(static_cast<double>(s.durNs) / 1000.0);
        }

        // Memory-pressure hook: when the svc.mem_pressure site fires,
        // shed the LRU before growing it with this artifact.
        if (FaultInjector::poll(memPressureSite_)) shedCache();

        r.status = CompileStatus::Ok;
        r.code = ErrorCode::None;
        r.artifact = std::move(artifact);
    } catch (const SimFault& e) {
        // A cancelled/faulted embedded simulation is a typed outcome,
        // not an internal error.
        r.status = e.site() == faultsite::kSimCancel
                       ? CompileStatus::DeadlineExceeded
                       : CompileStatus::Error;
        r.code = e.site() == faultsite::kSimCancel
                     ? ErrorCode::DeadlineExceeded
                     : ErrorCode::TransientFault;
        r.error = e.what();
    } catch (const std::exception& e) {
        r.status = CompileStatus::Error;
        r.code = ErrorCode::Internal;
        r.error = e.what();
    }
    // Cache-poisoning guard: publication is the only put, and it is
    // gated on a fully assembled Ok artifact — a failure of any class
    // must never be served to a later identical request.
    if (r.status == CompileStatus::Ok && r.artifact != nullptr)
        cache_.put(key, r.artifact);
    r.compileUs = usSince(compile0);
    return r;
}

CompileResult CompileService::runJobWithRetry(const CompileRequest& req,
                                              const std::string& key,
                                              std::unique_ptr<Program> prog,
                                              DiagEngine& diags,
                                              Clock::time_point submitted) {
    CompileResult r = runJob(req, key, std::move(prog), diags, submitted);
    for (int attempt = 1;
         attempt <= cfg_.maxRetries && isTransient(r.code); ++attempt) {
        registry_.counter("service.transient_faults").add();
        registry_.counter("service.retries").add();
        obs::FlightRecorder::global().record(
            "service.retry", req.name + " attempt=" + std::to_string(attempt) +
                                 " code=" + errorCodeName(r.code));
        if (cfg_.retryBackoffMs > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                cfg_.retryBackoffMs << std::min(attempt - 1, 20)));
        std::unique_ptr<Program> fresh = remakeProgram(req);
        if (fresh == nullptr) break;  // keep the transient failure result
        CompileResult next = runJob(req, key, std::move(fresh), diags,
                                    submitted);
        next.retries = attempt;
        r = std::move(next);
    }
    if (isTransient(r.code)) {
        // Exhausted the budget while still transient: count the final
        // failure too, so the metric reflects every transient outcome.
        registry_.counter("service.transient_faults").add();
    }
    return r;
}

std::size_t CompileService::shedCache(std::size_t targetEntries) {
    const std::size_t dropped = cache_.shed(targetEntries);
    obs::FlightRecorder::global().record(
        "cache.shed", "dropped=" + std::to_string(dropped));
    registry_.counter("service.cache.shed").add();
    registry_.counter("service.cache.shed_entries")
        .add(static_cast<std::int64_t>(dropped));
    return dropped;
}

void CompileService::recordOutcome(const CompileResult& r) {
    if (r.status != CompileStatus::Ok) {
        obs::FlightRecorder::global().record(
            "service.fail",
            std::string(statusName(r.status)) + " " + r.error.substr(0, 120));
    }
    registry_.counter("service.requests").add();
    switch (r.status) {
        case CompileStatus::Ok:
            if (r.cacheHit)
                registry_.counter("service.cache.hits").add();
            else if (r.coalesced)
                registry_.counter("service.coalesced_joins").add();
            else
                registry_.counter("service.compiles").add();
            break;
        case CompileStatus::ParseError:
            registry_.counter("service.parse_errors").add();
            break;
        case CompileStatus::DeadlineExceeded:
            registry_.counter("service.deadline_exceeded").add();
            break;
        case CompileStatus::Error:
            registry_.counter("service.errors").add();
            break;
    }
    if (r.coalesced && r.status != CompileStatus::Ok)
        registry_.counter("service.coalesced_joins").add();
    registry_.histogram("service.total_us").record(r.totalUs);
    if (r.parseUs > 0) registry_.histogram("service.parse_us").record(r.parseUs);
    if (r.compileUs > 0)
        registry_.histogram("service.compile_us").record(r.compileUs);
}

ServiceStats CompileService::stats() const {
    ServiceStats s;
    s.cache = cache_.stats();
    s.queueDepth = pool_->queueDepth();
    s.activeJobs = pool_->active();
    s.workers = pool_->threads();
    s.requests = registry_.counterValue("service.requests");
    s.compiles = registry_.counterValue("service.compiles");
    s.coalescedJoins = registry_.counterValue("service.coalesced_joins");
    s.parseErrors = registry_.counterValue("service.parse_errors");
    s.deadlineExceeded = registry_.counterValue("service.deadline_exceeded");
    s.errors = registry_.counterValue("service.errors");
    s.retries = registry_.counterValue("service.retries");
    s.transientFaults = registry_.counterValue("service.transient_faults");
    s.shedEntries = registry_.counterValue("service.cache.shed_entries");
    return s;
}

obs::Json CompileService::metricsJson() const {
    obs::Json root = obs::Json::object();
    root.set("registry", registry_.toJson());
    const CacheStats cs = cache_.stats();
    obs::Json cache = obs::Json::object();
    cache.set("hits", cs.hits);
    cache.set("misses", cs.misses);
    cache.set("evictions", cs.evictions);
    cache.set("size", static_cast<std::int64_t>(cs.size));
    cache.set("capacity", static_cast<std::int64_t>(cs.capacity));
    cache.set("shards", cs.shards);
    root.set("cache", std::move(cache));
    obs::Json queue = obs::Json::object();
    queue.set("depth", static_cast<std::int64_t>(pool_->queueDepth()));
    queue.set("active", pool_->active());
    queue.set("workers", pool_->threads());
    root.set("queue", std::move(queue));
    return root;
}

void CompileService::withMetrics(
    const std::function<void(const obs::MetricRegistry&)>& fn) const {
    fn(registry_);
}

}  // namespace phpf::service
