#include "service/http_exposition.h"

#include <cerrno>
#include <cstring>

#include "obs/prometheus.h"
#include "support/thread_registry.h"

#if defined(__unix__) || defined(__APPLE__)
#define PHPF_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PHPF_HAVE_SOCKETS 0
#endif

namespace phpf::service {

namespace {

#if PHPF_HAVE_SOCKETS

void writeAll(int fd, const char* data, size_t n) {
    size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, 0);
        if (w <= 0) return;  // peer went away; nothing useful to do
        off += static_cast<size_t>(w);
    }
}

void respond(int fd, int code, const char* reason, const char* contentType,
             const std::string& body) {
    std::string head = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                       "\r\nContent-Type: " + contentType +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    writeAll(fd, head.data(), head.size());
    writeAll(fd, body.data(), body.size());
}

#endif  // PHPF_HAVE_SOCKETS

}  // namespace

MetricsHttpServer::MetricsHttpServer(int port) : port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::addRegistry(const std::string& prefix,
                                    const obs::MetricRegistry* reg) {
    if (reg != nullptr) registries_.emplace_back(prefix, reg);
}

void MetricsHttpServer::setHealthProvider(std::function<obs::Json()> provider) {
    healthProvider_ = std::move(provider);
}

void MetricsHttpServer::setReportProvider(std::function<obs::Json()> provider) {
    reportProvider_ = std::move(provider);
}

bool MetricsHttpServer::start(std::string* err) {
#if !PHPF_HAVE_SOCKETS
    if (err != nullptr) *err = "metrics exposition: no socket support";
    return false;
#else
    if (running()) return true;
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err != nullptr) *err = "socket(): " + std::string(strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        if (err != nullptr)
            *err = "bind(" + std::to_string(port_) +
                   "): " + std::string(strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 16) < 0) {
        if (err != nullptr) *err = "listen(): " + std::string(strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (port_ == 0) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0)
            port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    started_ = std::chrono::steady_clock::now();
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] {
        thread_registry::setCurrentName("metrics-http");
        serveLoop();
    });
    return true;
#endif
}

void MetricsHttpServer::stop() {
#if PHPF_HAVE_SOCKETS
    if (!running()) return;
    stopping_.store(true, std::memory_order_release);
    // Unblock the accept(): shutdown makes it return with an error on
    // Linux; close() finishes the job.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (thread_.joinable()) thread_.join();
    running_.store(false, std::memory_order_release);
#endif
}

void MetricsHttpServer::serveLoop() {
#if PHPF_HAVE_SOCKETS
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire)) return;
            if (errno == EINTR) continue;
            return;  // listen socket gone
        }
        handleConnection(fd);
        ::close(fd);
    }
#endif
}

std::string MetricsHttpServer::buildMetricsBody() const {
    std::string body;
    for (const auto& [prefix, reg] : registries_)
        body += obs::renderPrometheus(*reg, prefix);
    return body;
}

std::string MetricsHttpServer::buildHealthBody() const {
    obs::Json health =
        healthProvider_ ? healthProvider_() : obs::Json::object();
    health.set("status", "ok");
    health.set("uptime_sec",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started_)
                   .count());
    return health.dump();
}

void MetricsHttpServer::handleConnection(int fd) {
#if PHPF_HAVE_SOCKETS
    // One read is enough for the GET requests this serves; anything
    // larger than the buffer is not a request we answer.
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) return;
    buf[n] = '\0';
    const std::string head(buf);
    const size_t sp1 = head.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : head.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        respond(fd, 400, "Bad Request", "text/plain", "bad request\n");
        return;
    }
    const std::string method = head.substr(0, sp1);
    const std::string path = head.substr(sp1 + 1, sp2 - sp1 - 1);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (method != "GET") {
        respond(fd, 405, "Method Not Allowed", "text/plain",
                "GET only\n");
        return;
    }
    if (path == "/metrics") {
        respond(fd, 200, "OK", "text/plain; version=0.0.4",
                buildMetricsBody());
    } else if (path == "/healthz") {
        respond(fd, 200, "OK", "application/json", buildHealthBody());
    } else if (path == "/report") {
        if (!reportProvider_) {
            respond(fd, 503, "Service Unavailable", "text/plain",
                    "no report provider\n");
            return;
        }
        respond(fd, 200, "OK", "application/json",
                reportProvider_().dump());
    } else if (path == "/quitquitquit") {
        quit_.store(true, std::memory_order_release);
        respond(fd, 200, "OK", "text/plain", "shutting down\n");
    } else {
        respond(fd, 404, "Not Found", "text/plain",
                "try /metrics /healthz /report\n");
    }
#else
    (void)fd;
#endif
}

}  // namespace phpf::service
