#include "service/http_exposition.h"

#include <cerrno>
#include <cstring>

#include "obs/prometheus.h"
#include "support/thread_registry.h"

#if defined(__unix__) || defined(__APPLE__)
#define PHPF_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define PHPF_HAVE_SOCKETS 0
#endif

namespace phpf::service {

namespace {

#if PHPF_HAVE_SOCKETS

void setSocketDeadlines(int fd, const HttpLimits& limits) {
    const auto toTv = [](int ms) {
        timeval tv{};
        tv.tv_sec = ms / 1000;
        tv.tv_usec = (ms % 1000) * 1000;
        return tv;
    };
    if (limits.recvTimeoutMs > 0) {
        const timeval tv = toTv(limits.recvTimeoutMs);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (limits.sendTimeoutMs > 0) {
        const timeval tv = toTv(limits.sendTimeoutMs);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
}

/// True when all bytes were written before the send deadline cut in.
bool writeAll(int fd, const char* data, size_t n) {
    size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w <= 0) return false;  // peer gone or send deadline hit
        off += static_cast<size_t>(w);
    }
    return true;
}

void respond(int fd, int code, const char* reason, const char* contentType,
             const std::string& body) {
    std::string head = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                       "\r\nContent-Type: " + contentType +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    if (writeAll(fd, head.data(), head.size()))
        writeAll(fd, body.data(), body.size());
}

const char* reasonOf(int code) {
    switch (code) {
        case 200: return "OK";
        case 202: return "Accepted";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 409: return "Conflict";
        case 413: return "Payload Too Large";
        case 422: return "Unprocessable Entity";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "?";
    }
}

/// Case-insensitive header lookup in the raw header block; returns the
/// trimmed value of the first match or "".
std::string headerValue(const std::string& head, const std::string& name) {
    std::string lower;
    lower.reserve(head.size());
    for (char c : head)
        lower.push_back(static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    std::string needle = "\r\n";
    for (char c : name)
        needle.push_back(static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
    needle.push_back(':');
    const size_t at = lower.find(needle);
    if (at == std::string::npos) return "";
    const size_t vb = at + needle.size();
    size_t ve = head.find("\r\n", vb);
    if (ve == std::string::npos) ve = head.size();
    std::string v = head.substr(vb, ve - vb);
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t'))
        v.erase(v.begin());
    while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) v.pop_back();
    return v;
}

#endif  // PHPF_HAVE_SOCKETS

}  // namespace

MetricsHttpServer::MetricsHttpServer(int port) : port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::addRegistry(const std::string& prefix,
                                    const obs::MetricRegistry* reg) {
    if (reg != nullptr) registries_.emplace_back(prefix, reg);
}

void MetricsHttpServer::setHealthProvider(std::function<obs::Json()> provider) {
    healthProvider_ = std::move(provider);
}

void MetricsHttpServer::setReportProvider(std::function<obs::Json()> provider) {
    reportProvider_ = std::move(provider);
}

void MetricsHttpServer::setApiHandler(ApiHandler handler) {
    apiHandler_ = std::move(handler);
}

void MetricsHttpServer::setConnectionThreads(int n) {
    connectionThreads_ = n < 1 ? 1 : (n > 16 ? 16 : n);
}

bool MetricsHttpServer::start(std::string* err) {
#if !PHPF_HAVE_SOCKETS
    if (err != nullptr) *err = "metrics exposition: no socket support";
    return false;
#else
    if (running()) return true;
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err != nullptr) *err = "socket(): " + std::string(strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        if (err != nullptr)
            *err = "bind(" + std::to_string(port_) +
                   "): " + std::string(strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) < 0) {
        if (err != nullptr) *err = "listen(): " + std::string(strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (port_ == 0) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0)
            port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    started_ = std::chrono::steady_clock::now();
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    acceptThread_ = std::thread([this] {
        thread_registry::setCurrentName("http-accept");
        acceptLoop();
    });
    handlers_.reserve(static_cast<size_t>(connectionThreads_));
    for (int i = 0; i < connectionThreads_; ++i)
        handlers_.emplace_back([this, i] {
            thread_registry::setCurrentName("http-conn-" + std::to_string(i));
            handlerLoop();
        });
    return true;
#endif
}

void MetricsHttpServer::stop() {
#if PHPF_HAVE_SOCKETS
    if (!running()) return;
    stopping_.store(true, std::memory_order_release);
    // Unblock the accept(): shutdown makes it return with an error on
    // Linux; close() finishes the job.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
    if (acceptThread_.joinable()) acceptThread_.join();
    connCv_.notify_all();
    for (std::thread& t : handlers_)
        if (t.joinable()) t.join();
    handlers_.clear();
    // Close any accepted-but-unhandled connections.
    std::lock_guard<std::mutex> lock(connMu_);
    for (int fd : connQueue_) ::close(fd);
    connQueue_.clear();
    running_.store(false, std::memory_order_release);
#endif
}

void MetricsHttpServer::acceptLoop() {
#if PHPF_HAVE_SOCKETS
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_acquire)) return;
            if (errno == EINTR) continue;
            return;  // listen socket gone
        }
        {
            std::lock_guard<std::mutex> lock(connMu_);
            connQueue_.push_back(fd);
        }
        connCv_.notify_one();
    }
#endif
}

void MetricsHttpServer::handlerLoop() {
#if PHPF_HAVE_SOCKETS
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(connMu_);
            connCv_.wait(lock, [&] {
                return !connQueue_.empty() ||
                       stopping_.load(std::memory_order_acquire);
            });
            if (connQueue_.empty()) return;  // stopping
            fd = connQueue_.front();
            connQueue_.pop_front();
        }
        handleConnection(fd);
        ::close(fd);
    }
#endif
}

std::string MetricsHttpServer::buildMetricsBody() const {
    std::string body;
    for (const auto& [prefix, reg] : registries_)
        body += obs::renderPrometheus(*reg, prefix);
    return body;
}

std::string MetricsHttpServer::buildMetricsJsonBody() const {
    obs::Json doc = obs::Json::object();
    obs::Json regs = obs::Json::array();
    for (const auto& [prefix, reg] : registries_) {
        obs::Json r = obs::Json::object();
        r.set("prefix", prefix);
        r.set("metrics", reg->toJson());
        regs.push(std::move(r));
    }
    doc.set("registries", std::move(regs));
    return doc.dump();
}

std::string MetricsHttpServer::buildHealthBody() const {
    obs::Json health =
        healthProvider_ ? healthProvider_() : obs::Json::object();
    health.set("status", "ok");
    health.set("uptime_sec",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started_)
                   .count());
    return health.dump();
}

void MetricsHttpServer::handleConnection(int fd) {
#if PHPF_HAVE_SOCKETS
    if (muted_.load(std::memory_order_acquire)) {
        // Playing dead: accept and drop without reading a byte, like a
        // process whose kernel is resetting connections for it.
        ::close(fd);
        return;
    }
    setSocketDeadlines(fd, limits_);

    // --- read the request line + headers (bounded) -------------------
    std::string head;
    size_t headEnd = std::string::npos;
    std::string overflow;  ///< body bytes read past the header terminator
    char buf[4096];
    while (headEnd == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            // Peer vanished or trickled past the receive deadline; a
            // request that never arrives gets no response.
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        head.append(buf, static_cast<size_t>(n));
        headEnd = head.find("\r\n\r\n");
        if (headEnd == std::string::npos &&
            head.size() > limits_.maxHeaderBytes) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            respond(fd, 431, reasonOf(431), "text/plain",
                    "header too large\n");
            return;
        }
    }
    if (headEnd > limits_.maxHeaderBytes) {
        // The terminator arrived, but past the bound (a fast client can
        // deliver the whole oversized header in one read).
        rejected_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 431, reasonOf(431), "text/plain", "header too large\n");
        return;
    }
    overflow = head.substr(headEnd + 4);
    head.resize(headEnd + 2);  // keep a trailing CRLF for headerValue()

    const size_t sp1 = head.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : head.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 400, reasonOf(400), "text/plain", "bad request\n");
        return;
    }
    HttpRequest req;
    req.method = head.substr(0, sp1);
    req.path = head.substr(sp1 + 1, sp2 - sp1 - 1);

    // --- read the body (Content-Length, bounded) ---------------------
    std::size_t contentLength = 0;
    const std::string cl = headerValue(head, "Content-Length");
    if (!cl.empty()) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            respond(fd, 400, reasonOf(400), "text/plain",
                    "bad Content-Length\n");
            return;
        }
        contentLength = static_cast<std::size_t>(v);
    }
    if (contentLength > limits_.maxBodyBytes ||
        overflow.size() > limits_.maxBodyBytes) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 413, reasonOf(413), "text/plain", "body too large\n");
        return;
    }
    req.body = std::move(overflow);
    while (req.body.size() < contentLength) {
        const size_t want = std::min(
            sizeof(buf), contentLength - req.body.size());
        const ssize_t n = ::recv(fd, buf, want, 0);
        if (n <= 0) {
            // Body never completed within the receive deadline.
            rejected_.fetch_add(1, std::memory_order_relaxed);
            respond(fd, 408, reasonOf(408), "text/plain", "body timeout\n");
            return;
        }
        req.body.append(buf, static_cast<size_t>(n));
    }
    req.body.resize(contentLength);  // ignore pipelined extra bytes

    requests_.fetch_add(1, std::memory_order_relaxed);

    // --- built-in routes ---------------------------------------------
    if (req.method == "GET") {
        if (req.path == "/metrics") {
            respond(fd, 200, reasonOf(200), "text/plain; version=0.0.4",
                    buildMetricsBody());
            return;
        }
        if (req.path == "/metrics.json") {
            respond(fd, 200, reasonOf(200), "application/json",
                    buildMetricsJsonBody());
            return;
        }
        if (req.path == "/healthz") {
            respond(fd, 200, reasonOf(200), "application/json",
                    buildHealthBody());
            return;
        }
        if (req.path == "/report") {
            if (!reportProvider_) {
                respond(fd, 503, reasonOf(503), "text/plain",
                        "no report provider\n");
                return;
            }
            respond(fd, 200, reasonOf(200), "application/json",
                    reportProvider_().dump());
            return;
        }
        if (req.path == "/quitquitquit") {
            quit_.store(true, std::memory_order_release);
            respond(fd, 200, reasonOf(200), "text/plain", "shutting down\n");
            return;
        }
    }

    // --- everything else goes to the API handler ---------------------
    if (apiHandler_) {
        HttpReply reply;
        try {
            reply = apiHandler_(req);
        } catch (const std::exception& e) {
            reply.status = 500;
            reply.contentType = "text/plain";
            reply.body = std::string("handler error: ") + e.what() + "\n";
        }
        if (reply.closeAbruptly) return;  // simulate a dead worker
        respond(fd, reply.status, reasonOf(reply.status),
                reply.contentType.c_str(), reply.body);
        return;
    }
    if (req.method != "GET") {
        respond(fd, 405, reasonOf(405), "text/plain", "GET only\n");
        return;
    }
    respond(fd, 404, reasonOf(404), "text/plain",
            "try /metrics /healthz /report\n");
#else
    (void)fd;
#endif
}

}  // namespace phpf::service
