#pragma once

#include <optional>
#include <vector>

#include "analysis/ssa.h"

namespace phpf {

/// Sparse integer constant propagation over SSA. The lattice per def is
/// Top (unvisited) / Const(v) / Bottom (varying). Loop indices and entry
/// values are Bottom; phis meet their operands.
class ConstProp {
public:
    explicit ConstProp(const SsaForm& ssa);

    /// Constant value of definition `defId`, if proven.
    [[nodiscard]] std::optional<std::int64_t> valueOfDef(int defId) const;
    /// Constant value of scalar use `e`, if proven.
    [[nodiscard]] std::optional<std::int64_t> valueOfUse(const Expr* e) const;
    /// Fold an expression using proven def constants; nullopt if any
    /// leaf is unknown or non-integer.
    [[nodiscard]] std::optional<std::int64_t> eval(const Expr* e) const;

private:
    enum class State : std::uint8_t { Top, Const, Bottom };
    struct Lattice {
        State state = State::Top;
        std::int64_t value = 0;
    };
    [[nodiscard]] Lattice evalDef(int defId) const;

    const SsaForm& ssa_;
    std::vector<Lattice> values_;
};

}  // namespace phpf
