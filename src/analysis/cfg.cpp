#include "analysis/cfg.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/diagnostics.h"

namespace phpf {

Cfg::Cfg(Program& p) : prog_(p) {
    entry_ = newBlock(nullptr);
    const int last = buildSeq(p.top, entry_, nullptr);
    exit_ = newBlock(nullptr);
    addEdge(last, exit_);
    // Resolve forward/backward GOTO edges now that every label has a block.
    for (auto [from, label] : pendingGotos_) {
        Stmt* target = prog_.findLabel(label);
        PHPF_ASSERT(target != nullptr, "goto to unknown label");
        auto it = stmtBlock_.find(target);
        PHPF_ASSERT(it != stmtBlock_.end(), "label target not in CFG");
        addEdge(from, it->second);
    }
}

int Cfg::newBlock(Stmt* enclosingLoop) {
    BasicBlock bb;
    bb.id = static_cast<int>(blocks_.size());
    bb.enclosingLoop = enclosingLoop;
    blocks_.push_back(std::move(bb));
    return blocks_.back().id;
}

void Cfg::addEdge(int from, int to) {
    blocks_[static_cast<size_t>(from)].succs.push_back(to);
    blocks_[static_cast<size_t>(to)].preds.push_back(from);
}

int Cfg::buildSeq(const std::vector<Stmt*>& stmts, int cur, Stmt* enclosingLoop) {
    for (Stmt* s : stmts) {
        // A labelled statement starts a fresh block so gotos can land on it.
        if (s->label >= 0) {
            const int lb = newBlock(enclosingLoop);
            addEdge(cur, lb);
            cur = lb;
            labelBlock_[s->label] = lb;
        }
        switch (s->kind) {
            case StmtKind::Assign:
            case StmtKind::Continue:
                blocks_[static_cast<size_t>(cur)].items.push_back(
                    {CfgItem::Kind::Statement, s});
                stmtBlock_[s] = cur;
                break;
            case StmtKind::Goto: {
                blocks_[static_cast<size_t>(cur)].items.push_back(
                    {CfgItem::Kind::Statement, s});
                stmtBlock_[s] = cur;
                pendingGotos_.emplace_back(cur, s->gotoTarget);
                // Code after an unconditional goto in the same sequence is
                // unreachable; keep building into a block with no entry edge.
                cur = newBlock(enclosingLoop);
                break;
            }
            case StmtKind::If: {
                blocks_[static_cast<size_t>(cur)].items.push_back(
                    {CfgItem::Kind::Statement, s});
                stmtBlock_[s] = cur;
                const int thenEntry = newBlock(enclosingLoop);
                addEdge(cur, thenEntry);
                const int thenEnd = buildSeq(s->thenBody, thenEntry, enclosingLoop);
                const int merge = newBlock(enclosingLoop);
                addEdge(thenEnd, merge);
                if (s->elseBody.empty()) {
                    addEdge(cur, merge);
                } else {
                    const int elseEntry = newBlock(enclosingLoop);
                    addEdge(cur, elseEntry);
                    const int elseEnd =
                        buildSeq(s->elseBody, elseEntry, enclosingLoop);
                    addEdge(elseEnd, merge);
                }
                cur = merge;
                break;
            }
            case StmtKind::Do: {
                // LoopInit goes in the current (preheader) block.
                blocks_[static_cast<size_t>(cur)].items.push_back(
                    {CfgItem::Kind::LoopInit, s});
                stmtBlock_[s] = cur;
                const int header = newBlock(s);
                blocks_[static_cast<size_t>(header)].headerOf = s;
                loopHeader_[s] = header;
                addEdge(cur, header);
                const int bodyEntry = newBlock(s);
                addEdge(header, bodyEntry);
                const int bodyEnd = buildSeq(s->body, bodyEntry, s);
                const int latch = newBlock(s);
                blocks_[static_cast<size_t>(latch)].items.push_back(
                    {CfgItem::Kind::LoopIncr, s});
                loopLatch_[s] = latch;
                addEdge(bodyEnd, latch);
                addEdge(latch, header);  // back edge
                const int exitBlk = newBlock(enclosingLoop);
                addEdge(header, exitBlk);
                cur = exitBlk;
                break;
            }
        }
    }
    return cur;
}

int Cfg::blockOfStmt(const Stmt* s) const {
    auto it = stmtBlock_.find(s);
    return it == stmtBlock_.end() ? -1 : it->second;
}

int Cfg::headerOf(const Stmt* doStmt) const {
    auto it = loopHeader_.find(doStmt);
    PHPF_ASSERT(it != loopHeader_.end(), "not a loop in this CFG");
    return it->second;
}

int Cfg::latchOf(const Stmt* doStmt) const {
    auto it = loopLatch_.find(doStmt);
    PHPF_ASSERT(it != loopLatch_.end(), "not a loop in this CFG");
    return it->second;
}

bool Cfg::blockInsideLoop(int bb, const Stmt* doStmt) const {
    const BasicBlock& b = blocks_[static_cast<size_t>(bb)];
    if (b.headerOf == doStmt) return true;
    for (const Stmt* l = b.enclosingLoop; l != nullptr;) {
        if (l == doStmt) return true;
        // Hop to the next enclosing loop of l.
        const Stmt* p = l->parent;
        while (p != nullptr && p->kind != StmtKind::Do) p = p->parent;
        l = p;
    }
    return false;
}

std::vector<int> Cfg::reversePostOrder() const {
    std::vector<int> order;
    std::vector<char> seen(blocks_.size(), 0);
    std::function<void(int)> dfs = [&](int b) {
        seen[static_cast<size_t>(b)] = 1;
        for (int s : blocks_[static_cast<size_t>(b)].succs)
            if (!seen[static_cast<size_t>(s)]) dfs(s);
        order.push_back(b);
    };
    dfs(entry_);
    std::reverse(order.begin(), order.end());
    return order;
}

std::string Cfg::dump(const Program& p) const {
    std::ostringstream os;
    for (const auto& bb : blocks_) {
        os << "bb" << bb.id;
        if (bb.headerOf != nullptr)
            os << " [header of do " << p.sym(bb.headerOf->loopVar).name << "]";
        os << " -> {";
        for (size_t i = 0; i < bb.succs.size(); ++i)
            os << (i ? "," : "") << "bb" << bb.succs[i];
        os << "}\n";
        for (const auto& item : bb.items) {
            switch (item.kind) {
                case CfgItem::Kind::Statement:
                    os << "  s" << item.stmt->id << "\n";
                    break;
                case CfgItem::Kind::LoopInit:
                    os << "  init " << p.sym(item.stmt->loopVar).name << "\n";
                    break;
                case CfgItem::Kind::LoopIncr:
                    os << "  incr " << p.sym(item.stmt->loopVar).name << "\n";
                    break;
            }
        }
    }
    return os.str();
}

}  // namespace phpf
