#include "analysis/const_prop.h"

namespace phpf {

ConstProp::ConstProp(const SsaForm& ssa) : ssa_(ssa) {
    values_.assign(ssa.defs().size(), {});
    // Simple fixpoint: defs form few cycles (phis), iterate until stable.
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (const auto& d : ssa.defs()) {
            const Lattice nv = evalDef(d.id);
            Lattice& cur = values_[static_cast<size_t>(d.id)];
            if (nv.state != cur.state || (nv.state == State::Const && nv.value != cur.value)) {
                cur = nv;
                changed = true;
            }
        }
    }
}

ConstProp::Lattice ConstProp::evalDef(int defId) const {
    const SsaDef& d = ssa_.def(defId);
    switch (d.kind) {
        case SsaDef::Kind::Entry:
        case SsaDef::Kind::LoopInit:
        case SsaDef::Kind::LoopIncr:
            return {State::Bottom, 0};
        case SsaDef::Kind::Assign: {
            if (auto v = eval(d.stmt->rhs)) return {State::Const, *v};
            return {State::Bottom, 0};
        }
        case SsaDef::Kind::Phi: {
            Lattice meet;
            for (int op : d.operands) {
                if (op < 0) continue;
                const Lattice& o = values_[static_cast<size_t>(op)];
                if (o.state == State::Top) continue;
                if (o.state == State::Bottom) return {State::Bottom, 0};
                if (meet.state == State::Top) {
                    meet = o;
                } else if (meet.value != o.value) {
                    return {State::Bottom, 0};
                }
            }
            return meet;
        }
    }
    return {State::Bottom, 0};
}

std::optional<std::int64_t> ConstProp::valueOfDef(int defId) const {
    const Lattice& l = values_[static_cast<size_t>(defId)];
    if (l.state == State::Const) return l.value;
    return std::nullopt;
}

std::optional<std::int64_t> ConstProp::valueOfUse(const Expr* e) const {
    const int d = ssa_.defIdOfUse(e);
    if (d < 0) return std::nullopt;
    return valueOfDef(d);
}

std::optional<std::int64_t> ConstProp::eval(const Expr* e) const {
    switch (e->kind) {
        case ExprKind::IntLit:
            return e->ival;
        case ExprKind::VarRef:
            return valueOfUse(e);
        case ExprKind::Unary: {
            auto a = eval(e->args[0]);
            if (!a) return std::nullopt;
            if (e->uop == UnaryOp::Neg) return -*a;
            return std::nullopt;
        }
        case ExprKind::Binary: {
            auto a = eval(e->args[0]);
            auto b = eval(e->args[1]);
            if (!a || !b) return std::nullopt;
            switch (e->bop) {
                case BinaryOp::Add: return *a + *b;
                case BinaryOp::Sub: return *a - *b;
                case BinaryOp::Mul: return *a * *b;
                case BinaryOp::Div:
                    if (*b == 0) return std::nullopt;
                    return *a / *b;
                default: return std::nullopt;
            }
        }
        default:
            return std::nullopt;
    }
}

}  // namespace phpf
