#include "analysis/dependence.h"

#include <algorithm>
#include <numeric>

namespace phpf {

namespace {

bool sameLoopCoeffs(const AffineForm& a, const AffineForm& b) {
    if (!a.affine || !b.affine) return false;
    for (const auto& t : a.terms)
        if (b.coeffOf(t.loop) != t.coeff) return false;
    for (const auto& t : b.terms)
        if (a.coeffOf(t.loop) != t.coeff) return false;
    return true;
}

}  // namespace

bool DependenceTester::rangesDisjoint(const AffineForm& wf,
                                      const AffineForm& rf) const {
    // Symbolic DGEFA-style test: a single unit-coefficient loop whose
    // whole range misses the other subscript's value.
    auto oneSided = [&](const AffineForm& a, const AffineForm& b) {
        if (!a.affine || !b.affine) return false;
        if (a.terms.size() != 1 || a.terms[0].coeff != 1) return false;
        const Stmt* loop = a.terms[0].loop;
        if (b.coeffOf(loop) != 0) return false;
        if (loop->step != nullptr && !loop->step->isIntLit(1)) return false;
        const AffineForm lbF = aff_.analyze(loop->lb);
        if (sameLoopCoeffs(lbF, b) && lbF.c0 + a.c0 - b.c0 > 0) return true;
        const AffineForm ubF = aff_.analyze(loop->ub);
        if (sameLoopCoeffs(ubF, b) && b.c0 - (ubF.c0 + a.c0) > 0) return true;
        return false;
    };
    return oneSided(wf, rf) || oneSided(rf, wf);
}

DependenceTester::DimResult DependenceTester::testDim(const Expr* a,
                                                      const Expr* b) const {
    DimResult out;
    const AffineForm fa = aff_.analyze(a);
    const AffineForm fb = aff_.analyze(b);
    if (!fa.affine || !fb.affine) return out;  // Unknown

    // ZIV: both constant.
    if (fa.terms.empty() && fb.terms.empty()) {
        out.verdict = fa.c0 == fb.c0 ? DimVerdict::EqualAlways
                                     : DimVerdict::Independent;
        return out;
    }

    if (sameLoopCoeffs(fa, fb)) {
        const std::int64_t diff = fb.c0 - fa.c0;
        if (diff == 0) {
            out.verdict = DimVerdict::EqualAlways;
            return out;
        }
        // Strong SIV along a single shared loop: constant distance if
        // the coefficient divides the difference.
        if (fa.terms.size() == 1) {
            const std::int64_t coeff = fa.terms[0].coeff;
            if (coeff != 0 && diff % coeff == 0) {
                out.verdict = DimVerdict::ConstDistance;
                out.loop = fa.terms[0].loop;
                out.dist = diff / coeff;
                return out;
            }
        }
        // Equal coefficients, nonzero constant diff over multiple loops:
        // elements never coincide for identical iteration vectors, but
        // across iterations they can. Fall through to range tests.
    }

    // GCD test for single-loop pairs with different coefficients:
    // a1*t1 + c1 = a2*t2 + c2 has integer solutions only if
    // gcd(a1, a2) divides c2 - c1.
    if (fa.terms.size() == 1 && fb.terms.size() == 1) {
        const std::int64_t g =
            std::gcd(std::abs(fa.terms[0].coeff), std::abs(fb.terms[0].coeff));
        if (g > 1 && (fb.c0 - fa.c0) % g != 0) {
            out.verdict = DimVerdict::Independent;
            return out;
        }
    }

    if (rangesDisjoint(fa, fb)) {
        out.verdict = DimVerdict::Independent;
        return out;
    }
    return out;  // Unknown
}

std::optional<Dependence> DependenceTester::test(const Stmt* srcStmt,
                                                 const Expr* srcRef,
                                                 const Stmt* dstStmt,
                                                 const Expr* dstRef) const {
    if (srcRef->sym != dstRef->sym) return std::nullopt;

    Dependence dep;
    dep.srcStmt = srcStmt;
    dep.srcRef = srcRef;
    dep.dstStmt = dstStmt;
    dep.dstRef = dstRef;

    const auto common = [&] {
        auto la = prog_.enclosingLoops(srcStmt);
        auto lb = prog_.enclosingLoops(dstStmt);
        std::vector<Stmt*> c;
        for (size_t i = 0; i < la.size() && i < lb.size(); ++i) {
            if (la[i] != lb[i]) break;
            c.push_back(la[i]);
        }
        return c;
    }();

    // Per-dimension analysis.
    bool allKnown = true;
    std::vector<DimResult> dims;
    for (size_t d = 0; d < srcRef->args.size(); ++d) {
        const DimResult r = testDim(srcRef->args[d], dstRef->args[d]);
        if (r.verdict == DimVerdict::Independent) return std::nullopt;
        if (r.verdict == DimVerdict::Unknown) allKnown = false;
        dims.push_back(r);
    }

    if (!allKnown) {
        // Conservative: carried by the innermost common loop, or
        // loop-independent if there is no common loop.
        dep.distanceKnown = false;
        dep.carrier = common.empty() ? nullptr : common.back();
        dep.loopIndependent = common.empty();
        return dep;
    }

    // Known distances: assemble a per-common-loop distance vector.
    dep.distanceKnown = true;
    dep.distance.assign(common.size(), 0);
    for (const DimResult& r : dims) {
        if (r.verdict != DimVerdict::ConstDistance) continue;
        const auto it = std::find(common.begin(), common.end(), r.loop);
        if (it == common.end()) {
            // Distance along a non-common loop: treat as unknown carrier.
            dep.distanceKnown = false;
            dep.carrier = common.empty() ? nullptr : common.back();
            dep.loopIndependent = false;
            return dep;
        }
        dep.distance[static_cast<size_t>(it - common.begin())] = r.dist;
    }
    // Carrier: the outermost common loop with nonzero distance.
    dep.carrier = nullptr;
    for (size_t i = 0; i < common.size(); ++i) {
        if (dep.distance[i] != 0) {
            dep.carrier = common[i];
            break;
        }
    }
    dep.loopIndependent = dep.carrier == nullptr;
    return dep;
}

std::vector<Dependence> DependenceTester::allArrayDependences() const {
    struct Access {
        Stmt* stmt;
        Expr* ref;
        bool isWrite;
    };
    std::vector<Access> accesses;
    const_cast<Program&>(prog_).forEachStmt([&](Stmt* s) {
        Program::forEachExpr(s, [&](Expr* e) {
            if (e->kind != ExprKind::ArrayRef) return;
            const bool isWrite = s->kind == StmtKind::Assign && e == s->lhs;
            accesses.push_back({s, e, isWrite});
        });
    });
    std::vector<Dependence> out;
    for (const Access& a : accesses) {
        for (const Access& b : accesses) {
            if (!a.isWrite && !b.isWrite) continue;  // input deps ignored
            if (a.ref == b.ref) continue;
            if (a.ref->sym != b.ref->sym) continue;
            // Orient source before destination by statement id (lexical).
            if (a.stmt->id > b.stmt->id) continue;
            auto dep = test(a.stmt, a.ref, b.stmt, b.ref);
            if (!dep) continue;
            dep->kind = a.isWrite ? (b.isWrite ? DepKind::Output : DepKind::Flow)
                                  : DepKind::Anti;
            out.push_back(*dep);
        }
    }
    return out;
}

}  // namespace phpf
