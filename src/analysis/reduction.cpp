#include "analysis/reduction.h"

#include "ir/printer.h"
#include "support/diagnostics.h"

namespace phpf {

namespace {

/// Innermost enclosing loop of a statement, or null.
const Stmt* innermostLoop(const Program& p, const Stmt* s) {
    auto loops = p.enclosingLoops(s);
    return loops.empty() ? nullptr : loops.back();
}

/// Is `use` a VarRef bound to the header phi of `loop` for its symbol?
int headerPhiIfBound(const SsaForm& ssa, const Expr* use, const Stmt* loop) {
    const int d = ssa.defIdOfUse(use);
    if (d < 0) return -1;
    const SsaDef& def = ssa.def(d);
    if (!def.isPhi()) return -1;
    if (def.block != ssa.cfg().headerOf(loop)) return -1;
    return d;
}

/// Non-phi defs reaching `defId`'s operand coming from `pred`.
bool latchOperandResolvesTo(const SsaForm& ssa, int phiId, int latchBlock,
                            int targetDef) {
    const SsaDef& phi = ssa.def(phiId);
    const auto& preds = ssa.cfg().block(phi.block).preds;
    for (size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] != latchBlock) continue;
        // Trace through intermediate phis.
        std::vector<int> work{phi.operands[i]};
        std::vector<char> seen(ssa.defs().size(), 0);
        bool found = false;
        while (!work.empty()) {
            const int id = work.back();
            work.pop_back();
            if (id < 0 || seen[static_cast<size_t>(id)]) continue;
            seen[static_cast<size_t>(id)] = 1;
            const SsaDef& d = ssa.def(id);
            if (d.isPhi()) {
                for (int op : d.operands) work.push_back(op);
            } else if (id == targetDef) {
                found = true;
            } else {
                return false;  // another def feeds the cycle: not a pure
                               // accumulator
            }
        }
        return found;
    }
    return false;
}

int preheaderOperand(const SsaForm& ssa, int phiId, int latchBlock) {
    const SsaDef& phi = ssa.def(phiId);
    const auto& preds = ssa.cfg().block(phi.block).preds;
    for (size_t i = 0; i < preds.size(); ++i)
        if (preds[i] != latchBlock) return phi.operands[i];
    return -1;
}

void matchPlainReduction(const SsaForm& ssa, Stmt* s,
                         std::vector<ReductionInfo>& out) {
    if (s->kind != StmtKind::Assign || s->lhs->kind != ExprKind::VarRef) return;
    const Program& p = ssa.program();
    const Stmt* loop = innermostLoop(p, s);
    if (loop == nullptr) return;

    // Find the accumulator use and operation.
    const Expr* rhs = s->rhs;
    const Expr* accUse = nullptr;
    ReductionInfo::Op op = ReductionInfo::Op::Sum;
    auto isAccRef = [&](const Expr* e) {
        return e->kind == ExprKind::VarRef && e->sym == s->lhs->sym;
    };
    if (rhs->kind == ExprKind::Binary &&
        (rhs->bop == BinaryOp::Add || rhs->bop == BinaryOp::Mul ||
         rhs->bop == BinaryOp::Sub)) {
        if (isAccRef(rhs->args[0]))
            accUse = rhs->args[0];
        else if (rhs->bop != BinaryOp::Sub && isAccRef(rhs->args[1]))
            accUse = rhs->args[1];
        op = rhs->bop == BinaryOp::Mul ? ReductionInfo::Op::Product
                                       : ReductionInfo::Op::Sum;
    } else if (rhs->kind == ExprKind::Call &&
               (rhs->fn == Intrinsic::Max || rhs->fn == Intrinsic::Min) &&
               rhs->args.size() == 2) {
        if (isAccRef(rhs->args[0]))
            accUse = rhs->args[0];
        else if (isAccRef(rhs->args[1]))
            accUse = rhs->args[1];
        op = rhs->fn == Intrinsic::Max ? ReductionInfo::Op::Max
                                       : ReductionInfo::Op::Min;
    }
    if (accUse == nullptr) return;
    // No second self-reference allowed.
    int selfRefs = 0;
    Program::walkExpr(const_cast<Expr*>(rhs), [&](Expr* e) {
        if (isAccRef(e)) ++selfRefs;
    });
    if (selfRefs != 1) return;

    const int phiId = headerPhiIfBound(ssa, accUse, loop);
    if (phiId < 0) return;
    const SsaDef& phi = ssa.def(phiId);
    // Inside the loop the carried value feeds only the update; uses
    // after the loop read the final (combined) result and are fine —
    // they bind to the same header phi.
    for (const Expr* u : phi.uses) {
        if (u == accUse) continue;
        if (Program::isInsideLoop(u->parentStmt, loop)) return;
    }
    for (auto [phiUseId, opIdx] : phi.phiUses) {
        (void)opIdx;
        if (ssa.cfg().blockInsideLoop(ssa.def(phiUseId).block, loop)) return;
    }
    const int myDef = ssa.defIdOfAssign(s);
    const int latch = ssa.cfg().latchOf(loop);
    if (!latchOperandResolvesTo(ssa, phiId, latch, myDef)) return;

    ReductionInfo info;
    info.stmt = s;
    info.scalar = s->lhs->sym;
    info.op = op;
    info.loops = {loop};

    // Extend outward while outer loops carry the accumulator unchanged
    // (no reinitialization between iterations of the outer loop).
    int initId = preheaderOperand(ssa, phiId, latch);
    const Stmt* cur = loop;
    while (initId >= 0) {
        const SsaDef& init = ssa.def(initId);
        auto outerLoops = ssa.program().enclosingLoops(cur);
        if (outerLoops.size() < 2) break;
        const Stmt* outer = outerLoops[outerLoops.size() - 2];
        if (!init.isPhi() || init.block != ssa.cfg().headerOf(outer)) break;
        if (!init.uses.empty()) break;
        const int outerLatch = ssa.cfg().latchOf(outer);
        if (!latchOperandResolvesTo(ssa, init.id, outerLatch, myDef)) break;
        info.loops.insert(info.loops.begin(), outer);
        initId = preheaderOperand(ssa, init.id, outerLatch);
        cur = outer;
    }
    out.push_back(std::move(info));
}

void matchMaxLoc(const SsaForm& ssa, Stmt* ifStmt,
                 std::vector<ReductionInfo>& out) {
    if (ifStmt->kind != StmtKind::If || !ifStmt->elseBody.empty()) return;
    if (ifStmt->thenBody.size() != 2) return;
    const Program& p = ssa.program();
    const Stmt* loop = innermostLoop(p, ifStmt);
    if (loop == nullptr) return;
    const Expr* cond = ifStmt->cond;
    if (cond->kind != ExprKind::Binary || !isComparison(cond->bop)) return;

    // One side is the running extreme (scalar), the other the candidate.
    for (int side = 0; side < 2; ++side) {
        const Expr* sref = cond->args[static_cast<size_t>(side)];
        const Expr* cand = cond->args[static_cast<size_t>(1 - side)];
        if (sref->kind != ExprKind::VarRef) continue;
        if (headerPhiIfBound(ssa, sref, loop) < 0) continue;
        // Direction: candidate beats current -> Max if candidate is on the
        // greater side.
        bool isMax = false;
        if ((cond->bop == BinaryOp::Gt || cond->bop == BinaryOp::Ge))
            isMax = side == 1;  // cand > s
        else if ((cond->bop == BinaryOp::Lt || cond->bop == BinaryOp::Le))
            isMax = side == 0;  // s < cand
        else
            continue;

        Stmt* valAssign = nullptr;
        Stmt* locAssign = nullptr;
        for (Stmt* t : ifStmt->thenBody) {
            if (t->kind != StmtKind::Assign ||
                t->lhs->kind != ExprKind::VarRef)
                return;
            if (t->lhs->sym == sref->sym)
                valAssign = t;
            else
                locAssign = t;
        }
        if (valAssign == nullptr || locAssign == nullptr) continue;
        // The new extreme must be the compared candidate value.
        if (printExpr(p, valAssign->rhs) != printExpr(p, cand)) continue;

        ReductionInfo info;
        info.stmt = valAssign;
        info.scalar = sref->sym;
        info.op = isMax ? ReductionInfo::Op::MaxLoc : ReductionInfo::Op::MinLoc;
        info.loops = {loop};
        info.locStmt = locAssign;
        info.locScalar = locAssign->lhs->sym;
        info.guard = ifStmt;
        out.push_back(std::move(info));
        return;
    }
}

}  // namespace

std::vector<ReductionInfo> findReductions(const SsaForm& ssa) {
    std::vector<ReductionInfo> out;
    ssa.program().forEachStmt([&](Stmt* s) {
        matchPlainReduction(ssa, s, out);
        matchMaxLoc(ssa, s, out);
    });
    return out;
}

const ReductionInfo* reductionOfStmt(const std::vector<ReductionInfo>& reds,
                                     const Stmt* s) {
    for (const auto& r : reds)
        if (r.stmt == s || r.locStmt == s || r.guard == s) return &r;
    return nullptr;
}

}  // namespace phpf
