#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ssa.h"
#include "ir/program.h"

namespace phpf {

/// `c0 + Σ coeff_k · index(loop_k)` over the loops enclosing the
/// analyzed expression. When `affine` is false the expression involves
/// non-index scalars (or nonlinearity) and only `varLevel` is
/// meaningful.
struct AffineForm {
    bool affine = false;
    std::int64_t c0 = 0;
    struct Term {
        const Stmt* loop = nullptr;  ///< the Do statement
        std::int64_t coeff = 0;
    };
    std::vector<Term> terms;
    /// Innermost loop nesting level in which the value varies (paper's
    /// VarLevel). For affine forms this equals the max nesting level of
    /// `terms`; for non-affine forms it is derived from reaching defs.
    int varLevel = 0;

    [[nodiscard]] std::int64_t coeffOf(const Stmt* loop) const {
        for (const auto& t : terms)
            if (t.loop == loop) return t.coeff;
        return 0;
    }
    [[nodiscard]] bool isConstant() const { return affine && terms.empty(); }
    /// Value does not change across iterations of `loop` (whose body is
    /// at nesting level `loopLevel`).
    [[nodiscard]] bool invariantIn(const Stmt* loop, int loopLevel) const {
        if (affine) return coeffOf(loop) == 0;
        return varLevel < loopLevel;
    }
};

/// Classifies subscript expressions relative to the loop nest, and
/// computes the paper's SubscriptAlignLevel (Fig. 4):
///
///   SubscriptAlignLevel(s) = VarLevel(s)      if s affine in loop indices
///                            VarLevel(s) + 1  otherwise
///
/// i.e. the nesting level of the outermost loop throughout which the
/// subscript's value is well-defined.
class AffineAnalyzer {
public:
    /// `ssa` may be null; non-index scalars are then treated as varying
    /// at their statement's level.
    AffineAnalyzer(const Program& p, const SsaForm* ssa)
        : prog_(p), ssa_(ssa) {}

    /// Analyze `e`, interpreting VarRefs of enclosing-loop indices as
    /// those loops' induction values. `e->parentStmt` must be set.
    [[nodiscard]] AffineForm analyze(const Expr* e) const;

    [[nodiscard]] int varLevel(const Expr* e) const { return analyze(e).varLevel; }
    [[nodiscard]] int subscriptAlignLevel(const Expr* sub) const;

private:
    AffineForm analyzeAt(const Expr* e, const Stmt* context) const;
    /// Enclosing Do of `context` whose loopVar is `sym`, or null.
    [[nodiscard]] const Stmt* enclosingLoopWithIndex(const Stmt* context,
                                                     SymbolId sym) const;
    /// Level at which a non-index scalar use varies: max def level of
    /// its reaching defs.
    [[nodiscard]] int scalarVarLevel(const Expr* use) const;

    const Program& prog_;
    const SsaForm* ssa_;
};

/// Deep-copy an expression tree into `p`'s arena.
Expr* cloneExpr(Program& p, const Expr* e);

/// Fold integer-literal subtrees of `e` in place (returns possibly new
/// root). Used after closed-form induction rewriting.
Expr* foldConstants(Program& p, Expr* e);

}  // namespace phpf
