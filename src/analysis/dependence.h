#pragma once

#include <optional>
#include <vector>

#include "analysis/affine.h"

namespace phpf {

/// Classical data-dependence classification between two references to
/// the same array.
enum class DepKind : std::uint8_t {
    Flow,    ///< write then read
    Anti,    ///< read then write
    Output,  ///< write then write
};

struct Dependence {
    DepKind kind = DepKind::Flow;
    const Stmt* srcStmt = nullptr;
    const Expr* srcRef = nullptr;
    const Stmt* dstStmt = nullptr;
    const Expr* dstRef = nullptr;

    /// True when the dependence holds within a single iteration of every
    /// common loop (distance vector all zero).
    bool loopIndependent = false;
    /// Outermost common loop with a (possibly unknown) nonzero distance,
    /// null when loop-independent.
    const Stmt* carrier = nullptr;
    /// Per-common-loop distances (outermost first) when fully known.
    std::vector<std::int64_t> distance;
    bool distanceKnown = false;
};

/// Subscript-based dependence testing: per-dimension ZIV/strong-SIV
/// tests with a GCD fallback and symbolic range disjointness (handles
/// DGEFA's triangular bounds). Conservative: "maybe" is reported as a
/// dependence with unknown distance.
///
/// This is the substrate the communication-placement analysis stands
/// on; the paper's framework assumes such a tester exists in the HPF
/// compiler (message vectorization must respect flow dependences).
class DependenceTester {
public:
    DependenceTester(const Program& p, const SsaForm* ssa)
        : prog_(p), aff_(p, ssa) {}

    /// Test src -> dst (same array). Returns nullopt when provably
    /// independent.
    [[nodiscard]] std::optional<Dependence> test(const Stmt* srcStmt,
                                                 const Expr* srcRef,
                                                 const Stmt* dstStmt,
                                                 const Expr* dstRef) const;

    /// All write-involving array dependences of the program
    /// (flow/anti/output), conservative.
    [[nodiscard]] std::vector<Dependence> allArrayDependences() const;

private:
    /// Per-dimension verdict.
    enum class DimVerdict : std::uint8_t {
        Independent,       ///< provably never the same element
        EqualAlways,       ///< same element in the same iteration (dist 0)
        ConstDistance,     ///< same loop, constant iteration distance
        Unknown,           ///< may alias, distance unknown
    };
    struct DimResult {
        DimVerdict verdict = DimVerdict::Unknown;
        const Stmt* loop = nullptr;      ///< ConstDistance: the shared loop
        std::int64_t dist = 0;
    };
    [[nodiscard]] DimResult testDim(const Expr* a, const Expr* b) const;
    [[nodiscard]] bool rangesDisjoint(const AffineForm& wf,
                                      const AffineForm& rf) const;

    const Program& prog_;
    AffineAnalyzer aff_;
};

}  // namespace phpf
