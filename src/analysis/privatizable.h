#pragma once

#include "analysis/ssa.h"

namespace phpf {

/// Scalar privatizability (paper Section 2.2): a definition is
/// privatizable with respect to loop L when every value it produces is
/// consumed within the same iteration of L — i.e. all reached uses lie
/// inside L, the value never flows across L's back edge, and it never
/// escapes L through a merge outside the loop. (Copy-out privatization
/// is not modelled; live-out definitions are simply not privatizable,
/// matching phpf.)
[[nodiscard]] bool isPrivatizableAt(const SsaForm& ssa, int defId,
                                    const Stmt* loop);

/// Outermost loop with respect to which `defId` is privatizable, or
/// null. Privatizing at the outermost valid level exposes the most
/// parallelism, so the mapping pass starts here.
[[nodiscard]] const Stmt* outermostPrivatizationLoop(const SsaForm& ssa,
                                                     int defId);

/// Array privatizability (Section 3.1): inferred from the NEW clause of
/// an INDEPENDENT directive on `loop`.
[[nodiscard]] bool arrayPrivatizableAt(const Stmt* loop, SymbolId array);

/// The INDEPENDENT loop (enclosing `s` or `s` itself) that names `array`
/// in its NEW clause, or null.
[[nodiscard]] const Stmt* privatizingLoopOfArray(const Program& p,
                                                 const Stmt* s, SymbolId array);

}  // namespace phpf
