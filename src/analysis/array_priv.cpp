#include "analysis/array_priv.h"

#include <algorithm>
#include <optional>

namespace phpf {

namespace {

/// Evaluate a literal-only expression (loop bounds in the candidate
/// region must be constants for the coverage test).
std::optional<std::int64_t> constEval(const Expr* e) {
    switch (e->kind) {
        case ExprKind::IntLit:
            return e->ival;
        case ExprKind::Binary: {
            const auto a = constEval(e->args[0]);
            const auto b = constEval(e->args[1]);
            if (!a || !b) return std::nullopt;
            switch (e->bop) {
                case BinaryOp::Add: return *a + *b;
                case BinaryOp::Sub: return *a - *b;
                case BinaryOp::Mul: return *a * *b;
                default: return std::nullopt;
            }
        }
        case ExprKind::Unary:
            if (e->uop == UnaryOp::Neg) {
                const auto a = constEval(e->args[0]);
                if (a) return -*a;
            }
            return std::nullopt;
        default:
            return std::nullopt;
    }
}

/// Value range of an affine subscript with at most one loop term whose
/// bounds are constant. Returns nullopt if unanalyzable.
struct Range {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

std::optional<Range> subscriptRange(const AffineForm& f) {
    if (!f.affine) return std::nullopt;
    if (f.terms.empty()) return Range{f.c0, f.c0};
    if (f.terms.size() != 1) return std::nullopt;
    const auto& t = f.terms[0];
    if (t.coeff != 1) return std::nullopt;
    const Stmt* loop = t.loop;
    const auto lb = constEval(loop->lb);
    const auto ub = constEval(loop->ub);
    if (!lb || !ub) return std::nullopt;
    if (loop->step != nullptr && !loop->step->isIntLit(1)) return std::nullopt;
    return Range{*lb + f.c0, *ub + f.c0};
}

/// Pre-order position index of every statement, for "write precedes
/// read in the iteration" ordering.
std::unordered_map<const Stmt*, int> orderStmts(Program& p) {
    std::unordered_map<const Stmt*, int> order;
    int n = 0;
    p.forEachStmt([&](Stmt* s) { order[s] = n++; });
    return order;
}

}  // namespace

std::vector<AutoPrivArray> findAutoPrivatizableArrays(Program& p,
                                                      const SsaForm& ssa) {
    std::vector<AutoPrivArray> out;
    AffineAnalyzer aff(p, &ssa);
    const auto order = orderStmts(p);

    std::vector<Stmt*> loops;
    p.forEachStmt([&](Stmt* s) {
        if (s->kind == StmtKind::Do) loops.push_back(s);
    });

    for (const Symbol& sym : p.symbols) {
        if (!sym.isArray()) continue;
        if (p.distributeOf(sym.id) != nullptr || p.alignOf(sym.id) != nullptr)
            continue;  // mapped arrays are not privatization candidates

        // Collect writes and reads.
        struct Access {
            Expr* ref;
            Stmt* stmt;
            bool conditional;
        };
        std::vector<Access> writes, reads;
        p.forEachStmt([&](Stmt* s) {
            const bool cond = [&] {
                for (const Stmt* q = s->parent; q != nullptr; q = q->parent)
                    if (q->kind == StmtKind::If) return true;
                return false;
            }();
            Program::forEachExpr(s, [&](Expr* e) {
                if (e->kind != ExprKind::ArrayRef || e->sym != sym.id) return;
                if (s->kind == StmtKind::Assign && e == s->lhs)
                    writes.push_back({e, s, cond});
                else
                    reads.push_back({e, s, cond});
            });
        });
        if (writes.empty() || reads.empty()) continue;

        // Candidate loops: enclosing every access, outermost first.
        for (Stmt* loop : loops) {
            bool allInside = true;
            for (const auto& a : writes)
                if (!Program::isInsideLoop(a.stmt, loop)) allInside = false;
            for (const auto& a : reads)
                if (!Program::isInsideLoop(a.stmt, loop)) allInside = false;
            if (!allInside) continue;

            // Conditional writes cannot guarantee coverage.
            bool ok = std::none_of(writes.begin(), writes.end(),
                                   [](const Access& a) { return a.conditional; });

            // Every read must be covered by an earlier unconditional
            // write in the same iteration of `loop`.
            for (const auto& r : reads) {
                if (!ok) break;
                bool covered = false;
                for (const auto& w : writes) {
                    if (order.at(w.stmt) >= order.at(r.stmt)) continue;
                    bool dimsCovered = true;
                    for (size_t d = 0; d < r.ref->args.size(); ++d) {
                        const auto wr = subscriptRange(
                            aff.analyze(w.ref->args[d]));
                        const auto rr = subscriptRange(
                            aff.analyze(r.ref->args[d]));
                        if (!wr || !rr || wr->lo > rr->lo || wr->hi < rr->hi)
                            dimsCovered = false;
                    }
                    if (dimsCovered) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) ok = false;
            }
            if (ok) {
                out.push_back({sym.id, loop});
                break;  // outermost valid loop wins
            }
        }
    }
    return out;
}

}  // namespace phpf
