#pragma once

#include <vector>

#include "analysis/affine.h"

namespace phpf {

/// Automatic array privatization — the paper's stated future work
/// ("we plan to integrate our mapping techniques with automatic array
/// privatization"). Detects arrays that are privatizable with respect
/// to a loop without a NEW clause, using a conservative Tu/Padua-style
/// test:
///
///   * every read of the array inside the loop is covered by a write
///     earlier in the same iteration (per-dimension affine coverage of
///     the read's value range by a write's value range), and
///   * the array is not read outside the loop (no copy-out needed).
///
/// Subscripts must be affine with at most one loop term per dimension
/// and constant loop bounds; anything else fails conservatively.
struct AutoPrivArray {
    SymbolId array = kNoSymbol;
    Stmt* loop = nullptr;  ///< outermost loop the array is privatizable at
};

[[nodiscard]] std::vector<AutoPrivArray> findAutoPrivatizableArrays(
    Program& p, const SsaForm& ssa);

}  // namespace phpf
