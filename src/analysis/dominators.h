#pragma once

#include <vector>

#include "analysis/cfg.h"

namespace phpf {

/// Dominator tree and dominance frontiers over a Cfg, via the
/// Cooper–Harvey–Kennedy iterative algorithm. Unreachable blocks get
/// idom -1 and are excluded from frontiers.
class Dominators {
public:
    explicit Dominators(const Cfg& cfg);

    /// Immediate dominator of block `b` (-1 for the entry / unreachable).
    [[nodiscard]] int idom(int b) const { return idom_[static_cast<size_t>(b)]; }
    [[nodiscard]] bool dominates(int a, int b) const;
    [[nodiscard]] const std::vector<int>& frontier(int b) const {
        return frontiers_[static_cast<size_t>(b)];
    }
    /// Children in the dominator tree.
    [[nodiscard]] const std::vector<int>& children(int b) const {
        return children_[static_cast<size_t>(b)];
    }
    [[nodiscard]] int entry() const { return entry_; }

private:
    int entry_;
    std::vector<int> idom_;
    std::vector<std::vector<int>> frontiers_;
    std::vector<std::vector<int>> children_;
};

}  // namespace phpf
