#pragma once

#include <vector>

#include "analysis/const_prop.h"
#include "analysis/ssa.h"

namespace phpf {

/// A recognized basic induction variable: a scalar updated exactly once
/// per iteration of `loop` by `assign` (v = v ± stride), whose
/// loop-carried value is consumed only by that update.
struct InductionVar {
    Stmt* assign = nullptr;
    SymbolId sym = kNoSymbol;
    const Stmt* loop = nullptr;
    std::int64_t stride = 0;
};

/// Find induction variables over a built SSA form.
[[nodiscard]] std::vector<InductionVar> findInductionVars(const SsaForm& ssa,
                                                          const ConstProp& cp);

/// Replace each induction update's rhs with its closed form in the loop
/// index (the phpf transformation of Section 2.1: `m = m + 1` becomes
/// `m = i + 1`), eliminating the loop-carried dependence so the scalar
/// becomes privatizable without alignment. Returns the number of
/// rewrites; the caller must re-run finalize/CFG/SSA afterwards.
int rewriteInductionVars(Program& p, const SsaForm& ssa, const ConstProp& cp);

}  // namespace phpf
