#include "analysis/ssa.h"

#include <algorithm>
#include <functional>

#include "support/diagnostics.h"

namespace phpf {

SsaForm::SsaForm(Program& p, const Cfg& cfg, const Dominators& dom)
    : prog_(p), cfg_(cfg) {
    blockPhis_.assign(static_cast<size_t>(cfg.blockCount()), {});
    versionCounter_.assign(p.symbols.size(), 0);

    insertPhis(dom);

    // Entry versions for every scalar, pushed as the initial stack state.
    std::vector<std::vector<int>> stacks(p.symbols.size());
    for (const auto& s : p.symbols) {
        if (s.isArray()) continue;
        const int d = newDef(s.id, SsaDef::Kind::Entry, nullptr, cfg.entry());
        stacks[static_cast<size_t>(s.id)].push_back(d);
    }
    rename(cfg.entry(), dom, stacks);
    prune();
}

int SsaForm::newDef(SymbolId sym, SsaDef::Kind kind, Stmt* stmt, int block) {
    SsaDef d;
    d.id = static_cast<int>(defs_.size());
    d.sym = sym;
    d.version = versionCounter_[static_cast<size_t>(sym)]++;
    d.kind = kind;
    d.stmt = stmt;
    d.block = block;
    defs_.push_back(std::move(d));
    return defs_.back().id;
}

void SsaForm::insertPhis(const Dominators& dom) {
    // Definition sites per scalar symbol.
    std::vector<std::vector<int>> defSites(prog_.symbols.size());
    for (const auto& s : prog_.symbols)
        if (!s.isArray()) defSites[static_cast<size_t>(s.id)].push_back(cfg_.entry());
    for (const auto& bb : cfg_.blocks()) {
        for (const auto& item : bb.items) {
            switch (item.kind) {
                case CfgItem::Kind::Statement:
                    if (item.stmt->kind == StmtKind::Assign &&
                        item.stmt->lhs->kind == ExprKind::VarRef)
                        defSites[static_cast<size_t>(item.stmt->lhs->sym)]
                            .push_back(bb.id);
                    break;
                case CfgItem::Kind::LoopInit:
                case CfgItem::Kind::LoopIncr:
                    defSites[static_cast<size_t>(item.stmt->loopVar)].push_back(
                        bb.id);
                    break;
            }
        }
    }

    // Iterated dominance frontier per symbol (minimal SSA; pruned later).
    for (const auto& s : prog_.symbols) {
        if (s.isArray()) continue;
        std::vector<int> work = defSites[static_cast<size_t>(s.id)];
        std::vector<char> hasPhi(static_cast<size_t>(cfg_.blockCount()), 0);
        std::vector<char> inWork(static_cast<size_t>(cfg_.blockCount()), 0);
        for (int b : work) inWork[static_cast<size_t>(b)] = 1;
        while (!work.empty()) {
            const int b = work.back();
            work.pop_back();
            for (int f : dom.frontier(b)) {
                if (hasPhi[static_cast<size_t>(f)]) continue;
                hasPhi[static_cast<size_t>(f)] = 1;
                const int d = newDef(s.id, SsaDef::Kind::Phi, nullptr, f);
                defs_[static_cast<size_t>(d)].operands.assign(
                    cfg_.block(f).preds.size(), -1);
                blockPhis_[static_cast<size_t>(f)].push_back(d);
                if (!inWork[static_cast<size_t>(f)]) {
                    inWork[static_cast<size_t>(f)] = 1;
                    work.push_back(f);
                }
            }
        }
    }
}

void SsaForm::renameUsesIn(Expr* e, std::vector<std::vector<int>>& stacks) {
    if (e == nullptr) return;
    Program::walkExpr(e, [&](Expr* node) {
        if (node->kind != ExprKind::VarRef) return;
        auto& stack = stacks[static_cast<size_t>(node->sym)];
        PHPF_ASSERT(!stack.empty(), "use of array symbol as scalar?");
        const int d = stack.back();
        useDef_[node->id] = d;
        defs_[static_cast<size_t>(d)].uses.push_back(node);
    });
}

void SsaForm::rename(int block, const Dominators& dom,
                     std::vector<std::vector<int>>& stacks) {
    std::vector<int> pushed;  // defs pushed in this block, for pop on exit

    for (int phiId : blockPhis_[static_cast<size_t>(block)]) {
        stacks[static_cast<size_t>(defs_[static_cast<size_t>(phiId)].sym)]
            .push_back(phiId);
        pushed.push_back(phiId);
    }

    for (const auto& item : cfg_.block(block).items) {
        switch (item.kind) {
            case CfgItem::Kind::Statement: {
                Stmt* s = item.stmt;
                if (s->kind == StmtKind::Assign) {
                    renameUsesIn(s->rhs, stacks);
                    if (s->lhs->kind == ExprKind::ArrayRef) {
                        // Subscripts of the stored-to element are uses.
                        for (Expr* sub : s->lhs->args)
                            renameUsesIn(sub, stacks);
                    } else {
                        const int d =
                            newDef(s->lhs->sym, SsaDef::Kind::Assign, s, block);
                        assignDef_[s] = d;
                        stacks[static_cast<size_t>(s->lhs->sym)].push_back(d);
                        pushed.push_back(d);
                    }
                } else if (s->kind == StmtKind::If) {
                    renameUsesIn(s->cond, stacks);
                }
                break;
            }
            case CfgItem::Kind::LoopInit: {
                Stmt* s = item.stmt;
                renameUsesIn(s->lb, stacks);
                renameUsesIn(s->ub, stacks);
                renameUsesIn(s->step, stacks);
                const int d = newDef(s->loopVar, SsaDef::Kind::LoopInit, s, block);
                loopInitDef_[s] = d;
                stacks[static_cast<size_t>(s->loopVar)].push_back(d);
                pushed.push_back(d);
                break;
            }
            case CfgItem::Kind::LoopIncr: {
                Stmt* s = item.stmt;
                const int prev = stacks[static_cast<size_t>(s->loopVar)].back();
                const int d = newDef(s->loopVar, SsaDef::Kind::LoopIncr, s, block);
                defs_[static_cast<size_t>(d)].incrSource = prev;
                loopIncrDef_[s] = d;
                stacks[static_cast<size_t>(s->loopVar)].push_back(d);
                pushed.push_back(d);
                break;
            }
        }
    }

    // Fill phi operands of successors.
    for (int succ : cfg_.block(block).succs) {
        const auto& preds = cfg_.block(succ).preds;
        const auto predIt = std::find(preds.begin(), preds.end(), block);
        const int predIdx = static_cast<int>(predIt - preds.begin());
        for (int phiId : blockPhis_[static_cast<size_t>(succ)]) {
            SsaDef& phi = defs_[static_cast<size_t>(phiId)];
            const auto& stack = stacks[static_cast<size_t>(phi.sym)];
            phi.operands[static_cast<size_t>(predIdx)] =
                stack.empty() ? -1 : stack.back();
        }
    }

    for (int child : dom.children(block)) rename(child, dom, stacks);

    for (auto it = pushed.rbegin(); it != pushed.rend(); ++it) {
        auto& stack = stacks[static_cast<size_t>(defs_[static_cast<size_t>(*it)].sym)];
        PHPF_ASSERT(stack.back() == *it, "rename stack corruption");
        stack.pop_back();
    }
}

void SsaForm::prune() {
    // A def is live if it has a real use or feeds a live phi. Compute the
    // live set, then record phiUses only for live phis.
    std::vector<char> live(defs_.size(), 0);
    std::vector<int> work;
    for (const auto& d : defs_)
        if (!d.uses.empty()) {
            live[static_cast<size_t>(d.id)] = 1;
            work.push_back(d.id);
        }
    while (!work.empty()) {
        const int id = work.back();
        work.pop_back();
        const SsaDef& d = defs_[static_cast<size_t>(id)];
        auto markLive = [&](int op) {
            if (op >= 0 && !live[static_cast<size_t>(op)]) {
                live[static_cast<size_t>(op)] = 1;
                work.push_back(op);
            }
        };
        if (d.isPhi()) {
            for (int op : d.operands) markLive(op);
        } else if (d.kind == SsaDef::Kind::LoopIncr) {
            markLive(d.incrSource);
        }
    }
    for (auto& d : defs_) {
        if (!d.isPhi() || !live[static_cast<size_t>(d.id)]) continue;
        for (size_t i = 0; i < d.operands.size(); ++i) {
            const int op = d.operands[i];
            if (op >= 0)
                defs_[static_cast<size_t>(op)].phiUses.emplace_back(
                    d.id, static_cast<int>(i));
        }
    }
}

int SsaForm::defIdOfUse(const Expr* e) const {
    auto it = useDef_.find(e->id);
    return it == useDef_.end() ? -1 : it->second;
}

int SsaForm::defIdOfAssign(const Stmt* s) const {
    auto it = assignDef_.find(s);
    return it == assignDef_.end() ? -1 : it->second;
}

int SsaForm::defIdOfLoopInit(const Stmt* s) const {
    auto it = loopInitDef_.find(s);
    return it == loopInitDef_.end() ? -1 : it->second;
}

int SsaForm::defIdOfLoopIncr(const Stmt* s) const {
    auto it = loopIncrDef_.find(s);
    return it == loopIncrDef_.end() ? -1 : it->second;
}

int SsaForm::headerPhiOf(const Stmt* doStmt, SymbolId sym) const {
    const int header = cfg_.headerOf(doStmt);
    for (int phiId : blockPhis_[static_cast<size_t>(header)]) {
        const SsaDef& d = defs_[static_cast<size_t>(phiId)];
        if (d.sym == sym && !d.phiUses.empty()) return phiId;
        if (d.sym == sym && !d.uses.empty()) return phiId;
    }
    // Also accept a live phi with uses (checked above); otherwise none.
    for (int phiId : blockPhis_[static_cast<size_t>(header)])
        if (defs_[static_cast<size_t>(phiId)].sym == sym) return phiId;
    return -1;
}

UseClosure SsaForm::reachedUses(int defId) const {
    UseClosure out;
    std::vector<char> seen(defs_.size(), 0);
    std::function<void(int)> visit = [&](int id) {
        if (seen[static_cast<size_t>(id)]) return;
        seen[static_cast<size_t>(id)] = 1;
        const SsaDef& d = defs_[static_cast<size_t>(id)];
        for (Expr* u : d.uses) out.uses.push_back(u);
        for (auto [phiId, opIdx] : d.phiUses) {
            const SsaDef& phi = defs_[static_cast<size_t>(phiId)];
            out.phiBlocks.push_back(phi.block);
            const Stmt* header = cfg_.block(phi.block).headerOf;
            if (header != nullptr) {
                // Flowing into a loop-header phi via the back edge means the
                // value crosses that loop's iterations.
                const int pred =
                    cfg_.block(phi.block).preds[static_cast<size_t>(opIdx)];
                if (pred == cfg_.latchOf(header)) out.carriedByLoops.insert(header);
            }
            visit(phiId);
        }
    };
    visit(defId);
    return out;
}

std::vector<int> SsaForm::reachingDefs(const Expr* e) const {
    std::vector<int> out;
    const int start = defIdOfUse(e);
    if (start < 0) return out;
    std::vector<char> seen(defs_.size(), 0);
    std::function<void(int)> visit = [&](int id) {
        if (id < 0 || seen[static_cast<size_t>(id)]) return;
        seen[static_cast<size_t>(id)] = 1;
        const SsaDef& d = defs_[static_cast<size_t>(id)];
        if (d.isPhi()) {
            for (int op : d.operands) visit(op);
        } else {
            out.push_back(id);
        }
    };
    visit(start);
    return out;
}

bool SsaForm::isUniqueDef(int defId) const {
    const UseClosure closure = reachedUses(defId);
    for (const Expr* u : closure.uses) {
        const std::vector<int> rds = reachingDefs(u);
        if (rds.size() != 1 || rds[0] != defId) return false;
    }
    return true;
}

}  // namespace phpf
