#include "analysis/privatizable.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace phpf {

bool isPrivatizableAt(const SsaForm& ssa, int defId, const Stmt* loop) {
    PHPF_ASSERT(loop != nullptr && loop->kind == StmtKind::Do,
                "privatization target must be a loop");
    const SsaDef& d = ssa.def(defId);
    if (d.kind != SsaDef::Kind::Assign) return false;
    if (!Program::isInsideLoop(d.stmt, loop)) return false;

    const UseClosure closure = ssa.reachedUses(defId);
    // Loop-carried w.r.t. this loop: value feeds the next iteration.
    if (closure.carriedByLoops.count(loop) > 0) return false;
    // All consumers must stay inside the loop.
    for (const Expr* u : closure.uses)
        if (!Program::isInsideLoop(u->parentStmt, loop)) return false;
    // No merge outside the loop on any def-to-use path (value escaping
    // through a phi at an outer level means it is live past an iteration).
    const Cfg& cfg = ssa.cfg();
    for (int phiBlock : closure.phiBlocks)
        if (!cfg.blockInsideLoop(phiBlock, loop)) return false;
    return true;
}

const Stmt* outermostPrivatizationLoop(const SsaForm& ssa, int defId) {
    const SsaDef& d = ssa.def(defId);
    if (d.kind != SsaDef::Kind::Assign) return nullptr;
    const auto loops = ssa.program().enclosingLoops(d.stmt);
    for (const Stmt* l : loops)  // outermost first
        if (isPrivatizableAt(ssa, defId, l)) return l;
    return nullptr;
}

bool arrayPrivatizableAt(const Stmt* loop, SymbolId array) {
    if (loop == nullptr || !loop->independent) return false;
    return std::find(loop->newVars.begin(), loop->newVars.end(), array) !=
           loop->newVars.end();
}

const Stmt* privatizingLoopOfArray(const Program& p, const Stmt* s,
                                   SymbolId array) {
    for (const Stmt* l : p.enclosingLoops(s)) {
        if (arrayPrivatizableAt(l, array)) return l;
    }
    if (s->kind == StmtKind::Do && arrayPrivatizableAt(s, array)) return s;
    return nullptr;
}

}  // namespace phpf
