#include "analysis/affine.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace phpf {

namespace {

void addTerm(AffineForm& f, const Stmt* loop, std::int64_t coeff) {
    if (coeff == 0) return;
    for (size_t i = 0; i < f.terms.size(); ++i) {
        if (f.terms[i].loop == loop) {
            f.terms[i].coeff += coeff;
            if (f.terms[i].coeff == 0)
                f.terms.erase(f.terms.begin() + static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
    f.terms.push_back({loop, coeff});
}

AffineForm combine(const AffineForm& a, const AffineForm& b, std::int64_t sb) {
    AffineForm out;
    if (a.affine && b.affine) {
        out.affine = true;
        out.c0 = a.c0 + sb * b.c0;
        out.terms = a.terms;
        for (const auto& t : b.terms) addTerm(out, t.loop, sb * t.coeff);
        for (const auto& t : out.terms)
            out.varLevel = std::max(out.varLevel, t.loop->loopNestingLevel());
    } else {
        out.affine = false;
        out.varLevel = std::max(a.varLevel, b.varLevel);
    }
    return out;
}

AffineForm nonAffine(int varLevel) {
    AffineForm f;
    f.affine = false;
    f.varLevel = varLevel;
    return f;
}

}  // namespace

const Stmt* AffineAnalyzer::enclosingLoopWithIndex(const Stmt* context,
                                                   SymbolId sym) const {
    for (const Stmt* p = context; p != nullptr; p = p->parent)
        if (p->kind == StmtKind::Do && p->loopVar == sym) return p;
    return nullptr;
}

int AffineAnalyzer::scalarVarLevel(const Expr* use) const {
    if (ssa_ == nullptr)
        return use->parentStmt != nullptr ? use->parentStmt->level : 0;
    int level = 0;
    for (int d : ssa_->reachingDefs(use)) {
        const SsaDef& def = ssa_->def(d);
        if (def.stmt != nullptr) level = std::max(level, def.stmt->level);
    }
    return level;
}

AffineForm AffineAnalyzer::analyzeAt(const Expr* e, const Stmt* context) const {
    switch (e->kind) {
        case ExprKind::IntLit: {
            AffineForm f;
            f.affine = true;
            f.c0 = e->ival;
            return f;
        }
        case ExprKind::RealLit:
            return nonAffine(0);
        case ExprKind::VarRef: {
            if (const Stmt* loop = enclosingLoopWithIndex(context, e->sym)) {
                AffineForm f;
                f.affine = true;
                addTerm(f, loop, 1);
                f.varLevel = loop->loopNestingLevel();
                return f;
            }
            return nonAffine(scalarVarLevel(e));
        }
        case ExprKind::ArrayRef: {
            // A subscripted subscript varies wherever its subscripts do.
            int lvl = 0;
            for (const Expr* a : e->args)
                lvl = std::max(lvl, analyzeAt(a, context).varLevel);
            return nonAffine(lvl);
        }
        case ExprKind::Unary: {
            AffineForm a = analyzeAt(e->args[0], context);
            if (e->uop == UnaryOp::Neg && a.affine) {
                a.c0 = -a.c0;
                for (auto& t : a.terms) t.coeff = -t.coeff;
                return a;
            }
            return nonAffine(a.varLevel);
        }
        case ExprKind::Binary: {
            const AffineForm a = analyzeAt(e->args[0], context);
            const AffineForm b = analyzeAt(e->args[1], context);
            switch (e->bop) {
                case BinaryOp::Add:
                    return combine(a, b, 1);
                case BinaryOp::Sub:
                    return combine(a, b, -1);
                case BinaryOp::Mul:
                    if (a.affine && a.terms.empty()) {
                        AffineForm out = b;
                        if (out.affine) {
                            out.c0 *= a.c0;
                            for (auto& t : out.terms) t.coeff *= a.c0;
                        }
                        return out;
                    }
                    if (b.affine && b.terms.empty()) {
                        AffineForm out = a;
                        if (out.affine) {
                            out.c0 *= b.c0;
                            for (auto& t : out.terms) t.coeff *= b.c0;
                        }
                        return out;
                    }
                    return nonAffine(std::max(a.varLevel, b.varLevel));
                default:
                    return nonAffine(std::max(a.varLevel, b.varLevel));
            }
        }
        case ExprKind::Call: {
            int lvl = 0;
            for (const Expr* a : e->args)
                lvl = std::max(lvl, analyzeAt(a, context).varLevel);
            return nonAffine(lvl);
        }
    }
    return nonAffine(0);
}

AffineForm AffineAnalyzer::analyze(const Expr* e) const {
    PHPF_ASSERT(e->parentStmt != nullptr,
                "affine analysis needs parentStmt links (call finalize)");
    AffineForm f = analyzeAt(e, e->parentStmt);
    if (f.affine) {
        f.varLevel = 0;
        for (const auto& t : f.terms)
            f.varLevel = std::max(f.varLevel, t.loop->loopNestingLevel());
    }
    return f;
}

int AffineAnalyzer::subscriptAlignLevel(const Expr* sub) const {
    const AffineForm f = analyze(sub);
    return f.affine ? f.varLevel : f.varLevel + 1;
}

Expr* cloneExpr(Program& p, const Expr* e) {
    Expr* c = p.newExpr(e->kind);
    c->loc = e->loc;
    c->ival = e->ival;
    c->rval = e->rval;
    c->sym = e->sym;
    c->uop = e->uop;
    c->bop = e->bop;
    c->fn = e->fn;
    c->args.reserve(e->args.size());
    for (const Expr* a : e->args) c->args.push_back(cloneExpr(p, a));
    return c;
}

Expr* foldConstants(Program& p, Expr* e) {
    for (auto& a : e->args) a = foldConstants(p, a);
    auto lit = [&](std::int64_t v) {
        Expr* l = p.newExpr(ExprKind::IntLit);
        l->ival = v;
        return l;
    };
    if (e->kind == ExprKind::Binary && e->args[0]->kind == ExprKind::IntLit &&
        e->args[1]->kind == ExprKind::IntLit) {
        const std::int64_t a = e->args[0]->ival;
        const std::int64_t b = e->args[1]->ival;
        switch (e->bop) {
            case BinaryOp::Add: return lit(a + b);
            case BinaryOp::Sub: return lit(a - b);
            case BinaryOp::Mul: return lit(a * b);
            default: return e;
        }
    }
    if (e->kind == ExprKind::Binary) {
        // x + 0, x - 0, x * 1, 0 + x, 1 * x
        if ((e->bop == BinaryOp::Add || e->bop == BinaryOp::Sub) &&
            e->args[1]->isIntLit(0))
            return e->args[0];
        if (e->bop == BinaryOp::Add && e->args[0]->isIntLit(0)) return e->args[1];
        if (e->bop == BinaryOp::Mul && e->args[1]->isIntLit(1)) return e->args[0];
        if (e->bop == BinaryOp::Mul && e->args[0]->isIntLit(1)) return e->args[1];
    }
    return e;
}

}  // namespace phpf
