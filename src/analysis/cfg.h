#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/program.h"

namespace phpf {

/// One entry of a basic block. Besides real statements, loop-index
/// initialization and increment are modelled as explicit pseudo-defs so
/// SSA and induction analysis treat loop indices like ordinary scalars.
struct CfgItem {
    enum class Kind : std::uint8_t { Statement, LoopInit, LoopIncr };
    Kind kind = Kind::Statement;
    Stmt* stmt = nullptr;  ///< the statement, or the Do for Init/Incr
};

struct BasicBlock {
    int id = -1;
    std::vector<CfgItem> items;
    std::vector<int> succs;
    std::vector<int> preds;
    /// For loop headers: the Do statement this block is the header of.
    Stmt* headerOf = nullptr;
    /// Innermost loop whose body contains this block (null at top level).
    /// The header/latch/exit bookkeeping below uses this.
    Stmt* enclosingLoop = nullptr;
};

/// Control flow graph over the structured IR plus GOTO edges. Layout per
/// Do loop: preheader item (LoopInit) in the incoming block, a dedicated
/// header block (phi site, loop test), body blocks, a latch block ending
/// with LoopIncr and a back edge to the header, and an exit block.
class Cfg {
public:
    explicit Cfg(Program& p);

    [[nodiscard]] const std::vector<BasicBlock>& blocks() const { return blocks_; }
    [[nodiscard]] int entry() const { return entry_; }
    [[nodiscard]] int exit() const { return exit_; }
    [[nodiscard]] int blockCount() const { return static_cast<int>(blocks_.size()); }
    [[nodiscard]] const BasicBlock& block(int id) const {
        return blocks_[static_cast<size_t>(id)];
    }

    /// Block containing statement `s` (its item), -1 if unreachable.
    [[nodiscard]] int blockOfStmt(const Stmt* s) const;
    /// Header block id of loop `doStmt`.
    [[nodiscard]] int headerOf(const Stmt* doStmt) const;
    /// Latch block id (the LoopIncr block) of loop `doStmt`.
    [[nodiscard]] int latchOf(const Stmt* doStmt) const;
    /// True if `bb` lies inside loop `doStmt` (header and latch count as
    /// inside).
    [[nodiscard]] bool blockInsideLoop(int bb, const Stmt* doStmt) const;

    /// Reverse post-order from the entry (every reachable block).
    [[nodiscard]] std::vector<int> reversePostOrder() const;

    [[nodiscard]] std::string dump(const Program& p) const;

private:
    int newBlock(Stmt* enclosingLoop);
    void addEdge(int from, int to);
    /// Builds `stmts` starting in block `cur`; returns the block where
    /// control continues.
    int buildSeq(const std::vector<Stmt*>& stmts, int cur, Stmt* enclosingLoop);

    Program& prog_;
    std::vector<BasicBlock> blocks_;
    int entry_ = -1;
    int exit_ = -1;
    std::unordered_map<const Stmt*, int> stmtBlock_;
    std::unordered_map<const Stmt*, int> loopHeader_;
    std::unordered_map<const Stmt*, int> loopLatch_;
    std::unordered_map<int, int> labelBlock_;
    std::vector<std::pair<int, int>> pendingGotos_;  // (from block, label)
};

}  // namespace phpf
