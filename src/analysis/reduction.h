#pragma once

#include <vector>

#include "analysis/ssa.h"

namespace phpf {

/// A recognized reduction over one or more loops (paper Section 2.3).
struct ReductionInfo {
    enum class Op : std::uint8_t { Sum, Product, Max, Min, MaxLoc, MinLoc };

    Stmt* stmt = nullptr;     ///< the accumulating assignment
    SymbolId scalar = kNoSymbol;
    Op op = Op::Sum;
    /// Loops the reduction spans, outermost first. The partial result is
    /// combined across the grid dims these loops' data traverse.
    std::vector<const Stmt*> loops;

    // MaxLoc / MinLoc only:
    Stmt* locStmt = nullptr;       ///< l = i
    SymbolId locScalar = kNoSymbol;
    Stmt* guard = nullptr;         ///< the IF statement
};

/// Recognize sum/product/max/min reductions of the form `s = s op e`
/// (value use bound to the loop-header phi, phi consumed only by the
/// update), extended outward while outer loops carry the accumulator
/// without reinitialization. Also recognizes the guarded MAXLOC /
/// MINLOC idiom:
///
///     if (f(...) > s) then
///       s = f(...)
///       l = i
///     end if
[[nodiscard]] std::vector<ReductionInfo> findReductions(const SsaForm& ssa);

/// The reduction (if any) whose accumulating statement is `s`.
[[nodiscard]] const ReductionInfo* reductionOfStmt(
    const std::vector<ReductionInfo>& reds, const Stmt* s);

}  // namespace phpf
