#include "analysis/dominators.h"

#include <algorithm>

namespace phpf {

Dominators::Dominators(const Cfg& cfg) : entry_(cfg.entry()) {
    const int n = cfg.blockCount();
    idom_.assign(static_cast<size_t>(n), -1);
    frontiers_.assign(static_cast<size_t>(n), {});
    children_.assign(static_cast<size_t>(n), {});

    const std::vector<int> rpo = cfg.reversePostOrder();
    std::vector<int> rpoIndex(static_cast<size_t>(n), -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

    idom_[static_cast<size_t>(entry_)] = entry_;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[static_cast<size_t>(a)] > rpoIndex[static_cast<size_t>(b)])
                a = idom_[static_cast<size_t>(a)];
            while (rpoIndex[static_cast<size_t>(b)] > rpoIndex[static_cast<size_t>(a)])
                b = idom_[static_cast<size_t>(b)];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == entry_) continue;
            int newIdom = -1;
            for (int p : cfg.block(b).preds) {
                if (rpoIndex[static_cast<size_t>(p)] < 0) continue;  // unreachable
                if (idom_[static_cast<size_t>(p)] == -1) continue;
                newIdom = newIdom == -1 ? p : intersect(p, newIdom);
            }
            if (newIdom != -1 && idom_[static_cast<size_t>(b)] != newIdom) {
                idom_[static_cast<size_t>(b)] = newIdom;
                changed = true;
            }
        }
    }

    // Dominance frontiers (Cytron).
    for (int b : rpo) {
        const auto& preds = cfg.block(b).preds;
        int reachablePreds = 0;
        for (int p : preds)
            if (idom_[static_cast<size_t>(p)] != -1 || p == entry_) ++reachablePreds;
        if (reachablePreds < 2) continue;
        for (int p : preds) {
            if (idom_[static_cast<size_t>(p)] == -1 && p != entry_) continue;
            int runner = p;
            while (runner != idom_[static_cast<size_t>(b)]) {
                auto& fr = frontiers_[static_cast<size_t>(runner)];
                if (std::find(fr.begin(), fr.end(), b) == fr.end())
                    fr.push_back(b);
                runner = idom_[static_cast<size_t>(runner)];
            }
        }
    }

    for (int b : rpo) {
        if (b == entry_) continue;
        if (idom_[static_cast<size_t>(b)] != -1)
            children_[static_cast<size_t>(idom_[static_cast<size_t>(b)])].push_back(b);
    }
    // Entry's self-idom is an implementation detail; expose -1.
    idom_[static_cast<size_t>(entry_)] = -1;
}

bool Dominators::dominates(int a, int b) const {
    while (b != -1) {
        if (a == b) return true;
        b = idom_[static_cast<size_t>(b)];
    }
    return false;
}

}  // namespace phpf
