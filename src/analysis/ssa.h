#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dominators.h"

namespace phpf {

/// One SSA version of a scalar variable.
struct SsaDef {
    int id = -1;
    SymbolId sym = kNoSymbol;
    int version = 0;

    enum class Kind : std::uint8_t {
        Entry,     ///< value on entry (uninitialized / incoming)
        Assign,    ///< lhs of an Assign statement
        LoopInit,  ///< loop index at DO entry
        LoopIncr,  ///< loop index after increment
        Phi,       ///< merge point
    };
    Kind kind = Kind::Entry;
    Stmt* stmt = nullptr;  ///< Assign stmt, or the Do for LoopInit/Incr
    int block = -1;

    /// Phi only: operand def ids, aligned with block's pred list.
    std::vector<int> operands;
    /// For LoopIncr: the def consumed by the increment (previous version).
    int incrSource = -1;

    /// Real uses of this version (VarRef expressions).
    std::vector<Expr*> uses;
    /// Live phis consuming this version: (phi def id, operand index).
    std::vector<std::pair<int, int>> phiUses;

    [[nodiscard]] bool isPhi() const { return kind == Kind::Phi; }
};

/// What the reached-uses closure of a definition saw on its way to real
/// uses. Only paths that actually lead to a use contribute (the SSA is
/// pruned, so dead phis never appear).
struct UseClosure {
    std::vector<Expr*> uses;  ///< all transitively reached real uses
    /// Loops whose header phi the value flowed through — i.e. loops that
    /// carry this value across their iterations.
    std::set<const Stmt*> carriedByLoops;
    /// Blocks of every phi traversed (to test whether the value escapes
    /// a loop through a merge outside it).
    std::vector<int> phiBlocks;
};

/// Pruned SSA over the scalar variables of a Program. Arrays are not
/// renamed (the paper's compiler derives array privatizability from
/// directives, Section 3.1); their subscript expressions *are* scalar
/// uses and participate fully.
class SsaForm {
public:
    SsaForm(Program& p, const Cfg& cfg, const Dominators& dom);

    [[nodiscard]] const std::vector<SsaDef>& defs() const { return defs_; }
    [[nodiscard]] const SsaDef& def(int id) const {
        return defs_[static_cast<size_t>(id)];
    }
    /// Def id read by scalar use `e` (a VarRef), or -1.
    [[nodiscard]] int defIdOfUse(const Expr* e) const;
    /// Def created by Assign statement `s` (-1 if lhs is an array ref).
    [[nodiscard]] int defIdOfAssign(const Stmt* s) const;
    [[nodiscard]] int defIdOfLoopInit(const Stmt* doStmt) const;
    [[nodiscard]] int defIdOfLoopIncr(const Stmt* doStmt) const;
    /// Phi at loop `doStmt`'s header for symbol `sym`, or -1 (pruned /
    /// never merged).
    [[nodiscard]] int headerPhiOf(const Stmt* doStmt, SymbolId sym) const;

    /// Transitive closure def -> real uses, through live phis.
    [[nodiscard]] UseClosure reachedUses(int defId) const;
    /// Non-phi definitions that can reach use `e` (through phis).
    [[nodiscard]] std::vector<int> reachingDefs(const Expr* e) const;
    /// True if `defId` is the only reaching definition of every use it
    /// reaches (Fig. 3's IsUniqueDef).
    [[nodiscard]] bool isUniqueDef(int defId) const;

    [[nodiscard]] const Cfg& cfg() const { return cfg_; }
    [[nodiscard]] Program& program() const { return prog_; }

private:
    void insertPhis(const Dominators& dom);
    void rename(int block, const Dominators& dom,
                std::vector<std::vector<int>>& stacks);
    void renameUsesIn(Expr* e, std::vector<std::vector<int>>& stacks);
    void prune();
    int newDef(SymbolId sym, SsaDef::Kind kind, Stmt* stmt, int block);

    Program& prog_;
    const Cfg& cfg_;
    std::vector<SsaDef> defs_;
    std::vector<std::vector<int>> blockPhis_;  ///< per block: phi def ids
    std::unordered_map<int, int> useDef_;      ///< Expr id -> def id
    std::unordered_map<const Stmt*, int> assignDef_;
    std::unordered_map<const Stmt*, int> loopInitDef_;
    std::unordered_map<const Stmt*, int> loopIncrDef_;
    std::vector<int> versionCounter_;  ///< per symbol
};

}  // namespace phpf
