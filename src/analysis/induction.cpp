#include "analysis/induction.h"

#include "analysis/affine.h"
#include "support/diagnostics.h"

namespace phpf {

namespace {

/// Match `phiUse + c`, `c + phiUse`, or `phiUse - c` where phiUse is a
/// VarRef bound to `phiId`. Returns the stride (negated for Sub) or
/// nullopt.
std::optional<std::int64_t> matchIncrement(const SsaForm& ssa,
                                           const ConstProp& cp, const Expr* rhs,
                                           int phiId, const Expr** phiUseOut) {
    if (rhs->kind != ExprKind::Binary) return std::nullopt;
    if (rhs->bop != BinaryOp::Add && rhs->bop != BinaryOp::Sub)
        return std::nullopt;
    const Expr* a = rhs->args[0];
    const Expr* b = rhs->args[1];
    auto boundToPhi = [&](const Expr* e) {
        return e->kind == ExprKind::VarRef && ssa.defIdOfUse(e) == phiId;
    };
    if (boundToPhi(a)) {
        if (auto c = cp.eval(b)) {
            *phiUseOut = a;
            return rhs->bop == BinaryOp::Add ? *c : -*c;
        }
    }
    if (rhs->bop == BinaryOp::Add && boundToPhi(b)) {
        if (auto c = cp.eval(a)) {
            *phiUseOut = b;
            return *c;
        }
    }
    return std::nullopt;
}

struct Candidate {
    InductionVar iv;
    int phiId = -1;
    int initDefId = -1;
};

std::vector<Candidate> findCandidates(const SsaForm& ssa, const ConstProp& cp) {
    std::vector<Candidate> out;
    Program& p = ssa.program();
    std::vector<Stmt*> loops;
    p.forEachStmt([&](Stmt* s) {
        if (s->kind == StmtKind::Do) loops.push_back(s);
    });
    const Cfg& cfg = ssa.cfg();
    for (Stmt* loop : loops) {
        const int header = cfg.headerOf(loop);
        const int latch = cfg.latchOf(loop);
        for (const auto& d : ssa.defs()) {
            if (!d.isPhi() || d.block != header) continue;
            if (d.sym == loop->loopVar) continue;
            // Identify latch and preheader operands.
            const auto& preds = cfg.block(header).preds;
            int latchOp = -1, initOp = -1;
            for (size_t i = 0; i < preds.size(); ++i) {
                if (preds[i] == latch)
                    latchOp = d.operands[i];
                else
                    initOp = d.operands[i];
            }
            if (latchOp < 0 || initOp < 0) continue;
            const SsaDef& inc = ssa.def(latchOp);
            if (inc.kind != SsaDef::Kind::Assign) continue;
            // Update must run exactly once per iteration: directly in the
            // loop body, not under a branch or inner loop.
            if (inc.stmt->parent != loop) continue;
            const Expr* phiUse = nullptr;
            auto stride = matchIncrement(ssa, cp, inc.stmt->rhs, d.id, &phiUse);
            if (!stride || *stride == 0) continue;
            // The loop-carried value must feed only its own update, so the
            // closed-form rewrite covers every reader.
            if (d.uses.size() != 1 || d.uses[0] != phiUse) continue;
            if (!d.phiUses.empty()) continue;
            Candidate c;
            c.iv = {inc.stmt, d.sym, loop, *stride};
            c.phiId = d.id;
            c.initDefId = initOp;
            out.push_back(c);
        }
    }
    return out;
}

}  // namespace

std::vector<InductionVar> findInductionVars(const SsaForm& ssa,
                                            const ConstProp& cp) {
    std::vector<InductionVar> out;
    for (const auto& c : findCandidates(ssa, cp)) out.push_back(c.iv);
    return out;
}

int rewriteInductionVars(Program& p, const SsaForm& ssa, const ConstProp& cp) {
    int rewrites = 0;
    for (const auto& c : findCandidates(ssa, cp)) {
        const auto init = cp.valueOfDef(c.initDefId);
        if (!init) continue;  // need a known starting value for a closed form
        const Stmt* loop = c.iv.loop;
        if (loop->step != nullptr && !loop->step->isIntLit(1)) continue;

        auto lit = [&](std::int64_t v) {
            Expr* e = p.newExpr(ExprKind::IntLit);
            e->ival = v;
            return e;
        };
        auto var = [&](SymbolId s) {
            Expr* e = p.newExpr(ExprKind::VarRef);
            e->sym = s;
            return e;
        };
        auto bin = [&](BinaryOp op, Expr* a, Expr* b) {
            Expr* e = p.newExpr(ExprKind::Binary);
            e->bop = op;
            e->args = {a, b};
            return e;
        };

        Expr* closed = nullptr;
        if (c.iv.stride == 1 && loop->lb->kind == ExprKind::IntLit) {
            // Pretty form: iv = i + K with K = init - lb + 1.
            const std::int64_t k = *init - loop->lb->ival + 1;
            if (k == 0)
                closed = var(loop->loopVar);
            else if (k > 0)
                closed = bin(BinaryOp::Add, var(loop->loopVar), lit(k));
            else
                closed = bin(BinaryOp::Sub, var(loop->loopVar), lit(-k));
        } else {
            // init + stride * ((i - lb) + 1)
            Expr* trips = bin(BinaryOp::Add,
                              bin(BinaryOp::Sub, var(loop->loopVar),
                                  cloneExpr(p, loop->lb)),
                              lit(1));
            closed = bin(BinaryOp::Add, lit(*init),
                         bin(BinaryOp::Mul, lit(c.iv.stride), trips));
        }
        closed = foldConstants(p, closed);
        // Replace uses that bind directly to this definition (i.e. read
        // the value in the same iteration) with the closed form as well —
        // subscripts like D(m) become D(i+1), which is what makes the
        // consumer alignment of Fig. 1 valid (AlignLevel 1).
        const SsaDef& incDef = ssa.def(ssa.defIdOfAssign(c.iv.assign));
        for (Expr* use : incDef.uses) {
            use->kind = closed->kind;
            use->ival = closed->ival;
            use->sym = closed->sym;
            use->bop = closed->bop;
            use->uop = closed->uop;
            use->fn = closed->fn;
            use->args.clear();
            for (const Expr* a : closed->args)
                use->args.push_back(cloneExpr(p, a));
        }
        c.iv.assign->rhs = closed;
        ++rewrites;
    }
    if (rewrites > 0) p.finalize();
    return rewrites;
}

}  // namespace phpf
