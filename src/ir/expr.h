#pragma once

#include <cstdint>
#include <vector>

#include "ir/symbol.h"
#include "support/source_location.h"

namespace phpf {

struct Stmt;

enum class ExprKind : std::uint8_t {
    IntLit,    ///< integer literal (ival)
    RealLit,   ///< real literal (rval)
    VarRef,    ///< scalar variable reference (sym)
    ArrayRef,  ///< array element reference (sym, args = subscripts)
    Unary,     ///< uop applied to args[0]
    Binary,    ///< args[0] bop args[1]
    Call,      ///< intrinsic fn applied to args
};

enum class UnaryOp : std::uint8_t { Neg, Not };

enum class BinaryOp : std::uint8_t {
    Add, Sub, Mul, Div, Pow,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

enum class Intrinsic : std::uint8_t { Abs, Max, Min, Sqrt, Mod, Sign, Exp };

[[nodiscard]] inline bool isComparison(BinaryOp op) {
    switch (op) {
        case BinaryOp::Lt: case BinaryOp::Le: case BinaryOp::Gt:
        case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
            return true;
        default:
            return false;
    }
}

/// Expression tree node. Every node has a program-unique `id`, which the
/// analyses use to attach side tables (SSA versions, mapping decisions,
/// communication requirements) without mutating the IR. Each VarRef /
/// ArrayRef occurrence is a distinct node, so a "reference" in the
/// paper's sense is exactly an Expr with isRef().
///
/// Nodes are arena-allocated by Program and non-owning pointers form the
/// tree; never allocate an Expr directly.
struct Expr {
    int id = -1;
    ExprKind kind = ExprKind::IntLit;
    SourceLoc loc;

    std::int64_t ival = 0;   ///< IntLit payload
    double rval = 0.0;       ///< RealLit payload
    SymbolId sym = kNoSymbol;  ///< VarRef / ArrayRef target

    UnaryOp uop = UnaryOp::Neg;
    BinaryOp bop = BinaryOp::Add;
    Intrinsic fn = Intrinsic::Abs;

    /// Operands (Unary/Binary/Call) or subscripts (ArrayRef).
    std::vector<Expr*> args;

    /// The statement whose tree contains this node; set by Program::finalize.
    Stmt* parentStmt = nullptr;

    [[nodiscard]] bool isRef() const {
        return kind == ExprKind::VarRef || kind == ExprKind::ArrayRef;
    }
    [[nodiscard]] bool isIntLit(std::int64_t v) const {
        return kind == ExprKind::IntLit && ival == v;
    }
};

}  // namespace phpf
