#pragma once

#include <vector>

#include "ir/symbol.h"

namespace phpf {

/// How one array dimension is spread over one processor-grid dimension.
enum class DistKind : std::uint8_t {
    Block,        ///< contiguous blocks of ceil(N/P)
    Cyclic,       ///< round-robin single elements
    BlockCyclic,  ///< round-robin blocks of `blockSize`
    Serial,       ///< '*': not distributed (whole dimension on each owner)
};

struct DistSpec {
    DistKind kind = DistKind::Serial;
    int blockSize = 0;  ///< BlockCyclic only

    friend bool operator==(const DistSpec&, const DistSpec&) = default;
};

/// !HPF$ DISTRIBUTE A(spec, spec, ...) — non-Serial specs are assigned
/// to processor-grid dimensions left to right.
struct DistributeDirective {
    SymbolId array = kNoSymbol;
    std::vector<DistSpec> specs;  ///< one per array dimension
};

/// One dimension of an ALIGN target, describing what appears in that
/// dimension of the target reference.
struct AlignDim {
    enum class Kind : std::uint8_t {
        SourceDim,  ///< align-dummy of source dim `sourceDim`, plus `offset`
        Replicate,  ///< '*': source is replicated across this target dim
        Const,      ///< a fixed position `constPos` in the target dim
    };
    Kind kind = Kind::Replicate;
    int sourceDim = -1;
    std::int64_t offset = 0;
    std::int64_t constPos = 0;
};

/// !HPF$ ALIGN source(i,j,...) WITH target(expr, expr, ...).
/// A scalar source has zero dims; every target dim is then Replicate or
/// Const.
struct AlignDirective {
    SymbolId source = kNoSymbol;
    SymbolId target = kNoSymbol;
    std::vector<AlignDim> dims;  ///< one per *target* dimension
};

}  // namespace phpf
