#pragma once

#include <vector>

#include "ir/expr.h"

namespace phpf {

enum class StmtKind : std::uint8_t {
    Assign,    ///< lhs = rhs
    If,        ///< if (cond) then thenBody [else elseBody] end if
    Do,        ///< do loopVar = lb, ub [, step] ... end do
    Goto,      ///< go to <label>
    Continue,  ///< labelled no-op (Fortran CONTINUE)
};

/// Statement tree node, arena-allocated by Program. Structural links
/// (`parent`, `level`) are filled in by Program::finalize and must be
/// refreshed after any tree surgery.
struct Stmt {
    int id = -1;
    StmtKind kind = StmtKind::Assign;
    SourceLoc loc;

    /// Numeric statement label (Fortran), -1 if unlabelled.
    int label = -1;

    // --- Assign ---
    Expr* lhs = nullptr;
    Expr* rhs = nullptr;

    // --- If ---
    Expr* cond = nullptr;
    std::vector<Stmt*> thenBody;
    std::vector<Stmt*> elseBody;

    // --- Do ---
    SymbolId loopVar = kNoSymbol;
    Expr* lb = nullptr;
    Expr* ub = nullptr;
    Expr* step = nullptr;  ///< null means step 1
    std::vector<Stmt*> body;
    bool independent = false;           ///< INDEPENDENT directive attached
    std::vector<SymbolId> newVars;      ///< NEW(...) clause of INDEPENDENT

    // --- Goto ---
    int gotoTarget = -1;

    // --- structure (set by Program::finalize) ---
    Stmt* parent = nullptr;  ///< enclosing If/Do, null at top level
    int level = 0;           ///< number of enclosing Do loops

    [[nodiscard]] bool isLoop() const { return kind == StmtKind::Do; }

    /// Nesting level of this loop in the paper's 1-based convention:
    /// the outermost loop is level 1. Only meaningful for Do statements.
    [[nodiscard]] int loopNestingLevel() const { return level + 1; }
};

}  // namespace phpf
