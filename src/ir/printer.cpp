#include "ir/printer.h"

#include <sstream>

#include "support/diagnostics.h"

namespace phpf {

namespace {

const char* binOpText(BinaryOp op) {
    switch (op) {
        case BinaryOp::Add: return "+";
        case BinaryOp::Sub: return "-";
        case BinaryOp::Mul: return "*";
        case BinaryOp::Div: return "/";
        case BinaryOp::Pow: return "**";
        case BinaryOp::Lt: return "<";
        case BinaryOp::Le: return "<=";
        case BinaryOp::Gt: return ">";
        case BinaryOp::Ge: return ">=";
        case BinaryOp::Eq: return "==";
        case BinaryOp::Ne: return "/=";
        case BinaryOp::And: return ".and.";
        case BinaryOp::Or: return ".or.";
    }
    return "?";
}

const char* intrinsicName(Intrinsic fn) {
    switch (fn) {
        case Intrinsic::Abs: return "abs";
        case Intrinsic::Max: return "max";
        case Intrinsic::Min: return "min";
        case Intrinsic::Sqrt: return "sqrt";
        case Intrinsic::Mod: return "mod";
        case Intrinsic::Sign: return "sign";
        case Intrinsic::Exp: return "exp";
    }
    return "?";
}

int precedence(const Expr* e) {
    if (e->kind != ExprKind::Binary) return 100;
    switch (e->bop) {
        case BinaryOp::Or: return 1;
        case BinaryOp::And: return 2;
        case BinaryOp::Lt: case BinaryOp::Le: case BinaryOp::Gt:
        case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
            return 3;
        case BinaryOp::Add: case BinaryOp::Sub: return 4;
        case BinaryOp::Mul: case BinaryOp::Div: return 5;
        case BinaryOp::Pow: return 6;
    }
    return 100;
}

void printExprTo(const Program& p, const Expr* e, std::ostringstream& os,
                 int parentPrec) {
    const int prec = precedence(e);
    switch (e->kind) {
        case ExprKind::IntLit:
            os << e->ival;
            break;
        case ExprKind::RealLit: {
            std::ostringstream num;
            num << e->rval;
            std::string t = num.str();
            os << t;
            // Make the literal recognizably REAL on round trip.
            if (t.find('.') == std::string::npos &&
                t.find('e') == std::string::npos)
                os << ".0";
            break;
        }
        case ExprKind::VarRef:
            os << p.sym(e->sym).name;
            break;
        case ExprKind::ArrayRef: {
            os << p.sym(e->sym).name << "(";
            for (size_t i = 0; i < e->args.size(); ++i) {
                if (i > 0) os << ",";
                printExprTo(p, e->args[i], os, 0);
            }
            os << ")";
            break;
        }
        case ExprKind::Unary:
            if (e->uop == UnaryOp::Neg) {
                os << "(-";
                printExprTo(p, e->args[0], os, 100);
                os << ")";
            } else {
                os << ".not.";
                printExprTo(p, e->args[0], os, 100);
            }
            break;
        case ExprKind::Binary: {
            const bool parens = prec < parentPrec;
            if (parens) os << "(";
            printExprTo(p, e->args[0], os, prec);
            os << " " << binOpText(e->bop) << " ";
            printExprTo(p, e->args[1], os, prec + 1);
            if (parens) os << ")";
            break;
        }
        case ExprKind::Call: {
            os << intrinsicName(e->fn) << "(";
            for (size_t i = 0; i < e->args.size(); ++i) {
                if (i > 0) os << ",";
                printExprTo(p, e->args[i], os, 0);
            }
            os << ")";
            break;
        }
    }
}

void printStmtTo(const Program& p, const Stmt* s, std::ostringstream& os,
                 int indent) {
    const std::string pad(static_cast<size_t>(indent), ' ');
    std::string labelTxt;
    if (s->label >= 0) labelTxt = std::to_string(s->label) + " ";
    switch (s->kind) {
        case StmtKind::Assign:
            os << pad << labelTxt << printExpr(p, s->lhs) << " = "
               << printExpr(p, s->rhs) << "\n";
            break;
        case StmtKind::If:
            os << pad << labelTxt << "if (" << printExpr(p, s->cond)
               << ") then\n";
            for (const Stmt* t : s->thenBody) printStmtTo(p, t, os, indent + 2);
            if (!s->elseBody.empty()) {
                os << pad << "else\n";
                for (const Stmt* t : s->elseBody)
                    printStmtTo(p, t, os, indent + 2);
            }
            os << pad << "end if\n";
            break;
        case StmtKind::Do: {
            if (s->independent) {
                os << pad << "!hpf$ independent";
                if (!s->newVars.empty()) {
                    os << ", new(";
                    for (size_t i = 0; i < s->newVars.size(); ++i) {
                        if (i > 0) os << ",";
                        os << p.sym(s->newVars[i]).name;
                    }
                    os << ")";
                }
                os << "\n";
            }
            os << pad << labelTxt << "do " << p.sym(s->loopVar).name << " = "
               << printExpr(p, s->lb) << ", " << printExpr(p, s->ub);
            if (s->step != nullptr) os << ", " << printExpr(p, s->step);
            os << "\n";
            for (const Stmt* t : s->body) printStmtTo(p, t, os, indent + 2);
            os << pad << "end do\n";
            break;
        }
        case StmtKind::Goto:
            os << pad << labelTxt << "go to " << s->gotoTarget << "\n";
            break;
        case StmtKind::Continue:
            os << pad << labelTxt << "continue\n";
            break;
    }
}

const char* distKindText(const DistSpec& d) {
    switch (d.kind) {
        case DistKind::Block: return "block";
        case DistKind::Cyclic: return "cyclic";
        case DistKind::BlockCyclic: return "cyclic";  // printed with width below
        case DistKind::Serial: return "*";
    }
    return "?";
}

}  // namespace

std::string printExpr(const Program& p, const Expr* e) {
    std::ostringstream os;
    printExprTo(p, e, os, 0);
    return os.str();
}

std::string printStmt(const Program& p, const Stmt* s, int indent) {
    std::ostringstream os;
    printStmtTo(p, s, os, indent);
    return os.str();
}

std::string printProgram(const Program& p) {
    std::ostringstream os;
    os << "program " << p.name << "\n";
    for (const auto& s : p.symbols) {
        os << "  " << scalarTypeName(s.type) << " " << s.name;
        if (s.isArray()) {
            os << "(";
            for (int d = 0; d < s.rank(); ++d) {
                if (d > 0) os << ",";
                const auto& dim = s.dims[static_cast<size_t>(d)];
                if (dim.lb != 1) os << dim.lb << ":";
                os << dim.ub;
            }
            os << ")";
        }
        os << "\n";
    }
    if (p.gridRank > 1) os << "!hpf$ processors rank(" << p.gridRank << ")\n";
    for (const auto& a : p.aligns) {
        os << "!hpf$ align " << p.sym(a.source).name;
        const Symbol& src = p.sym(a.source);
        if (src.isArray()) {
            os << "(";
            for (int d = 0; d < src.rank(); ++d) {
                if (d > 0) os << ",";
                os << static_cast<char>('i' + d);
            }
            os << ")";
        }
        os << " with " << p.sym(a.target).name << "(";
        for (size_t d = 0; d < a.dims.size(); ++d) {
            if (d > 0) os << ",";
            const AlignDim& ad = a.dims[d];
            switch (ad.kind) {
                case AlignDim::Kind::SourceDim:
                    os << static_cast<char>('i' + ad.sourceDim);
                    if (ad.offset > 0) os << "+" << ad.offset;
                    if (ad.offset < 0) os << "-" << -ad.offset;
                    break;
                case AlignDim::Kind::Replicate:
                    os << "*";
                    break;
                case AlignDim::Kind::Const:
                    os << ad.constPos;
                    break;
            }
        }
        os << ")\n";
    }
    for (const auto& d : p.distributes) {
        os << "!hpf$ distribute " << p.sym(d.array).name << "(";
        for (size_t i = 0; i < d.specs.size(); ++i) {
            if (i > 0) os << ",";
            os << distKindText(d.specs[i]);
            if (d.specs[i].kind == DistKind::BlockCyclic)
                os << "(" << d.specs[i].blockSize << ")";
        }
        os << ")\n";
    }
    for (const Stmt* s : p.top) printStmtTo(p, s, os, 2);
    os << "end\n";
    return os.str();
}

}  // namespace phpf
