#include "ir/builder.h"

#include "support/diagnostics.h"

namespace phpf {

namespace {
Ex makeBin(BinaryOp op, Ex a, Ex c) {
    PHPF_ASSERT(a.b != nullptr && a.b == c.b, "mixed-builder expression");
    return a.b->binary(op, a, c);
}
}  // namespace

Ex operator+(Ex a, Ex c) { return makeBin(BinaryOp::Add, a, c); }
Ex operator-(Ex a, Ex c) { return makeBin(BinaryOp::Sub, a, c); }
Ex operator*(Ex a, Ex c) { return makeBin(BinaryOp::Mul, a, c); }
Ex operator/(Ex a, Ex c) { return makeBin(BinaryOp::Div, a, c); }
Ex operator-(Ex a) { return a.b->unary(UnaryOp::Neg, a); }
Ex operator<(Ex a, Ex c) { return makeBin(BinaryOp::Lt, a, c); }
Ex operator<=(Ex a, Ex c) { return makeBin(BinaryOp::Le, a, c); }
Ex operator>(Ex a, Ex c) { return makeBin(BinaryOp::Gt, a, c); }
Ex operator>=(Ex a, Ex c) { return makeBin(BinaryOp::Ge, a, c); }
Ex eq(Ex a, Ex c) { return makeBin(BinaryOp::Eq, a, c); }
Ex ne(Ex a, Ex c) { return makeBin(BinaryOp::Ne, a, c); }

ProgramBuilder::ProgramBuilder(std::string programName)
    : program_(std::make_unique<Program>()) {
    program_->name = std::move(programName);
    blockStack_.push_back(&program_->top);
}

SymbolId ProgramBuilder::realVar(const std::string& name) {
    return program_->addSymbol(name, ScalarType::Real);
}

SymbolId ProgramBuilder::integerVar(const std::string& name) {
    return program_->addSymbol(name, ScalarType::Int);
}

SymbolId ProgramBuilder::realArray(const std::string& name,
                                   std::vector<std::int64_t> extents) {
    std::vector<ArrayDim> dims;
    dims.reserve(extents.size());
    for (auto e : extents) dims.push_back(ArrayDim{1, e});
    return program_->addSymbol(name, ScalarType::Real, std::move(dims));
}

SymbolId ProgramBuilder::integerArray(const std::string& name,
                                      std::vector<std::int64_t> extents) {
    std::vector<ArrayDim> dims;
    dims.reserve(extents.size());
    for (auto e : extents) dims.push_back(ArrayDim{1, e});
    return program_->addSymbol(name, ScalarType::Int, std::move(dims));
}

SymbolId ProgramBuilder::array(const std::string& name, ScalarType type,
                               std::vector<ArrayDim> dims) {
    return program_->addSymbol(name, type, std::move(dims));
}

void ProgramBuilder::distribute(SymbolId arr, std::vector<DistSpec> specs) {
    PHPF_ASSERT(program_->sym(arr).rank() == static_cast<int>(specs.size()),
                "DISTRIBUTE spec count must match array rank for " +
                    program_->sym(arr).name);
    program_->distributes.push_back({arr, std::move(specs)});
}

void ProgramBuilder::align(SymbolId source, SymbolId target,
                           std::vector<AlignDim> dims) {
    PHPF_ASSERT(program_->sym(target).rank() == static_cast<int>(dims.size()),
                "ALIGN dim count must match target rank");
    program_->aligns.push_back({source, target, std::move(dims)});
}

void ProgramBuilder::alignIdentity(SymbolId source, SymbolId target) {
    const int rank = program_->sym(target).rank();
    PHPF_ASSERT(program_->sym(source).rank() == rank,
                "alignIdentity requires equal ranks");
    std::vector<AlignDim> dims(static_cast<size_t>(rank));
    for (int d = 0; d < rank; ++d) {
        dims[static_cast<size_t>(d)] = {AlignDim::Kind::SourceDim, d, 0, 0};
    }
    align(source, target, std::move(dims));
}

Ex ProgramBuilder::lit(std::int64_t v) {
    Expr* e = program_->newExpr(ExprKind::IntLit);
    e->ival = v;
    return {this, e};
}

Ex ProgramBuilder::lit(double v) {
    Expr* e = program_->newExpr(ExprKind::RealLit);
    e->rval = v;
    return {this, e};
}

Ex ProgramBuilder::idx(SymbolId s) {
    PHPF_ASSERT(!program_->sym(s).isArray(), "idx() is for scalars");
    Expr* e = program_->newExpr(ExprKind::VarRef);
    e->sym = s;
    return {this, e};
}

Ex ProgramBuilder::ref(SymbolId arr, std::vector<Ex> subscripts) {
    const Symbol& s = program_->sym(arr);
    PHPF_ASSERT(s.rank() == static_cast<int>(subscripts.size()),
                "subscript count mismatch for " + s.name);
    Expr* e = program_->newExpr(ExprKind::ArrayRef);
    e->sym = arr;
    e->args.reserve(subscripts.size());
    for (Ex& sub : subscripts) e->args.push_back(sub.e);
    return {this, e};
}

Ex ProgramBuilder::call(Intrinsic fn, std::vector<Ex> args) {
    Expr* e = program_->newExpr(ExprKind::Call);
    e->fn = fn;
    for (Ex& a : args) e->args.push_back(a.e);
    return {this, e};
}

Ex ProgramBuilder::binary(BinaryOp op, Ex a, Ex c) {
    Expr* e = program_->newExpr(ExprKind::Binary);
    e->bop = op;
    e->args = {a.e, c.e};
    return {this, e};
}

Ex ProgramBuilder::unary(UnaryOp op, Ex a) {
    Expr* e = program_->newExpr(ExprKind::Unary);
    e->uop = op;
    e->args = {a.e};
    return {this, e};
}

void ProgramBuilder::append(Stmt* s) { blockStack_.back()->push_back(s); }

Stmt* ProgramBuilder::assign(Ex lhs, Ex rhs, int label) {
    PHPF_ASSERT(lhs.e != nullptr && lhs.e->isRef(),
                "assignment target must be a variable or array reference");
    Stmt* s = program_->newStmt(StmtKind::Assign);
    s->lhs = lhs.e;
    s->rhs = rhs.e;
    s->label = label;
    append(s);
    return s;
}

Stmt* ProgramBuilder::doLoop(SymbolId loopVar, Ex lb, Ex ub,
                             const std::function<void()>& body) {
    return doLoop(loopVar, lb, ub, Ex{}, body);
}

Stmt* ProgramBuilder::doLoop(SymbolId loopVar, Ex lb, Ex ub, Ex step,
                             const std::function<void()>& body) {
    Stmt* s = program_->newStmt(StmtKind::Do);
    s->loopVar = loopVar;
    s->lb = lb.e;
    s->ub = ub.e;
    s->step = step.e;  // null for implicit step 1
    append(s);
    blockStack_.push_back(&s->body);
    body();
    blockStack_.pop_back();
    return s;
}

Stmt* ProgramBuilder::independentDo(SymbolId loopVar, Ex lb, Ex ub,
                                    std::vector<SymbolId> newVars,
                                    const std::function<void()>& body) {
    Stmt* s = doLoop(loopVar, lb, ub, body);
    s->independent = true;
    s->newVars = std::move(newVars);
    return s;
}

Stmt* ProgramBuilder::ifStmt(Ex cond, const std::function<void()>& thenBody,
                             const std::function<void()>& elseBody) {
    Stmt* s = program_->newStmt(StmtKind::If);
    s->cond = cond.e;
    append(s);
    blockStack_.push_back(&s->thenBody);
    thenBody();
    blockStack_.pop_back();
    if (elseBody) {
        blockStack_.push_back(&s->elseBody);
        elseBody();
        blockStack_.pop_back();
    }
    return s;
}

Stmt* ProgramBuilder::gotoStmt(int targetLabel) {
    Stmt* s = program_->newStmt(StmtKind::Goto);
    s->gotoTarget = targetLabel;
    append(s);
    return s;
}

Stmt* ProgramBuilder::continueStmt(int label) {
    Stmt* s = program_->newStmt(StmtKind::Continue);
    s->label = label;
    append(s);
    return s;
}

Program ProgramBuilder::finish() {
    program_->finalize();
    Program out = std::move(*program_);
    program_.reset();
    return out;
}

}  // namespace phpf
