#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phpf {

/// Element type of a scalar or array. The mini-HPF dialect has Fortran's
/// default-kind INTEGER and REAL (we model REAL as double precision) plus
/// LOGICAL values produced by comparisons.
enum class ScalarType : std::uint8_t { Int, Real, Bool };

[[nodiscard]] inline const char* scalarTypeName(ScalarType t) {
    switch (t) {
        case ScalarType::Int: return "integer";
        case ScalarType::Real: return "real";
        case ScalarType::Bool: return "logical";
    }
    return "?";
}

/// One declared dimension of an array, `lb:ub` inclusive (Fortran style;
/// `A(n)` means `A(1:n)`).
struct ArrayDim {
    std::int64_t lb = 1;
    std::int64_t ub = 1;

    [[nodiscard]] std::int64_t extent() const { return ub - lb + 1; }
    friend bool operator==(const ArrayDim&, const ArrayDim&) = default;
};

}  // namespace phpf
