#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace phpf {

class ProgramBuilder;

/// Lightweight expression handle so benchmark kernels and tests can be
/// written with natural arithmetic syntax:
///
///     Ex x = b.ref(A, {b.idx(i)});
///     b.assign(b.ref(B, {b.idx(i)}), x * 2.0 + b.ref(C, {b.idx(i)}));
struct Ex {
    ProgramBuilder* b = nullptr;
    Expr* e = nullptr;
};

Ex operator+(Ex a, Ex c);
Ex operator-(Ex a, Ex c);
Ex operator*(Ex a, Ex c);
Ex operator/(Ex a, Ex c);
Ex operator-(Ex a);
// Comparisons build Bool-typed expressions for IF predicates.
Ex operator<(Ex a, Ex c);
Ex operator<=(Ex a, Ex c);
Ex operator>(Ex a, Ex c);
Ex operator>=(Ex a, Ex c);
Ex eq(Ex a, Ex c);
Ex ne(Ex a, Ex c);

/// Fluent construction of Program trees. Usage pattern:
///
///     ProgramBuilder b("tomcatv");
///     auto n = 513;
///     auto A = b.realArray("A", {n, n});
///     b.distribute(A, {DistSpec{DistKind::Serial}, DistSpec{DistKind::Block}});
///     auto i = b.integerVar("i");
///     b.doLoop(i, b.lit(1), b.lit(n), [&] { ... });
///     Program p = b.finish();
///
/// Statements created inside a doLoop/ifStmt body callback are appended
/// to that body; the builder maintains an explicit block stack.
class ProgramBuilder {
public:
    explicit ProgramBuilder(std::string programName);

    // --- declarations ---
    SymbolId realVar(const std::string& name);
    SymbolId integerVar(const std::string& name);
    SymbolId realArray(const std::string& name, std::vector<std::int64_t> extents);
    SymbolId integerArray(const std::string& name, std::vector<std::int64_t> extents);
    /// Array with explicit lower bounds.
    SymbolId array(const std::string& name, ScalarType type,
                   std::vector<ArrayDim> dims);

    // --- directives ---
    void processors(int rank) { program_->gridRank = rank; }
    void distribute(SymbolId arr, std::vector<DistSpec> specs);
    /// ALIGN source(...) WITH target(dims...): see AlignDim.
    void align(SymbolId source, SymbolId target, std::vector<AlignDim> dims);
    /// Common shorthand: ALIGN s(i,...) WITH t(i,...) (identity, same rank).
    void alignIdentity(SymbolId source, SymbolId target);

    // --- expressions ---
    Ex lit(std::int64_t v);
    Ex lit(double v);
    Ex rlit(double v) { return lit(v); }
    /// Scalar variable read (also used for loop indices in subscripts).
    Ex idx(SymbolId s);
    Ex ref(SymbolId s) { return idx(s); }
    /// Array element reference.
    Ex ref(SymbolId arr, std::vector<Ex> subscripts);
    Ex call(Intrinsic fn, std::vector<Ex> args);
    Ex binary(BinaryOp op, Ex a, Ex c);
    Ex unary(UnaryOp op, Ex a);

    // --- statements ---
    Stmt* assign(Ex lhs, Ex rhs, int label = -1);
    Stmt* doLoop(SymbolId loopVar, Ex lb, Ex ub,
                 const std::function<void()>& body);
    Stmt* doLoop(SymbolId loopVar, Ex lb, Ex ub, Ex step,
                 const std::function<void()>& body);
    /// INDEPENDENT [, NEW(newVars)] DO loop.
    Stmt* independentDo(SymbolId loopVar, Ex lb, Ex ub,
                        std::vector<SymbolId> newVars,
                        const std::function<void()>& body);
    Stmt* ifStmt(Ex cond, const std::function<void()>& thenBody,
                 const std::function<void()>& elseBody = nullptr);
    Stmt* gotoStmt(int targetLabel);
    Stmt* continueStmt(int label);

    /// Finish construction: finalizes structural links and releases the
    /// program. The builder must not be used afterwards.
    Program finish();

    [[nodiscard]] Program& program() { return *program_; }

private:
    void append(Stmt* s);

    std::unique_ptr<Program> program_;
    std::vector<std::vector<Stmt*>*> blockStack_;
};

}  // namespace phpf
