#include "ir/program.h"

#include <algorithm>
#include <cctype>

#include "support/diagnostics.h"

namespace phpf {

namespace {
bool iequals(const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}
}  // namespace

SymbolId Program::addSymbol(std::string name, ScalarType type,
                            std::vector<ArrayDim> dims) {
    PHPF_ASSERT(findSymbol(name) == kNoSymbol, "duplicate symbol " + name);
    Symbol s;
    s.id = static_cast<SymbolId>(symbols.size());
    s.name = std::move(name);
    s.type = type;
    s.dims = std::move(dims);
    symbols.push_back(std::move(s));
    return symbols.back().id;
}

const Symbol& Program::sym(SymbolId id) const {
    PHPF_ASSERT(id >= 0 && id < static_cast<SymbolId>(symbols.size()),
                "bad symbol id");
    return symbols[static_cast<size_t>(id)];
}

Symbol& Program::sym(SymbolId id) {
    PHPF_ASSERT(id >= 0 && id < static_cast<SymbolId>(symbols.size()),
                "bad symbol id");
    return symbols[static_cast<size_t>(id)];
}

SymbolId Program::findSymbol(const std::string& name) const {
    for (const auto& s : symbols)
        if (iequals(s.name, name)) return s.id;
    return kNoSymbol;
}

Expr* Program::newExpr(ExprKind kind) {
    exprs_.emplace_back();
    Expr* e = &exprs_.back();
    e->id = static_cast<int>(exprs_.size()) - 1;
    e->kind = kind;
    return e;
}

Stmt* Program::newStmt(StmtKind kind) {
    stmts_.emplace_back();
    Stmt* s = &stmts_.back();
    s->id = static_cast<int>(stmts_.size()) - 1;
    s->kind = kind;
    return s;
}

void Program::finalizeBlock(std::vector<Stmt*>& block, Stmt* parent, int level) {
    for (Stmt* s : block) {
        s->parent = parent;
        s->level = level;
        if (s->label >= 0) labels_[s->label] = s;
        forEachExpr(s, [s](Expr* e) { e->parentStmt = s; });
        switch (s->kind) {
            case StmtKind::If:
                finalizeBlock(s->thenBody, s, level);
                finalizeBlock(s->elseBody, s, level);
                break;
            case StmtKind::Do:
                finalizeBlock(s->body, s, level + 1);
                break;
            default:
                break;
        }
    }
}

void Program::finalize() {
    labels_.clear();
    finalizeBlock(top, nullptr, 0);
    // Validate goto targets now that all labels are registered.
    forEachStmt([this](Stmt* s) {
        if (s->kind == StmtKind::Goto) {
            PHPF_ASSERT(labels_.count(s->gotoTarget) > 0,
                        "goto to unknown label " + std::to_string(s->gotoTarget) +
                            " in program " + name);
        }
    });
}

void Program::forEachStmt(const std::function<void(Stmt*)>& fn) {
    std::function<void(std::vector<Stmt*>&)> walk = [&](std::vector<Stmt*>& blk) {
        for (Stmt* s : blk) {
            fn(s);
            if (s->kind == StmtKind::If) {
                walk(s->thenBody);
                walk(s->elseBody);
            } else if (s->kind == StmtKind::Do) {
                walk(s->body);
            }
        }
    };
    walk(top);
}

void Program::forEachStmt(const std::function<void(const Stmt*)>& fn) const {
    const_cast<Program*>(this)->forEachStmt(
        std::function<void(Stmt*)>([&fn](Stmt* s) { fn(s); }));
}

void Program::walkExpr(Expr* e, const std::function<void(Expr*)>& fn) {
    if (e == nullptr) return;
    fn(e);
    for (Expr* a : e->args) walkExpr(a, fn);
}

void Program::forEachExpr(const Stmt* s, const std::function<void(Expr*)>& fn) {
    switch (s->kind) {
        case StmtKind::Assign:
            walkExpr(s->lhs, fn);
            walkExpr(s->rhs, fn);
            break;
        case StmtKind::If:
            walkExpr(s->cond, fn);
            break;
        case StmtKind::Do:
            walkExpr(s->lb, fn);
            walkExpr(s->ub, fn);
            walkExpr(s->step, fn);
            break;
        default:
            break;
    }
}

Stmt* Program::findLabel(int label) const {
    auto it = labels_.find(label);
    return it == labels_.end() ? nullptr : it->second;
}

std::vector<Stmt*> Program::enclosingLoops(const Stmt* s) const {
    std::vector<Stmt*> loops;
    for (Stmt* p = s->parent; p != nullptr; p = p->parent)
        if (p->kind == StmtKind::Do) loops.push_back(p);
    std::reverse(loops.begin(), loops.end());
    return loops;
}

Stmt* Program::enclosingLoopAtLevel(const Stmt* s, int level) const {
    auto loops = enclosingLoops(s);
    if (level < 1 || level > static_cast<int>(loops.size())) return nullptr;
    return loops[static_cast<size_t>(level - 1)];
}

Stmt* Program::innermostCommonLoop(const Stmt* a, const Stmt* b) const {
    auto la = enclosingLoops(a);
    auto lb = enclosingLoops(b);
    Stmt* common = nullptr;
    for (size_t i = 0; i < la.size() && i < lb.size(); ++i) {
        if (la[i] != lb[i]) break;
        common = la[i];
    }
    return common;
}

bool Program::isInsideLoop(const Stmt* s, const Stmt* loop) {
    for (const Stmt* p = s->parent; p != nullptr; p = p->parent)
        if (p == loop) return true;
    return false;
}

const DistributeDirective* Program::distributeOf(SymbolId array) const {
    for (const auto& d : distributes)
        if (d.array == array) return &d;
    return nullptr;
}

const AlignDirective* Program::alignOf(SymbolId symId) const {
    for (const auto& a : aligns)
        if (a.source == symId) return &a;
    return nullptr;
}

}  // namespace phpf
