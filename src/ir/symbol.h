#pragma once

#include <string>
#include <vector>

#include "ir/type.h"

namespace phpf {

/// Index of a symbol in Program::symbols. -1 means "no symbol".
using SymbolId = int;
inline constexpr SymbolId kNoSymbol = -1;

/// A declared variable: scalar if `dims` is empty, array otherwise.
struct Symbol {
    SymbolId id = kNoSymbol;
    std::string name;
    ScalarType type = ScalarType::Real;
    std::vector<ArrayDim> dims;

    [[nodiscard]] bool isArray() const { return !dims.empty(); }
    [[nodiscard]] int rank() const { return static_cast<int>(dims.size()); }
    [[nodiscard]] std::int64_t elementCount() const {
        std::int64_t n = 1;
        for (const auto& d : dims) n *= d.extent();
        return n;
    }
};

}  // namespace phpf
