#pragma once

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/directive.h"
#include "ir/stmt.h"

namespace phpf {

/// A whole mini-HPF program unit: symbol table, statement tree, HPF
/// mapping directives, and the arenas that own every Expr/Stmt node.
///
/// Programs are built either by the front end (frontend/parser.h) or by
/// the builder API (ir/builder.h); both call finalize() which fills in
/// structural links and validates labels. Analyses never mutate the
/// tree; transformation passes that do must call finalize() again.
class Program {
public:
    Program() = default;
    Program(Program&&) = default;
    Program& operator=(Program&&) = default;
    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;

    std::string name = "unnamed";
    std::vector<Symbol> symbols;
    std::vector<Stmt*> top;

    std::vector<DistributeDirective> distributes;
    std::vector<AlignDirective> aligns;
    /// Rank of the logical processor grid (!HPF$ PROCESSORS P(:,...,:)).
    /// Actual extents are chosen at compile time by the driver.
    int gridRank = 1;

    // --- symbols ---
    SymbolId addSymbol(std::string name, ScalarType type,
                       std::vector<ArrayDim> dims = {});
    [[nodiscard]] const Symbol& sym(SymbolId id) const;
    [[nodiscard]] Symbol& sym(SymbolId id);
    /// Case-insensitive lookup; returns kNoSymbol if absent.
    [[nodiscard]] SymbolId findSymbol(const std::string& name) const;

    // --- node construction (arena-owned) ---
    Expr* newExpr(ExprKind kind);
    Stmt* newStmt(StmtKind kind);
    [[nodiscard]] int exprCount() const { return static_cast<int>(exprs_.size()); }
    [[nodiscard]] int stmtCount() const { return static_cast<int>(stmts_.size()); }
    [[nodiscard]] Expr* exprById(int id) { return &exprs_[static_cast<size_t>(id)]; }
    [[nodiscard]] Stmt* stmtById(int id) { return &stmts_[static_cast<size_t>(id)]; }
    [[nodiscard]] const Stmt* stmtById(int id) const { return &stmts_[static_cast<size_t>(id)]; }

    /// Fill parent/level links on the reachable statement tree, register
    /// labels, and set Expr::parentStmt. Throws InternalError on a goto
    /// to an unknown label.
    void finalize();

    // --- traversal ---
    /// Pre-order walk over every statement in the tree (including loop
    /// and branch bodies).
    void forEachStmt(const std::function<void(Stmt*)>& fn);
    void forEachStmt(const std::function<void(const Stmt*)>& fn) const;
    /// Walk every Expr hanging off one statement (lhs, rhs, cond, bounds),
    /// pre-order.
    static void forEachExpr(const Stmt* s, const std::function<void(Expr*)>& fn);
    /// Walk a single expression tree pre-order.
    static void walkExpr(Expr* e, const std::function<void(Expr*)>& fn);

    /// Statement carrying numeric label `label`, or null.
    [[nodiscard]] Stmt* findLabel(int label) const;

    /// Enclosing Do loops of `s`, outermost first.
    [[nodiscard]] std::vector<Stmt*> enclosingLoops(const Stmt* s) const;
    /// The loop whose body-nesting level is `level` (1-based) on the path
    /// to `s`; null if s has fewer enclosing loops.
    [[nodiscard]] Stmt* enclosingLoopAtLevel(const Stmt* s, int level) const;
    /// Innermost loop containing both statements, or null.
    [[nodiscard]] Stmt* innermostCommonLoop(const Stmt* a, const Stmt* b) const;
    /// True if `s` is lexically inside loop L's body.
    [[nodiscard]] static bool isInsideLoop(const Stmt* s, const Stmt* loop);

    /// DISTRIBUTE directive for `array`, or null.
    [[nodiscard]] const DistributeDirective* distributeOf(SymbolId array) const;
    /// ALIGN directive whose source is `sym`, or null.
    [[nodiscard]] const AlignDirective* alignOf(SymbolId sym) const;

private:
    void finalizeBlock(std::vector<Stmt*>& block, Stmt* parent, int level);

    std::deque<Expr> exprs_;  // deque: stable addresses
    std::deque<Stmt> stmts_;
    std::unordered_map<int, Stmt*> labels_;
};

}  // namespace phpf
