#pragma once

#include <string>

#include "ir/program.h"

namespace phpf {

/// Render an expression as mini-HPF source text.
[[nodiscard]] std::string printExpr(const Program& p, const Expr* e);

/// Render one statement (and its nested bodies) with `indent` leading
/// spaces.
[[nodiscard]] std::string printStmt(const Program& p, const Stmt* s, int indent = 0);

/// Render the whole program as mini-HPF source, including declarations
/// and directives. The output parses back through frontend/Parser to an
/// equivalent program (round-trip tested).
[[nodiscard]] std::string printProgram(const Program& p);

}  // namespace phpf
