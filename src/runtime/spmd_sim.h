#pragma once

#include <map>
#include <memory>
#include <set>

#include "runtime/interp.h"
#include "spmd/lowering.h"

namespace phpf {

/// Functional simulator of the SPMD execution of a lowered program on a
/// distributed-memory machine (our stand-in for the paper's 16-node
/// SP2).
///
/// Every simulated processor has its own Store; distributed arrays are
/// valid only where owned (or received), privatized variables live as
/// genuinely private per-processor copies. Statements execute in global
/// lockstep under their computation-partitioning guards; a read of data
/// the processor does not hold triggers the matching communication op,
/// transfers the value from its owner, and accounts the message. A read
/// with no covering comm op aborts — an insufficient communication plan
/// is a hard error, which is exactly the property the tests exercise.
///
/// Message accounting groups element transfers by (comm op, iteration
/// vector at the op's placement level): one group is one vectorized
/// message event, directly comparable with the analytic cost model's
/// event counts.
/// Per-processor accounting of one simulated run: what each processor
/// executed, skipped (its computation-partitioning guard was false), and
/// moved. The imbalance across processors is the load-balance signal the
/// run report surfaces.
struct ProcSimMetrics {
    std::int64_t stmtsExecuted = 0;
    std::int64_t stmtsSkipped = 0;  ///< guard evaluated false
    std::int64_t recvElements = 0;
    std::int64_t sentElements = 0;
};

class SpmdSimulator {
public:
    /// `elemBytes` is the machine element size used for byte accounting
    /// (CostModel::elemBytes; REAL = 8 on the modelled SP2).
    explicit SpmdSimulator(const SpmdLowering& low, int elemBytes = 8);

    void run();

    [[nodiscard]] int procCount() const { return procCount_; }
    /// Vectorized message events (see class comment).
    [[nodiscard]] std::int64_t messageEvents() const {
        return static_cast<std::int64_t>(events_.size());
    }
    /// Raw element transfers (element granularity).
    [[nodiscard]] std::int64_t elementTransfers() const { return transfers_; }
    [[nodiscard]] double bytesMoved() const {
        return static_cast<double>(transfers_ * elemBytes_);
    }
    [[nodiscard]] int elemBytes() const { return elemBytes_; }
    /// Message events attributed to one comm op.
    [[nodiscard]] std::int64_t eventsOfOp(int opId) const;
    /// Element transfers attributed to one comm op.
    [[nodiscard]] std::int64_t elementsOfOp(int opId) const;
    [[nodiscard]] const std::map<int, std::int64_t>& eventsPerOp() const {
        return eventsPerOp_;
    }
    [[nodiscard]] const std::map<int, std::int64_t>& elementsPerOp() const {
        return elemsPerOp_;
    }

    /// Per-processor execution/communication accounting of the last run.
    [[nodiscard]] const std::vector<ProcSimMetrics>& procMetrics() const {
        return procMetrics_;
    }
    /// max/mean statements-executed ratio across processors (1.0 =
    /// perfectly balanced; 0.0 when nothing executed).
    [[nodiscard]] double imbalanceRatio() const;

    /// The oracle (sequential reference) interpreter; seed inputs here
    /// before run(). Inputs are mirrored to every processor's store as
    /// initially-valid data (original HPF arrays start replicated until
    /// first distributed write; this models "already distributed" input
    /// without charging initial distribution).
    [[nodiscard]] Interpreter& oracle() { return oracle_; }

    /// Value of `name` on processor `proc` (flat element index).
    [[nodiscard]] double valueOn(int proc, const std::string& name,
                                 std::int64_t flat = 0) const;
    [[nodiscard]] bool validOn(int proc, const std::string& name,
                               std::int64_t flat = 0) const;

    /// Assemble the global array from owner processors and compare with
    /// the oracle; returns the max absolute difference.
    [[nodiscard]] double maxErrorVsOracle(const std::string& name) const;

    [[nodiscard]] std::int64_t statementsExecutedAllProcs() const {
        return procStmts_;
    }

private:
    struct GotoSignal {
        int label;
    };

    void execBlock(const std::vector<Stmt*>& block);
    void execStmt(const Stmt* s);
    /// Set of linear proc ids executing statement `s` now.
    [[nodiscard]] std::vector<int> executorsOf(const Stmt* s);
    /// Evaluate `e` on processor `proc`, triggering communication for
    /// any data the processor does not hold.
    double evalOn(int proc, const Expr* e);
    /// Ensure `proc` holds the value of reference `ref`; fetch from the
    /// owner through the covering comm op otherwise.
    double fetch(int proc, const Expr* ref);
    [[nodiscard]] const CommOp* coveringOp(const Expr* ref) const;
    void recordEvent(const CommOp* op);
    /// Per-proc executed/skipped accounting for one statement instance.
    void accountExecutors(const std::vector<int>& execs);
    void writeRef(const std::vector<int>& procs, const Expr* lhs, double v,
                  double oracleV);

    const SpmdLowering& low_;
    const Program& prog_;
    Interpreter oracle_;
    int procCount_;
    int elemBytes_;
    std::vector<Store> procStore_;
    std::vector<ProcSimMetrics> procMetrics_;
    std::int64_t transfers_ = 0;
    std::int64_t procStmts_ = 0;
    std::set<std::pair<int, std::vector<std::int64_t>>> events_;
    std::map<int, std::int64_t> eventsPerOp_;
    std::map<int, std::int64_t> elemsPerOp_;
    std::map<const Expr*, const CommOp*> opByRef_;
};

}  // namespace phpf
