#pragma once

#include <exception>
#include <memory>

#include "runtime/interp.h"
#include "spmd/lowering.h"
#include "support/interned_events.h"
#include "support/parallel.h"

namespace phpf {

/// Functional simulator of the SPMD execution of a lowered program on a
/// distributed-memory machine (our stand-in for the paper's 16-node
/// SP2).
///
/// Every simulated processor has its own Store; distributed arrays are
/// valid only where owned (or received), privatized variables live as
/// genuinely private per-processor copies. Statements execute in global
/// lockstep under their computation-partitioning guards; a read of data
/// the processor does not hold triggers the matching communication op,
/// transfers the value from its owner, and accounts the message. A read
/// with no covering comm op aborts — an insufficient communication plan
/// is a hard error, which is exactly the property the tests exercise.
///
/// Message accounting groups element transfers by (comm op, iteration
/// vector at the op's placement level): one group is one vectorized
/// message event, directly comparable with the analytic cost model's
/// event counts.
///
/// The per-processor work of each statement instance runs on a reusable
/// lockstep worker pool (support/parallel.h) when `threads > 1`: every
/// executor evaluates its right-hand side against the frozen
/// pre-statement state (store writes — fetched-copy caching, lhs
/// stores, invalidation — are deferred to the barrier at the end of the
/// instance), so owner-computes semantics and the validity-bitmap
/// checks are unchanged and all results and metrics are bit-identical
/// across thread counts.
/// Per-processor accounting of one simulated run: what each processor
/// executed, skipped (its computation-partitioning guard was false), and
/// moved. The imbalance across processors is the load-balance signal the
/// run report surfaces.
struct ProcSimMetrics {
    std::int64_t stmtsExecuted = 0;
    std::int64_t stmtsSkipped = 0;  ///< guard evaluated false
    std::int64_t recvElements = 0;
    std::int64_t sentElements = 0;
};

class SpmdSimulator {
public:
    /// `elemBytes` is the machine element size used for byte accounting
    /// (CostModel::elemBytes; REAL = 8 on the modelled SP2). `threads`
    /// is the lockstep worker count: 0 means auto (PHPF_SIM_THREADS,
    /// else hardware_concurrency), always clamped to the processor
    /// count. Results are independent of the value.
    explicit SpmdSimulator(const SpmdLowering& low, int elemBytes = 8,
                           int threads = 1);

    void run();

    [[nodiscard]] int procCount() const { return procCount_; }
    /// Lockstep worker threads the simulation runs on (resolved).
    [[nodiscard]] int threads() const { return threads_; }
    /// Wall-clock seconds of the last run() (initial distribution
    /// included).
    [[nodiscard]] double wallSec() const { return wallSec_; }
    /// Aggregate seconds the pool workers spent inside parallel phases;
    /// busy/wall estimates the achieved parallel speedup. 0 when the
    /// simulation ran single-threaded.
    [[nodiscard]] double workerBusySec() const {
        return pool_ != nullptr
                   ? static_cast<double>(pool_->busyNs()) * 1e-9
                   : 0.0;
    }
    [[nodiscard]] double parallelSpeedupEst() const {
        if (pool_ == nullptr || wallSec_ <= 0.0) return 1.0;
        const double est = workerBusySec() / wallSec_;
        return est < 1.0 ? 1.0 : est;
    }

    /// Vectorized message events (see class comment).
    [[nodiscard]] std::int64_t messageEvents() const { return events_.size(); }
    /// Raw element transfers (element granularity).
    [[nodiscard]] std::int64_t elementTransfers() const { return transfers_; }
    [[nodiscard]] double bytesMoved() const {
        return static_cast<double>(transfers_ * elemBytes_);
    }
    [[nodiscard]] int elemBytes() const { return elemBytes_; }
    /// Message events attributed to one comm op.
    [[nodiscard]] std::int64_t eventsOfOp(int opId) const;
    /// Element transfers attributed to one comm op.
    [[nodiscard]] std::int64_t elementsOfOp(int opId) const;

    /// Per-processor execution/communication accounting of the last run.
    [[nodiscard]] const std::vector<ProcSimMetrics>& procMetrics() const {
        return procMetrics_;
    }
    /// max/mean statements-executed ratio across processors (1.0 =
    /// perfectly balanced; 0.0 when nothing executed).
    [[nodiscard]] double imbalanceRatio() const;

    /// The oracle (sequential reference) interpreter; seed inputs here
    /// before run(). Inputs are mirrored to every processor's store as
    /// initially-valid data (original HPF arrays start replicated until
    /// first distributed write; this models "already distributed" input
    /// without charging initial distribution).
    [[nodiscard]] Interpreter& oracle() { return oracle_; }

    /// Value of `name` on processor `proc` (flat element index).
    [[nodiscard]] double valueOn(int proc, const std::string& name,
                                 std::int64_t flat = 0) const;
    [[nodiscard]] bool validOn(int proc, const std::string& name,
                               std::int64_t flat = 0) const;

    /// Assemble the global array from owner processors and compare with
    /// the oracle; returns the max absolute difference.
    [[nodiscard]] double maxErrorVsOracle(const std::string& name) const;

    [[nodiscard]] std::int64_t statementsExecutedAllProcs() const {
        return procStmts_;
    }

private:
    struct GotoSignal {
        int label;
    };

    /// A reduction's global combine applied at the end of one loop nest.
    struct CombinePlan {
        const CommOp* op = nullptr;
        const ReductionInfo* red = nullptr;
    };

    /// Precomputed per-statement execution plan: everything executorsOf
    /// and the eval phase would otherwise rediscover on every statement
    /// instance (guard descriptors, Union contributor descriptors, the
    /// fetched refs of the rhs/cond, reduction roles, loop-end
    /// combines). Indexed by Stmt::id.
    struct StmtPlan {
        const StmtExec* exec = nullptr;  ///< Assign / If
        bool isReductionAcc = false;     ///< Assign: reduction accumulate
        /// Union guard: executor descriptors of the contributing
        /// owner-computes statements of the same loop body.
        std::vector<const RefDesc*> unionSrcs;
        /// VarRef/ArrayRef nodes the executors fetch (value positions of
        /// rhs/cond; subscripts resolve on the oracle).
        std::vector<const Expr*> fetchRefs;
        std::vector<CombinePlan> combines;  ///< Do: loop-end combines
    };

    /// A fetched-copy store write deferred to the end of the phase.
    struct PendingWrite {
        int proc;
        SymbolId sym;
        std::int64_t flat;
        double v;
    };
    /// One element transfer observed during a phase; accounted (and its
    /// event recorded) in deterministic worker order at the barrier.
    struct MissRecord {
        const CommOp* op;
        int proc;
        int src;
    };

    /// Per-worker scratch; padded so workers never share a cache line.
    struct alignas(64) WorkerScratch {
        std::vector<PendingWrite> pending;
        std::vector<MissRecord> misses;
        GridSet gs;               ///< owner-set scratch for fetches
        std::vector<int> coords;  ///< grid-iteration scratch
        std::exception_ptr error;
    };

    void buildPlans();
    void execBlock(const std::vector<Stmt*>& block);
    void execStmt(const Stmt* s);
    /// Set of linear proc ids executing statement `s` now. Returns a
    /// reference to a per-instance scratch (or the constant all-procs
    /// set); valid until the next call.
    [[nodiscard]] const std::vector<int>& executorsOf(const Stmt* s);
    /// Evaluate `e` on every executor against the frozen pre-statement
    /// state, filling values_; parallel when the pool is active and the
    /// executor set is wide enough.
    void evalPhase(const StmtPlan& plan, const std::vector<int>& execs,
                   const Expr* e);
    void phaseWorker(int worker);
    /// Apply deferred store writes and account the recorded transfers,
    /// workers in index order (deterministic for any thread count).
    void mergeWorkers();
    /// Evaluate `e` on processor `proc`, triggering communication for
    /// any data the processor does not hold.
    double evalOnW(WorkerScratch& w, int proc, const Expr* e);
    /// Ensure `proc` holds the value of reference `ref`; fetch from the
    /// owner through the covering comm op otherwise.
    double fetchW(WorkerScratch& w, int proc, const Expr* ref);
    /// Account one element transfer's message event (main thread).
    void noteEvent(const CommOp* op);
    /// Per-proc executed/skipped accounting for one statement instance.
    void accountExecutors(const std::vector<int>& execs);
    void evalDescInto(const RefDesc& desc, GridSet& out) const;

    const SpmdLowering& low_;
    const Program& prog_;
    Interpreter oracle_;
    int procCount_;
    int elemBytes_;
    int threads_;
    std::unique_ptr<LockstepPool> pool_;
    std::vector<Store> procStore_;
    std::vector<ProcSimMetrics> procMetrics_;
    std::int64_t transfers_ = 0;
    std::int64_t procStmts_ = 0;
    double wallSec_ = 0.0;
    InternedEventSet events_;
    std::vector<std::int64_t> eventsPerOp_;  ///< by CommOp::id (dense)
    std::vector<std::int64_t> elemsPerOp_;   ///< by CommOp::id (dense)

    // --- precomputed execution plan (built once in the constructor) ---
    std::vector<StmtPlan> plans_;               ///< by Stmt::id
    std::vector<const CommOp*> opByRef_;        ///< by Expr::id
    std::vector<std::vector<SymbolId>> opCtxVars_;  ///< by CommOp::id
    std::vector<int> allProcs_;

    // --- per-instance scratch (main thread; no per-statement allocs) ---
    std::vector<int> execsScratch_;
    GridSet gsScratch_;
    std::vector<int> coordsScratch_;
    std::vector<char> flagsScratch_;
    std::vector<double> values_;
    std::vector<std::int64_t> refFlat_;  ///< by Expr::id, per instance
    std::vector<std::int64_t> ctxScratch_;
    std::vector<WorkerScratch> workers_;

    // --- current phase (set by evalPhase, read by workers) ---
    const std::vector<int>* phaseExecs_ = nullptr;
    const Expr* phaseExpr_ = nullptr;
};

}  // namespace phpf
