#pragma once

#include <algorithm>
#include <exception>
#include <memory>

#include "obs/concurrent_trace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/bytecode.h"
#include "runtime/engine.h"
#include "runtime/interp.h"
#include "runtime/reliable_transport.h"
#include "spmd/lowering.h"
#include "support/arena.h"
#include "target/target_kind.h"
#include "support/cancellation.h"
#include "support/fault.h"
#include "support/interned_events.h"
#include "support/parallel.h"

namespace phpf {

/// Functional simulator of the SPMD execution of a lowered program on a
/// distributed-memory machine (our stand-in for the paper's 16-node
/// SP2).
///
/// Every simulated processor has its own Store; distributed arrays are
/// valid only where owned (or received), privatized variables live as
/// genuinely private per-processor copies. Statements execute in global
/// lockstep under their computation-partitioning guards; a read of data
/// the processor does not hold triggers the matching communication op,
/// transfers the value from its owner, and accounts the message. A read
/// with no covering comm op aborts — an insufficient communication plan
/// is a hard error, which is exactly the property the tests exercise.
///
/// Message accounting groups element transfers by (comm op, iteration
/// vector at the op's placement level): one group is one vectorized
/// message event, directly comparable with the analytic cost model's
/// event counts.
///
/// The per-processor work of each statement instance runs on a reusable
/// lockstep worker pool (support/parallel.h) when `threads > 1`: every
/// executor evaluates its right-hand side against the frozen
/// pre-statement state (store writes — fetched-copy caching, lhs
/// stores, invalidation — are deferred to the barrier at the end of the
/// instance), so owner-computes semantics and the validity-bitmap
/// checks are unchanged and all results and metrics are bit-identical
/// across thread counts.
/// Per-processor accounting of one simulated run: what each processor
/// executed, skipped (its computation-partitioning guard was false), and
/// moved. The imbalance across processors is the load-balance signal the
/// run report surfaces.
struct ProcSimMetrics {
    std::int64_t stmtsExecuted = 0;
    std::int64_t stmtsSkipped = 0;  ///< guard evaluated false
    std::int64_t recvElements = 0;
    std::int64_t sentElements = 0;
};

/// Fault-injection and recovery configuration of one simulated run.
/// Defaults leave the whole layer off: a default-constructed config
/// costs the hot path one branch per statement instance and nothing
/// else (bench/bench_fault_overhead.cpp enforces ≈0 overhead).
struct SimRecoveryConfig {
    /// Fault source; null disables injection entirely. The simulator
    /// resolves the net.* sites into a reliable transport and the
    /// proc.crash site into checkpoint-restore recovery.
    const FaultInjector* faults = nullptr;
    /// Checkpoint the full simulator state every N statement instances
    /// (0 = only the initial checkpoint, taken whenever recovery can be
    /// needed). A crash restores the latest checkpoint and replays —
    /// deterministically, so results and all metrics stay bit-identical
    /// to the fault-free run.
    int checkpointEvery = 0;
    /// proc.crash restore budget; exceeding it surfaces a SimFault.
    int maxRecoveries = 64;
    /// Retry/backoff/timeout budget of the reliable transport.
    TransportConfig transport;
    /// Polled at statement boundaries: a cancelled token (deadline or
    /// explicit) stops the run with a SimFault at site "sim.cancel",
    /// leaving no partially merged phase behind.
    CancelToken cancel;
};

class SpmdSimulator {
public:
    /// `elemBytes` is the machine element size used for byte accounting
    /// (CostModel::elemBytes; REAL = 8 on the modelled SP2). `threads`
    /// is the lockstep worker count: 0 means auto (PHPF_SIM_THREADS,
    /// else hardware_concurrency), always clamped to the processor
    /// count. Results are independent of the value.
    ///
    /// `engine` picks the eval-phase implementation: the tree-walking
    /// interpreter or the register-bytecode VM (default). Both produce
    /// bit-identical results AND metrics; every other phase (lockstep
    /// merge, checkpoints, fault injection, profiling) is shared code.
    ///
    /// `relaxedMerge` opts into combining commutative reductions
    /// (sum/max/min) from the per-processor partial accumulators in
    /// linear processor order instead of broadcasting the oracle's
    /// sequentially-ordered value, and lets reduction-accumulate
    /// statements write their private accumulator in-phase instead of
    /// through the ordered merge barrier. Max/min and integer sums stay
    /// exact; floating-point sums may differ from the oracle by
    /// reassociation. Still deterministic for any thread count.
    /// `targetKind` selects the machine the accounting describes.
    /// Functional semantics are target-independent (the same lowering
    /// executes; a shared-memory "coherence read" moves the same value a
    /// message-passing "transfer" does), so results are bit-identical
    /// across targets. Under SharedMemory the simulator additionally
    /// counts barrier epochs (each vectorized sync event is one
    /// producers-then-consumers barrier on the lockstep pool) and does
    /// not arm the lossy-network transport — there is no network inside
    /// one SMP node (proc.crash recovery still applies).
    explicit SpmdSimulator(const SpmdLowering& low, int elemBytes = 8,
                           int threads = 1, SimRecoveryConfig recovery = {},
                           SimEngine engine = SimEngine::Bytecode,
                           bool relaxedMerge = false,
                           TargetKind targetKind = TargetKind::MessagePassing);

    /// Throws SimFault when injected faults exhaust the recovery budget
    /// or the recovery cancel token fires; any other outcome (including
    /// every recovered fault) leaves results and metrics bit-identical
    /// to a fault-free run.
    void run();

    /// Opt into telemetry before run(). `metrics` (nullable) receives
    /// per-phase latency histograms (sim.phase.eval_us /
    /// sim.phase.merge_us / sim.checkpoint_us) — histogram references
    /// are resolved here once, so the hot path never does a name
    /// lookup. Phases are microseconds long, so the eval/merge
    /// histograms sample 1 in kTelemetrySample phases (clock reads on
    /// every phase would dominate the phase itself); checkpoints are
    /// rare and timed unconditionally.
    /// `tracer` (nullable) receives one tid-stamped span per
    /// pool worker covering the run, parented under the calling
    /// thread's current context, which gives Chrome traces their
    /// per-thread sim-worker rows. Null pointers (the default) keep the
    /// existing zero-overhead behaviour.
    void setTelemetry(obs::MetricRegistry* metrics,
                      obs::ConcurrentTracer* tracer);

    /// Opt into the per-statement profiler before run(). Counts
    /// (instances, per-proc executions, transfers, events) are exact
    /// and bit-identical across thread counts; wall time is
    /// 1-in-kSampleEvery sampled (deterministic sample *counts*,
    /// host-dependent durations). The armed overhead budget is <2%
    /// (bench/bench_profile_overhead.cpp enforces it).
    void enableProfiling() {
        profile_ = std::make_unique<obs::StmtProfile>(prog_.stmtCount(),
                                                      procCount_);
    }
    /// The profile of the last run; null unless enableProfiling() was
    /// called.
    [[nodiscard]] const obs::StmtProfile* profile() const {
        return profile_.get();
    }

    [[nodiscard]] int procCount() const { return procCount_; }
    /// Lockstep worker threads the simulation runs on (resolved).
    [[nodiscard]] int threads() const { return threads_; }
    /// Eval-phase engine of this simulator.
    [[nodiscard]] SimEngine engine() const { return engine_; }
    /// True when the relaxed commutative reduction merge is active.
    [[nodiscard]] bool relaxedMerge() const { return relaxed_; }
    /// Wall-clock seconds of the last run() (initial distribution
    /// included).
    [[nodiscard]] double wallSec() const { return wallSec_; }
    /// Aggregate seconds the pool workers spent inside parallel phases;
    /// busy/wall estimates the achieved parallel speedup. 0 when the
    /// simulation ran single-threaded.
    [[nodiscard]] double workerBusySec() const {
        return pool_ != nullptr
                   ? static_cast<double>(pool_->busyNs()) * 1e-9
                   : 0.0;
    }
    [[nodiscard]] double parallelSpeedupEst() const {
        if (pool_ == nullptr || wallSec_ <= 0.0) return 1.0;
        const double est = workerBusySec() / wallSec_;
        return est < 1.0 ? 1.0 : est;
    }

    /// Machine model this run's accounting describes.
    [[nodiscard]] TargetKind targetKind() const { return targetKind_; }
    /// Shared-memory target only: barrier epochs executed (one per
    /// distinct vectorized sync event, reduction combiner trees
    /// included). Always 0 under MessagePassing.
    [[nodiscard]] std::int64_t barrierEvents() const { return barrierEvents_; }

    /// Vectorized message events (see class comment).
    [[nodiscard]] std::int64_t messageEvents() const { return events_.size(); }
    /// Raw element transfers (element granularity).
    [[nodiscard]] std::int64_t elementTransfers() const { return transfers_; }
    [[nodiscard]] double bytesMoved() const {
        return static_cast<double>(transfers_ * elemBytes_);
    }
    [[nodiscard]] int elemBytes() const { return elemBytes_; }
    /// Message events attributed to one comm op.
    [[nodiscard]] std::int64_t eventsOfOp(int opId) const;
    /// Element transfers attributed to one comm op.
    [[nodiscard]] std::int64_t elementsOfOp(int opId) const;

    /// Per-processor execution/communication accounting of the last run.
    [[nodiscard]] const std::vector<ProcSimMetrics>& procMetrics() const {
        return procMetrics_;
    }
    /// max/mean statements-executed ratio across processors (1.0 =
    /// perfectly balanced; 0.0 when nothing executed).
    [[nodiscard]] double imbalanceRatio() const;

    /// The oracle (sequential reference) interpreter; seed inputs here
    /// before run(). Inputs are mirrored to every processor's store as
    /// initially-valid data (original HPF arrays start replicated until
    /// first distributed write; this models "already distributed" input
    /// without charging initial distribution).
    [[nodiscard]] Interpreter& oracle() { return oracle_; }

    /// Value of `name` on processor `proc` (flat element index).
    [[nodiscard]] double valueOn(int proc, const std::string& name,
                                 std::int64_t flat = 0) const;
    [[nodiscard]] bool validOn(int proc, const std::string& name,
                               std::int64_t flat = 0) const;

    /// Assemble the global array from owner processors and compare with
    /// the oracle; returns the max absolute difference.
    [[nodiscard]] double maxErrorVsOracle(const std::string& name) const;

    [[nodiscard]] std::int64_t statementsExecutedAllProcs() const {
        return procStmts_;
    }

    /// True when a fault spec armed any part of the recovery layer.
    [[nodiscard]] bool faultLayerActive() const {
        return transport_ != nullptr || crashSite_ != nullptr;
    }
    /// Reliable-transport accounting (null when no net.* site armed).
    [[nodiscard]] const TransportStats* transportStats() const {
        return transport_ != nullptr ? &transport_->stats() : nullptr;
    }
    /// Successful proc.crash recoveries of the last run.
    [[nodiscard]] int recoveries() const { return recoveries_; }
    /// Checkpoints taken during the last run (initial one included).
    [[nodiscard]] std::int64_t checkpointsTaken() const {
        return checkpointsTaken_;
    }

private:
    struct GotoSignal {
        int label;
    };
    /// Thrown when the proc.crash site fires at a statement boundary;
    /// run() restores the latest checkpoint and resumes.
    struct CrashSignal {};

    /// One active control construct (Do or If) on the execution path.
    /// The stack mirrors the C++ call stack of execStmt; a checkpoint
    /// copies it (plus the boundary statement) as its resume path. Loop
    /// frames capture the bounds *as evaluated at loop entry*, so a
    /// resumed loop iterates exactly as the original would have.
    struct CtrlFrame {
        const Stmt* stmt = nullptr;
        bool taken = false;  ///< If: branch in execution
        std::int64_t iv = 0, ub = 0, step = 1;  ///< Do: current/captured
    };

    /// Full simulator state at one statement boundary. Restoring it and
    /// replaying is deterministic: the stores define all values, the
    /// event set / counters define all accounting, and the resume path
    /// pins the control position — so a recovered run re-produces the
    /// fault-free run bit for bit.
    struct Checkpoint {
        std::vector<Store> procStore;
        Store oracleStore;
        std::int64_t oracleExecuted = 0;
        std::vector<ProcSimMetrics> procMetrics;
        std::int64_t transfers = 0;
        std::int64_t procStmts = 0;
        std::int64_t instances = 0;
        InternedEventSet events;
        std::vector<std::int64_t> eventsPerOp;
        std::vector<std::int64_t> elemsPerOp;
        std::int64_t barrierEvents = 0;
        /// Relaxed-merge loop-entry accumulator snapshots (by CommOp
        /// id), so a recovered relaxed run replays identically.
        std::vector<double> combineInit;
        /// Enclosing Do/If frames + the boundary statement last; empty
        /// = start of the program.
        std::vector<CtrlFrame> path;
        /// Profiler state (sample ticks included), so a recovered run
        /// reproduces the fault-free profile bit for bit. Null when
        /// profiling is off.
        std::unique_ptr<obs::StmtProfile> profile;
    };

    /// A reduction's global combine applied at the end of one loop nest.
    struct CombinePlan {
        const CommOp* op = nullptr;
        const ReductionInfo* red = nullptr;
    };

    /// Precomputed per-statement execution plan: everything executorsOf
    /// and the eval phase would otherwise rediscover on every statement
    /// instance (guard descriptors, Union contributor descriptors, the
    /// fetched refs of the rhs/cond, reduction roles, loop-end
    /// combines). Indexed by Stmt::id.
    struct StmtPlan {
        const StmtExec* exec = nullptr;  ///< Assign / If
        bool isReductionAcc = false;     ///< Assign: reduction accumulate
        /// Union guard: executor descriptors of the contributing
        /// owner-computes statements of the same loop body.
        std::vector<const RefDesc*> unionSrcs;
        /// VarRef/ArrayRef nodes the executors fetch (value positions of
        /// rhs/cond; subscripts resolve on the oracle).
        std::vector<const Expr*> fetchRefs;
        std::vector<CombinePlan> combines;  ///< Do: loop-end combines
        /// Bytecode engine: compiled guard subscripts, index forms, and
        /// value chunk of this statement (empty under SimEngine::Interp).
        bc::StmtCode code;
        /// Bytecode engine, per fetch slot: the covering communication
        /// op (null when the slot's data is always local) and its
        /// compiled source-descriptor subscript forms, so per-phase miss
        /// resolution never walks a subscript tree.
        std::vector<const CommOp*> slotOp;
        std::vector<std::vector<bc::IndexForm>> slotSrcForms;
        /// Bytecode engine: the OwnerOf executor descriptor pins every
        /// grid dimension (no Replicated dims), so the executor set is
        /// one processor computed directly — no grid-set enumeration.
        bool execSingleton = false;
        /// Per fetch slot: the comm op's source descriptor is a
        /// singleton (same condition as execSingleton).
        std::vector<char> slotSrcSingleton;
        /// Bytecode engine: every lane provably computes the oracle's
        /// value — the statement is not a reduction accumulation and no
        /// fetched symbol is divergent (per-processor copies of every
        /// read symbol equal the oracle whenever valid). Such phases
        /// skip the per-lane VM run: misses are recorded for the
        /// communication accounting, and the oracle's scalar result is
        /// broadcast to the executors.
        bool laneUniform = false;
    };

    /// A fetched-copy store write deferred to the end of the phase.
    struct PendingWrite {
        int proc;
        SymbolId sym;
        std::int64_t flat;
        double v;
    };
    /// One element transfer observed during a phase; accounted (and its
    /// event recorded) in deterministic worker order at the barrier.
    struct MissRecord {
        const CommOp* op;
        int proc;
        int src;
    };

    /// Per-worker scratch; padded so workers never share a cache line.
    struct alignas(64) WorkerScratch {
        std::vector<PendingWrite> pending;
        std::vector<MissRecord> misses;
        GridSet gs;               ///< owner-set scratch for fetches
        std::vector<int> coords;  ///< grid-iteration scratch
        /// Bytecode engine: SoA register banks, numRegs x procCount
        /// doubles (lane stride is the processor count).
        std::vector<double> regs;
        std::exception_ptr error;
    };

    void buildPlans();
    void execBlock(const std::vector<Stmt*>& block);
    /// execBlock starting at `start` (resume + goto continuation).
    void execBlockFrom(const std::vector<Stmt*>& block, size_t start);
    void execStmt(const Stmt* s);
    /// Bytecode engine, lane-uniform Assign with telemetry, profiler and
    /// transport all unarmed: the fused fast path. One pass resolves the
    /// fetch slots, applies any misses in place (same slot-major lane
    /// order and per-merge event memo as evalPhase + mergeWorkers), runs
    /// the oracle chunk once and broadcasts the result — no deferred
    /// record vectors, no second slot walk. Any armed observer falls
    /// back to the general path, which keeps its sampling ticks; the
    /// two paths produce identical state, metrics and events.
    void execUniformBc(const Stmt* s, const StmtPlan& plan,
                       const std::vector<int>& execs);
    /// One iteration of Do statement `s`'s body, with the forward-goto
    /// continuation handling.
    void execLoopBody(const Stmt* s);
    /// Loop-end global reduction combines of `s` (a Do statement).
    void runCombines(const Stmt* s);
    /// Statement-boundary hook of the recovery layer: cancellation,
    /// proc.crash polling, periodic checkpoints. Only called when
    /// boundaryArmed_.
    void boundary(const Stmt* s);
    void takeCheckpoint(const Stmt* boundaryStmt);
    void restoreCheckpoint();
    /// Re-enter `block` along the checkpoint's resume path at `depth`.
    void resumeInto(const std::vector<Stmt*>& block, size_t depth);
    /// Resume a Do frame: finish the checkpointed iteration via the
    /// path, then iterate on with the frame's captured bounds.
    void resumeDo(const CtrlFrame& f, size_t depth);
    /// Set of linear proc ids executing statement `s` now. Returns a
    /// reference to a per-instance scratch (or the constant all-procs
    /// set); valid until the next call.
    [[nodiscard]] const std::vector<int>& executorsOf(const Stmt* s);
    /// Evaluate `e` on every executor against the frozen pre-statement
    /// state, filling values_; parallel when the pool is active and the
    /// executor set is wide enough. `directSym` != kNoSymbol (relaxed
    /// merge, reduction accumulators only) additionally writes each
    /// executor's result straight to its private accumulator copy,
    /// skipping the ordered post-merge write loop.
    void evalPhase(const StmtPlan& plan, const std::vector<int>& execs,
                   const Expr* e, SymbolId directSym = kNoSymbol);
    void phaseWorker(int worker);
    /// Bytecode engine: run the phase chunk over lanes [b, e) of the
    /// executor set on `w`'s register banks, filling values_.
    void runLanesInto(WorkerScratch& w, const StmtPlan& plan,
                      const std::vector<int>& execs, std::int64_t b,
                      std::int64_t e);
    /// Bytecode engine: one lane's fetch of a slot its processor does
    /// not hold — pending-copy check, then the per-phase resolved
    /// (value, source) with the transfer recorded. Out of line: cold
    /// next to the contiguous SoA fast path.
    double missLaneBc(WorkerScratch& w, int proc, const StmtPlan& plan,
                      int slot);
    /// Bytecode engine: resolve slot's miss once per phase (owner
    /// validity is frozen within a phase, so every missing lane gets the
    /// identical value and source processor). Main thread only, before
    /// the pool runs — parallel workers read the memo, never write it.
    void resolveSlotMiss(const StmtPlan& plan, int slot, int firstProc);
    /// Transcribe procStore_ into the lane-major SoA banks / back. The
    /// banks are authoritative between run() start and end and across
    /// checkpoint boundaries; procStore_ stays the external interface
    /// (checkpoints, valueOn, maxErrorVsOracle).
    void soaLoad();
    void soaFlush();
    /// SoA row base (element * procCount) of (sym, flat); bounds-checked
    /// through Store::elemIndexOf like any store access.
    [[nodiscard]] std::int64_t soaRowOf(SymbolId sym,
                                        std::int64_t flat) const {
        return procStore_[0].elemIndexOf(sym, flat) * procCount_;
    }
    /// Write `v` valid to every processor's copy of scalar/element
    /// (sym, flat) in the SoA banks (loop-variable and combine
    /// broadcasts).
    void soaBroadcast(SymbolId sym, std::int64_t flat, double v) {
        const std::int64_t row = soaRowOf(sym, flat);
        std::fill(soa_.begin() + row, soa_.begin() + row + procCount_, v);
        std::fill(soaValid_.begin() + row,
                  soaValid_.begin() + row + procCount_,
                  static_cast<char>(1));
    }
    /// Apply deferred store writes and account the recorded transfers,
    /// workers in index order (deterministic for any thread count).
    void mergeWorkers();
    /// Evaluate `e` on processor `proc`, triggering communication for
    /// any data the processor does not hold.
    double evalOnW(WorkerScratch& w, int proc, const Expr* e);
    /// Ensure `proc` holds the value of reference `ref`; fetch from the
    /// owner through the covering comm op otherwise. `flat` is the
    /// element's resolved flat index (0 for scalars).
    double fetchW(WorkerScratch& w, int proc, const Expr* ref,
                  std::int64_t flat);
    double fetchW(WorkerScratch& w, int proc, const Expr* ref) {
        return fetchW(w, proc, ref,
                      ref->kind == ExprKind::ArrayRef
                          ? refFlat_[static_cast<size_t>(ref->id)]
                          : 0);
    }
    /// Account one element transfer's message event (main thread).
    void noteEvent(const CommOp* op);
    /// Per-proc executed/skipped accounting for one statement instance.
    /// Accumulates into flat delta counters (one int per processor, not
    /// a ProcSimMetrics sweep); flushAccounting materializes them.
    void accountExecutors(const std::vector<int>& execs);
    /// Fold the executed/skipped deltas into procMetrics_. Called
    /// wherever procMetrics_ must be externally coherent: checkpoint
    /// capture, run end (normal and fault exits).
    void flushAccounting();
    /// Bytecode engine: the single processor of a fully-pinned
    /// descriptor (execSingleton / slotSrcSingleton plans).
    [[nodiscard]] int singleProcOfBc(const RefDesc& desc,
                                     const std::vector<bc::IndexForm>& forms);
    void evalDescInto(const RefDesc& desc, GridSet& out) const;
    /// Bytecode engine: evalDescInto through precompiled subscript
    /// forms (one per grid dim, only Partitioned dims present).
    void evalDescIntoBc(const RefDesc& desc,
                        const std::vector<bc::IndexForm>& forms,
                        GridSet& out) const;
    /// Relaxed merge: combine one reduction from the per-processor
    /// partial accumulators in linear processor order.
    [[nodiscard]] double combineRelaxed(const CombinePlan& c) const;
    /// True when `op` may combine relaxed (commutative, and exact for
    /// max/min and integer sums).
    [[nodiscard]] static bool relaxedCombinable(ReductionInfo::Op op) {
        return op == ReductionInfo::Op::Sum || op == ReductionInfo::Op::Max ||
               op == ReductionInfo::Op::Min;
    }

    const SpmdLowering& low_;
    const Program& prog_;
    Interpreter oracle_;
    int procCount_;
    int elemBytes_;
    int threads_;
    SimEngine engine_;
    bool relaxed_;
    TargetKind targetKind_;
    std::int64_t barrierEvents_ = 0;  ///< shm only; see barrierEvents()
    std::unique_ptr<LockstepPool> pool_;
    std::vector<Store> procStore_;
    std::vector<ProcSimMetrics> procMetrics_;
    std::int64_t transfers_ = 0;
    std::int64_t procStmts_ = 0;
    double wallSec_ = 0.0;
    InternedEventSet events_;
    std::vector<std::int64_t> eventsPerOp_;  ///< by CommOp::id (dense)
    std::vector<std::int64_t> elemsPerOp_;   ///< by CommOp::id (dense)

    // --- precomputed execution plan (built once in the constructor) ---
    std::vector<StmtPlan> plans_;               ///< by Stmt::id
    std::vector<const CommOp*> opByRef_;        ///< by Expr::id
    std::vector<std::vector<SymbolId>> opCtxVars_;  ///< by CommOp::id
    std::vector<int> allProcs_;
    /// Bytecode compile-side IR (affine term lists); owns nothing the
    /// compiled StmtCodes point at — safe to keep for arena statistics.
    Arena bcArena_;
    int maxRegs_ = 0;  ///< widest chunk register file across statements

    // --- per-instance scratch (main thread; no per-statement allocs) ---
    std::vector<int> execsScratch_;
    GridSet gsScratch_;
    std::vector<int> coordsScratch_;
    std::vector<char> flagsScratch_;
    std::vector<double> values_;
    std::vector<std::int64_t> refFlat_;  ///< by Expr::id, per instance
    std::vector<std::int64_t> ctxScratch_;
    std::vector<WorkerScratch> workers_;
    /// Bytecode engine: per-instance flat index of each fetch slot
    /// (resolved once on the oracle, like refFlat_).
    std::vector<std::int64_t> slotFlat_;
    std::vector<double> oracleRegs_;  ///< scalar VM register scratch
    /// Bytecode engine: lane-major SoA state. Element e of processor p
    /// lives at [e * procCount + p] (e = Store::elemIndexOf), so one
    /// fetch reads procCount contiguous lanes and invalidating every
    /// copy of an element is a procCount-byte memset. Authoritative
    /// while run() executes; transcribed from/to procStore_ at run and
    /// checkpoint boundaries (soaLoad/soaFlush).
    std::vector<double> soa_;
    std::vector<char> soaValid_;
    /// Per-phase slot scratch: SoA row base / store element index of
    /// each fetch slot, and the once-per-phase miss memo (resolved
    /// value + source processor).
    std::vector<std::int64_t> slotRow_;
    std::vector<std::int64_t> slotElem_;
    std::vector<double> slotMissV_;
    std::vector<int> slotMissSrc_;
    std::vector<char> slotMissResolved_;
    /// Per-phase: every executor lane of the slot held a valid copy at
    /// the pre-scan (validity is frozen within the phase), so the VM
    /// loads the slot with one contiguous row copy.
    std::vector<char> slotAllValid_;
    /// Guard-accounting deltas since the last flushAccounting(): number
    /// of accounted statement instances, how many of those executed on
    /// every processor (guard All — one counter, no per-proc sweep),
    /// and per-processor executed counts for the rest
    /// (skipped = instances - denseAccounted - executed).
    std::int64_t accountedInstances_ = 0;
    std::int64_t denseAccounted_ = 0;
    std::vector<std::int64_t> execDelta_;
    /// executorsOf scratch for singleton owner sets (always size 1).
    std::vector<int> singleProcScratch_;
    /// Per-merge noteEvent memo: an op whose stamp equals the current
    /// merge's stamp already recorded its event this merge (the event
    /// context is frozen for the whole merge, so a repeat is a
    /// guaranteed duplicate).
    std::vector<std::uint64_t> opStamp_;
    std::uint64_t mergeStamp_ = 0;
    /// Set by evalPhase: the bytecode slot pre-scan found every executor
    /// valid on every slot, so no worker can have recorded a pending
    /// write or miss — the merge is a provable no-op and execStmt skips
    /// it when no sampler needs its tick.
    bool phaseClean_ = false;
    /// Relaxed merge: loop-entry accumulator snapshot by CommOp id.
    std::vector<double> combineInit_;

    // --- current phase (set by evalPhase, read by workers) ---
    const std::vector<int>* phaseExecs_ = nullptr;
    const Expr* phaseExpr_ = nullptr;
    const StmtPlan* phasePlan_ = nullptr;
    SymbolId phaseDirect_ = kNoSymbol;  ///< relaxed in-phase write target

    // --- fault injection & recovery (all null/false when disabled) ---
    SimRecoveryConfig rcfg_;
    std::unique_ptr<ReliableTransport> transport_;
    FaultSite* crashSite_ = nullptr;
    /// True when boundary() has any work (crash site, periodic
    /// checkpoints, or an armed cancel token): the only per-statement
    /// cost of the disabled layer is this one branch.
    bool boundaryArmed_ = false;
    /// Maintain ctrl_ frames (true iff a checkpoint can be taken).
    bool trackCtrl_ = false;
    std::int64_t instances_ = 0;  ///< statement-boundary counter
    int recoveries_ = 0;
    std::int64_t checkpointsTaken_ = 0;
    std::vector<CtrlFrame> ctrl_;  ///< live Do/If frames (see CtrlFrame)
    std::unique_ptr<Checkpoint> ckpt_;

    // --- telemetry (all null when not opted in via setTelemetry) ---
    /// 1-in-N phase sampling for the eval/merge histograms (power of
    /// two; the armed-but-idle overhead budget is <2% of the run).
    static constexpr std::uint32_t kTelemetrySample = 64;
    std::uint32_t evalTick_ = 0;
    std::uint32_t mergeTick_ = 0;
    obs::MetricRegistry* metrics_ = nullptr;
    obs::ConcurrentTracer* ctracer_ = nullptr;
    obs::Histogram* evalHist_ = nullptr;    ///< sim.phase.eval_us
    obs::Histogram* mergeHist_ = nullptr;   ///< sim.phase.merge_us
    obs::Histogram* ckptHist_ = nullptr;    ///< sim.checkpoint_us

    // --- per-statement profiler (null when not opted in) ---
    std::unique_ptr<obs::StmtProfile> profile_;
};

}  // namespace phpf
