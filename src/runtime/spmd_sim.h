#pragma once

#include <exception>
#include <memory>

#include "obs/concurrent_trace.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "runtime/interp.h"
#include "runtime/reliable_transport.h"
#include "spmd/lowering.h"
#include "support/cancellation.h"
#include "support/fault.h"
#include "support/interned_events.h"
#include "support/parallel.h"

namespace phpf {

/// Functional simulator of the SPMD execution of a lowered program on a
/// distributed-memory machine (our stand-in for the paper's 16-node
/// SP2).
///
/// Every simulated processor has its own Store; distributed arrays are
/// valid only where owned (or received), privatized variables live as
/// genuinely private per-processor copies. Statements execute in global
/// lockstep under their computation-partitioning guards; a read of data
/// the processor does not hold triggers the matching communication op,
/// transfers the value from its owner, and accounts the message. A read
/// with no covering comm op aborts — an insufficient communication plan
/// is a hard error, which is exactly the property the tests exercise.
///
/// Message accounting groups element transfers by (comm op, iteration
/// vector at the op's placement level): one group is one vectorized
/// message event, directly comparable with the analytic cost model's
/// event counts.
///
/// The per-processor work of each statement instance runs on a reusable
/// lockstep worker pool (support/parallel.h) when `threads > 1`: every
/// executor evaluates its right-hand side against the frozen
/// pre-statement state (store writes — fetched-copy caching, lhs
/// stores, invalidation — are deferred to the barrier at the end of the
/// instance), so owner-computes semantics and the validity-bitmap
/// checks are unchanged and all results and metrics are bit-identical
/// across thread counts.
/// Per-processor accounting of one simulated run: what each processor
/// executed, skipped (its computation-partitioning guard was false), and
/// moved. The imbalance across processors is the load-balance signal the
/// run report surfaces.
struct ProcSimMetrics {
    std::int64_t stmtsExecuted = 0;
    std::int64_t stmtsSkipped = 0;  ///< guard evaluated false
    std::int64_t recvElements = 0;
    std::int64_t sentElements = 0;
};

/// Fault-injection and recovery configuration of one simulated run.
/// Defaults leave the whole layer off: a default-constructed config
/// costs the hot path one branch per statement instance and nothing
/// else (bench/bench_fault_overhead.cpp enforces ≈0 overhead).
struct SimRecoveryConfig {
    /// Fault source; null disables injection entirely. The simulator
    /// resolves the net.* sites into a reliable transport and the
    /// proc.crash site into checkpoint-restore recovery.
    const FaultInjector* faults = nullptr;
    /// Checkpoint the full simulator state every N statement instances
    /// (0 = only the initial checkpoint, taken whenever recovery can be
    /// needed). A crash restores the latest checkpoint and replays —
    /// deterministically, so results and all metrics stay bit-identical
    /// to the fault-free run.
    int checkpointEvery = 0;
    /// proc.crash restore budget; exceeding it surfaces a SimFault.
    int maxRecoveries = 64;
    /// Retry/backoff/timeout budget of the reliable transport.
    TransportConfig transport;
    /// Polled at statement boundaries: a cancelled token (deadline or
    /// explicit) stops the run with a SimFault at site "sim.cancel",
    /// leaving no partially merged phase behind.
    CancelToken cancel;
};

class SpmdSimulator {
public:
    /// `elemBytes` is the machine element size used for byte accounting
    /// (CostModel::elemBytes; REAL = 8 on the modelled SP2). `threads`
    /// is the lockstep worker count: 0 means auto (PHPF_SIM_THREADS,
    /// else hardware_concurrency), always clamped to the processor
    /// count. Results are independent of the value.
    explicit SpmdSimulator(const SpmdLowering& low, int elemBytes = 8,
                           int threads = 1, SimRecoveryConfig recovery = {});

    /// Throws SimFault when injected faults exhaust the recovery budget
    /// or the recovery cancel token fires; any other outcome (including
    /// every recovered fault) leaves results and metrics bit-identical
    /// to a fault-free run.
    void run();

    /// Opt into telemetry before run(). `metrics` (nullable) receives
    /// per-phase latency histograms (sim.phase.eval_us /
    /// sim.phase.merge_us / sim.checkpoint_us) — histogram references
    /// are resolved here once, so the hot path never does a name
    /// lookup. Phases are microseconds long, so the eval/merge
    /// histograms sample 1 in kTelemetrySample phases (clock reads on
    /// every phase would dominate the phase itself); checkpoints are
    /// rare and timed unconditionally.
    /// `tracer` (nullable) receives one tid-stamped span per
    /// pool worker covering the run, parented under the calling
    /// thread's current context, which gives Chrome traces their
    /// per-thread sim-worker rows. Null pointers (the default) keep the
    /// existing zero-overhead behaviour.
    void setTelemetry(obs::MetricRegistry* metrics,
                      obs::ConcurrentTracer* tracer);

    /// Opt into the per-statement profiler before run(). Counts
    /// (instances, per-proc executions, transfers, events) are exact
    /// and bit-identical across thread counts; wall time is
    /// 1-in-kSampleEvery sampled (deterministic sample *counts*,
    /// host-dependent durations). The armed overhead budget is <2%
    /// (bench/bench_profile_overhead.cpp enforces it).
    void enableProfiling() {
        profile_ = std::make_unique<obs::StmtProfile>(prog_.stmtCount(),
                                                      procCount_);
    }
    /// The profile of the last run; null unless enableProfiling() was
    /// called.
    [[nodiscard]] const obs::StmtProfile* profile() const {
        return profile_.get();
    }

    [[nodiscard]] int procCount() const { return procCount_; }
    /// Lockstep worker threads the simulation runs on (resolved).
    [[nodiscard]] int threads() const { return threads_; }
    /// Wall-clock seconds of the last run() (initial distribution
    /// included).
    [[nodiscard]] double wallSec() const { return wallSec_; }
    /// Aggregate seconds the pool workers spent inside parallel phases;
    /// busy/wall estimates the achieved parallel speedup. 0 when the
    /// simulation ran single-threaded.
    [[nodiscard]] double workerBusySec() const {
        return pool_ != nullptr
                   ? static_cast<double>(pool_->busyNs()) * 1e-9
                   : 0.0;
    }
    [[nodiscard]] double parallelSpeedupEst() const {
        if (pool_ == nullptr || wallSec_ <= 0.0) return 1.0;
        const double est = workerBusySec() / wallSec_;
        return est < 1.0 ? 1.0 : est;
    }

    /// Vectorized message events (see class comment).
    [[nodiscard]] std::int64_t messageEvents() const { return events_.size(); }
    /// Raw element transfers (element granularity).
    [[nodiscard]] std::int64_t elementTransfers() const { return transfers_; }
    [[nodiscard]] double bytesMoved() const {
        return static_cast<double>(transfers_ * elemBytes_);
    }
    [[nodiscard]] int elemBytes() const { return elemBytes_; }
    /// Message events attributed to one comm op.
    [[nodiscard]] std::int64_t eventsOfOp(int opId) const;
    /// Element transfers attributed to one comm op.
    [[nodiscard]] std::int64_t elementsOfOp(int opId) const;

    /// Per-processor execution/communication accounting of the last run.
    [[nodiscard]] const std::vector<ProcSimMetrics>& procMetrics() const {
        return procMetrics_;
    }
    /// max/mean statements-executed ratio across processors (1.0 =
    /// perfectly balanced; 0.0 when nothing executed).
    [[nodiscard]] double imbalanceRatio() const;

    /// The oracle (sequential reference) interpreter; seed inputs here
    /// before run(). Inputs are mirrored to every processor's store as
    /// initially-valid data (original HPF arrays start replicated until
    /// first distributed write; this models "already distributed" input
    /// without charging initial distribution).
    [[nodiscard]] Interpreter& oracle() { return oracle_; }

    /// Value of `name` on processor `proc` (flat element index).
    [[nodiscard]] double valueOn(int proc, const std::string& name,
                                 std::int64_t flat = 0) const;
    [[nodiscard]] bool validOn(int proc, const std::string& name,
                               std::int64_t flat = 0) const;

    /// Assemble the global array from owner processors and compare with
    /// the oracle; returns the max absolute difference.
    [[nodiscard]] double maxErrorVsOracle(const std::string& name) const;

    [[nodiscard]] std::int64_t statementsExecutedAllProcs() const {
        return procStmts_;
    }

    /// True when a fault spec armed any part of the recovery layer.
    [[nodiscard]] bool faultLayerActive() const {
        return transport_ != nullptr || crashSite_ != nullptr;
    }
    /// Reliable-transport accounting (null when no net.* site armed).
    [[nodiscard]] const TransportStats* transportStats() const {
        return transport_ != nullptr ? &transport_->stats() : nullptr;
    }
    /// Successful proc.crash recoveries of the last run.
    [[nodiscard]] int recoveries() const { return recoveries_; }
    /// Checkpoints taken during the last run (initial one included).
    [[nodiscard]] std::int64_t checkpointsTaken() const {
        return checkpointsTaken_;
    }

private:
    struct GotoSignal {
        int label;
    };
    /// Thrown when the proc.crash site fires at a statement boundary;
    /// run() restores the latest checkpoint and resumes.
    struct CrashSignal {};

    /// One active control construct (Do or If) on the execution path.
    /// The stack mirrors the C++ call stack of execStmt; a checkpoint
    /// copies it (plus the boundary statement) as its resume path. Loop
    /// frames capture the bounds *as evaluated at loop entry*, so a
    /// resumed loop iterates exactly as the original would have.
    struct CtrlFrame {
        const Stmt* stmt = nullptr;
        bool taken = false;  ///< If: branch in execution
        std::int64_t iv = 0, ub = 0, step = 1;  ///< Do: current/captured
    };

    /// Full simulator state at one statement boundary. Restoring it and
    /// replaying is deterministic: the stores define all values, the
    /// event set / counters define all accounting, and the resume path
    /// pins the control position — so a recovered run re-produces the
    /// fault-free run bit for bit.
    struct Checkpoint {
        std::vector<Store> procStore;
        Store oracleStore;
        std::int64_t oracleExecuted = 0;
        std::vector<ProcSimMetrics> procMetrics;
        std::int64_t transfers = 0;
        std::int64_t procStmts = 0;
        std::int64_t instances = 0;
        InternedEventSet events;
        std::vector<std::int64_t> eventsPerOp;
        std::vector<std::int64_t> elemsPerOp;
        /// Enclosing Do/If frames + the boundary statement last; empty
        /// = start of the program.
        std::vector<CtrlFrame> path;
        /// Profiler state (sample ticks included), so a recovered run
        /// reproduces the fault-free profile bit for bit. Null when
        /// profiling is off.
        std::unique_ptr<obs::StmtProfile> profile;
    };

    /// A reduction's global combine applied at the end of one loop nest.
    struct CombinePlan {
        const CommOp* op = nullptr;
        const ReductionInfo* red = nullptr;
    };

    /// Precomputed per-statement execution plan: everything executorsOf
    /// and the eval phase would otherwise rediscover on every statement
    /// instance (guard descriptors, Union contributor descriptors, the
    /// fetched refs of the rhs/cond, reduction roles, loop-end
    /// combines). Indexed by Stmt::id.
    struct StmtPlan {
        const StmtExec* exec = nullptr;  ///< Assign / If
        bool isReductionAcc = false;     ///< Assign: reduction accumulate
        /// Union guard: executor descriptors of the contributing
        /// owner-computes statements of the same loop body.
        std::vector<const RefDesc*> unionSrcs;
        /// VarRef/ArrayRef nodes the executors fetch (value positions of
        /// rhs/cond; subscripts resolve on the oracle).
        std::vector<const Expr*> fetchRefs;
        std::vector<CombinePlan> combines;  ///< Do: loop-end combines
    };

    /// A fetched-copy store write deferred to the end of the phase.
    struct PendingWrite {
        int proc;
        SymbolId sym;
        std::int64_t flat;
        double v;
    };
    /// One element transfer observed during a phase; accounted (and its
    /// event recorded) in deterministic worker order at the barrier.
    struct MissRecord {
        const CommOp* op;
        int proc;
        int src;
    };

    /// Per-worker scratch; padded so workers never share a cache line.
    struct alignas(64) WorkerScratch {
        std::vector<PendingWrite> pending;
        std::vector<MissRecord> misses;
        GridSet gs;               ///< owner-set scratch for fetches
        std::vector<int> coords;  ///< grid-iteration scratch
        std::exception_ptr error;
    };

    void buildPlans();
    void execBlock(const std::vector<Stmt*>& block);
    /// execBlock starting at `start` (resume + goto continuation).
    void execBlockFrom(const std::vector<Stmt*>& block, size_t start);
    void execStmt(const Stmt* s);
    /// One iteration of Do statement `s`'s body, with the forward-goto
    /// continuation handling.
    void execLoopBody(const Stmt* s);
    /// Loop-end global reduction combines of `s` (a Do statement).
    void runCombines(const Stmt* s);
    /// Statement-boundary hook of the recovery layer: cancellation,
    /// proc.crash polling, periodic checkpoints. Only called when
    /// boundaryArmed_.
    void boundary(const Stmt* s);
    void takeCheckpoint(const Stmt* boundaryStmt);
    void restoreCheckpoint();
    /// Re-enter `block` along the checkpoint's resume path at `depth`.
    void resumeInto(const std::vector<Stmt*>& block, size_t depth);
    /// Resume a Do frame: finish the checkpointed iteration via the
    /// path, then iterate on with the frame's captured bounds.
    void resumeDo(const CtrlFrame& f, size_t depth);
    /// Set of linear proc ids executing statement `s` now. Returns a
    /// reference to a per-instance scratch (or the constant all-procs
    /// set); valid until the next call.
    [[nodiscard]] const std::vector<int>& executorsOf(const Stmt* s);
    /// Evaluate `e` on every executor against the frozen pre-statement
    /// state, filling values_; parallel when the pool is active and the
    /// executor set is wide enough.
    void evalPhase(const StmtPlan& plan, const std::vector<int>& execs,
                   const Expr* e);
    void phaseWorker(int worker);
    /// Apply deferred store writes and account the recorded transfers,
    /// workers in index order (deterministic for any thread count).
    void mergeWorkers();
    /// Evaluate `e` on processor `proc`, triggering communication for
    /// any data the processor does not hold.
    double evalOnW(WorkerScratch& w, int proc, const Expr* e);
    /// Ensure `proc` holds the value of reference `ref`; fetch from the
    /// owner through the covering comm op otherwise.
    double fetchW(WorkerScratch& w, int proc, const Expr* ref);
    /// Account one element transfer's message event (main thread).
    void noteEvent(const CommOp* op);
    /// Per-proc executed/skipped accounting for one statement instance.
    void accountExecutors(const std::vector<int>& execs);
    void evalDescInto(const RefDesc& desc, GridSet& out) const;

    const SpmdLowering& low_;
    const Program& prog_;
    Interpreter oracle_;
    int procCount_;
    int elemBytes_;
    int threads_;
    std::unique_ptr<LockstepPool> pool_;
    std::vector<Store> procStore_;
    std::vector<ProcSimMetrics> procMetrics_;
    std::int64_t transfers_ = 0;
    std::int64_t procStmts_ = 0;
    double wallSec_ = 0.0;
    InternedEventSet events_;
    std::vector<std::int64_t> eventsPerOp_;  ///< by CommOp::id (dense)
    std::vector<std::int64_t> elemsPerOp_;   ///< by CommOp::id (dense)

    // --- precomputed execution plan (built once in the constructor) ---
    std::vector<StmtPlan> plans_;               ///< by Stmt::id
    std::vector<const CommOp*> opByRef_;        ///< by Expr::id
    std::vector<std::vector<SymbolId>> opCtxVars_;  ///< by CommOp::id
    std::vector<int> allProcs_;

    // --- per-instance scratch (main thread; no per-statement allocs) ---
    std::vector<int> execsScratch_;
    GridSet gsScratch_;
    std::vector<int> coordsScratch_;
    std::vector<char> flagsScratch_;
    std::vector<double> values_;
    std::vector<std::int64_t> refFlat_;  ///< by Expr::id, per instance
    std::vector<std::int64_t> ctxScratch_;
    std::vector<WorkerScratch> workers_;

    // --- current phase (set by evalPhase, read by workers) ---
    const std::vector<int>* phaseExecs_ = nullptr;
    const Expr* phaseExpr_ = nullptr;

    // --- fault injection & recovery (all null/false when disabled) ---
    SimRecoveryConfig rcfg_;
    std::unique_ptr<ReliableTransport> transport_;
    FaultSite* crashSite_ = nullptr;
    /// True when boundary() has any work (crash site, periodic
    /// checkpoints, or an armed cancel token): the only per-statement
    /// cost of the disabled layer is this one branch.
    bool boundaryArmed_ = false;
    /// Maintain ctrl_ frames (true iff a checkpoint can be taken).
    bool trackCtrl_ = false;
    std::int64_t instances_ = 0;  ///< statement-boundary counter
    int recoveries_ = 0;
    std::int64_t checkpointsTaken_ = 0;
    std::vector<CtrlFrame> ctrl_;  ///< live Do/If frames (see CtrlFrame)
    std::unique_ptr<Checkpoint> ckpt_;

    // --- telemetry (all null when not opted in via setTelemetry) ---
    /// 1-in-N phase sampling for the eval/merge histograms (power of
    /// two; the armed-but-idle overhead budget is <2% of the run).
    static constexpr std::uint32_t kTelemetrySample = 64;
    std::uint32_t evalTick_ = 0;
    std::uint32_t mergeTick_ = 0;
    obs::MetricRegistry* metrics_ = nullptr;
    obs::ConcurrentTracer* ctracer_ = nullptr;
    obs::Histogram* evalHist_ = nullptr;    ///< sim.phase.eval_us
    obs::Histogram* mergeHist_ = nullptr;   ///< sim.phase.merge_us
    obs::Histogram* ckptHist_ = nullptr;    ///< sim.checkpoint_us

    // --- per-statement profiler (null when not opted in) ---
    std::unique_ptr<obs::StmtProfile> profile_;
};

}  // namespace phpf
