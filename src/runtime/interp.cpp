#include "runtime/interp.h"

#include <cmath>

#include "runtime/flat_index.h"
#include "support/diagnostics.h"

namespace phpf {

Interpreter::Interpreter(const Program& p) : prog_(p), store_(p) {
    store_.setAllValid();
}

double Interpreter::eval(const Expr* e) const {
    switch (e->kind) {
        case ExprKind::IntLit:
            return static_cast<double>(e->ival);
        case ExprKind::RealLit:
            return e->rval;
        case ExprKind::VarRef:
            return store_.get(e->sym);
        case ExprKind::ArrayRef:
            return store_.get(e->sym, flatIndexOf(e));
        case ExprKind::Unary: {
            const double a = eval(e->args[0]);
            return e->uop == UnaryOp::Neg ? -a : (a != 0.0 ? 0.0 : 1.0);
        }
        case ExprKind::Binary: {
            const double a = eval(e->args[0]);
            const double b = eval(e->args[1]);
            switch (e->bop) {
                case BinaryOp::Add: return a + b;
                case BinaryOp::Sub: return a - b;
                case BinaryOp::Mul: return a * b;
                case BinaryOp::Div: return a / b;
                case BinaryOp::Pow: return std::pow(a, b);
                case BinaryOp::Lt: return a < b ? 1.0 : 0.0;
                case BinaryOp::Le: return a <= b ? 1.0 : 0.0;
                case BinaryOp::Gt: return a > b ? 1.0 : 0.0;
                case BinaryOp::Ge: return a >= b ? 1.0 : 0.0;
                case BinaryOp::Eq: return a == b ? 1.0 : 0.0;
                case BinaryOp::Ne: return a != b ? 1.0 : 0.0;
                case BinaryOp::And: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
                case BinaryOp::Or: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
            }
            return 0.0;
        }
        case ExprKind::Call: {
            switch (e->fn) {
                case Intrinsic::Abs: return std::abs(eval(e->args[0]));
                case Intrinsic::Max:
                    return std::max(eval(e->args[0]), eval(e->args[1]));
                case Intrinsic::Min:
                    return std::min(eval(e->args[0]), eval(e->args[1]));
                case Intrinsic::Sqrt: return std::sqrt(eval(e->args[0]));
                case Intrinsic::Mod:
                    return std::fmod(eval(e->args[0]), eval(e->args[1]));
                case Intrinsic::Sign: {
                    const double a = eval(e->args[0]);
                    const double b = eval(e->args[1]);
                    return b >= 0.0 ? std::abs(a) : -std::abs(a);
                }
                case Intrinsic::Exp: return std::exp(eval(e->args[0]));
            }
            return 0.0;
        }
    }
    return 0.0;
}

std::int64_t Interpreter::flatIndexOf(const Expr* arrayRef) const {
    // Column-major flattening shared with the bytecode compiler
    // (runtime/flat_index.h): the layout and the bounds-check messages
    // exist exactly once.
    return flatIndexOfRef(prog_, arrayRef,
                          [this](const Expr* sub) { return evalIndex(sub); });
}

void Interpreter::execStmt(const Stmt* s) {
    ++executed_;
    switch (s->kind) {
        case StmtKind::Assign: {
            const double v = eval(s->rhs);
            if (s->lhs->kind == ExprKind::VarRef)
                store_.set(s->lhs->sym, 0, v);
            else
                store_.set(s->lhs->sym, flatIndexOf(s->lhs), v);
            break;
        }
        case StmtKind::If:
            if (eval(s->cond) != 0.0)
                execBlock(s->thenBody);
            else
                execBlock(s->elseBody);
            break;
        case StmtKind::Do: {
            const auto lb = evalIndex(s->lb);
            const auto ub = evalIndex(s->ub);
            const auto step = s->step != nullptr ? evalIndex(s->step)
                                                 : std::int64_t{1};
            PHPF_ASSERT(step != 0, "zero step in DO");
            for (std::int64_t iv = lb; step > 0 ? iv <= ub : iv >= ub;
                 iv += step) {
                store_.set(s->loopVar, 0, static_cast<double>(iv));
                try {
                    execBlock(s->body);
                } catch (GotoSignal& g) {
                    // Forward jump landing inside this loop body resumes
                    // the same iteration from the label.
                    bool handled = false;
                    for (size_t i = 0; i < s->body.size(); ++i) {
                        if (s->body[i]->label == g.label) {
                            std::vector<Stmt*> rest(s->body.begin() +
                                                        static_cast<std::ptrdiff_t>(i),
                                                    s->body.end());
                            execBlock(rest);
                            handled = true;
                            break;
                        }
                    }
                    if (!handled) throw;
                }
            }
            break;
        }
        case StmtKind::Goto:
            throw GotoSignal{s->gotoTarget};
        case StmtKind::Continue:
            break;
    }
}

void Interpreter::execBlock(const std::vector<Stmt*>& block) {
    for (size_t i = 0; i < block.size(); ++i) {
        try {
            execStmt(block[i]);
        } catch (GotoSignal& g) {
            bool handled = false;
            for (size_t j = i + 1; j < block.size(); ++j) {
                if (block[j]->label == g.label) {
                    i = j - 1;  // resume just before the label target
                    handled = true;
                    break;
                }
            }
            if (!handled) throw;
        }
    }
}

void Interpreter::run() { execBlock(prog_.top); }

double Interpreter::scalar(const std::string& name) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return store_.get(s);
}

double Interpreter::element(const std::string& name,
                            std::vector<std::int64_t> idx) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return store_.get(s, store_.flatten(prog_, s, idx));
}

void Interpreter::setScalar(const std::string& name, double v) {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    store_.set(s, 0, v);
}

void Interpreter::setElement(const std::string& name,
                             std::vector<std::int64_t> idx, double v) {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    store_.set(s, store_.flatten(prog_, s, idx), v);
}

}  // namespace phpf
