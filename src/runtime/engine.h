#pragma once

#include <cstdint>
#include <string_view>

namespace phpf {

/// Execution engine of the SPMD simulator's per-statement eval phase.
/// Both engines share every other phase (deferred-write lockstep merge,
/// checkpoints, fault injection, profiler hooks) and are bit-identical
/// in results and metrics; bytecode is simply faster.
enum class SimEngine : std::uint8_t {
    Interp,    ///< tree-walking reference engine
    Bytecode,  ///< register-bytecode VM over SoA lanes (default)
};

[[nodiscard]] inline const char* simEngineName(SimEngine e) {
    return e == SimEngine::Interp ? "interp" : "bytecode";
}

/// Parses "interp" | "bytecode"; returns false (and leaves `out`
/// untouched) on anything else.
[[nodiscard]] inline bool parseSimEngine(std::string_view s, SimEngine* out) {
    if (s == "interp") {
        *out = SimEngine::Interp;
        return true;
    }
    if (s == "bytecode") {
        *out = SimEngine::Bytecode;
        return true;
    }
    return false;
}

}  // namespace phpf
