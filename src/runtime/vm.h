#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "runtime/bytecode.h"

namespace phpf::vm {

/// Asserts the chunk is well formed (register/constant/slot indices in
/// range), so the dispatch loop can run unchecked. Called once per
/// compiled statement, never per instance.
void validate(const bc::Chunk& ch, int slotCount);

/// Dispatch-loop VM over SoA lanes. Registers are banks of `stride`
/// doubles (one element per lane), so one instruction dispatch is
/// amortized over every simulated processor executing the statement —
/// the register file for a phase is `chunk.numRegs * stride` doubles of
/// caller-owned scratch.
///
/// `fetch(dst, lanes, slot)` fills dst[0..lanes) with the slot's
/// operand for every lane — row granularity, so an engine whose state
/// is lane-major (the simulator's SoA banks) loads a fully-valid slot
/// with one contiguous copy instead of `lanes` callback dispatches.
/// Fetch instructions execute in postorder and a row fills lanes in
/// ascending order, so the (slot, lane) side-effect sequence is a
/// deterministic reordering of the interpreter's (lane, slot) order
/// with identical outcomes (see SpmdSimulator's engine notes).
///
/// The result of the expression is register bank 0.
template <typename FetchFn>
void runLanes(const bc::Chunk& ch, int lanes, double* regs, int stride,
              FetchFn&& fetch) {
    for (const bc::Inst& in : ch.code) {
        double* d = regs + static_cast<std::ptrdiff_t>(in.a) * stride;
        const double* x = regs + static_cast<std::ptrdiff_t>(in.b) * stride;
        const double* y = regs + static_cast<std::ptrdiff_t>(in.c) * stride;
        switch (in.op) {
            case bc::Op::Const: {
                const double v = ch.consts[in.b];
                for (int l = 0; l < lanes; ++l) d[l] = v;
                break;
            }
            case bc::Op::Fetch:
                fetch(d, lanes, in.b);
                break;
            case bc::Op::Neg:
                for (int l = 0; l < lanes; ++l) d[l] = -x[l];
                break;
            case bc::Op::Not:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] != 0.0 ? 0.0 : 1.0;
                break;
            case bc::Op::Abs:
                for (int l = 0; l < lanes; ++l) d[l] = std::abs(x[l]);
                break;
            case bc::Op::Sqrt:
                for (int l = 0; l < lanes; ++l) d[l] = std::sqrt(x[l]);
                break;
            case bc::Op::Exp:
                for (int l = 0; l < lanes; ++l) d[l] = std::exp(x[l]);
                break;
            case bc::Op::Add:
                for (int l = 0; l < lanes; ++l) d[l] = x[l] + y[l];
                break;
            case bc::Op::Sub:
                for (int l = 0; l < lanes; ++l) d[l] = x[l] - y[l];
                break;
            case bc::Op::Mul:
                for (int l = 0; l < lanes; ++l) d[l] = x[l] * y[l];
                break;
            case bc::Op::Div:
                for (int l = 0; l < lanes; ++l) d[l] = x[l] / y[l];
                break;
            case bc::Op::Pow:
                for (int l = 0; l < lanes; ++l)
                    d[l] = std::pow(x[l], y[l]);
                break;
            case bc::Op::Lt:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] < y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::Le:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] <= y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::Gt:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] > y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::Ge:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] >= y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::Eq:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] == y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::Ne:
                for (int l = 0; l < lanes; ++l)
                    d[l] = x[l] != y[l] ? 1.0 : 0.0;
                break;
            case bc::Op::And:
                for (int l = 0; l < lanes; ++l)
                    d[l] = (x[l] != 0.0 && y[l] != 0.0) ? 1.0 : 0.0;
                break;
            case bc::Op::Or:
                for (int l = 0; l < lanes; ++l)
                    d[l] = (x[l] != 0.0 || y[l] != 0.0) ? 1.0 : 0.0;
                break;
            case bc::Op::Max:
                // std::max/std::min, not comparisons: identical result
                // selection to the interpreter for ties and NaNs.
                for (int l = 0; l < lanes; ++l)
                    d[l] = std::max(x[l], y[l]);
                break;
            case bc::Op::Min:
                for (int l = 0; l < lanes; ++l)
                    d[l] = std::min(x[l], y[l]);
                break;
            case bc::Op::Mod:
                for (int l = 0; l < lanes; ++l)
                    d[l] = std::fmod(x[l], y[l]);
                break;
            case bc::Op::Sign:
                for (int l = 0; l < lanes; ++l)
                    d[l] = y[l] >= 0.0 ? std::abs(x[l]) : -std::abs(x[l]);
                break;
        }
    }
}

/// Single-lane run (the simulator's sequential oracle): `load(slot)`
/// supplies operands, `regs` is `chunk.numRegs` doubles of scratch.
/// Returns the expression value.
template <typename LoadFn>
double runScalar(const bc::Chunk& ch, double* regs, LoadFn&& load) {
    runLanes(ch, 1, regs, 1,
             [&](double* d, int /*lanes*/, int slot) { d[0] = load(slot); });
    return regs[0];
}

}  // namespace phpf::vm
