#include "runtime/bytecode.h"

#include <cmath>

#include "comm/ref_desc.h"
#include "ir/printer.h"
#include "runtime/flat_index.h"
#include "spmd/lowering.h"
#include "support/diagnostics.h"

namespace phpf::bc {

namespace {

/// Arena-allocated affine accumulator: c0 + sum(coeff * sym) as a
/// linked term list (one bump allocation per term, merged once at the
/// end).
struct AffTerm {
    SymbolId sym;
    std::int64_t coeff;
    AffTerm* next;
};

struct Aff {
    std::int64_t c0 = 0;
    AffTerm* terms = nullptr;
};

/// Folds `e * scale` into `out` when `e` is an affine combination of
/// integer literals and integer scalar symbols. Division, non-integral
/// reals, array-valued subscripts, and variable*variable products all
/// refuse (the caller keeps the tree fallback). Restricting terms to
/// integer-typed scalars keeps the per-term truncation in evalIndexForm
/// exact, so the affine value matches the interpreter's
/// truncate-at-the-end semantics bit for bit.
bool foldAffine(const Program& prog, const Expr* e, std::int64_t scale,
                Aff& out, Arena& arena) {
    switch (e->kind) {
        case ExprKind::IntLit:
            out.c0 += scale * e->ival;
            return true;
        case ExprKind::RealLit: {
            const auto i = static_cast<std::int64_t>(e->rval);
            if (static_cast<double>(i) != e->rval) return false;
            out.c0 += scale * i;
            return true;
        }
        case ExprKind::VarRef: {
            const Symbol& sym = prog.sym(e->sym);
            if (sym.isArray() || sym.type != ScalarType::Int) return false;
            out.terms = arena.make<AffTerm>(AffTerm{e->sym, scale, out.terms});
            return true;
        }
        case ExprKind::Unary:
            return e->uop == UnaryOp::Neg &&
                   foldAffine(prog, e->args[0], -scale, out, arena);
        case ExprKind::Binary:
            switch (e->bop) {
                case BinaryOp::Add:
                    return foldAffine(prog, e->args[0], scale, out, arena) &&
                           foldAffine(prog, e->args[1], scale, out, arena);
                case BinaryOp::Sub:
                    return foldAffine(prog, e->args[0], scale, out, arena) &&
                           foldAffine(prog, e->args[1], -scale, out, arena);
                case BinaryOp::Mul: {
                    // One side must fold to a pure integer constant.
                    Aff k;
                    if (foldAffine(prog, e->args[1], 1, k, arena) &&
                        k.terms == nullptr)
                        return foldAffine(prog, e->args[0], scale * k.c0, out,
                                          arena);
                    k = Aff{};
                    if (foldAffine(prog, e->args[0], 1, k, arena) &&
                        k.terms == nullptr)
                        return foldAffine(prog, e->args[1], scale * k.c0, out,
                                          arena);
                    return false;
                }
                default:
                    return false;
            }
        case ExprKind::ArrayRef:
        case ExprKind::Call:
            return false;
    }
    return false;
}

/// Merge the term list into a deduplicated IndexForm (coefficients of
/// the same symbol combine; zero coefficients drop).
void finishForm(const Aff& a, IndexForm& out) {
    out.affine = true;
    out.base = a.c0;
    for (const AffTerm* t = a.terms; t != nullptr; t = t->next) {
        bool merged = false;
        for (IndexForm::Term& have : out.terms) {
            if (have.sym != t->sym) continue;
            have.coeff += t->coeff;
            merged = true;
            break;
        }
        if (!merged) out.terms.push_back(IndexForm::Term{t->sym, t->coeff});
    }
    for (size_t i = out.terms.size(); i-- > 0;)
        if (out.terms[i].coeff == 0)
            out.terms.erase(out.terms.begin() +
                            static_cast<std::ptrdiff_t>(i));
}

/// Index form of a subscript VALUE (guard descriptors).
IndexForm valueIndexForm(const Program& prog, const Expr* e, Arena& arena) {
    IndexForm f;
    f.fallback = e;
    f.flatFallback = false;
    Aff a;
    if (foldAffine(prog, e, 1, a, arena)) finishForm(a, f);
    return f;
}

/// Subscript forms of one executor/owner descriptor, per grid dim.
std::vector<IndexForm> descForms(const Program& prog, const RefDesc& desc,
                                 Arena& arena) {
    std::vector<IndexForm> forms(desc.dims.size());
    for (size_t g = 0; g < desc.dims.size(); ++g) {
        const RefDim& dim = desc.dims[g];
        if (dim.kind != RefDim::Kind::Partitioned) continue;
        PHPF_ASSERT(dim.subscriptExpr != nullptr,
                    "partitioned dim without subscript expr");
        forms[g] = valueIndexForm(prog, dim.subscriptExpr, arena);
    }
    return forms;
}

/// Postorder linearizer with stack-discipline register allocation.
class ExprCompiler {
public:
    explicit ExprCompiler(std::vector<FetchSlot>& slots) : slots_(slots) {}

    Chunk take(const Expr* e) {
        compile(e, 0);
        ch_.numRegs = maxReg_ + 1;
        return std::move(ch_);
    }

private:
    void emit(Op op, int a, int b, int c = 0) {
        if (a > maxReg_) maxReg_ = a;
        PHPF_ASSERT(maxReg_ < 256, "bytecode register file overflow");
        ch_.code.push_back(Inst{op, static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b),
                                static_cast<std::uint8_t>(c)});
    }

    int addConst(double v) {
        for (size_t i = 0; i < ch_.consts.size(); ++i)
            if (ch_.consts[i] == v && std::signbit(ch_.consts[i]) ==
                                          std::signbit(v))
                return static_cast<int>(i);
        ch_.consts.push_back(v);
        PHPF_ASSERT(ch_.consts.size() <= 256, "constant pool overflow");
        return static_cast<int>(ch_.consts.size() - 1);
    }

    int addSlot(const Expr* ref) {
        slots_.push_back(FetchSlot{ref, ref->sym,
                                   ref->kind == ExprKind::ArrayRef});
        PHPF_ASSERT(slots_.size() <= 256, "fetch slot overflow");
        return static_cast<int>(slots_.size() - 1);
    }

    void compileBin(Op op, const Expr* e, int dst) {
        compile(e->args[0], dst);
        compile(e->args[1], dst + 1);
        emit(op, dst, dst, dst + 1);
    }

    void compileUn(Op op, const Expr* e, int dst) {
        compile(e->args[0], dst);
        emit(op, dst, dst);
    }

    void compile(const Expr* e, int dst) {
        switch (e->kind) {
            case ExprKind::IntLit:
                emit(Op::Const, dst, addConst(static_cast<double>(e->ival)));
                return;
            case ExprKind::RealLit:
                emit(Op::Const, dst, addConst(e->rval));
                return;
            case ExprKind::VarRef:
            case ExprKind::ArrayRef:
                emit(Op::Fetch, dst, addSlot(e));
                return;
            case ExprKind::Unary:
                compileUn(e->uop == UnaryOp::Neg ? Op::Neg : Op::Not, e, dst);
                return;
            case ExprKind::Binary:
                switch (e->bop) {
                    case BinaryOp::Add: compileBin(Op::Add, e, dst); return;
                    case BinaryOp::Sub: compileBin(Op::Sub, e, dst); return;
                    case BinaryOp::Mul: compileBin(Op::Mul, e, dst); return;
                    case BinaryOp::Div: compileBin(Op::Div, e, dst); return;
                    case BinaryOp::Pow: compileBin(Op::Pow, e, dst); return;
                    case BinaryOp::Lt: compileBin(Op::Lt, e, dst); return;
                    case BinaryOp::Le: compileBin(Op::Le, e, dst); return;
                    case BinaryOp::Gt: compileBin(Op::Gt, e, dst); return;
                    case BinaryOp::Ge: compileBin(Op::Ge, e, dst); return;
                    case BinaryOp::Eq: compileBin(Op::Eq, e, dst); return;
                    case BinaryOp::Ne: compileBin(Op::Ne, e, dst); return;
                    case BinaryOp::And: compileBin(Op::And, e, dst); return;
                    case BinaryOp::Or: compileBin(Op::Or, e, dst); return;
                }
                return;
            case ExprKind::Call:
                switch (e->fn) {
                    case Intrinsic::Abs: compileUn(Op::Abs, e, dst); return;
                    case Intrinsic::Sqrt: compileUn(Op::Sqrt, e, dst); return;
                    case Intrinsic::Exp: compileUn(Op::Exp, e, dst); return;
                    case Intrinsic::Max: compileBin(Op::Max, e, dst); return;
                    case Intrinsic::Min: compileBin(Op::Min, e, dst); return;
                    case Intrinsic::Mod: compileBin(Op::Mod, e, dst); return;
                    case Intrinsic::Sign: compileBin(Op::Sign, e, dst); return;
                }
                return;
        }
    }

    std::vector<FetchSlot>& slots_;
    Chunk ch_;
    int maxReg_ = 0;
};

}  // namespace

Chunk compileExpr(const Program& /*prog*/, const Expr* e,
                  std::vector<FetchSlot>& slots) {
    return ExprCompiler(slots).take(e);
}

std::vector<IndexForm> compileDescForms(const Program& prog,
                                        const RefDesc& desc, Arena& arena) {
    return descForms(prog, desc, arena);
}

IndexForm flatIndexForm(const Program& prog, const Expr* ref, Arena& arena) {
    IndexForm f;
    // The tree fallback stays even when the affine fold succeeds: debug
    // builds re-derive the index through the interpreter's checked path
    // and compare (evalIndexForm), so per-dimension bounds violations
    // keep tripping the interpreter's exact assertion messages.
    f.fallback = ref;
    f.flatFallback = true;
    Aff total;
    bool ok = true;
    forEachSubscriptStride(
        prog, ref,
        [&](const Expr* sub, std::int64_t lb, std::int64_t /*ub*/,
            std::int64_t stride) {
            if (!ok) return;
            Aff a;
            if (!foldAffine(prog, sub, 1, a, arena)) {
                ok = false;
                return;
            }
            total.c0 += (a.c0 - lb) * stride;
            for (const AffTerm* t = a.terms; t != nullptr; t = t->next)
                total.terms = arena.make<AffTerm>(
                    AffTerm{t->sym, t->coeff * stride, total.terms});
        });
    if (ok) finishForm(total, f);
    return f;
}

StmtCode compileStmt(const Program& prog, const Stmt* s, const StmtExec* exec,
                     const std::vector<const RefDesc*>& unionSrcs,
                     Arena& arena) {
    StmtCode out;
    const Expr* value = nullptr;
    if (s->kind == StmtKind::Assign) {
        value = s->rhs;
        if (s->lhs->kind == ExprKind::ArrayRef)
            out.lhsIndex = flatIndexForm(prog, s->lhs, arena);
    } else if (s->kind == StmtKind::If) {
        value = s->cond;
    }
    if (value != nullptr) out.value = compileExpr(prog, value, out.slots);
    out.slotIndex.resize(out.slots.size());
    for (size_t i = 0; i < out.slots.size(); ++i)
        if (out.slots[i].isArray)
            out.slotIndex[i] = flatIndexForm(prog, out.slots[i].ref, arena);
    if (exec != nullptr) {
        if (exec->guard == StmtExec::Guard::OwnerOf)
            out.execIndex = descForms(prog, exec->execDesc, arena);
        else if (exec->guard == StmtExec::Guard::Union)
            for (const RefDesc* d : unionSrcs)
                out.unionIndex.push_back(descForms(prog, *d, arena));
    }
    return out;
}

std::string disassemble(const Program& prog, const Chunk& ch,
                        const std::vector<FetchSlot>& slots) {
    static constexpr const char* kNames[] = {
        "const", "fetch", "neg", "not", "abs", "sqrt", "exp",
        "add", "sub", "mul", "div", "pow",
        "lt", "le", "gt", "ge", "eq", "ne", "and", "or",
        "max", "min", "mod", "sign",
    };
    std::string out;
    for (const Inst& in : ch.code) {
        const auto idx = static_cast<size_t>(in.op);
        out += 'r';
        out += std::to_string(in.a);
        out += " = ";
        out += kNames[idx];
        switch (in.op) {
            case Op::Const:
                out += ' ';
                out += std::to_string(ch.consts[in.b]);
                break;
            case Op::Fetch:
                out += ' ';
                out += printExpr(prog, slots[in.b].ref);
                break;
            case Op::Neg:
            case Op::Not:
            case Op::Abs:
            case Op::Sqrt:
            case Op::Exp:
                out += " r";
                out += std::to_string(in.b);
                break;
            default:
                out += " r";
                out += std::to_string(in.b);
                out += " r";
                out += std::to_string(in.c);
                break;
        }
        out += '\n';
    }
    return out;
}

}  // namespace phpf::bc
