#include "runtime/reliable_transport.h"

#include <algorithm>
#include <string>

namespace phpf {

ReliableTransport::ReliableTransport(const FaultInjector& faults,
                                     TransportConfig cfg)
    : cfg_(cfg),
      drop_(faults.find(faultsite::kNetDrop)),
      dup_(faults.find(faultsite::kNetDup)),
      delay_(faults.find(faultsite::kNetDelay)) {}

void ReliableTransport::deliver(const char* what) {
    const std::int64_t seq = stats_.messages++;
    std::int64_t ticks = 0;
    for (int attempt = 1; attempt <= cfg_.maxAttempts; ++attempt) {
        if (FaultInjector::poll(drop_)) {
            // Message (or its ack) lost in flight: back off and resend.
            ++stats_.drops;
            ++stats_.retransmits;
            const std::int64_t backoff =
                cfg_.baseBackoffTicks << std::min(attempt - 1, 30);
            ticks += backoff;
            stats_.backoffTicks += backoff;
            if (ticks > cfg_.timeoutTicks)
                throw SimFault(
                    faultsite::kNetDrop,
                    std::string("transfer #") + std::to_string(seq) + " (" +
                        what + ") timed out after " + std::to_string(ticks) +
                        " ticks (budget " + std::to_string(cfg_.timeoutTicks) +
                        ", attempt " + std::to_string(attempt) + ")");
            continue;
        }
        if (FaultInjector::poll(dup_)) {
            // Duplicate arrival: the receiver has seen this sequence
            // number, the extra copy is discarded. Idempotent by
            // construction — the payload of every copy is identical.
            ++stats_.duplicates;
        }
        if (FaultInjector::poll(delay_)) {
            ++stats_.delays;
            const std::int64_t d =
                delay_->spec().ticks > 0 ? delay_->spec().ticks : 1;
            ticks += d;
            stats_.delayTicks += d;
            if (ticks > cfg_.timeoutTicks)
                throw SimFault(
                    faultsite::kNetDelay,
                    std::string("transfer #") + std::to_string(seq) + " (" +
                        what + ") exceeded its tick budget while delayed (" +
                        std::to_string(ticks) + " > " +
                        std::to_string(cfg_.timeoutTicks) + ")");
        }
        return;  // delivered and acked
    }
    throw SimFault(faultsite::kNetDrop,
                   std::string("transfer #") + std::to_string(seq) + " (" +
                       what + ") lost " + std::to_string(cfg_.maxAttempts) +
                       " times; retry budget exhausted");
}

}  // namespace phpf
