#pragma once

#include <cstdint>

#include "ir/program.h"
#include "support/diagnostics.h"

namespace phpf {

/// Column-major flattening of an ArrayRef's subscripts, shared between
/// the tree-walking Interpreter and the bytecode compiler so the layout
/// (and the bounds-check messages) exist exactly once. `evalIndex` maps
/// a subscript Expr* to its integer value; the walk itself never
/// allocates.
template <typename EvalIndex>
[[nodiscard]] std::int64_t flatIndexOfRef(const Program& prog,
                                          const Expr* arrayRef,
                                          EvalIndex&& evalIndex) {
    const Symbol& sym = prog.sym(arrayRef->sym);
    PHPF_ASSERT(static_cast<int>(arrayRef->args.size()) == sym.rank(),
                "subscript rank mismatch for " + sym.name);
    std::int64_t flat = 0;
    std::int64_t stride = 1;
    for (int d = 0; d < sym.rank(); ++d) {
        const std::int64_t v = evalIndex(arrayRef->args[static_cast<size_t>(d)]);
        const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
        PHPF_ASSERT(v >= dim.lb && v <= dim.ub,
                    "subscript out of bounds for " + sym.name);
        flat += (v - dim.lb) * stride;
        stride *= dim.extent();
    }
    return flat;
}

/// The per-dimension layout walk behind flatIndexOfRef, for compilers
/// that fold the strides instead of evaluating subscripts:
/// `fn(subscriptExpr, lb, ub, stride)` per declared dimension, column
/// major.
template <typename DimFn>
void forEachSubscriptStride(const Program& prog, const Expr* arrayRef,
                            DimFn&& fn) {
    const Symbol& sym = prog.sym(arrayRef->sym);
    PHPF_ASSERT(static_cast<int>(arrayRef->args.size()) == sym.rank(),
                "subscript rank mismatch for " + sym.name);
    std::int64_t stride = 1;
    for (int d = 0; d < sym.rank(); ++d) {
        const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
        fn(arrayRef->args[static_cast<size_t>(d)], dim.lb, dim.ub, stride);
        stride *= dim.extent();
    }
}

}  // namespace phpf
