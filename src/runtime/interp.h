#pragma once

#include <functional>

#include "runtime/store.h"

namespace phpf {

/// Sequential reference interpreter of the mini-HPF IR. It defines the
/// semantics every parallel execution must reproduce; the SPMD
/// simulator's results are compared against it bit for bit.
///
/// GOTO is supported for forward jumps to labels in the current or an
/// enclosing block (the paper's Fig. 7 pattern).
class Interpreter {
public:
    explicit Interpreter(const Program& p);

    /// Initialize storage before running (e.g. seed input arrays).
    [[nodiscard]] Store& store() { return store_; }
    [[nodiscard]] const Store& store() const { return store_; }

    void run();

    /// Execute a single statement (used by the SPMD simulator's oracle).
    void execStmt(const Stmt* s);
    [[nodiscard]] double eval(const Expr* e) const;
    [[nodiscard]] std::int64_t evalIndex(const Expr* e) const {
        return static_cast<std::int64_t>(eval(e));
    }
    [[nodiscard]] std::int64_t flatIndexOf(const Expr* arrayRef) const;

    [[nodiscard]] std::int64_t statementsExecuted() const { return executed_; }
    /// Restore the executed-statement counter (checkpoint recovery: the
    /// SPMD simulator snapshots/restores its oracle wholesale so a
    /// replayed run's accounting stays bit-identical).
    void setStatementsExecuted(std::int64_t n) { executed_ = n; }
    /// Count one statement executed outside execStmt (the SPMD
    /// simulator's bytecode engine applies Assign effects directly but
    /// must keep the oracle's accounting identical to execStmt).
    void noteStatementExecuted() { ++executed_; }

    /// Convenience accessors.
    [[nodiscard]] double scalar(const std::string& name) const;
    [[nodiscard]] double element(const std::string& name,
                                 std::vector<std::int64_t> idx) const;
    void setScalar(const std::string& name, double v);
    void setElement(const std::string& name, std::vector<std::int64_t> idx,
                    double v);

private:
    struct GotoSignal {
        int label;
    };
    void execBlock(const std::vector<Stmt*>& block);

    const Program& prog_;
    Store store_;
    std::int64_t executed_ = 0;
};

}  // namespace phpf
