#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "runtime/interp.h"
#include "support/arena.h"

namespace phpf {

struct StmtExec;
struct RefDesc;

namespace bc {

/// Opcode set of the statement bytecode. Arithmetic matches the
/// tree-walking interpreter operation for operation (same libm calls,
/// same non-short-circuit And/Or), so a chunk evaluates bit-identically
/// to Interpreter::eval on the same inputs.
enum class Op : std::uint8_t {
    Const,  ///< a <- consts[b]
    Fetch,  ///< a <- value of slot b (engine-supplied load)
    Neg,    ///< a <- -r[b]
    Not,    ///< a <- r[b] != 0 ? 0 : 1
    Abs,    ///< a <- |r[b]|
    Sqrt,   ///< a <- sqrt(r[b])
    Exp,    ///< a <- exp(r[b])
    Add, Sub, Mul, Div, Pow,        ///< a <- r[b] op r[c]
    Lt, Le, Gt, Ge, Eq, Ne,         ///< a <- r[b] op r[c] ? 1 : 0
    And, Or,                        ///< non-short-circuit logicals
    Max, Min, Mod, Sign,            ///< binary intrinsics
};

/// One register instruction: a = dest, b/c = operand registers, or the
/// constant-pool / fetch-slot index for Const / Fetch.
struct Inst {
    Op op;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t c = 0;
};

/// Flat bytecode of one expression tree: postorder-linearized with
/// stack-discipline register allocation (operands evaluate left to
/// right, exactly the interpreter's recursion order, so fetch side
/// effects happen in the same sequence). The result lands in register 0.
struct Chunk {
    std::vector<Inst> code;
    std::vector<double> consts;
    int numRegs = 0;

    [[nodiscard]] bool empty() const { return code.empty(); }
};

/// One VarRef/ArrayRef the compiled expression reads in value position,
/// in depth-first order — the same order SpmdSimulator's interp engine
/// collects its fetchRefs, so either engine sees the identical fetch
/// sequence.
struct FetchSlot {
    const Expr* ref = nullptr;
    SymbolId sym = kNoSymbol;
    bool isArray = false;
};

/// An integer index expression strength-reduced to affine form
/// `base + sum(coeff_i * intval(sym_i))` over integer scalar symbols
/// (loop variables, induction scalars). Evaluating the affine form is a
/// few integer multiply-adds instead of a subscript-tree walk per
/// statement instance; anything non-affine keeps the original tree as a
/// fallback and evaluates exactly like the interpreter.
struct IndexForm {
    struct Term {
        SymbolId sym;
        std::int64_t coeff;
    };

    bool affine = false;
    std::int64_t base = 0;
    std::vector<Term> terms;
    /// Non-affine fallback tree (subscript value), or for
    /// `flatFallback` the whole ArrayRef (flat element index).
    const Expr* fallback = nullptr;
    bool flatFallback = false;

    [[nodiscard]] bool present() const {
        return affine || fallback != nullptr;
    }
};

/// Evaluate an index form against the oracle interpreter's store.
/// Affine terms truncate each integer scalar individually — exact
/// whenever the scalars hold integral values, which the compiler
/// guarantees by folding only integer-typed symbols.
[[nodiscard]] inline std::int64_t evalIndexForm(const IndexForm& f,
                                                const Interpreter& oracle) {
    if (f.affine) {
        std::int64_t v = f.base;
        for (const IndexForm::Term& t : f.terms)
            v += t.coeff *
                 static_cast<std::int64_t>(oracle.store().get(t.sym));
        // Debug builds re-derive the index through the interpreter's
        // bounds-checked tree walk and compare — out-of-range
        // subscripts trip the interpreter's own assertion first, and
        // any affine-folding bug trips this one.
        PHPF_DASSERT(f.fallback == nullptr ||
                         v == (f.flatFallback
                                   ? oracle.flatIndexOf(f.fallback)
                                   : oracle.evalIndex(f.fallback)),
                     "affine index form diverges from its subscript tree");
        return v;
    }
    return f.flatFallback ? oracle.flatIndexOf(f.fallback)
                          : oracle.evalIndex(f.fallback);
}

/// Everything the bytecode engine precompiled for one statement.
struct StmtCode {
    Chunk value;                   ///< rhs (Assign) / cond (If)
    std::vector<FetchSlot> slots;  ///< Fetch operands, depth-first
    /// Per slot: flat element index of an ArrayRef slot (empty form for
    /// scalar slots).
    std::vector<IndexForm> slotIndex;
    /// Assign with ArrayRef lhs: flat element index of the store.
    IndexForm lhsIndex;
    /// OwnerOf guards: subscript form per grid dimension of the
    /// executor descriptor (only Partitioned dims are present()).
    std::vector<IndexForm> execIndex;
    /// Union guards: one descriptor's forms per contributing source.
    std::vector<std::vector<IndexForm>> unionIndex;
};

/// Compile one Assign/If statement's guard subscripts, index
/// expressions, and value tree. `exec` / `unionSrcs` mirror the
/// simulator's StmtPlan; either may be null/empty (Do statements need
/// no code). Scratch IR lives in `arena`; the returned StmtCode owns
/// its bytecode.
[[nodiscard]] StmtCode compileStmt(const Program& prog, const Stmt* s,
                                   const StmtExec* exec,
                                   const std::vector<const RefDesc*>& unionSrcs,
                                   Arena& arena);

/// Compile one owner/source descriptor's subscript forms, one per grid
/// dimension (only Partitioned dims are present()). The simulator uses
/// this for communication-op source descriptors, so per-miss owner
/// resolution never walks a subscript tree.
[[nodiscard]] std::vector<IndexForm> compileDescForms(const Program& prog,
                                                      const RefDesc& desc,
                                                      Arena& arena);

/// Compile a standalone expression (unit tests, tools).
[[nodiscard]] Chunk compileExpr(const Program& prog, const Expr* e,
                                std::vector<FetchSlot>& slots);

/// Flat-index form of an ArrayRef (unit tests, tools).
[[nodiscard]] IndexForm flatIndexForm(const Program& prog, const Expr* ref,
                                      Arena& arena);

/// Human-readable listing of a chunk (debugging / golden tests).
[[nodiscard]] std::string disassemble(const Program& prog, const Chunk& ch,
                                      const std::vector<FetchSlot>& slots);

}  // namespace bc
}  // namespace phpf
