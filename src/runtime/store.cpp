#include "runtime/store.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace phpf {

Store::Store(const Program& p) : prog_(&p) {
    offset_.resize(p.symbols.size());
    size_.resize(p.symbols.size());
    std::int64_t total = 0;
    for (const auto& s : p.symbols) {
        offset_[static_cast<size_t>(s.id)] = total;
        size_[static_cast<size_t>(s.id)] = s.elementCount();
        total += s.elementCount();
    }
    data_.assign(static_cast<size_t>(total), 0.0);
    valid_.assign(static_cast<size_t>(total), 0);
}

void Store::setAllValid() { std::fill(valid_.begin(), valid_.end(), 1); }

std::string Store::describeAccess(SymbolId s, std::int64_t flat) const {
    if (s < 0 || static_cast<size_t>(s) >= size_.size())
        return "symbol id " + std::to_string(s) + " out of range (" +
               std::to_string(size_.size()) + " symbols)";
    return prog_->sym(s).name + "[flat " + std::to_string(flat) +
           "] with declared size " +
           std::to_string(size_[static_cast<size_t>(s)]);
}

std::int64_t Store::flatten(const Program& p, SymbolId s,
                            const std::vector<std::int64_t>& idx) const {
    const Symbol& sym = p.sym(s);
    PHPF_ASSERT(static_cast<int>(idx.size()) == sym.rank(),
                "subscript rank mismatch for " + sym.name);
    std::int64_t flat = 0;
    std::int64_t stride = 1;
    for (int d = 0; d < sym.rank(); ++d) {
        const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
        PHPF_ASSERT(idx[static_cast<size_t>(d)] >= dim.lb &&
                        idx[static_cast<size_t>(d)] <= dim.ub,
                    "subscript out of bounds for " + sym.name);
        flat += (idx[static_cast<size_t>(d)] - dim.lb) * stride;
        stride *= dim.extent();
    }
    return flat;
}

}  // namespace phpf
