#include "runtime/store.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace phpf {

Store::Store(const Program& p) {
    offset_.resize(p.symbols.size());
    size_.resize(p.symbols.size());
    std::int64_t total = 0;
    for (const auto& s : p.symbols) {
        offset_[static_cast<size_t>(s.id)] = total;
        size_[static_cast<size_t>(s.id)] = s.elementCount();
        total += s.elementCount();
    }
    data_.assign(static_cast<size_t>(total), 0.0);
    valid_.assign(static_cast<size_t>(total), 0);
}

void Store::setAllValid() { std::fill(valid_.begin(), valid_.end(), 1); }

std::int64_t Store::flatten(const Program& p, SymbolId s,
                            const std::vector<std::int64_t>& idx) const {
    const Symbol& sym = p.sym(s);
    PHPF_ASSERT(static_cast<int>(idx.size()) == sym.rank(),
                "subscript rank mismatch for " + sym.name);
    std::int64_t flat = 0;
    std::int64_t stride = 1;
    for (int d = 0; d < sym.rank(); ++d) {
        const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
        PHPF_ASSERT(idx[static_cast<size_t>(d)] >= dim.lb &&
                        idx[static_cast<size_t>(d)] <= dim.ub,
                    "subscript out of bounds for " + sym.name);
        flat += (idx[static_cast<size_t>(d)] - dim.lb) * stride;
        stride *= dim.extent();
    }
    return flat;
}

}  // namespace phpf
