#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace phpf {

/// Flat value storage for every symbol of a program. All values are
/// held as doubles (integers are exactly representable far beyond any
/// subscript range we use); arrays are laid out column-major like
/// Fortran. The validity bitmap is used by the SPMD simulator to detect
/// reads of data a processor was never sent — an insufficient
/// communication plan trips an assertion instead of silently computing
/// garbage.
class Store {
public:
    explicit Store(const Program& p);

    [[nodiscard]] double get(SymbolId s, std::int64_t flat = 0) const {
        return data_[static_cast<size_t>(offset_[static_cast<size_t>(s)] + flat)];
    }
    void set(SymbolId s, std::int64_t flat, double v) {
        const std::int64_t at = offset_[static_cast<size_t>(s)] + flat;
        data_[static_cast<size_t>(at)] = v;
        valid_[static_cast<size_t>(at)] = 1;
    }
    void setScalar(SymbolId s, double v) { set(s, 0, v); }

    [[nodiscard]] bool valid(SymbolId s, std::int64_t flat = 0) const {
        return valid_[static_cast<size_t>(offset_[static_cast<size_t>(s)] +
                                          flat)] != 0;
    }
    void invalidate(SymbolId s, std::int64_t flat = 0) {
        valid_[static_cast<size_t>(offset_[static_cast<size_t>(s)] + flat)] = 0;
    }
    /// Mark everything valid (sequential interpretation has no notion of
    /// data placement).
    void setAllValid();

    /// Column-major flat index of `idx` (1-based per declared bounds).
    [[nodiscard]] std::int64_t flatten(const Program& p, SymbolId s,
                                       const std::vector<std::int64_t>& idx) const;

    [[nodiscard]] std::int64_t sizeOf(SymbolId s) const {
        return size_[static_cast<size_t>(s)];
    }

private:
    std::vector<std::int64_t> offset_;
    std::vector<std::int64_t> size_;
    std::vector<double> data_;
    std::vector<char> valid_;
};

}  // namespace phpf
