#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"
#include "support/diagnostics.h"

namespace phpf {

/// Flat value storage for every symbol of a program. All values are
/// held as doubles (integers are exactly representable far beyond any
/// subscript range we use); arrays are laid out column-major like
/// Fortran. The validity bitmap is used by the SPMD simulator to detect
/// reads of data a processor was never sent — an insufficient
/// communication plan trips an assertion instead of silently computing
/// garbage.
///
/// Element accesses bounds-check the flat index against the symbol's
/// declared size in Debug builds (PHPF_DASSERT) and compile to bare
/// loads/stores under NDEBUG.
class Store {
public:
    explicit Store(const Program& p);

    [[nodiscard]] double get(SymbolId s, std::int64_t flat = 0) const {
        checkFlat(s, flat);
        return data_[static_cast<size_t>(offset_[static_cast<size_t>(s)] + flat)];
    }
    void set(SymbolId s, std::int64_t flat, double v) {
        checkFlat(s, flat);
        const std::int64_t at = offset_[static_cast<size_t>(s)] + flat;
        data_[static_cast<size_t>(at)] = v;
        valid_[static_cast<size_t>(at)] = 1;
    }
    void setScalar(SymbolId s, double v) { set(s, 0, v); }

    [[nodiscard]] bool valid(SymbolId s, std::int64_t flat = 0) const {
        checkFlat(s, flat);
        return valid_[static_cast<size_t>(offset_[static_cast<size_t>(s)] +
                                          flat)] != 0;
    }
    void invalidate(SymbolId s, std::int64_t flat = 0) {
        checkFlat(s, flat);
        valid_[static_cast<size_t>(offset_[static_cast<size_t>(s)] + flat)] = 0;
    }
    /// Mark everything valid (sequential interpretation has no notion of
    /// data placement).
    void setAllValid();

    /// Column-major flat index of `idx` (1-based per declared bounds).
    [[nodiscard]] std::int64_t flatten(const Program& p, SymbolId s,
                                       const std::vector<std::int64_t>& idx) const;

    [[nodiscard]] std::int64_t sizeOf(SymbolId s) const {
        return size_[static_cast<size_t>(s)];
    }

    /// Linear element index of (s, flat) in the flat data block. The
    /// bytecode engine's SoA lane banks address per-processor state by
    /// this index; it bounds-checks exactly like get/set, so an
    /// out-of-range subscript trips the same symbol-named assertion.
    [[nodiscard]] std::int64_t elemIndexOf(SymbolId s,
                                           std::int64_t flat = 0) const {
        checkFlat(s, flat);
        return offset_[static_cast<size_t>(s)] + flat;
    }
    /// Total elements across every symbol (the data block's length).
    [[nodiscard]] std::int64_t totalElems() const {
        return static_cast<std::int64_t>(data_.size());
    }
    /// Raw blocks for bulk transcription (SoA load/flush); indexed by
    /// elemIndexOf.
    [[nodiscard]] const double* dataRaw() const { return data_.data(); }
    [[nodiscard]] double* dataRaw() { return data_.data(); }
    [[nodiscard]] const char* validRaw() const { return valid_.data(); }
    [[nodiscard]] char* validRaw() { return valid_.data(); }

private:
    void checkFlat([[maybe_unused]] SymbolId s,
                   [[maybe_unused]] std::int64_t flat) const {
        PHPF_DASSERT(
            s >= 0 && static_cast<size_t>(s) < size_.size() && flat >= 0 &&
                flat < size_[static_cast<size_t>(s)],
            "store access out of bounds: " + describeAccess(s, flat));
    }
    /// Slow-path formatting for a failed bounds check (symbol name and
    /// declared size); out of line so checkFlat stays inlineable.
    [[nodiscard]] std::string describeAccess(SymbolId s,
                                             std::int64_t flat) const;

    const Program* prog_;
    std::vector<std::int64_t> offset_;
    std::vector<std::int64_t> size_;
    std::vector<double> data_;
    std::vector<char> valid_;
};

}  // namespace phpf
