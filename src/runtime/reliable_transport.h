#pragma once

#include <cstdint>

#include "support/fault.h"

namespace phpf {

/// Retry/backoff budget of the simulated reliable transport.
struct TransportConfig {
    /// Send attempts per logical message before giving up (SimFault).
    int maxAttempts = 8;
    /// First retransmission backoff in simulated ticks; doubles per
    /// attempt (bounded exponential backoff).
    std::int64_t baseBackoffTicks = 1;
    /// Per-transfer budget in simulated ticks (backoff + injected
    /// delays); exceeding it is a timeout fault even when attempts
    /// remain.
    std::int64_t timeoutTicks = 4096;
};

/// What the transport observed: the fault layer's own accounting, kept
/// strictly separate from the simulator's message/transfer metrics so
/// recovered runs stay bit-identical to fault-free runs on everything
/// the paper's tables report.
struct TransportStats {
    std::int64_t messages = 0;     ///< logical deliveries requested
    std::int64_t drops = 0;        ///< injected message losses
    std::int64_t duplicates = 0;   ///< injected duplicate arrivals (deduped)
    std::int64_t delays = 0;       ///< injected delivery delays
    std::int64_t retransmits = 0;  ///< resends after a loss
    std::int64_t delayTicks = 0;   ///< simulated ticks lost to delays
    std::int64_t backoffTicks = 0; ///< simulated ticks lost to backoff
};

/// Reliable delivery over the simulator's lossy-network mode.
///
/// The SPMD simulator's element transfers are logical messages; when a
/// fault spec configures `net.drop` / `net.dup` / `net.delay`, each
/// delivery runs a miniature ack + retransmit protocol: the sender
/// retries a lost message with bounded exponential backoff, duplicate
/// arrivals are discarded by sequence number (which also subsumes a
/// lost ack — the receiver has the data, the resent copy dedups), and
/// injected delays consume the per-transfer tick budget. The payload of
/// every attempt is identical, so a recovered transfer delivers exactly
/// the value the fault-free run would — results cannot drift, only the
/// transport's own stats do.
///
/// deliver() throws SimFault when the attempt or tick budget is
/// exhausted: an unrecoverable network is a typed error, never silently
/// missing data. All calls happen on the simulator's main thread in
/// deterministic merge order, so a fixed seed reproduces the exact
/// fault schedule.
class ReliableTransport {
public:
    ReliableTransport(const FaultInjector& faults, TransportConfig cfg);

    /// Simulate reliable delivery of the next logical message; `what`
    /// tags the SimFault on failure (evaluated lazily — no cost on the
    /// success path).
    void deliver(const char* what);

    [[nodiscard]] const TransportStats& stats() const { return stats_; }
    /// Sequence number of the next logical message (== messages so far).
    [[nodiscard]] std::int64_t seq() const { return stats_.messages; }

private:
    TransportConfig cfg_;
    TransportStats stats_;
    FaultSite* drop_;
    FaultSite* dup_;
    FaultSite* delay_;
};

}  // namespace phpf
