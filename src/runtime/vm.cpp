#include "runtime/vm.h"

#include "support/diagnostics.h"

namespace phpf::vm {

void validate(const bc::Chunk& ch, int slotCount) {
    for (const bc::Inst& in : ch.code) {
        PHPF_ASSERT(in.a < ch.numRegs, "bytecode dest register out of range");
        switch (in.op) {
            case bc::Op::Const:
                PHPF_ASSERT(in.b < ch.consts.size(),
                            "bytecode constant index out of range");
                break;
            case bc::Op::Fetch:
                PHPF_ASSERT(in.b < slotCount,
                            "bytecode fetch slot out of range");
                break;
            case bc::Op::Neg:
            case bc::Op::Not:
            case bc::Op::Abs:
            case bc::Op::Sqrt:
            case bc::Op::Exp:
                PHPF_ASSERT(in.b < ch.numRegs,
                            "bytecode operand register out of range");
                break;
            default:
                PHPF_ASSERT(in.b < ch.numRegs && in.c < ch.numRegs,
                            "bytecode operand register out of range");
                break;
        }
    }
    PHPF_ASSERT(ch.code.empty() || ch.numRegs >= 1,
                "bytecode chunk without registers");
}

}  // namespace phpf::vm
