#include "runtime/spmd_sim.h"

#include <algorithm>
#include <cmath>

#include "ir/printer.h"
#include "support/diagnostics.h"

namespace phpf {

SpmdSimulator::SpmdSimulator(const SpmdLowering& low, int elemBytes)
    : low_(low), prog_(low.program()), oracle_(prog_),
      procCount_(low.dataMapping().grid().totalProcs()),
      elemBytes_(elemBytes) {
    procStore_.assign(static_cast<size_t>(procCount_), Store(prog_));
    procMetrics_.assign(static_cast<size_t>(procCount_), ProcSimMetrics{});
    for (const CommOp& op : low_.commOps())
        if (!op.isReductionCombine) opByRef_[op.ref] = &op;
}

namespace {
std::vector<int> expandGridSet(const GridSet& gs, const ProcGrid& grid) {
    std::vector<int> procs;
    std::vector<int> coords(static_cast<size_t>(grid.rank()), 0);
    std::function<void(int)> rec = [&](int d) {
        if (d == grid.rank()) {
            procs.push_back(grid.linearize(coords));
            return;
        }
        const int c = gs.coord[static_cast<size_t>(d)];
        if (c >= 0) {
            coords[static_cast<size_t>(d)] = c;
            rec(d + 1);
        } else {
            for (int i = 0; i < grid.extent(d); ++i) {
                coords[static_cast<size_t>(d)] = i;
                rec(d + 1);
            }
        }
    };
    rec(0);
    return procs;
}
}  // namespace

static GridSet evalDesc(const RefDesc& desc, const Interpreter& oracle,
                        const ProcGrid& grid) {
    GridSet out;
    out.coord.assign(static_cast<size_t>(grid.rank()), -1);
    for (int g = 0; g < grid.rank(); ++g) {
        const RefDim& dim = desc.dims[static_cast<size_t>(g)];
        switch (dim.kind) {
            case RefDim::Kind::Replicated:
                break;
            case RefDim::Kind::Fixed:
                out.coord[static_cast<size_t>(g)] = dim.fixedCoord;
                break;
            case RefDim::Kind::Partitioned: {
                PHPF_ASSERT(dim.subscriptExpr != nullptr,
                            "partitioned dim without subscript expr");
                const std::int64_t v = oracle.evalIndex(dim.subscriptExpr);
                out.coord[static_cast<size_t>(g)] =
                    dim.dist.ownerOf(v + dim.offset);
                break;
            }
        }
    }
    return out;
}

std::vector<int> SpmdSimulator::executorsOf(const Stmt* s) {
    const StmtExec& ex = low_.execOf(s);
    const ProcGrid& grid = low_.dataMapping().grid();
    const auto allProcs = [&] {
        return expandGridSet(
            GridSet{std::vector<int>(static_cast<size_t>(grid.rank()), -1)},
            grid);
    };
    switch (ex.guard) {
        case StmtExec::Guard::All:
            return allProcs();
        case StmtExec::Guard::OwnerOf:
            return expandGridSet(evalDesc(ex.execDesc, oracle_, grid), grid);
        case StmtExec::Guard::Union: {
            // Section 2.1 / 4: executed by the union of all processors
            // executing any other statement inside the loop for this
            // iteration. Only statements in the same iteration context
            // (enclosing loops a subset of ours) contribute — their
            // owner descriptors are evaluable right now.
            const auto loops = prog_.enclosingLoops(s);
            if (loops.empty()) return allProcs();
            const Stmt* innermost = loops.back();
            std::set<int> u;
            prog_.forEachStmt([&](const Stmt* t) {
                if (t == s || t->kind != StmtKind::Assign) return;
                if (!Program::isInsideLoop(t, innermost)) return;
                const auto tLoops = prog_.enclosingLoops(t);
                if (tLoops.size() != loops.size()) return;
                const StmtExec& tex = low_.execOf(t);
                if (tex.guard != StmtExec::Guard::OwnerOf) return;
                for (int q :
                     expandGridSet(evalDesc(tex.execDesc, oracle_, grid), grid))
                    u.insert(q);
            });
            if (u.empty()) return allProcs();
            return {u.begin(), u.end()};
        }
    }
    return allProcs();
}

const CommOp* SpmdSimulator::coveringOp(const Expr* ref) const {
    auto it = opByRef_.find(ref);
    return it == opByRef_.end() ? nullptr : it->second;
}

void SpmdSimulator::recordEvent(const CommOp* op) {
    std::vector<std::int64_t> context;
    for (const Stmt* l : prog_.enclosingLoops(op->atStmt)) {
        if (l->loopNestingLevel() > op->placementLevel) break;
        context.push_back(
            static_cast<std::int64_t>(oracle_.store().get(l->loopVar)));
    }
    if (events_.insert({op->id, std::move(context)}).second)
        ++eventsPerOp_[op->id];
}

double SpmdSimulator::fetch(int proc, const Expr* ref) {
    const std::int64_t flat =
        ref->kind == ExprKind::ArrayRef ? oracle_.flatIndexOf(ref) : 0;
    Store& st = procStore_[static_cast<size_t>(proc)];
    if (st.valid(ref->sym, flat)) return st.get(ref->sym, flat);

    const CommOp* op = coveringOp(ref);
    PHPF_ASSERT(op != nullptr,
                "processor " + std::to_string(proc) +
                    " reads unavailable data with no communication op: " +
                    printExpr(prog_, ref) + " (program " + prog_.name + ")");
    // Locate a processor holding the value: the descriptor's owner set,
    // falling back to a scan (stale-free by construction: writes
    // invalidate every non-executing copy).
    const ProcGrid& grid = low_.dataMapping().grid();
    const GridSet ownerSet = evalDesc(op->srcDesc, oracle_, grid);
    double v = 0.0;
    bool found = false;
    int src = -1;
    for (int p : expandGridSet(ownerSet, grid)) {
        if (procStore_[static_cast<size_t>(p)].valid(ref->sym, flat)) {
            v = procStore_[static_cast<size_t>(p)].get(ref->sym, flat);
            found = true;
            src = p;
            break;
        }
    }
    PHPF_ASSERT(found, "no owner holds a valid copy of " +
                           printExpr(prog_, ref) + " in program " + prog_.name);
    st.set(ref->sym, flat, v);
    ++transfers_;
    ++elemsPerOp_[op->id];
    ++procMetrics_[static_cast<size_t>(proc)].recvElements;
    ++procMetrics_[static_cast<size_t>(src)].sentElements;
    recordEvent(op);
    return v;
}

double SpmdSimulator::evalOn(int proc, const Expr* e) {
    switch (e->kind) {
        case ExprKind::IntLit:
            return static_cast<double>(e->ival);
        case ExprKind::RealLit:
            return e->rval;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
            return fetch(proc, e);
        case ExprKind::Unary: {
            const double a = evalOn(proc, e->args[0]);
            return e->uop == UnaryOp::Neg ? -a : (a != 0.0 ? 0.0 : 1.0);
        }
        case ExprKind::Binary: {
            const double a = evalOn(proc, e->args[0]);
            const double b = evalOn(proc, e->args[1]);
            switch (e->bop) {
                case BinaryOp::Add: return a + b;
                case BinaryOp::Sub: return a - b;
                case BinaryOp::Mul: return a * b;
                case BinaryOp::Div: return a / b;
                case BinaryOp::Pow: return std::pow(a, b);
                case BinaryOp::Lt: return a < b ? 1.0 : 0.0;
                case BinaryOp::Le: return a <= b ? 1.0 : 0.0;
                case BinaryOp::Gt: return a > b ? 1.0 : 0.0;
                case BinaryOp::Ge: return a >= b ? 1.0 : 0.0;
                case BinaryOp::Eq: return a == b ? 1.0 : 0.0;
                case BinaryOp::Ne: return a != b ? 1.0 : 0.0;
                case BinaryOp::And:
                    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
                case BinaryOp::Or:
                    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
            }
            return 0.0;
        }
        case ExprKind::Call: {
            switch (e->fn) {
                case Intrinsic::Abs: return std::abs(evalOn(proc, e->args[0]));
                case Intrinsic::Max:
                    return std::max(evalOn(proc, e->args[0]),
                                    evalOn(proc, e->args[1]));
                case Intrinsic::Min:
                    return std::min(evalOn(proc, e->args[0]),
                                    evalOn(proc, e->args[1]));
                case Intrinsic::Sqrt:
                    return std::sqrt(evalOn(proc, e->args[0]));
                case Intrinsic::Mod:
                    return std::fmod(evalOn(proc, e->args[0]),
                                     evalOn(proc, e->args[1]));
                case Intrinsic::Sign: {
                    const double a = evalOn(proc, e->args[0]);
                    const double b = evalOn(proc, e->args[1]);
                    return b >= 0.0 ? std::abs(a) : -std::abs(a);
                }
                case Intrinsic::Exp:
                    return std::exp(evalOn(proc, e->args[0]));
            }
            return 0.0;
        }
    }
    return 0.0;
}

void SpmdSimulator::execStmt(const Stmt* s) {
    switch (s->kind) {
        case StmtKind::Assign: {
            const std::vector<int> execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            const std::int64_t flat = s->lhs->kind == ExprKind::ArrayRef
                                          ? oracle_.flatIndexOf(s->lhs)
                                          : 0;
            // Evaluate on every executor against the pre-statement state.
            std::vector<double> values(execs.size());
            for (size_t i = 0; i < execs.size(); ++i)
                values[i] = evalOn(execs[i], s->rhs);

            const bool isReductionAcc = [&] {
                for (const auto& r : low_.reductions())
                    if (r.stmt == s || r.locStmt == s) return true;
                return false;
            }();
            if (!isReductionAcc) {
                // Non-executors' copies become stale.
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].invalidate(s->lhs->sym,
                                                                  flat);
            }
            for (size_t i = 0; i < execs.size(); ++i)
                procStore_[static_cast<size_t>(execs[i])].set(s->lhs->sym, flat,
                                                              values[i]);
            oracle_.execStmt(s);
            break;
        }
        case StmtKind::If: {
            const std::vector<int> execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            for (int q : execs) (void)evalOn(q, s->cond);  // predicate comm
            const bool taken = oracle_.eval(s->cond) != 0.0;
            if (taken)
                execBlock(s->thenBody);
            else
                execBlock(s->elseBody);
            break;
        }
        case StmtKind::Do: {
            const auto lb = oracle_.evalIndex(s->lb);
            const auto ub = oracle_.evalIndex(s->ub);
            const auto step =
                s->step != nullptr ? oracle_.evalIndex(s->step) : std::int64_t{1};
            for (std::int64_t iv = lb; step > 0 ? iv <= ub : iv >= ub;
                 iv += step) {
                oracle_.store().set(s->loopVar, 0, static_cast<double>(iv));
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].set(
                        s->loopVar, 0, static_cast<double>(iv));
                try {
                    execBlock(s->body);
                } catch (GotoSignal& g) {
                    bool handled = false;
                    for (size_t i = 0; i < s->body.size(); ++i) {
                        if (s->body[i]->label == g.label) {
                            std::vector<Stmt*> rest(
                                s->body.begin() + static_cast<std::ptrdiff_t>(i),
                                s->body.end());
                            execBlock(rest);
                            handled = true;
                            break;
                        }
                    }
                    if (!handled) throw;
                }
            }
            // Apply global combining for reductions whose nest just ended.
            for (const CommOp& op : low_.commOps()) {
                if (!op.isReductionCombine) continue;
                const ReductionInfo* red = nullptr;
                for (const auto& r : low_.reductions())
                    if (r.stmt == op.atStmt) red = &r;
                if (red == nullptr || red->loops.front() != s) continue;
                const double v = oracle_.eval(op.ref);
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].set(op.ref->sym, 0, v);
                if (red->locScalar != kNoSymbol) {
                    const double lv = oracle_.store().get(red->locScalar);
                    for (int p = 0; p < procCount_; ++p)
                        procStore_[static_cast<size_t>(p)].set(red->locScalar,
                                                               0, lv);
                }
                recordEvent(&op);
                ++transfers_;
                ++elemsPerOp_[op.id];
                // The combine delivers the global result everywhere.
                for (int p = 0; p < procCount_; ++p)
                    ++procMetrics_[static_cast<size_t>(p)].recvElements;
            }
            break;
        }
        case StmtKind::Goto:
            throw GotoSignal{s->gotoTarget};
        case StmtKind::Continue:
            break;
    }
}

void SpmdSimulator::execBlock(const std::vector<Stmt*>& block) {
    for (size_t i = 0; i < block.size(); ++i) {
        try {
            execStmt(block[i]);
        } catch (GotoSignal& g) {
            bool handled = false;
            for (size_t j = i + 1; j < block.size(); ++j) {
                if (block[j]->label == g.label) {
                    i = j - 1;
                    handled = true;
                    break;
                }
            }
            if (!handled) throw;
        }
    }
}

void SpmdSimulator::run() {
    // Distribute initial (oracle-seeded) data: owners hold their
    // elements, replicated data is everywhere.
    const RefDescriber rd(prog_, low_.dataMapping(), &low_.ssa(),
                          &low_.decisions(), AffineAnalyzer(prog_, nullptr));
    (void)rd;
    const ProcGrid& grid = low_.dataMapping().grid();
    for (const Symbol& sym : prog_.symbols) {
        const ArrayMap& map = low_.dataMapping().mapOf(sym.id);
        if (!sym.isArray()) {
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(
                    sym.id, 0, oracle_.store().get(sym.id));
            continue;
        }
        // Enumerate elements and place them on their owners.
        std::vector<std::int64_t> idx(static_cast<size_t>(sym.rank()));
        std::function<void(int)> rec = [&](int d) {
            if (d == sym.rank()) {
                const std::int64_t flat =
                    procStore_[0].flatten(prog_, sym.id, idx);
                const GridSet owners = map.ownerOf(idx, grid);
                for (int p : expandGridSet(owners, grid))
                    procStore_[static_cast<size_t>(p)].set(
                        sym.id, flat, oracle_.store().get(sym.id, flat));
                return;
            }
            const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
            for (std::int64_t v = dim.lb; v <= dim.ub; ++v) {
                idx[static_cast<size_t>(d)] = v;
                rec(d + 1);
            }
        };
        rec(0);
    }
    execBlock(prog_.top);
}

std::int64_t SpmdSimulator::eventsOfOp(int opId) const {
    auto it = eventsPerOp_.find(opId);
    return it == eventsPerOp_.end() ? 0 : it->second;
}

std::int64_t SpmdSimulator::elementsOfOp(int opId) const {
    auto it = elemsPerOp_.find(opId);
    return it == elemsPerOp_.end() ? 0 : it->second;
}

void SpmdSimulator::accountExecutors(const std::vector<int>& execs) {
    // Guard accounting: processors in `execs` pass their computation-
    // partitioning guard for this statement instance, everyone else
    // evaluates the guard and skips.
    std::vector<char> in(static_cast<size_t>(procCount_), 0);
    for (int p : execs) in[static_cast<size_t>(p)] = 1;
    for (int p = 0; p < procCount_; ++p) {
        if (in[static_cast<size_t>(p)])
            ++procMetrics_[static_cast<size_t>(p)].stmtsExecuted;
        else
            ++procMetrics_[static_cast<size_t>(p)].stmtsSkipped;
    }
}

double SpmdSimulator::imbalanceRatio() const {
    std::int64_t total = 0;
    std::int64_t maxExec = 0;
    for (const ProcSimMetrics& m : procMetrics_) {
        total += m.stmtsExecuted;
        maxExec = std::max(maxExec, m.stmtsExecuted);
    }
    if (total == 0) return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(procCount_);
    return static_cast<double>(maxExec) / mean;
}

double SpmdSimulator::valueOn(int proc, const std::string& name,
                              std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].get(s, flat);
}

bool SpmdSimulator::validOn(int proc, const std::string& name,
                            std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].valid(s, flat);
}

double SpmdSimulator::maxErrorVsOracle(const std::string& name) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    double maxErr = 0.0;
    for (std::int64_t flat = 0; flat < procStore_[0].sizeOf(s); ++flat) {
        const double ref = oracle_.store().get(s, flat);
        for (int p = 0; p < procCount_; ++p) {
            if (!procStore_[static_cast<size_t>(p)].valid(s, flat)) continue;
            maxErr = std::max(
                maxErr,
                std::abs(procStore_[static_cast<size_t>(p)].get(s, flat) - ref));
        }
    }
    return maxErr;
}

}  // namespace phpf
