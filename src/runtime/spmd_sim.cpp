#include "runtime/spmd_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <numeric>

#include "ir/printer.h"
#include "obs/flight_recorder.h"
#include "runtime/vm.h"
#include "support/diagnostics.h"

namespace phpf {

namespace {

/// Calls fn(linearProc) for every processor in `gs`, last grid dimension
/// fastest (the enumeration order the executor/owner sets are defined
/// in). `fn` returns false to stop early; `coords` is caller-provided
/// scratch so the walk never allocates.
template <typename Fn>
void forEachGridProc(const GridSet& gs, const ProcGrid& grid,
                     std::vector<int>& coords, Fn&& fn) {
    const int rank = grid.rank();
    coords.assign(static_cast<size_t>(rank), 0);
    for (int d = 0; d < rank; ++d)
        if (gs.coord[static_cast<size_t>(d)] >= 0)
            coords[static_cast<size_t>(d)] = gs.coord[static_cast<size_t>(d)];
    for (;;) {
        if (!fn(grid.linearize(coords))) return;
        int d = rank - 1;
        for (; d >= 0; --d) {
            if (gs.coord[static_cast<size_t>(d)] >= 0) continue;  // pinned
            if (++coords[static_cast<size_t>(d)] < grid.extent(d)) break;
            coords[static_cast<size_t>(d)] = 0;
        }
        if (d < 0) return;
    }
}

/// VarRef/ArrayRef nodes of `e` read in value position (ArrayRef
/// subscripts resolve on the oracle and are never fetched).
void collectFetchRefs(const Expr* e, std::vector<const Expr*>& out) {
    switch (e->kind) {
        case ExprKind::IntLit:
        case ExprKind::RealLit:
            return;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
            out.push_back(e);
            return;
        case ExprKind::Unary:
        case ExprKind::Binary:
        case ExprKind::Call:
            for (const Expr* a : e->args) collectFetchRefs(a, out);
            return;
    }
}

/// Index of the first zero byte in v[0..n), or -1 when every byte is
/// set. Validity bytes are strictly 0/1, so an 8-byte chunk of valid
/// lanes compares equal to kAllValid8 — the common fully-valid row is
/// n/8 compares with no per-byte scan.
constexpr std::uint64_t kAllValid8 = 0x0101010101010101ull;

inline int firstZeroByte(const char* v, int n) {
    int c = 0;
    for (; c + 8 <= n; c += 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, v + c, sizeof chunk);
        if (chunk == kAllValid8) continue;
        for (int l = c;; ++l)
            if (v[l] == 0) return l;
    }
    for (; c < n; ++c)
        if (v[c] == 0) return c;
    return -1;
}

/// Pops the back of `v` on scope exit when non-null; keeps the control
/// stack balanced on every exit path (return, GotoSignal, CrashSignal).
template <typename V>
class FramePop {
public:
    explicit FramePop(V* v) : v_(v) {}
    ~FramePop() {
        if (v_ != nullptr) v_->pop_back();
    }
    FramePop(const FramePop&) = delete;
    FramePop& operator=(const FramePop&) = delete;

private:
    V* v_;
};

}  // namespace

SpmdSimulator::SpmdSimulator(const SpmdLowering& low, int elemBytes,
                             int threads, SimRecoveryConfig recovery,
                             SimEngine engine, bool relaxedMerge,
                             TargetKind targetKind)
    : low_(low), prog_(low.program()), oracle_(prog_),
      procCount_(low.dataMapping().grid().totalProcs()),
      elemBytes_(elemBytes),
      threads_(resolveThreadCount(threads, procCount_)),
      engine_(engine), relaxed_(relaxedMerge), targetKind_(targetKind) {
    rcfg_ = std::move(recovery);
    if (rcfg_.faults != nullptr && rcfg_.faults->enabled()) {
        const FaultInjector& inj = *rcfg_.faults;
        // No network inside one SMP node: the net.* sites stay unarmed
        // under the shared-memory target (proc.crash still applies).
        if (targetKind_ != TargetKind::SharedMemory &&
            (inj.find(faultsite::kNetDrop) != nullptr ||
             inj.find(faultsite::kNetDup) != nullptr ||
             inj.find(faultsite::kNetDelay) != nullptr))
            transport_ =
                std::make_unique<ReliableTransport>(inj, rcfg_.transport);
        crashSite_ = inj.find(faultsite::kProcCrash);
    }
    // Control frames are needed exactly when a checkpoint can be taken.
    trackCtrl_ = crashSite_ != nullptr || rcfg_.checkpointEvery > 0;
    boundaryArmed_ = trackCtrl_ || rcfg_.cancel.armed();
    procStore_.assign(static_cast<size_t>(procCount_), Store(prog_));
    procMetrics_.assign(static_cast<size_t>(procCount_), ProcSimMetrics{});
    execDelta_.assign(static_cast<size_t>(procCount_), 0);
    if (threads_ > 1)
        pool_ = std::make_unique<LockstepPool>(threads_, "sim-worker");
    workers_.resize(static_cast<size_t>(threads_));

    allProcs_.resize(static_cast<size_t>(procCount_));
    std::iota(allProcs_.begin(), allProcs_.end(), 0);
    singleProcScratch_.assign(1, 0);
    flagsScratch_.assign(static_cast<size_t>(procCount_), 0);
    refFlat_.assign(static_cast<size_t>(prog_.exprCount()), 0);

    const size_t nOps = low_.commOps().size();
    opStamp_.assign(std::max<size_t>(nOps, 1), 0);
    eventsPerOp_.assign(nOps, 0);
    elemsPerOp_.assign(nOps, 0);
    opByRef_.assign(static_cast<size_t>(prog_.exprCount()), nullptr);
    opCtxVars_.resize(nOps);
    for (const CommOp& op : low_.commOps()) {
        PHPF_ASSERT(op.id >= 0 && static_cast<size_t>(op.id) < nOps,
                    "comm op ids must be dense");
        if (!op.isReductionCombine)
            opByRef_[static_cast<size_t>(op.ref->id)] = &op;
        // The iteration-vector context of the op's events: loop indices
        // of the enclosing loops at or above the placement level.
        for (const Stmt* l : prog_.enclosingLoops(op.atStmt)) {
            if (l->loopNestingLevel() > op.placementLevel) break;
            opCtxVars_[static_cast<size_t>(op.id)].push_back(l->loopVar);
        }
    }
    combineInit_.assign(nOps, 0.0);
    buildPlans();
    if (engine_ == SimEngine::Bytecode) {
        size_t maxSlots = 1;
        for (const StmtPlan& p : plans_)
            maxSlots = std::max(maxSlots, p.code.slots.size());
        slotFlat_.assign(maxSlots, 0);
        slotRow_.assign(maxSlots, 0);
        slotElem_.assign(maxSlots, 0);
        slotMissV_.assign(maxSlots, 0.0);
        slotMissSrc_.assign(maxSlots, -1);
        slotMissResolved_.assign(maxSlots, 0);
        slotAllValid_.assign(maxSlots, 0);
        const size_t lanes = static_cast<size_t>(procCount_) *
                             static_cast<size_t>(procStore_[0].totalElems());
        soa_.assign(lanes, 0.0);
        soaValid_.assign(lanes, 0);
        oracleRegs_.assign(static_cast<size_t>(std::max(maxRegs_, 1)), 0.0);
        // SoA lane banks: one bank of procCount doubles per register,
        // per worker (a worker's lane chunk never exceeds procCount).
        for (WorkerScratch& w : workers_)
            w.regs.assign(static_cast<size_t>(std::max(maxRegs_, 1)) *
                              static_cast<size_t>(procCount_),
                          0.0);
    }
}

void SpmdSimulator::setTelemetry(obs::MetricRegistry* metrics,
                                 obs::ConcurrentTracer* tracer) {
    metrics_ = metrics;
    ctracer_ = tracer;
    evalHist_ =
        metrics != nullptr ? &metrics->histogram("sim.phase.eval_us") : nullptr;
    mergeHist_ = metrics != nullptr ? &metrics->histogram("sim.phase.merge_us")
                                    : nullptr;
    ckptHist_ =
        metrics != nullptr ? &metrics->histogram("sim.checkpoint_us") : nullptr;
}

void SpmdSimulator::buildPlans() {
    plans_.resize(static_cast<size_t>(prog_.stmtCount()));
    for (const auto& r : low_.reductions()) {
        if (r.stmt != nullptr)
            plans_[static_cast<size_t>(r.stmt->id)].isReductionAcc = true;
        if (r.locStmt != nullptr)
            plans_[static_cast<size_t>(r.locStmt->id)].isReductionAcc = true;
    }
    prog_.forEachStmt([&](const Stmt* s) {
        StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
        switch (s->kind) {
            case StmtKind::Assign:
            case StmtKind::If: {
                plan.exec = &low_.execOf(s);
                collectFetchRefs(s->kind == StmtKind::Assign ? s->rhs
                                                             : s->cond,
                                 plan.fetchRefs);
                if (plan.exec->guard != StmtExec::Guard::Union) break;
                // Section 2.1 / 4: executed by the union of all
                // processors executing any other statement inside the
                // loop for this iteration. Only statements in the same
                // iteration context (enclosing loops a subset of ours)
                // contribute — their owner descriptors are evaluable
                // right when the instance executes.
                const auto loops = prog_.enclosingLoops(s);
                if (loops.empty()) break;
                const Stmt* innermost = loops.back();
                prog_.forEachStmt([&](const Stmt* t) {
                    if (t == s || t->kind != StmtKind::Assign) return;
                    if (!Program::isInsideLoop(t, innermost)) return;
                    if (prog_.enclosingLoops(t).size() != loops.size())
                        return;
                    const StmtExec& tex = low_.execOf(t);
                    if (tex.guard != StmtExec::Guard::OwnerOf) return;
                    plan.unionSrcs.push_back(&tex.execDesc);
                });
                break;
            }
            case StmtKind::Do: {
                // Global combines for reductions whose nest ends here,
                // in comm-op order.
                for (const CommOp& op : low_.commOps()) {
                    if (!op.isReductionCombine) continue;
                    const ReductionInfo* red = nullptr;
                    for (const auto& r : low_.reductions())
                        if (r.stmt == op.atStmt) red = &r;
                    if (red == nullptr || red->loops.front() != s) continue;
                    plan.combines.push_back(CombinePlan{&op, red});
                }
                break;
            }
            case StmtKind::Goto:
            case StmtKind::Continue:
                break;
        }
        if (engine_ == SimEngine::Bytecode &&
            (s->kind == StmtKind::Assign || s->kind == StmtKind::If)) {
            plan.code = bc::compileStmt(prog_, s, plan.exec, plan.unionSrcs,
                                        bcArena_);
            vm::validate(plan.code.value,
                         static_cast<int>(plan.code.slots.size()));
            maxRegs_ = std::max(maxRegs_, plan.code.value.numRegs);
            // Source-descriptor forms per fetch slot, so per-phase miss
            // resolution evaluates a few affine terms instead of the
            // descriptor's subscript trees.
            plan.slotOp.resize(plan.code.slots.size(), nullptr);
            plan.slotSrcForms.resize(plan.code.slots.size());
            plan.slotSrcSingleton.resize(plan.code.slots.size(), 0);
            const auto isSingleton = [](const RefDesc& d) {
                for (const RefDim& dim : d.dims)
                    if (dim.kind == RefDim::Kind::Replicated) return false;
                return true;
            };
            plan.execSingleton = plan.exec->guard == StmtExec::Guard::OwnerOf &&
                                 isSingleton(plan.exec->execDesc);
            for (size_t i = 0; i < plan.code.slots.size(); ++i) {
                const CommOp* op = opByRef_[static_cast<size_t>(
                    plan.code.slots[i].ref->id)];
                plan.slotOp[i] = op;
                if (op != nullptr) {
                    plan.slotSrcForms[i] =
                        bc::compileDescForms(prog_, op->srcDesc, bcArena_);
                    plan.slotSrcSingleton[i] =
                        isSingleton(op->srcDesc) ? 1 : 0;
                }
            }
        }
    });
    if (engine_ != SimEngine::Bytecode) return;
    // Lane-uniformity analysis. A symbol is *divergent* when valid
    // per-processor copies of it may differ from the oracle's value:
    // reduction accumulators (each processor accumulates privately),
    // and transitively any symbol assigned from a divergent read. A
    // phase whose statement is not an accumulation and fetches only
    // non-divergent symbols computes the oracle's value on every lane
    // (a valid copy of a non-divergent symbol always equals the oracle,
    // and a miss resolves from a valid copy), so the per-lane VM run is
    // redundant — only the communication accounting is.
    std::vector<char> divergent(prog_.symbols.size(), 0);
    for (const auto& r : low_.reductions()) {
        if (r.scalar != kNoSymbol) divergent[static_cast<size_t>(r.scalar)] = 1;
        if (r.locScalar != kNoSymbol)
            divergent[static_cast<size_t>(r.locScalar)] = 1;
        if (r.stmt != nullptr)
            divergent[static_cast<size_t>(r.stmt->lhs->sym)] = 1;
        if (r.locStmt != nullptr)
            divergent[static_cast<size_t>(r.locStmt->lhs->sym)] = 1;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        prog_.forEachStmt([&](const Stmt* s) {
            if (s->kind != StmtKind::Assign) return;
            if (divergent[static_cast<size_t>(s->lhs->sym)] != 0) return;
            for (const Expr* r : plans_[static_cast<size_t>(s->id)].fetchRefs) {
                if (divergent[static_cast<size_t>(r->sym)] == 0) continue;
                divergent[static_cast<size_t>(s->lhs->sym)] = 1;
                changed = true;
                break;
            }
        });
    }
    prog_.forEachStmt([&](const Stmt* s) {
        if (s->kind != StmtKind::Assign && s->kind != StmtKind::If) return;
        StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
        bool uniform = !plan.isReductionAcc;
        for (const Expr* r : plan.fetchRefs)
            if (divergent[static_cast<size_t>(r->sym)] != 0) uniform = false;
        plan.laneUniform = uniform;
    });
}

void SpmdSimulator::evalDescInto(const RefDesc& desc, GridSet& out) const {
    const ProcGrid& grid = low_.dataMapping().grid();
    out.coord.assign(static_cast<size_t>(grid.rank()), -1);
    for (int g = 0; g < grid.rank(); ++g) {
        const RefDim& dim = desc.dims[static_cast<size_t>(g)];
        switch (dim.kind) {
            case RefDim::Kind::Replicated:
                break;
            case RefDim::Kind::Fixed:
                out.coord[static_cast<size_t>(g)] = dim.fixedCoord;
                break;
            case RefDim::Kind::Partitioned: {
                PHPF_ASSERT(dim.subscriptExpr != nullptr,
                            "partitioned dim without subscript expr");
                const std::int64_t v = oracle_.evalIndex(dim.subscriptExpr);
                out.coord[static_cast<size_t>(g)] =
                    dim.dist.ownerOf(v + dim.offset);
                break;
            }
        }
    }
}

void SpmdSimulator::evalDescIntoBc(const RefDesc& desc,
                                   const std::vector<bc::IndexForm>& forms,
                                   GridSet& out) const {
    const ProcGrid& grid = low_.dataMapping().grid();
    out.coord.assign(static_cast<size_t>(grid.rank()), -1);
    for (int g = 0; g < grid.rank(); ++g) {
        const RefDim& dim = desc.dims[static_cast<size_t>(g)];
        switch (dim.kind) {
            case RefDim::Kind::Replicated:
                break;
            case RefDim::Kind::Fixed:
                out.coord[static_cast<size_t>(g)] = dim.fixedCoord;
                break;
            case RefDim::Kind::Partitioned: {
                const std::int64_t v = bc::evalIndexForm(
                    forms[static_cast<size_t>(g)], oracle_);
                out.coord[static_cast<size_t>(g)] =
                    dim.dist.ownerOf(v + dim.offset);
                break;
            }
        }
    }
}

int SpmdSimulator::singleProcOfBc(const RefDesc& desc,
                                  const std::vector<bc::IndexForm>& forms) {
    // Every grid dim is Fixed or Partitioned: compute the one
    // coordinate vector directly, skipping the GridSet enumeration.
    const ProcGrid& grid = low_.dataMapping().grid();
    const int rank = grid.rank();
    coordsScratch_.resize(static_cast<size_t>(rank));
    for (int g = 0; g < rank; ++g) {
        const RefDim& dim = desc.dims[static_cast<size_t>(g)];
        coordsScratch_[static_cast<size_t>(g)] =
            dim.kind == RefDim::Kind::Fixed
                ? dim.fixedCoord
                : dim.dist.ownerOf(
                      bc::evalIndexForm(forms[static_cast<size_t>(g)],
                                        oracle_) +
                      dim.offset);
    }
    return grid.linearize(coordsScratch_);
}

const std::vector<int>& SpmdSimulator::executorsOf(const Stmt* s) {
    const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
    const ProcGrid& grid = low_.dataMapping().grid();
    const bool bcMode = engine_ == SimEngine::Bytecode;
    switch (plan.exec->guard) {
        case StmtExec::Guard::All:
            return allProcs_;
        case StmtExec::Guard::OwnerOf:
            if (bcMode && plan.execSingleton) {
                singleProcScratch_[0] =
                    singleProcOfBc(plan.exec->execDesc, plan.code.execIndex);
                return singleProcScratch_;
            }
            execsScratch_.clear();
            if (bcMode)
                evalDescIntoBc(plan.exec->execDesc, plan.code.execIndex,
                               gsScratch_);
            else
                evalDescInto(plan.exec->execDesc, gsScratch_);
            forEachGridProc(gsScratch_, grid, coordsScratch_, [&](int p) {
                execsScratch_.push_back(p);
                return true;
            });
            return execsScratch_;
        case StmtExec::Guard::Union: {
            if (plan.unionSrcs.empty()) return allProcs_;
            std::fill(flagsScratch_.begin(), flagsScratch_.end(), 0);
            for (size_t i = 0; i < plan.unionSrcs.size(); ++i) {
                const RefDesc* d = plan.unionSrcs[i];
                if (bcMode)
                    evalDescIntoBc(*d, plan.code.unionIndex[i], gsScratch_);
                else
                    evalDescInto(*d, gsScratch_);
                forEachGridProc(gsScratch_, grid, coordsScratch_, [&](int p) {
                    flagsScratch_[static_cast<size_t>(p)] = 1;
                    return true;
                });
            }
            execsScratch_.clear();
            for (int p = 0; p < procCount_; ++p)
                if (flagsScratch_[static_cast<size_t>(p)] != 0)
                    execsScratch_.push_back(p);
            if (execsScratch_.empty()) return allProcs_;
            return execsScratch_;
        }
    }
    return allProcs_;
}

void SpmdSimulator::noteEvent(const CommOp* op) {
    ctxScratch_.clear();
    for (const SymbolId v : opCtxVars_[static_cast<size_t>(op->id)])
        ctxScratch_.push_back(
            static_cast<std::int64_t>(oracle_.store().get(v)));
    if (events_.record(op->id, ctxScratch_)) {
        ++eventsPerOp_[static_cast<size_t>(op->id)];
        // Shared memory: each distinct sync event is one barrier epoch
        // (producers reach the barrier, consumers read the lines).
        if (targetKind_ == TargetKind::SharedMemory) ++barrierEvents_;
        if (profile_ != nullptr) profile_->addEvent();
    }
}

double SpmdSimulator::fetchW(WorkerScratch& w, int proc, const Expr* ref,
                             std::int64_t flat) {
    const Store& st = procStore_[static_cast<size_t>(proc)];
    if (st.valid(ref->sym, flat)) return st.get(ref->sym, flat);
    // A copy this processor already fetched earlier in the same phase
    // (store writes are deferred to the barrier).
    for (const PendingWrite& pw : w.pending)
        if (pw.proc == proc && pw.sym == ref->sym && pw.flat == flat)
            return pw.v;

    const CommOp* op = opByRef_[static_cast<size_t>(ref->id)];
    PHPF_ASSERT(op != nullptr,
                "processor " + std::to_string(proc) +
                    " reads unavailable data with no communication op: " +
                    printExpr(prog_, ref) + " (program " + prog_.name + ")");
    // Locate a processor holding the value: the descriptor's owner set,
    // falling back to a scan (stale-free by construction: writes
    // invalidate every non-executing copy). All stores are read-only
    // within a phase, so cross-processor reads are race-free.
    const ProcGrid& grid = low_.dataMapping().grid();
    evalDescInto(op->srcDesc, w.gs);
    double v = 0.0;
    int src = -1;
    forEachGridProc(w.gs, grid, w.coords, [&](int p) {
        const Store& owner = procStore_[static_cast<size_t>(p)];
        if (!owner.valid(ref->sym, flat)) return true;
        v = owner.get(ref->sym, flat);
        src = p;
        return false;
    });
    PHPF_ASSERT(src >= 0, "no owner holds a valid copy of " +
                              printExpr(prog_, ref) + " in program " +
                              prog_.name);
    w.pending.push_back(PendingWrite{proc, ref->sym, flat, v});
    w.misses.push_back(MissRecord{op, proc, src});
    return v;
}

double SpmdSimulator::evalOnW(WorkerScratch& w, int proc, const Expr* e) {
    switch (e->kind) {
        case ExprKind::IntLit:
            return static_cast<double>(e->ival);
        case ExprKind::RealLit:
            return e->rval;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
            return fetchW(w, proc, e);
        case ExprKind::Unary: {
            const double a = evalOnW(w, proc, e->args[0]);
            return e->uop == UnaryOp::Neg ? -a : (a != 0.0 ? 0.0 : 1.0);
        }
        case ExprKind::Binary: {
            const double a = evalOnW(w, proc, e->args[0]);
            const double b = evalOnW(w, proc, e->args[1]);
            switch (e->bop) {
                case BinaryOp::Add: return a + b;
                case BinaryOp::Sub: return a - b;
                case BinaryOp::Mul: return a * b;
                case BinaryOp::Div: return a / b;
                case BinaryOp::Pow: return std::pow(a, b);
                case BinaryOp::Lt: return a < b ? 1.0 : 0.0;
                case BinaryOp::Le: return a <= b ? 1.0 : 0.0;
                case BinaryOp::Gt: return a > b ? 1.0 : 0.0;
                case BinaryOp::Ge: return a >= b ? 1.0 : 0.0;
                case BinaryOp::Eq: return a == b ? 1.0 : 0.0;
                case BinaryOp::Ne: return a != b ? 1.0 : 0.0;
                case BinaryOp::And:
                    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
                case BinaryOp::Or:
                    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
            }
            return 0.0;
        }
        case ExprKind::Call: {
            switch (e->fn) {
                case Intrinsic::Abs:
                    return std::abs(evalOnW(w, proc, e->args[0]));
                case Intrinsic::Max:
                    return std::max(evalOnW(w, proc, e->args[0]),
                                    evalOnW(w, proc, e->args[1]));
                case Intrinsic::Min:
                    return std::min(evalOnW(w, proc, e->args[0]),
                                    evalOnW(w, proc, e->args[1]));
                case Intrinsic::Sqrt:
                    return std::sqrt(evalOnW(w, proc, e->args[0]));
                case Intrinsic::Mod:
                    return std::fmod(evalOnW(w, proc, e->args[0]),
                                     evalOnW(w, proc, e->args[1]));
                case Intrinsic::Sign: {
                    const double a = evalOnW(w, proc, e->args[0]);
                    const double b = evalOnW(w, proc, e->args[1]);
                    return b >= 0.0 ? std::abs(a) : -std::abs(a);
                }
                case Intrinsic::Exp:
                    return std::exp(evalOnW(w, proc, e->args[0]));
            }
            return 0.0;
        }
    }
    return 0.0;
}

void SpmdSimulator::runLanesInto(WorkerScratch& w, const StmtPlan& plan,
                                 const std::vector<int>& execs, std::int64_t b,
                                 std::int64_t e) {
    const bc::StmtCode& code = plan.code;
    const int lanes = static_cast<int>(e - b);
    if (lanes <= 0) return;
    const int* lp = execs.data() + b;
    const std::int64_t* rows = slotRow_.data();
    const double* soa = soa_.data();
    const char* soaValid = soaValid_.data();
    const char* allValid = slotAllValid_.data();
    // Dense lane sets (guard All) index procs 0..P-1 in order, so a
    // fully-valid slot row is one contiguous copy.
    const bool dense = &execs == &allProcs_;
    vm::runLanes(
        code.value, lanes, w.regs.data(), procCount_,
        [&](double* d, int n, int slot) {
            // Lane-major SoA: every lane of one slot reads from the
            // same procCount-wide contiguous row.
            const std::int64_t row = rows[slot];
            if (allValid[slot] != 0) {
                if (dense) {
                    std::memcpy(d, soa + row + b,
                                static_cast<size_t>(n) * sizeof(double));
                } else {
                    for (int l = 0; l < n; ++l) d[l] = soa[row + lp[l]];
                }
                return;
            }
            for (int l = 0; l < n; ++l) {
                const std::int64_t at = row + lp[l];
                d[l] = soaValid[at] != 0 ? soa[at]
                                         : missLaneBc(w, lp[l], plan, slot);
            }
        });
    std::copy(w.regs.data(), w.regs.data() + lanes, values_.data() + b);
}

double SpmdSimulator::missLaneBc(WorkerScratch& w, int proc,
                                 const StmtPlan& plan, int slot) {
    const bc::FetchSlot& sl = plan.code.slots[static_cast<size_t>(slot)];
    const std::int64_t flat = sl.isArray ? slotFlat_[static_cast<size_t>(slot)]
                                         : 0;
    // A copy this processor already fetched earlier in the same phase
    // (a second slot aliasing the same element at runtime).
    for (const PendingWrite& pw : w.pending)
        if (pw.proc == proc && pw.sym == sl.sym && pw.flat == flat)
            return pw.v;
    PHPF_DASSERT(slotMissResolved_[static_cast<size_t>(slot)] != 0,
                 "lane miss on a slot the phase pre-resolution skipped");
    const double v = slotMissV_[static_cast<size_t>(slot)];
    w.pending.push_back(PendingWrite{proc, sl.sym, flat, v});
    w.misses.push_back(MissRecord{plan.slotOp[static_cast<size_t>(slot)], proc,
                                  slotMissSrc_[static_cast<size_t>(slot)]});
    return v;
}

void SpmdSimulator::resolveSlotMiss(const StmtPlan& plan, int slot,
                                    int firstProc) {
    const bc::FetchSlot& sl = plan.code.slots[static_cast<size_t>(slot)];
    const CommOp* op = plan.slotOp[static_cast<size_t>(slot)];
    PHPF_ASSERT(op != nullptr,
                "processor " + std::to_string(firstProc) +
                    " reads unavailable data with no communication op: " +
                    printExpr(prog_, sl.ref) + " (program " + prog_.name + ")");
    // Owner validity is frozen within a phase (store writes are deferred
    // to the barrier), so one (value, source) resolution is exact for
    // every missing lane — the interpreter's per-lane scans would find
    // the identical holder in the identical order.
    const std::int64_t row = slotRow_[static_cast<size_t>(slot)];
    double v = 0.0;
    int src = -1;
    if (plan.slotSrcSingleton[static_cast<size_t>(slot)] != 0) {
        const int p = singleProcOfBc(
            op->srcDesc, plan.slotSrcForms[static_cast<size_t>(slot)]);
        if (soaValid_[static_cast<size_t>(row + p)] != 0) {
            v = soa_[static_cast<size_t>(row + p)];
            src = p;
        }
    } else {
        const ProcGrid& grid = low_.dataMapping().grid();
        evalDescIntoBc(op->srcDesc,
                       plan.slotSrcForms[static_cast<size_t>(slot)],
                       gsScratch_);
        forEachGridProc(gsScratch_, grid, coordsScratch_, [&](int p) {
            if (soaValid_[static_cast<size_t>(row + p)] == 0) return true;
            v = soa_[static_cast<size_t>(row + p)];
            src = p;
            return false;
        });
    }
    PHPF_ASSERT(src >= 0, "no owner holds a valid copy of " +
                              printExpr(prog_, sl.ref) + " in program " +
                              prog_.name);
    slotMissV_[static_cast<size_t>(slot)] = v;
    slotMissSrc_[static_cast<size_t>(slot)] = src;
    slotMissResolved_[static_cast<size_t>(slot)] = 1;
}

void SpmdSimulator::soaLoad() {
    const std::int64_t total = procStore_[0].totalElems();
    for (int p = 0; p < procCount_; ++p) {
        const double* data = procStore_[static_cast<size_t>(p)].dataRaw();
        const char* valid = procStore_[static_cast<size_t>(p)].validRaw();
        double* sd = soa_.data() + p;
        char* sv = soaValid_.data() + p;
        for (std::int64_t e = 0; e < total; ++e) {
            sd[e * procCount_] = data[e];
            sv[e * procCount_] = valid[e];
        }
    }
}

void SpmdSimulator::soaFlush() {
    const std::int64_t total = procStore_[0].totalElems();
    for (int p = 0; p < procCount_; ++p) {
        double* data = procStore_[static_cast<size_t>(p)].dataRaw();
        char* valid = procStore_[static_cast<size_t>(p)].validRaw();
        const double* sd = soa_.data() + p;
        const char* sv = soaValid_.data() + p;
        for (std::int64_t e = 0; e < total; ++e) {
            data[e] = sd[e * procCount_];
            valid[e] = sv[e * procCount_];
        }
    }
}

void SpmdSimulator::phaseWorker(int worker) {
    WorkerScratch& ws = workers_[static_cast<size_t>(worker)];
    try {
        const std::vector<int>& execs = *phaseExecs_;
        const auto [b, e] = LockstepPool::chunkOf(
            static_cast<std::int64_t>(execs.size()), worker, threads_);
        if (engine_ == SimEngine::Bytecode) {
            runLanesInto(ws, *phasePlan_, execs, b, e);
        } else {
            for (std::int64_t i = b; i < e; ++i)
                values_[static_cast<size_t>(i)] =
                    evalOnW(ws, execs[static_cast<size_t>(i)], phaseExpr_);
        }
        if (phaseDirect_ != kNoSymbol) {
            // Relaxed mode: each executor commits its private reduction
            // accumulator immediately. Only lanes in [b, e) are written,
            // so workers never touch the same processor's copy; any
            // cross-processor read of the accumulator inside the loop
            // would have tripped the no-communication-op assert in
            // strict mode as well.
            if (engine_ == SimEngine::Bytecode) {
                const std::int64_t row = soaRowOf(phaseDirect_, 0);
                for (std::int64_t i = b; i < e; ++i) {
                    const std::int64_t at =
                        row + execs[static_cast<size_t>(i)];
                    soa_[static_cast<size_t>(at)] =
                        values_[static_cast<size_t>(i)];
                    soaValid_[static_cast<size_t>(at)] = 1;
                }
            } else {
                for (std::int64_t i = b; i < e; ++i)
                    procStore_[static_cast<size_t>(
                                   execs[static_cast<size_t>(i)])]
                        .set(phaseDirect_, 0, values_[static_cast<size_t>(i)]);
            }
        }
    } catch (...) {
        ws.error = std::current_exception();
    }
}

void SpmdSimulator::evalPhase(const StmtPlan& plan,
                              const std::vector<int>& execs, const Expr* e,
                              SymbolId directSym) {
    // Telemetry is opt-in (evalHist_ resolved once in setTelemetry);
    // unarmed runs pay a null check, not a clock read. Armed runs
    // sample 1 in kTelemetrySample phases: a phase is microseconds
    // long, so timing every one would cost more than the phase.
    const bool sampleEval =
        evalHist_ != nullptr && (evalTick_++ & (kTelemetrySample - 1)) == 0;
    // The profiler keeps its own tick (checkpointed with the profile),
    // so its sample schedule is deterministic even across recovery.
    const bool profEval = profile_ != nullptr && profile_->sampleEval();
    std::chrono::steady_clock::time_point t0;
    if (sampleEval || profEval) t0 = std::chrono::steady_clock::now();
    // Resolve the flat index of every fetched ArrayRef once on the
    // oracle; subscripts are iteration-dependent but identical on every
    // executor.
    const bool bcMode =
        engine_ == SimEngine::Bytecode && !plan.code.value.empty();
    const size_t ne = execs.size();
    phaseClean_ = false;
    if (bcMode) {
        const std::vector<bc::FetchSlot>& slots = plan.code.slots;
        const Store& st0 = procStore_[0];
        const bool dense = &execs == &allProcs_;
        bool clean = true;
        for (size_t i = 0; i < slots.size(); ++i) {
            const std::int64_t flat =
                slots[i].isArray
                    ? bc::evalIndexForm(plan.code.slotIndex[i], oracle_)
                    : 0;
            const std::int64_t elem = st0.elemIndexOf(slots[i].sym, flat);
            slotFlat_[i] = flat;
            slotElem_[i] = elem;
            slotRow_[i] = elem * procCount_;
            slotMissResolved_[i] = 0;
            // Pre-resolve every slot some executor will miss: validity
            // is frozen for the whole phase, so the resolution is
            // identical for all lanes, and doing it here (main thread,
            // before the pool) keeps the workers read-only on shared
            // state. A slot every executor holds is flagged so the VM
            // loads it as one contiguous row.
            const char* vrow = soaValid_.data() + slotRow_[i];
            char ok = 1;
            if (dense) {
                const int miss = firstZeroByte(vrow, procCount_);
                if (miss >= 0) {
                    ok = 0;
                    resolveSlotMiss(plan, static_cast<int>(i), miss);
                }
            } else {
                for (size_t l = 0; l < ne; ++l) {
                    if (vrow[execs[l]] != 0) continue;
                    ok = 0;
                    resolveSlotMiss(plan, static_cast<int>(i), execs[l]);
                    break;
                }
            }
            slotAllValid_[i] = ok;
            clean = clean && ok != 0;
        }
        phaseClean_ = clean;
        if (plan.laneUniform) {
            // Every lane would compute the oracle's value (see
            // buildPlans): skip the VM run and record just the
            // communication — the same misses, in the same slot-major
            // lane order, with the same pending-copy dedup the VM's
            // fetches would produce. execStmt broadcasts the oracle's
            // result to the executors.
            WorkerScratch& w = workers_[0];
            for (size_t i = 0; i < slots.size(); ++i) {
                if (slotAllValid_[i] != 0) continue;
                // Runtime aliasing is an SoA-row equality: an earlier
                // slot with the same row has the same frozen validity,
                // so every lane missing here already fetched the
                // element there (all records pending — nothing new);
                // with no such slot, no pending copy can match and the
                // records are straight appends of the resolution.
                bool dup = false;
                for (size_t j = 0; j < i; ++j)
                    if (slotRow_[j] == slotRow_[i]) dup = true;
                if (dup) continue;
                const char* vrow = soaValid_.data() + slotRow_[i];
                const bc::FetchSlot& sl = slots[i];
                const std::int64_t flat = sl.isArray ? slotFlat_[i] : 0;
                const double mv = slotMissV_[i];
                const int src = slotMissSrc_[i];
                const CommOp* op = plan.slotOp[i];
                for (size_t l = 0; l < ne; ++l) {
                    const int p = execs[l];
                    if (vrow[p] != 0) continue;
                    w.pending.push_back(PendingWrite{p, sl.sym, flat, mv});
                    w.misses.push_back(MissRecord{op, p, src});
                }
            }
            if (sampleEval || profEval) {
                const double us = std::chrono::duration<double, std::micro>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
                if (sampleEval) evalHist_->record(us);
                if (profEval) profile_->addEvalSample(us);
            }
            return;
        }
    } else {
        for (const Expr* r : plan.fetchRefs)
            if (r->kind == ExprKind::ArrayRef)
                refFlat_[static_cast<size_t>(r->id)] = oracle_.flatIndexOf(r);
    }
    values_.resize(ne);
    if (pool_ == nullptr || static_cast<int>(ne) < threads_) {
        WorkerScratch& w = workers_[0];
        if (bcMode)
            runLanesInto(w, plan, execs, 0, static_cast<std::int64_t>(ne));
        else
            for (size_t i = 0; i < ne; ++i)
                values_[i] = evalOnW(w, execs[i], e);
        if (directSym != kNoSymbol) {
            if (engine_ == SimEngine::Bytecode) {
                const std::int64_t row = soaRowOf(directSym, 0);
                for (size_t i = 0; i < ne; ++i) {
                    soa_[static_cast<size_t>(row + execs[i])] = values_[i];
                    soaValid_[static_cast<size_t>(row + execs[i])] = 1;
                }
            } else {
                for (size_t i = 0; i < ne; ++i)
                    procStore_[static_cast<size_t>(execs[i])].set(directSym, 0,
                                                                  values_[i]);
            }
        }
        if (sampleEval || profEval) {
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            if (sampleEval) evalHist_->record(us);
            if (profEval) profile_->addEvalSample(us);
        }
        return;
    }
    phaseExecs_ = &execs;
    phaseExpr_ = e;
    phasePlan_ = &plan;
    phaseDirect_ = directSym;
    pool_->run(
        [](void* ctx, int worker) {
            static_cast<SpmdSimulator*>(ctx)->phaseWorker(worker);
        },
        this);
    if (sampleEval || profEval) {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (sampleEval) evalHist_->record(us);
        if (profEval) profile_->addEvalSample(us);
    }
    for (WorkerScratch& ws : workers_) {
        if (ws.error == nullptr) continue;
        const std::exception_ptr err = ws.error;
        for (WorkerScratch& other : workers_) {
            other.error = nullptr;
            other.pending.clear();
            other.misses.clear();
        }
        std::rethrow_exception(err);
    }
}

void SpmdSimulator::mergeWorkers() {
    const bool sampleMerge =
        mergeHist_ != nullptr && (mergeTick_++ & (kTelemetrySample - 1)) == 0;
    const bool profMerge = profile_ != nullptr && profile_->sampleMerge();
    std::chrono::steady_clock::time_point t0;
    if (sampleMerge || profMerge) t0 = std::chrono::steady_clock::now();
    const bool bcMode = engine_ == SimEngine::Bytecode;
    // Event-context memo: the oracle's scalars are constant for the
    // whole merge, so after noteEvent(op) ran once, repeating it for
    // the same op is a guaranteed duplicate (InternedEventSet::record
    // returns false) — skip the context rebuild and hash probe.
    ++mergeStamp_;
    for (WorkerScratch& ws : workers_) {
        for (const PendingWrite& pw : ws.pending) {
            if (bcMode) {
                const std::int64_t at = soaRowOf(pw.sym, pw.flat) + pw.proc;
                soa_[static_cast<size_t>(at)] = pw.v;
                soaValid_[static_cast<size_t>(at)] = 1;
            } else {
                procStore_[static_cast<size_t>(pw.proc)].set(pw.sym, pw.flat,
                                                             pw.v);
            }
        }
        for (const MissRecord& m : ws.misses) {
            // Lossy-network mode: every element transfer rides the
            // reliable transport. Polled here, on the main thread in
            // deterministic merge order, so a fixed seed reproduces the
            // exact fault schedule for any worker-thread count.
            if (transport_ != nullptr) transport_->deliver("element transfer");
            ++transfers_;
            ++elemsPerOp_[static_cast<size_t>(m.op->id)];
            ++procMetrics_[static_cast<size_t>(m.proc)].recvElements;
            ++procMetrics_[static_cast<size_t>(m.src)].sentElements;
            if (profile_ != nullptr) profile_->addElement();
            std::uint64_t& stamp = opStamp_[static_cast<size_t>(m.op->id)];
            if (stamp != mergeStamp_) {
                noteEvent(m.op);
                stamp = mergeStamp_;
            }
        }
        ws.pending.clear();
        ws.misses.clear();
    }
    if (sampleMerge || profMerge) {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (sampleMerge) mergeHist_->record(us);
        if (profMerge) profile_->addMergeSample(us);
    }
}

void SpmdSimulator::execStmt(const Stmt* s) {
    switch (s->kind) {
        case StmtKind::Assign: {
            if (boundaryArmed_) boundary(s);
            const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
            const std::vector<int>& execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            if (profile_ != nullptr) {
                profile_->beginStmt(s->id);
                profile_->addExecutors(execs);
            }
            const bool bcMode = engine_ == SimEngine::Bytecode;
            if (bcMode && plan.laneUniform && evalHist_ == nullptr &&
                mergeHist_ == nullptr && profile_ == nullptr &&
                transport_ == nullptr) {
                // No sampler needs its tick and no fault schedule is
                // polled: take the fused uniform path.
                execUniformBc(s, plan, execs);
                break;
            }
            const std::int64_t flat =
                s->lhs->kind == ExprKind::ArrayRef
                    ? (bcMode ? bc::evalIndexForm(plan.code.lhsIndex, oracle_)
                              : oracle_.flatIndexOf(s->lhs))
                    : 0;
            // Relaxed mode: a scalar reduction accumulator is committed
            // by each executor as soon as its lane finishes, skipping
            // the merge-order barrier below. Safe because the combine
            // is commutative and nobody else may read the accumulator
            // mid-loop (no communication op exists for it).
            const bool direct = relaxed_ && plan.isReductionAcc &&
                                s->lhs->kind == ExprKind::VarRef;
            // Evaluate on every executor against the pre-statement state.
            evalPhase(plan, execs, s->rhs,
                      direct ? s->lhs->sym : kNoSymbol);
            if (!phaseClean_ || mergeHist_ != nullptr ||
                profile_ != nullptr)
                mergeWorkers();
            if (bcMode) {
                // Apply the statement's effect on the oracle through the
                // same bytecode, so the reference state never pays a
                // tree walk either. Accounting matches execStmt exactly.
                const double* od = oracle_.store().dataRaw();
                const double v = vm::runScalar(
                    plan.code.value, oracleRegs_.data(),
                    [&](int slot) { return od[slotElem_[slot]]; });
                const std::int64_t row = soaRowOf(s->lhs->sym, flat);
                if (!plan.isReductionAcc)
                    // Non-executors' copies become stale: one contiguous
                    // validity-row clear instead of per-store calls.
                    std::memset(soaValid_.data() + row, 0,
                                static_cast<size_t>(procCount_));
                if (plan.laneUniform) {
                    // Uniform phase: every executor's result is the
                    // oracle's value (no per-lane values_ were run).
                    if (&execs == &allProcs_) {
                        std::fill(soa_.begin() + row,
                                  soa_.begin() + row + procCount_, v);
                        std::memset(soaValid_.data() + row, 1,
                                    static_cast<size_t>(procCount_));
                    } else {
                        for (const int p : execs) {
                            soa_[static_cast<size_t>(row + p)] = v;
                            soaValid_[static_cast<size_t>(row + p)] = 1;
                        }
                    }
                } else if (!direct) {
                    for (size_t i = 0; i < execs.size(); ++i) {
                        soa_[static_cast<size_t>(row + execs[i])] = values_[i];
                        soaValid_[static_cast<size_t>(row + execs[i])] = 1;
                    }
                }
                oracle_.store().set(s->lhs->sym, flat, v);
                oracle_.noteStatementExecuted();
            } else {
                if (!plan.isReductionAcc) {
                    // Non-executors' copies become stale.
                    for (int p = 0; p < procCount_; ++p)
                        procStore_[static_cast<size_t>(p)].invalidate(
                            s->lhs->sym, flat);
                }
                if (!direct)
                    for (size_t i = 0; i < execs.size(); ++i)
                        procStore_[static_cast<size_t>(execs[i])].set(
                            s->lhs->sym, flat, values_[i]);
                oracle_.execStmt(s);
            }
            break;
        }
        case StmtKind::If: {
            if (boundaryArmed_) boundary(s);
            const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
            const std::vector<int>& execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            if (profile_ != nullptr) {
                profile_->beginStmt(s->id);
                profile_->addExecutors(execs);
            }
            evalPhase(plan, execs, s->cond);  // predicate comm
            if (!phaseClean_ || mergeHist_ != nullptr ||
                profile_ != nullptr)
                mergeWorkers();
            const bool taken =
                engine_ == SimEngine::Bytecode
                    ? vm::runScalar(plan.code.value, oracleRegs_.data(),
                                    [&](int slot) {
                                        return oracle_.store().dataRaw()
                                            [slotElem_[slot]];
                                    }) != 0.0
                    : oracle_.eval(s->cond) != 0.0;
            if (trackCtrl_) {
                CtrlFrame f;
                f.stmt = s;
                f.taken = taken;
                ctrl_.push_back(f);
            }
            FramePop pop{trackCtrl_ ? &ctrl_ : nullptr};
            if (taken)
                execBlock(s->thenBody);
            else
                execBlock(s->elseBody);
            break;
        }
        case StmtKind::Do: {
            const auto lb = oracle_.evalIndex(s->lb);
            const auto ub = oracle_.evalIndex(s->ub);
            const auto step =
                s->step != nullptr ? oracle_.evalIndex(s->step) : std::int64_t{1};
            if (relaxed_) {
                // Snapshot each commutative accumulator's loop-entry
                // value: the relaxed Sum combine is the exact delta sum
                // init + sum_p (v_p - init), which is order-independent
                // because integer-valued deltas stay exact in doubles.
                for (const CombinePlan& c :
                     plans_[static_cast<size_t>(s->id)].combines)
                    if (relaxedCombinable(c.red->op))
                        combineInit_[static_cast<size_t>(c.op->id)] =
                            oracle_.store().get(c.op->ref->sym);
            }
            if (trackCtrl_) {
                // Bounds captured as evaluated at loop entry; a resumed
                // loop iterates exactly as the original would have.
                CtrlFrame f;
                f.stmt = s;
                f.iv = lb;
                f.ub = ub;
                f.step = step;
                ctrl_.push_back(f);
            }
            {
                FramePop pop{trackCtrl_ ? &ctrl_ : nullptr};
                for (std::int64_t iv = lb; step > 0 ? iv <= ub : iv >= ub;
                     iv += step) {
                    if (trackCtrl_) ctrl_.back().iv = iv;
                    oracle_.store().set(s->loopVar, 0, static_cast<double>(iv));
                    if (engine_ == SimEngine::Bytecode)
                        soaBroadcast(s->loopVar, 0, static_cast<double>(iv));
                    else
                        for (int p = 0; p < procCount_; ++p)
                            procStore_[static_cast<size_t>(p)].set(
                                s->loopVar, 0, static_cast<double>(iv));
                    execLoopBody(s);
                }
            }
            runCombines(s);
            break;
        }
        case StmtKind::Goto:
            throw GotoSignal{s->gotoTarget};
        case StmtKind::Continue:
            break;
    }
}

void SpmdSimulator::execUniformBc(const Stmt* s, const StmtPlan& plan,
                                  const std::vector<int>& execs) {
    // Slot pre-resolution, identical to evalPhase's bytecode scan.
    const std::vector<bc::FetchSlot>& slots = plan.code.slots;
    const Store& st0 = procStore_[0];
    const bool dense = &execs == &allProcs_;
    const size_t ne = execs.size();
    bool clean = true;
    for (size_t i = 0; i < slots.size(); ++i) {
        const std::int64_t flat =
            slots[i].isArray
                ? bc::evalIndexForm(plan.code.slotIndex[i], oracle_)
                : 0;
        const std::int64_t elem = st0.elemIndexOf(slots[i].sym, flat);
        slotElem_[i] = elem;
        slotRow_[i] = elem * procCount_;
        slotMissResolved_[i] = 0;
        const char* vrow = soaValid_.data() + slotRow_[i];
        char ok = 1;
        if (dense) {
            const int miss = firstZeroByte(vrow, procCount_);
            if (miss >= 0) {
                ok = 0;
                resolveSlotMiss(plan, static_cast<int>(i), miss);
            }
        } else {
            for (size_t l = 0; l < ne; ++l) {
                if (vrow[execs[l]] != 0) continue;
                ok = 0;
                resolveSlotMiss(plan, static_cast<int>(i), execs[l]);
                break;
            }
        }
        slotAllValid_[i] = ok;
        clean = clean && ok != 0;
    }
    if (!clean) {
        // Apply the misses in place — same slot-major lane order, same
        // row-equality dedup and same per-merge event memo the deferred
        // evalPhase + mergeWorkers pair produces (mutating a row here
        // cannot change a later slot's miss set: an equal row is
        // dedup-skipped, a different row is untouched).
        ++mergeStamp_;
        for (size_t i = 0; i < slots.size(); ++i) {
            if (slotAllValid_[i] != 0) continue;
            bool dup = false;
            for (size_t j = 0; j < i; ++j)
                if (slotElem_[j] == slotElem_[i]) dup = true;
            if (dup) continue;
            const std::int64_t row = slotRow_[i];
            char* vrow = soaValid_.data() + row;
            const double mv = slotMissV_[i];
            const int src = slotMissSrc_[i];
            const CommOp* op = plan.slotOp[i];
            const size_t opId = static_cast<size_t>(op->id);
            for (size_t l = 0; l < ne; ++l) {
                const int p = execs[l];
                if (vrow[p] != 0) continue;
                soa_[static_cast<size_t>(row + p)] = mv;
                vrow[p] = 1;
                ++transfers_;
                ++elemsPerOp_[opId];
                ++procMetrics_[static_cast<size_t>(p)].recvElements;
                ++procMetrics_[static_cast<size_t>(src)].sentElements;
                std::uint64_t& stamp = opStamp_[opId];
                if (stamp != mergeStamp_) {
                    noteEvent(op);
                    stamp = mergeStamp_;
                }
            }
        }
    }
    // Every lane computes the oracle's value (lane uniformity): run the
    // chunk once on the oracle and broadcast.
    const double* od = oracle_.store().dataRaw();
    const double v =
        vm::runScalar(plan.code.value, oracleRegs_.data(),
                      [&](int slot) { return od[slotElem_[slot]]; });
    const std::int64_t flat =
        s->lhs->kind == ExprKind::ArrayRef
            ? bc::evalIndexForm(plan.code.lhsIndex, oracle_)
            : 0;
    const std::int64_t row = soaRowOf(s->lhs->sym, flat);
    if (dense) {
        std::fill(soa_.begin() + row, soa_.begin() + row + procCount_, v);
        std::memset(soaValid_.data() + row, 1,
                    static_cast<size_t>(procCount_));
    } else {
        // Non-executors' copies become stale (lane-uniform statements
        // are never reduction accumulations).
        std::memset(soaValid_.data() + row, 0,
                    static_cast<size_t>(procCount_));
        for (const int p : execs) {
            soa_[static_cast<size_t>(row + p)] = v;
            soaValid_[static_cast<size_t>(row + p)] = 1;
        }
    }
    oracle_.store().set(s->lhs->sym, flat, v);
    oracle_.noteStatementExecuted();
}

void SpmdSimulator::execLoopBody(const Stmt* s) {
    try {
        execBlock(s->body);
    } catch (GotoSignal& g) {
        for (size_t i = 0; i < s->body.size(); ++i) {
            if (s->body[i]->label == g.label) {
                std::vector<Stmt*> rest(
                    s->body.begin() + static_cast<std::ptrdiff_t>(i),
                    s->body.end());
                execBlock(rest);
                return;
            }
        }
        throw;
    }
}

void SpmdSimulator::runCombines(const Stmt* s) {
    // Apply global combining for reductions whose nest just ended.
    // Their events/transfers are attributed to the loop statement.
    if (profile_ != nullptr &&
        !plans_[static_cast<size_t>(s->id)].combines.empty())
        profile_->setCurrent(s->id);
    for (const CombinePlan& c : plans_[static_cast<size_t>(s->id)].combines) {
        const CommOp& op = *c.op;
        // The combine is a global communication event; it rides the
        // reliable transport like any other transfer.
        if (transport_ != nullptr) transport_->deliver("reduction combine");
        const bool relaxedOp = relaxed_ && relaxedCombinable(c.red->op);
        const double v =
            relaxedOp ? combineRelaxed(c) : oracle_.eval(op.ref);
        // In relaxed mode the combined value is defined by the worker
        // copies, not the oracle's sequential accumulation; write it
        // back so the reference state agrees with the broadcast.
        if (relaxedOp) oracle_.store().set(op.ref->sym, 0, v);
        if (engine_ == SimEngine::Bytecode)
            soaBroadcast(op.ref->sym, 0, v);
        else
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(op.ref->sym, 0, v);
        if (c.red->locScalar != kNoSymbol) {
            const double lv = oracle_.store().get(c.red->locScalar);
            if (engine_ == SimEngine::Bytecode)
                soaBroadcast(c.red->locScalar, 0, lv);
            else
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].set(c.red->locScalar, 0,
                                                           lv);
        }
        noteEvent(&op);
        ++transfers_;
        ++elemsPerOp_[static_cast<size_t>(op.id)];
        if (profile_ != nullptr) profile_->addElement();
        // The combine delivers the global result everywhere.
        for (int p = 0; p < procCount_; ++p)
            ++procMetrics_[static_cast<size_t>(p)].recvElements;
    }
}

double SpmdSimulator::combineRelaxed(const CombinePlan& c) const {
    const SymbolId s = c.op->ref->sym;
    const bool bcMode = engine_ == SimEngine::Bytecode;
    const std::int64_t row = bcMode ? soaRowOf(s, 0) : 0;
    const auto procVal = [&](int p) {
        return bcMode ? soa_[static_cast<size_t>(row + p)]
                      : procStore_[static_cast<size_t>(p)].get(s);
    };
    // Only VALID copies participate: a processor whose copy was
    // invalidated (e.g. it did not execute the accumulator's reset
    // assignment) still holds the value from a PREVIOUS reduction nest,
    // not this nest's loop-entry value — combining it would double-count
    // history. Executors always hold valid copies (the direct commit
    // marks them), so at least one copy participates.
    const auto procValid = [&](int p) {
        return bcMode ? soaValid_[static_cast<size_t>(row + p)] != 0
                      : procStore_[static_cast<size_t>(p)].valid(s, 0);
    };
    switch (c.red->op) {
        case ReductionInfo::Op::Sum: {
            // Delta sum over per-processor accumulator copies. A valid
            // copy on a processor that never executed the reduction
            // statement is exactly the loop-entry value, so its delta
            // is exactly 0.0 and contributes nothing.
            const double init = combineInit_[static_cast<size_t>(c.op->id)];
            double v = init;
            for (int p = 0; p < procCount_; ++p)
                if (procValid(p)) v += procVal(p) - init;
            return v;
        }
        case ReductionInfo::Op::Max: {
            bool seen = false;
            double v = 0.0;
            for (int p = 0; p < procCount_; ++p) {
                if (!procValid(p)) continue;
                v = seen ? std::max(v, procVal(p)) : procVal(p);
                seen = true;
            }
            PHPF_ASSERT(seen, "relaxed Max combine with no valid copy");
            return v;
        }
        case ReductionInfo::Op::Min: {
            bool seen = false;
            double v = 0.0;
            for (int p = 0; p < procCount_; ++p) {
                if (!procValid(p)) continue;
                v = seen ? std::min(v, procVal(p)) : procVal(p);
                seen = true;
            }
            PHPF_ASSERT(seen, "relaxed Min combine with no valid copy");
            return v;
        }
        default:
            break;
    }
    PHPF_ASSERT(false, "combineRelaxed on non-commutative reduction");
    return 0.0;
}

void SpmdSimulator::execBlock(const std::vector<Stmt*>& block) {
    execBlockFrom(block, 0);
}

void SpmdSimulator::execBlockFrom(const std::vector<Stmt*>& block,
                                  size_t start) {
    for (size_t i = start; i < block.size(); ++i) {
        try {
            execStmt(block[i]);
        } catch (GotoSignal& g) {
            bool handled = false;
            for (size_t j = i + 1; j < block.size(); ++j) {
                if (block[j]->label == g.label) {
                    i = j - 1;
                    handled = true;
                    break;
                }
            }
            if (!handled) throw;
        }
    }
}

void SpmdSimulator::boundary(const Stmt* s) {
    if (rcfg_.cancel.cancelled())
        throw SimFault(faultsite::kSimCancel,
                       "simulation cancelled after " +
                           std::to_string(instances_) +
                           " statement instances (deadline or explicit "
                           "cancellation)");
    ++instances_;
    // Crash before checkpointing: the site's poll counter advances even
    // across restores (injector state is deliberately not checkpointed),
    // so a replay eventually gets past a firing poll — no livelock.
    if (FaultInjector::poll(crashSite_)) throw CrashSignal{};
    if (rcfg_.checkpointEvery > 0 && instances_ % rcfg_.checkpointEvery == 0)
        takeCheckpoint(s);
}

void SpmdSimulator::takeCheckpoint(const Stmt* boundaryStmt) {
    std::chrono::steady_clock::time_point t0;
    if (ckptHist_ != nullptr) t0 = std::chrono::steady_clock::now();
    // The SoA banks are authoritative mid-run; transcribe them back so
    // the checkpoint's Store copies (and a later restore) see them.
    // Same for the guard-accounting deltas.
    if (engine_ == SimEngine::Bytecode) soaFlush();
    flushAccounting();
    std::vector<CtrlFrame> path = ctrl_;
    if (boundaryStmt != nullptr) {
        // The boundary statement has not executed yet (the hook runs
        // before any of its side effects), so it re-executes on resume.
        CtrlFrame f;
        f.stmt = boundaryStmt;
        path.push_back(f);
    }
    ckpt_ = std::make_unique<Checkpoint>(Checkpoint{
        procStore_, oracle_.store(), oracle_.statementsExecuted(),
        procMetrics_, transfers_, procStmts_, instances_, events_,
        eventsPerOp_, elemsPerOp_, barrierEvents_, combineInit_,
        std::move(path),
        profile_ != nullptr
            ? std::make_unique<obs::StmtProfile>(*profile_)
            : nullptr});
    ++checkpointsTaken_;
    obs::FlightRecorder::global().record(
        "sim.checkpoint", "instances=" + std::to_string(instances_) +
                              " total=" + std::to_string(checkpointsTaken_));
    if (ckptHist_ != nullptr)
        ckptHist_->record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
}

void SpmdSimulator::restoreCheckpoint() {
    PHPF_ASSERT(ckpt_ != nullptr, "restore without a checkpoint");
    obs::FlightRecorder::global().record(
        "sim.restore", "to_instances=" + std::to_string(ckpt_->instances) +
                           " recovery=" + std::to_string(recoveries_));
    const Checkpoint& ck = *ckpt_;
    procStore_ = ck.procStore;
    oracle_.store() = ck.oracleStore;
    oracle_.setStatementsExecuted(ck.oracleExecuted);
    procMetrics_ = ck.procMetrics;
    transfers_ = ck.transfers;
    procStmts_ = ck.procStmts;
    instances_ = ck.instances;
    events_ = ck.events;
    eventsPerOp_ = ck.eventsPerOp;
    combineInit_ = ck.combineInit;
    elemsPerOp_ = ck.elemsPerOp;
    barrierEvents_ = ck.barrierEvents;
    if (profile_ != nullptr && ck.profile != nullptr)
        *profile_ = *ck.profile;
    // Accounting since the checkpoint is rolled back with the metrics.
    std::fill(execDelta_.begin(), execDelta_.end(), 0);
    accountedInstances_ = 0;
    denseAccounted_ = 0;
    if (engine_ == SimEngine::Bytecode) soaLoad();
    // The control stack is rebuilt by the resume navigation; worker
    // scratch holds no state at a statement boundary, but clear it
    // defensively.
    ctrl_.clear();
    for (WorkerScratch& w : workers_) {
        w.pending.clear();
        w.misses.clear();
        w.error = nullptr;
    }
}

void SpmdSimulator::resumeInto(const std::vector<Stmt*>& block, size_t depth) {
    const std::vector<CtrlFrame>& path = ckpt_->path;
    PHPF_ASSERT(depth < path.size(), "resume path exhausted");
    const CtrlFrame f = path[depth];  // copy: ckpt_ may be replaced below
    size_t idx = block.size();
    for (size_t i = 0; i < block.size(); ++i) {
        if (block[i] == f.stmt) {
            idx = i;
            break;
        }
    }
    PHPF_ASSERT(idx < block.size(),
                "resume path statement not found in its block");
    if (depth + 1 == path.size()) {
        // The boundary statement itself: the checkpoint preceded its
        // side effects, so re-execute it and the rest of the block.
        execBlockFrom(block, idx);
        return;
    }
    try {
        if (f.stmt->kind == StmtKind::Do) {
            resumeDo(f, depth);
        } else {
            PHPF_ASSERT(f.stmt->kind == StmtKind::If,
                        "resume path frame is neither Do nor If");
            // The If's own evaluation (predicate comm, accounting)
            // happened before the checkpoint; descend straight into the
            // branch that was in execution.
            ctrl_.push_back(f);
            FramePop pop{&ctrl_};
            resumeInto(f.taken ? f.stmt->thenBody : f.stmt->elseBody,
                       depth + 1);
        }
    } catch (GotoSignal& g) {
        for (size_t j = idx + 1; j < block.size(); ++j) {
            if (block[j]->label == g.label) {
                execBlockFrom(block, j);
                return;
            }
        }
        throw;
    }
    execBlockFrom(block, idx + 1);
}

void SpmdSimulator::resumeDo(const CtrlFrame& f, size_t depth) {
    const Stmt* s = f.stmt;
    ctrl_.push_back(f);
    {
        FramePop pop{&ctrl_};
        for (std::int64_t iv = f.iv; f.step > 0 ? iv <= f.ub : iv >= f.ub;
             iv += f.step) {
            ctrl_.back().iv = iv;
            if (iv == f.iv) {
                // The checkpointed iteration: its loop-variable stores
                // are already part of the restored state; finish it from
                // the recorded position.
                try {
                    resumeInto(s->body, depth + 1);
                } catch (GotoSignal& g) {
                    bool handled = false;
                    for (size_t i = 0; i < s->body.size(); ++i) {
                        if (s->body[i]->label == g.label) {
                            std::vector<Stmt*> rest(
                                s->body.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                s->body.end());
                            execBlock(rest);
                            handled = true;
                            break;
                        }
                    }
                    if (!handled) throw;
                }
                continue;
            }
            oracle_.store().set(s->loopVar, 0, static_cast<double>(iv));
            if (engine_ == SimEngine::Bytecode)
                soaBroadcast(s->loopVar, 0, static_cast<double>(iv));
            else
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].set(
                        s->loopVar, 0, static_cast<double>(iv));
            execLoopBody(s);
        }
    }
    runCombines(s);
}

void SpmdSimulator::run() {
    const auto t0 = std::chrono::steady_clock::now();
    // Distribute initial (oracle-seeded) data: owners hold their
    // elements, replicated data is everywhere.
    const ProcGrid& grid = low_.dataMapping().grid();
    for (const Symbol& sym : prog_.symbols) {
        const ArrayMap& map = low_.dataMapping().mapOf(sym.id);
        if (!sym.isArray()) {
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(
                    sym.id, 0, oracle_.store().get(sym.id));
            continue;
        }
        // Enumerate elements and place them on their owners.
        std::vector<std::int64_t> idx(static_cast<size_t>(sym.rank()));
        std::function<void(int)> rec = [&](int d) {
            if (d == sym.rank()) {
                const std::int64_t flat =
                    procStore_[0].flatten(prog_, sym.id, idx);
                const GridSet owners = map.ownerOf(idx, grid);
                forEachGridProc(owners, grid, coordsScratch_, [&](int p) {
                    procStore_[static_cast<size_t>(p)].set(
                        sym.id, flat, oracle_.store().get(sym.id, flat));
                    return true;
                });
                return;
            }
            const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
            for (std::int64_t v = dim.lb; v <= dim.ub; ++v) {
                idx[static_cast<size_t>(d)] = v;
                rec(d + 1);
            }
        };
        rec(0);
    }
    recoveries_ = 0;
    checkpointsTaken_ = 0;
    instances_ = 0;
    ctrl_.clear();
    ckpt_.reset();
    // Bytecode engine: the lane-major SoA banks become the authoritative
    // per-processor state for the whole run; procStore_ is transcribed
    // back at checkpoints and at run end (soaFlush), so the external
    // Store-based interface is unchanged.
    if (engine_ == SimEngine::Bytecode) soaLoad();
    // With crash recovery armed, take the initial checkpoint right after
    // initial distribution — a crash before the first periodic one
    // replays from the start of the program.
    if (crashSite_ != nullptr) takeCheckpoint(nullptr);
    bool resuming = false;
    try {
        for (;;) {
            try {
                if (resuming && !ckpt_->path.empty())
                    resumeInto(prog_.top, 0);
                else
                    execBlock(prog_.top);
                break;
            } catch (CrashSignal&) {
                ++recoveries_;
                if (recoveries_ > rcfg_.maxRecoveries)
                    throw SimFault(
                        faultsite::kProcCrash,
                        "recovery budget exhausted (" +
                            std::to_string(rcfg_.maxRecoveries) +
                            " recoveries; " +
                            std::to_string(checkpointsTaken_) +
                            " checkpoints taken)");
                restoreCheckpoint();
                resuming = true;
            }
        }
    } catch (...) {
        // A SimFault escaping mid-run must still leave procStore_ and
        // the per-proc metrics coherent for post-mortem inspection.
        if (engine_ == SimEngine::Bytecode) soaFlush();
        flushAccounting();
        throw;
    }
    if (engine_ == SimEngine::Bytecode) soaFlush();
    flushAccounting();
    wallSec_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();

    // One tid-stamped span per spawned pool worker, covering the whole
    // run and parented under the caller's current context (normally the
    // driver's sim-exec span). Recorded from each worker's own thread
    // in one final pool kick, so the Chrome trace gets a named
    // "sim-worker-N" row per thread without per-phase span overhead.
    // Worker 0 is the caller; its time is the sim-exec span itself.
    if (ctracer_ != nullptr && ctracer_->enabled() && pool_ != nullptr) {
        struct SpanCtx {
            obs::ConcurrentTracer* tracer;
            obs::SpanContext parent;
            std::int64_t startNs;
            std::int64_t durNs;
        };
        const std::int64_t durNs = static_cast<std::int64_t>(wallSec_ * 1e9);
        SpanCtx sc{ctracer_, ctracer_->currentContext(),
                   ctracer_->nowNs() - durNs, durNs};
        pool_->run(
            [](void* ctx, int worker) {
                if (worker == 0) return;
                const auto* c = static_cast<const SpanCtx*>(ctx);
                const std::string name =
                    "sim-worker-" + std::to_string(worker);
                c->tracer->addCompleteSpan(name.c_str(), "sim", c->startNs,
                                           c->durNs, c->parent);
            },
            &sc);
    }
}

std::int64_t SpmdSimulator::eventsOfOp(int opId) const {
    return opId >= 0 && static_cast<size_t>(opId) < eventsPerOp_.size()
               ? eventsPerOp_[static_cast<size_t>(opId)]
               : 0;
}

std::int64_t SpmdSimulator::elementsOfOp(int opId) const {
    return opId >= 0 && static_cast<size_t>(opId) < elemsPerOp_.size()
               ? elemsPerOp_[static_cast<size_t>(opId)]
               : 0;
}

void SpmdSimulator::accountExecutors(const std::vector<int>& execs) {
    // Guard accounting: processors in `execs` pass their computation-
    // partitioning guard for this statement instance, everyone else
    // evaluates the guard and skips.
    if (engine_ != SimEngine::Bytecode) {
        for (ProcSimMetrics& m : procMetrics_) ++m.stmtsSkipped;
        for (const int p : execs) {
            ProcSimMetrics& m = procMetrics_[static_cast<size_t>(p)];
            ++m.stmtsExecuted;
            --m.stmtsSkipped;
        }
        return;
    }
    // Bytecode engine: skipped = instances - executed, so only the
    // executed counts (dense int64 array, one cache line for typical
    // proc counts — or a single counter for guard-All instances) are
    // touched per instance; flushAccounting materializes the
    // ProcSimMetrics view at run/checkpoint boundaries.
    ++accountedInstances_;
    if (&execs == &allProcs_) {
        ++denseAccounted_;
        return;
    }
    for (const int p : execs) ++execDelta_[static_cast<size_t>(p)];
}

void SpmdSimulator::flushAccounting() {
    if (accountedInstances_ == 0) return;
    for (int p = 0; p < procCount_; ++p) {
        ProcSimMetrics& m = procMetrics_[static_cast<size_t>(p)];
        const std::int64_t executed =
            denseAccounted_ + execDelta_[static_cast<size_t>(p)];
        m.stmtsExecuted += executed;
        m.stmtsSkipped += accountedInstances_ - executed;
        execDelta_[static_cast<size_t>(p)] = 0;
    }
    accountedInstances_ = 0;
    denseAccounted_ = 0;
}

double SpmdSimulator::imbalanceRatio() const {
    std::int64_t total = 0;
    std::int64_t maxExec = 0;
    for (const ProcSimMetrics& m : procMetrics_) {
        total += m.stmtsExecuted;
        maxExec = std::max(maxExec, m.stmtsExecuted);
    }
    if (total == 0) return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(procCount_);
    return static_cast<double>(maxExec) / mean;
}

double SpmdSimulator::valueOn(int proc, const std::string& name,
                              std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].get(s, flat);
}

bool SpmdSimulator::validOn(int proc, const std::string& name,
                            std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].valid(s, flat);
}

double SpmdSimulator::maxErrorVsOracle(const std::string& name) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    double maxErr = 0.0;
    for (std::int64_t flat = 0; flat < procStore_[0].sizeOf(s); ++flat) {
        const double ref = oracle_.store().get(s, flat);
        for (int p = 0; p < procCount_; ++p) {
            if (!procStore_[static_cast<size_t>(p)].valid(s, flat)) continue;
            maxErr = std::max(
                maxErr,
                std::abs(procStore_[static_cast<size_t>(p)].get(s, flat) - ref));
        }
    }
    return maxErr;
}

}  // namespace phpf
