#include "runtime/spmd_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <numeric>

#include "ir/printer.h"
#include "obs/flight_recorder.h"
#include "support/diagnostics.h"

namespace phpf {

namespace {

/// Calls fn(linearProc) for every processor in `gs`, last grid dimension
/// fastest (the enumeration order the executor/owner sets are defined
/// in). `fn` returns false to stop early; `coords` is caller-provided
/// scratch so the walk never allocates.
template <typename Fn>
void forEachGridProc(const GridSet& gs, const ProcGrid& grid,
                     std::vector<int>& coords, Fn&& fn) {
    const int rank = grid.rank();
    coords.assign(static_cast<size_t>(rank), 0);
    for (int d = 0; d < rank; ++d)
        if (gs.coord[static_cast<size_t>(d)] >= 0)
            coords[static_cast<size_t>(d)] = gs.coord[static_cast<size_t>(d)];
    for (;;) {
        if (!fn(grid.linearize(coords))) return;
        int d = rank - 1;
        for (; d >= 0; --d) {
            if (gs.coord[static_cast<size_t>(d)] >= 0) continue;  // pinned
            if (++coords[static_cast<size_t>(d)] < grid.extent(d)) break;
            coords[static_cast<size_t>(d)] = 0;
        }
        if (d < 0) return;
    }
}

/// VarRef/ArrayRef nodes of `e` read in value position (ArrayRef
/// subscripts resolve on the oracle and are never fetched).
void collectFetchRefs(const Expr* e, std::vector<const Expr*>& out) {
    switch (e->kind) {
        case ExprKind::IntLit:
        case ExprKind::RealLit:
            return;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
            out.push_back(e);
            return;
        case ExprKind::Unary:
        case ExprKind::Binary:
        case ExprKind::Call:
            for (const Expr* a : e->args) collectFetchRefs(a, out);
            return;
    }
}

/// Pops the back of `v` on scope exit when non-null; keeps the control
/// stack balanced on every exit path (return, GotoSignal, CrashSignal).
template <typename V>
class FramePop {
public:
    explicit FramePop(V* v) : v_(v) {}
    ~FramePop() {
        if (v_ != nullptr) v_->pop_back();
    }
    FramePop(const FramePop&) = delete;
    FramePop& operator=(const FramePop&) = delete;

private:
    V* v_;
};

}  // namespace

SpmdSimulator::SpmdSimulator(const SpmdLowering& low, int elemBytes,
                             int threads, SimRecoveryConfig recovery)
    : low_(low), prog_(low.program()), oracle_(prog_),
      procCount_(low.dataMapping().grid().totalProcs()),
      elemBytes_(elemBytes),
      threads_(resolveThreadCount(threads, procCount_)) {
    rcfg_ = std::move(recovery);
    if (rcfg_.faults != nullptr && rcfg_.faults->enabled()) {
        const FaultInjector& inj = *rcfg_.faults;
        if (inj.find(faultsite::kNetDrop) != nullptr ||
            inj.find(faultsite::kNetDup) != nullptr ||
            inj.find(faultsite::kNetDelay) != nullptr)
            transport_ =
                std::make_unique<ReliableTransport>(inj, rcfg_.transport);
        crashSite_ = inj.find(faultsite::kProcCrash);
    }
    // Control frames are needed exactly when a checkpoint can be taken.
    trackCtrl_ = crashSite_ != nullptr || rcfg_.checkpointEvery > 0;
    boundaryArmed_ = trackCtrl_ || rcfg_.cancel.armed();
    procStore_.assign(static_cast<size_t>(procCount_), Store(prog_));
    procMetrics_.assign(static_cast<size_t>(procCount_), ProcSimMetrics{});
    if (threads_ > 1)
        pool_ = std::make_unique<LockstepPool>(threads_, "sim-worker");
    workers_.resize(static_cast<size_t>(threads_));

    allProcs_.resize(static_cast<size_t>(procCount_));
    std::iota(allProcs_.begin(), allProcs_.end(), 0);
    flagsScratch_.assign(static_cast<size_t>(procCount_), 0);
    refFlat_.assign(static_cast<size_t>(prog_.exprCount()), 0);

    const size_t nOps = low_.commOps().size();
    eventsPerOp_.assign(nOps, 0);
    elemsPerOp_.assign(nOps, 0);
    opByRef_.assign(static_cast<size_t>(prog_.exprCount()), nullptr);
    opCtxVars_.resize(nOps);
    for (const CommOp& op : low_.commOps()) {
        PHPF_ASSERT(op.id >= 0 && static_cast<size_t>(op.id) < nOps,
                    "comm op ids must be dense");
        if (!op.isReductionCombine)
            opByRef_[static_cast<size_t>(op.ref->id)] = &op;
        // The iteration-vector context of the op's events: loop indices
        // of the enclosing loops at or above the placement level.
        for (const Stmt* l : prog_.enclosingLoops(op.atStmt)) {
            if (l->loopNestingLevel() > op.placementLevel) break;
            opCtxVars_[static_cast<size_t>(op.id)].push_back(l->loopVar);
        }
    }
    buildPlans();
}

void SpmdSimulator::setTelemetry(obs::MetricRegistry* metrics,
                                 obs::ConcurrentTracer* tracer) {
    metrics_ = metrics;
    ctracer_ = tracer;
    evalHist_ =
        metrics != nullptr ? &metrics->histogram("sim.phase.eval_us") : nullptr;
    mergeHist_ = metrics != nullptr ? &metrics->histogram("sim.phase.merge_us")
                                    : nullptr;
    ckptHist_ =
        metrics != nullptr ? &metrics->histogram("sim.checkpoint_us") : nullptr;
}

void SpmdSimulator::buildPlans() {
    plans_.resize(static_cast<size_t>(prog_.stmtCount()));
    for (const auto& r : low_.reductions()) {
        if (r.stmt != nullptr)
            plans_[static_cast<size_t>(r.stmt->id)].isReductionAcc = true;
        if (r.locStmt != nullptr)
            plans_[static_cast<size_t>(r.locStmt->id)].isReductionAcc = true;
    }
    prog_.forEachStmt([&](const Stmt* s) {
        StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
        switch (s->kind) {
            case StmtKind::Assign:
            case StmtKind::If: {
                plan.exec = &low_.execOf(s);
                collectFetchRefs(s->kind == StmtKind::Assign ? s->rhs
                                                             : s->cond,
                                 plan.fetchRefs);
                if (plan.exec->guard != StmtExec::Guard::Union) break;
                // Section 2.1 / 4: executed by the union of all
                // processors executing any other statement inside the
                // loop for this iteration. Only statements in the same
                // iteration context (enclosing loops a subset of ours)
                // contribute — their owner descriptors are evaluable
                // right when the instance executes.
                const auto loops = prog_.enclosingLoops(s);
                if (loops.empty()) break;
                const Stmt* innermost = loops.back();
                prog_.forEachStmt([&](const Stmt* t) {
                    if (t == s || t->kind != StmtKind::Assign) return;
                    if (!Program::isInsideLoop(t, innermost)) return;
                    if (prog_.enclosingLoops(t).size() != loops.size())
                        return;
                    const StmtExec& tex = low_.execOf(t);
                    if (tex.guard != StmtExec::Guard::OwnerOf) return;
                    plan.unionSrcs.push_back(&tex.execDesc);
                });
                break;
            }
            case StmtKind::Do: {
                // Global combines for reductions whose nest ends here,
                // in comm-op order.
                for (const CommOp& op : low_.commOps()) {
                    if (!op.isReductionCombine) continue;
                    const ReductionInfo* red = nullptr;
                    for (const auto& r : low_.reductions())
                        if (r.stmt == op.atStmt) red = &r;
                    if (red == nullptr || red->loops.front() != s) continue;
                    plan.combines.push_back(CombinePlan{&op, red});
                }
                break;
            }
            case StmtKind::Goto:
            case StmtKind::Continue:
                break;
        }
    });
}

void SpmdSimulator::evalDescInto(const RefDesc& desc, GridSet& out) const {
    const ProcGrid& grid = low_.dataMapping().grid();
    out.coord.assign(static_cast<size_t>(grid.rank()), -1);
    for (int g = 0; g < grid.rank(); ++g) {
        const RefDim& dim = desc.dims[static_cast<size_t>(g)];
        switch (dim.kind) {
            case RefDim::Kind::Replicated:
                break;
            case RefDim::Kind::Fixed:
                out.coord[static_cast<size_t>(g)] = dim.fixedCoord;
                break;
            case RefDim::Kind::Partitioned: {
                PHPF_ASSERT(dim.subscriptExpr != nullptr,
                            "partitioned dim without subscript expr");
                const std::int64_t v = oracle_.evalIndex(dim.subscriptExpr);
                out.coord[static_cast<size_t>(g)] =
                    dim.dist.ownerOf(v + dim.offset);
                break;
            }
        }
    }
}

const std::vector<int>& SpmdSimulator::executorsOf(const Stmt* s) {
    const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
    const ProcGrid& grid = low_.dataMapping().grid();
    switch (plan.exec->guard) {
        case StmtExec::Guard::All:
            return allProcs_;
        case StmtExec::Guard::OwnerOf:
            execsScratch_.clear();
            evalDescInto(plan.exec->execDesc, gsScratch_);
            forEachGridProc(gsScratch_, grid, coordsScratch_, [&](int p) {
                execsScratch_.push_back(p);
                return true;
            });
            return execsScratch_;
        case StmtExec::Guard::Union: {
            if (plan.unionSrcs.empty()) return allProcs_;
            std::fill(flagsScratch_.begin(), flagsScratch_.end(), 0);
            for (const RefDesc* d : plan.unionSrcs) {
                evalDescInto(*d, gsScratch_);
                forEachGridProc(gsScratch_, grid, coordsScratch_, [&](int p) {
                    flagsScratch_[static_cast<size_t>(p)] = 1;
                    return true;
                });
            }
            execsScratch_.clear();
            for (int p = 0; p < procCount_; ++p)
                if (flagsScratch_[static_cast<size_t>(p)] != 0)
                    execsScratch_.push_back(p);
            if (execsScratch_.empty()) return allProcs_;
            return execsScratch_;
        }
    }
    return allProcs_;
}

void SpmdSimulator::noteEvent(const CommOp* op) {
    ctxScratch_.clear();
    for (const SymbolId v : opCtxVars_[static_cast<size_t>(op->id)])
        ctxScratch_.push_back(
            static_cast<std::int64_t>(oracle_.store().get(v)));
    if (events_.record(op->id, ctxScratch_)) {
        ++eventsPerOp_[static_cast<size_t>(op->id)];
        if (profile_ != nullptr) profile_->addEvent();
    }
}

double SpmdSimulator::fetchW(WorkerScratch& w, int proc, const Expr* ref) {
    const std::int64_t flat =
        ref->kind == ExprKind::ArrayRef ? refFlat_[static_cast<size_t>(ref->id)]
                                        : 0;
    const Store& st = procStore_[static_cast<size_t>(proc)];
    if (st.valid(ref->sym, flat)) return st.get(ref->sym, flat);
    // A copy this processor already fetched earlier in the same phase
    // (store writes are deferred to the barrier).
    for (const PendingWrite& pw : w.pending)
        if (pw.proc == proc && pw.sym == ref->sym && pw.flat == flat)
            return pw.v;

    const CommOp* op = opByRef_[static_cast<size_t>(ref->id)];
    PHPF_ASSERT(op != nullptr,
                "processor " + std::to_string(proc) +
                    " reads unavailable data with no communication op: " +
                    printExpr(prog_, ref) + " (program " + prog_.name + ")");
    // Locate a processor holding the value: the descriptor's owner set,
    // falling back to a scan (stale-free by construction: writes
    // invalidate every non-executing copy). All stores are read-only
    // within a phase, so cross-processor reads are race-free.
    const ProcGrid& grid = low_.dataMapping().grid();
    evalDescInto(op->srcDesc, w.gs);
    double v = 0.0;
    int src = -1;
    forEachGridProc(w.gs, grid, w.coords, [&](int p) {
        const Store& owner = procStore_[static_cast<size_t>(p)];
        if (!owner.valid(ref->sym, flat)) return true;
        v = owner.get(ref->sym, flat);
        src = p;
        return false;
    });
    PHPF_ASSERT(src >= 0, "no owner holds a valid copy of " +
                              printExpr(prog_, ref) + " in program " +
                              prog_.name);
    w.pending.push_back(PendingWrite{proc, ref->sym, flat, v});
    w.misses.push_back(MissRecord{op, proc, src});
    return v;
}

double SpmdSimulator::evalOnW(WorkerScratch& w, int proc, const Expr* e) {
    switch (e->kind) {
        case ExprKind::IntLit:
            return static_cast<double>(e->ival);
        case ExprKind::RealLit:
            return e->rval;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
            return fetchW(w, proc, e);
        case ExprKind::Unary: {
            const double a = evalOnW(w, proc, e->args[0]);
            return e->uop == UnaryOp::Neg ? -a : (a != 0.0 ? 0.0 : 1.0);
        }
        case ExprKind::Binary: {
            const double a = evalOnW(w, proc, e->args[0]);
            const double b = evalOnW(w, proc, e->args[1]);
            switch (e->bop) {
                case BinaryOp::Add: return a + b;
                case BinaryOp::Sub: return a - b;
                case BinaryOp::Mul: return a * b;
                case BinaryOp::Div: return a / b;
                case BinaryOp::Pow: return std::pow(a, b);
                case BinaryOp::Lt: return a < b ? 1.0 : 0.0;
                case BinaryOp::Le: return a <= b ? 1.0 : 0.0;
                case BinaryOp::Gt: return a > b ? 1.0 : 0.0;
                case BinaryOp::Ge: return a >= b ? 1.0 : 0.0;
                case BinaryOp::Eq: return a == b ? 1.0 : 0.0;
                case BinaryOp::Ne: return a != b ? 1.0 : 0.0;
                case BinaryOp::And:
                    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
                case BinaryOp::Or:
                    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
            }
            return 0.0;
        }
        case ExprKind::Call: {
            switch (e->fn) {
                case Intrinsic::Abs:
                    return std::abs(evalOnW(w, proc, e->args[0]));
                case Intrinsic::Max:
                    return std::max(evalOnW(w, proc, e->args[0]),
                                    evalOnW(w, proc, e->args[1]));
                case Intrinsic::Min:
                    return std::min(evalOnW(w, proc, e->args[0]),
                                    evalOnW(w, proc, e->args[1]));
                case Intrinsic::Sqrt:
                    return std::sqrt(evalOnW(w, proc, e->args[0]));
                case Intrinsic::Mod:
                    return std::fmod(evalOnW(w, proc, e->args[0]),
                                     evalOnW(w, proc, e->args[1]));
                case Intrinsic::Sign: {
                    const double a = evalOnW(w, proc, e->args[0]);
                    const double b = evalOnW(w, proc, e->args[1]);
                    return b >= 0.0 ? std::abs(a) : -std::abs(a);
                }
                case Intrinsic::Exp:
                    return std::exp(evalOnW(w, proc, e->args[0]));
            }
            return 0.0;
        }
    }
    return 0.0;
}

void SpmdSimulator::phaseWorker(int worker) {
    WorkerScratch& ws = workers_[static_cast<size_t>(worker)];
    try {
        const std::vector<int>& execs = *phaseExecs_;
        const auto [b, e] = LockstepPool::chunkOf(
            static_cast<std::int64_t>(execs.size()), worker, threads_);
        for (std::int64_t i = b; i < e; ++i)
            values_[static_cast<size_t>(i)] =
                evalOnW(ws, execs[static_cast<size_t>(i)], phaseExpr_);
    } catch (...) {
        ws.error = std::current_exception();
    }
}

void SpmdSimulator::evalPhase(const StmtPlan& plan,
                              const std::vector<int>& execs, const Expr* e) {
    // Telemetry is opt-in (evalHist_ resolved once in setTelemetry);
    // unarmed runs pay a null check, not a clock read. Armed runs
    // sample 1 in kTelemetrySample phases: a phase is microseconds
    // long, so timing every one would cost more than the phase.
    const bool sampleEval =
        evalHist_ != nullptr && (evalTick_++ & (kTelemetrySample - 1)) == 0;
    // The profiler keeps its own tick (checkpointed with the profile),
    // so its sample schedule is deterministic even across recovery.
    const bool profEval = profile_ != nullptr && profile_->sampleEval();
    std::chrono::steady_clock::time_point t0;
    if (sampleEval || profEval) t0 = std::chrono::steady_clock::now();
    // Resolve the flat index of every fetched ArrayRef once on the
    // oracle; subscripts are iteration-dependent but identical on every
    // executor.
    for (const Expr* r : plan.fetchRefs)
        if (r->kind == ExprKind::ArrayRef)
            refFlat_[static_cast<size_t>(r->id)] = oracle_.flatIndexOf(r);
    const size_t ne = execs.size();
    values_.resize(ne);
    if (pool_ == nullptr || static_cast<int>(ne) < threads_) {
        WorkerScratch& w = workers_[0];
        for (size_t i = 0; i < ne; ++i)
            values_[i] = evalOnW(w, execs[i], e);
        if (sampleEval || profEval) {
            const double us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
            if (sampleEval) evalHist_->record(us);
            if (profEval) profile_->addEvalSample(us);
        }
        return;
    }
    phaseExecs_ = &execs;
    phaseExpr_ = e;
    pool_->run(
        [](void* ctx, int worker) {
            static_cast<SpmdSimulator*>(ctx)->phaseWorker(worker);
        },
        this);
    if (sampleEval || profEval) {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (sampleEval) evalHist_->record(us);
        if (profEval) profile_->addEvalSample(us);
    }
    for (WorkerScratch& ws : workers_) {
        if (ws.error == nullptr) continue;
        const std::exception_ptr err = ws.error;
        for (WorkerScratch& other : workers_) {
            other.error = nullptr;
            other.pending.clear();
            other.misses.clear();
        }
        std::rethrow_exception(err);
    }
}

void SpmdSimulator::mergeWorkers() {
    const bool sampleMerge =
        mergeHist_ != nullptr && (mergeTick_++ & (kTelemetrySample - 1)) == 0;
    const bool profMerge = profile_ != nullptr && profile_->sampleMerge();
    std::chrono::steady_clock::time_point t0;
    if (sampleMerge || profMerge) t0 = std::chrono::steady_clock::now();
    for (WorkerScratch& ws : workers_) {
        for (const PendingWrite& pw : ws.pending)
            procStore_[static_cast<size_t>(pw.proc)].set(pw.sym, pw.flat,
                                                         pw.v);
        for (const MissRecord& m : ws.misses) {
            // Lossy-network mode: every element transfer rides the
            // reliable transport. Polled here, on the main thread in
            // deterministic merge order, so a fixed seed reproduces the
            // exact fault schedule for any worker-thread count.
            if (transport_ != nullptr) transport_->deliver("element transfer");
            ++transfers_;
            ++elemsPerOp_[static_cast<size_t>(m.op->id)];
            ++procMetrics_[static_cast<size_t>(m.proc)].recvElements;
            ++procMetrics_[static_cast<size_t>(m.src)].sentElements;
            if (profile_ != nullptr) profile_->addElement();
            noteEvent(m.op);
        }
        ws.pending.clear();
        ws.misses.clear();
    }
    if (sampleMerge || profMerge) {
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (sampleMerge) mergeHist_->record(us);
        if (profMerge) profile_->addMergeSample(us);
    }
}

void SpmdSimulator::execStmt(const Stmt* s) {
    switch (s->kind) {
        case StmtKind::Assign: {
            if (boundaryArmed_) boundary(s);
            const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
            const std::vector<int>& execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            if (profile_ != nullptr) {
                profile_->beginStmt(s->id);
                profile_->addExecutors(execs);
            }
            const std::int64_t flat = s->lhs->kind == ExprKind::ArrayRef
                                          ? oracle_.flatIndexOf(s->lhs)
                                          : 0;
            // Evaluate on every executor against the pre-statement state.
            evalPhase(plan, execs, s->rhs);
            mergeWorkers();
            if (!plan.isReductionAcc) {
                // Non-executors' copies become stale.
                for (int p = 0; p < procCount_; ++p)
                    procStore_[static_cast<size_t>(p)].invalidate(s->lhs->sym,
                                                                  flat);
            }
            for (size_t i = 0; i < execs.size(); ++i)
                procStore_[static_cast<size_t>(execs[i])].set(s->lhs->sym,
                                                              flat, values_[i]);
            oracle_.execStmt(s);
            break;
        }
        case StmtKind::If: {
            if (boundaryArmed_) boundary(s);
            const StmtPlan& plan = plans_[static_cast<size_t>(s->id)];
            const std::vector<int>& execs = executorsOf(s);
            procStmts_ += static_cast<std::int64_t>(execs.size());
            accountExecutors(execs);
            if (profile_ != nullptr) {
                profile_->beginStmt(s->id);
                profile_->addExecutors(execs);
            }
            evalPhase(plan, execs, s->cond);  // predicate comm
            mergeWorkers();
            const bool taken = oracle_.eval(s->cond) != 0.0;
            if (trackCtrl_) {
                CtrlFrame f;
                f.stmt = s;
                f.taken = taken;
                ctrl_.push_back(f);
            }
            FramePop pop{trackCtrl_ ? &ctrl_ : nullptr};
            if (taken)
                execBlock(s->thenBody);
            else
                execBlock(s->elseBody);
            break;
        }
        case StmtKind::Do: {
            const auto lb = oracle_.evalIndex(s->lb);
            const auto ub = oracle_.evalIndex(s->ub);
            const auto step =
                s->step != nullptr ? oracle_.evalIndex(s->step) : std::int64_t{1};
            if (trackCtrl_) {
                // Bounds captured as evaluated at loop entry; a resumed
                // loop iterates exactly as the original would have.
                CtrlFrame f;
                f.stmt = s;
                f.iv = lb;
                f.ub = ub;
                f.step = step;
                ctrl_.push_back(f);
            }
            {
                FramePop pop{trackCtrl_ ? &ctrl_ : nullptr};
                for (std::int64_t iv = lb; step > 0 ? iv <= ub : iv >= ub;
                     iv += step) {
                    if (trackCtrl_) ctrl_.back().iv = iv;
                    oracle_.store().set(s->loopVar, 0, static_cast<double>(iv));
                    for (int p = 0; p < procCount_; ++p)
                        procStore_[static_cast<size_t>(p)].set(
                            s->loopVar, 0, static_cast<double>(iv));
                    execLoopBody(s);
                }
            }
            runCombines(s);
            break;
        }
        case StmtKind::Goto:
            throw GotoSignal{s->gotoTarget};
        case StmtKind::Continue:
            break;
    }
}

void SpmdSimulator::execLoopBody(const Stmt* s) {
    try {
        execBlock(s->body);
    } catch (GotoSignal& g) {
        for (size_t i = 0; i < s->body.size(); ++i) {
            if (s->body[i]->label == g.label) {
                std::vector<Stmt*> rest(
                    s->body.begin() + static_cast<std::ptrdiff_t>(i),
                    s->body.end());
                execBlock(rest);
                return;
            }
        }
        throw;
    }
}

void SpmdSimulator::runCombines(const Stmt* s) {
    // Apply global combining for reductions whose nest just ended.
    // Their events/transfers are attributed to the loop statement.
    if (profile_ != nullptr &&
        !plans_[static_cast<size_t>(s->id)].combines.empty())
        profile_->setCurrent(s->id);
    for (const CombinePlan& c : plans_[static_cast<size_t>(s->id)].combines) {
        const CommOp& op = *c.op;
        // The combine is a global communication event; it rides the
        // reliable transport like any other transfer.
        if (transport_ != nullptr) transport_->deliver("reduction combine");
        const double v = oracle_.eval(op.ref);
        for (int p = 0; p < procCount_; ++p)
            procStore_[static_cast<size_t>(p)].set(op.ref->sym, 0, v);
        if (c.red->locScalar != kNoSymbol) {
            const double lv = oracle_.store().get(c.red->locScalar);
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(c.red->locScalar, 0, lv);
        }
        noteEvent(&op);
        ++transfers_;
        ++elemsPerOp_[static_cast<size_t>(op.id)];
        if (profile_ != nullptr) profile_->addElement();
        // The combine delivers the global result everywhere.
        for (int p = 0; p < procCount_; ++p)
            ++procMetrics_[static_cast<size_t>(p)].recvElements;
    }
}

void SpmdSimulator::execBlock(const std::vector<Stmt*>& block) {
    execBlockFrom(block, 0);
}

void SpmdSimulator::execBlockFrom(const std::vector<Stmt*>& block,
                                  size_t start) {
    for (size_t i = start; i < block.size(); ++i) {
        try {
            execStmt(block[i]);
        } catch (GotoSignal& g) {
            bool handled = false;
            for (size_t j = i + 1; j < block.size(); ++j) {
                if (block[j]->label == g.label) {
                    i = j - 1;
                    handled = true;
                    break;
                }
            }
            if (!handled) throw;
        }
    }
}

void SpmdSimulator::boundary(const Stmt* s) {
    if (rcfg_.cancel.cancelled())
        throw SimFault(faultsite::kSimCancel,
                       "simulation cancelled after " +
                           std::to_string(instances_) +
                           " statement instances (deadline or explicit "
                           "cancellation)");
    ++instances_;
    // Crash before checkpointing: the site's poll counter advances even
    // across restores (injector state is deliberately not checkpointed),
    // so a replay eventually gets past a firing poll — no livelock.
    if (FaultInjector::poll(crashSite_)) throw CrashSignal{};
    if (rcfg_.checkpointEvery > 0 && instances_ % rcfg_.checkpointEvery == 0)
        takeCheckpoint(s);
}

void SpmdSimulator::takeCheckpoint(const Stmt* boundaryStmt) {
    std::chrono::steady_clock::time_point t0;
    if (ckptHist_ != nullptr) t0 = std::chrono::steady_clock::now();
    std::vector<CtrlFrame> path = ctrl_;
    if (boundaryStmt != nullptr) {
        // The boundary statement has not executed yet (the hook runs
        // before any of its side effects), so it re-executes on resume.
        CtrlFrame f;
        f.stmt = boundaryStmt;
        path.push_back(f);
    }
    ckpt_ = std::make_unique<Checkpoint>(Checkpoint{
        procStore_, oracle_.store(), oracle_.statementsExecuted(),
        procMetrics_, transfers_, procStmts_, instances_, events_,
        eventsPerOp_, elemsPerOp_, std::move(path),
        profile_ != nullptr
            ? std::make_unique<obs::StmtProfile>(*profile_)
            : nullptr});
    ++checkpointsTaken_;
    obs::FlightRecorder::global().record(
        "sim.checkpoint", "instances=" + std::to_string(instances_) +
                              " total=" + std::to_string(checkpointsTaken_));
    if (ckptHist_ != nullptr)
        ckptHist_->record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
}

void SpmdSimulator::restoreCheckpoint() {
    PHPF_ASSERT(ckpt_ != nullptr, "restore without a checkpoint");
    obs::FlightRecorder::global().record(
        "sim.restore", "to_instances=" + std::to_string(ckpt_->instances) +
                           " recovery=" + std::to_string(recoveries_));
    const Checkpoint& ck = *ckpt_;
    procStore_ = ck.procStore;
    oracle_.store() = ck.oracleStore;
    oracle_.setStatementsExecuted(ck.oracleExecuted);
    procMetrics_ = ck.procMetrics;
    transfers_ = ck.transfers;
    procStmts_ = ck.procStmts;
    instances_ = ck.instances;
    events_ = ck.events;
    eventsPerOp_ = ck.eventsPerOp;
    elemsPerOp_ = ck.elemsPerOp;
    if (profile_ != nullptr && ck.profile != nullptr)
        *profile_ = *ck.profile;
    // The control stack is rebuilt by the resume navigation; worker
    // scratch holds no state at a statement boundary, but clear it
    // defensively.
    ctrl_.clear();
    for (WorkerScratch& w : workers_) {
        w.pending.clear();
        w.misses.clear();
        w.error = nullptr;
    }
}

void SpmdSimulator::resumeInto(const std::vector<Stmt*>& block, size_t depth) {
    const std::vector<CtrlFrame>& path = ckpt_->path;
    PHPF_ASSERT(depth < path.size(), "resume path exhausted");
    const CtrlFrame f = path[depth];  // copy: ckpt_ may be replaced below
    size_t idx = block.size();
    for (size_t i = 0; i < block.size(); ++i) {
        if (block[i] == f.stmt) {
            idx = i;
            break;
        }
    }
    PHPF_ASSERT(idx < block.size(),
                "resume path statement not found in its block");
    if (depth + 1 == path.size()) {
        // The boundary statement itself: the checkpoint preceded its
        // side effects, so re-execute it and the rest of the block.
        execBlockFrom(block, idx);
        return;
    }
    try {
        if (f.stmt->kind == StmtKind::Do) {
            resumeDo(f, depth);
        } else {
            PHPF_ASSERT(f.stmt->kind == StmtKind::If,
                        "resume path frame is neither Do nor If");
            // The If's own evaluation (predicate comm, accounting)
            // happened before the checkpoint; descend straight into the
            // branch that was in execution.
            ctrl_.push_back(f);
            FramePop pop{&ctrl_};
            resumeInto(f.taken ? f.stmt->thenBody : f.stmt->elseBody,
                       depth + 1);
        }
    } catch (GotoSignal& g) {
        for (size_t j = idx + 1; j < block.size(); ++j) {
            if (block[j]->label == g.label) {
                execBlockFrom(block, j);
                return;
            }
        }
        throw;
    }
    execBlockFrom(block, idx + 1);
}

void SpmdSimulator::resumeDo(const CtrlFrame& f, size_t depth) {
    const Stmt* s = f.stmt;
    ctrl_.push_back(f);
    {
        FramePop pop{&ctrl_};
        for (std::int64_t iv = f.iv; f.step > 0 ? iv <= f.ub : iv >= f.ub;
             iv += f.step) {
            ctrl_.back().iv = iv;
            if (iv == f.iv) {
                // The checkpointed iteration: its loop-variable stores
                // are already part of the restored state; finish it from
                // the recorded position.
                try {
                    resumeInto(s->body, depth + 1);
                } catch (GotoSignal& g) {
                    bool handled = false;
                    for (size_t i = 0; i < s->body.size(); ++i) {
                        if (s->body[i]->label == g.label) {
                            std::vector<Stmt*> rest(
                                s->body.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                s->body.end());
                            execBlock(rest);
                            handled = true;
                            break;
                        }
                    }
                    if (!handled) throw;
                }
                continue;
            }
            oracle_.store().set(s->loopVar, 0, static_cast<double>(iv));
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(
                    s->loopVar, 0, static_cast<double>(iv));
            execLoopBody(s);
        }
    }
    runCombines(s);
}

void SpmdSimulator::run() {
    const auto t0 = std::chrono::steady_clock::now();
    // Distribute initial (oracle-seeded) data: owners hold their
    // elements, replicated data is everywhere.
    const ProcGrid& grid = low_.dataMapping().grid();
    for (const Symbol& sym : prog_.symbols) {
        const ArrayMap& map = low_.dataMapping().mapOf(sym.id);
        if (!sym.isArray()) {
            for (int p = 0; p < procCount_; ++p)
                procStore_[static_cast<size_t>(p)].set(
                    sym.id, 0, oracle_.store().get(sym.id));
            continue;
        }
        // Enumerate elements and place them on their owners.
        std::vector<std::int64_t> idx(static_cast<size_t>(sym.rank()));
        std::function<void(int)> rec = [&](int d) {
            if (d == sym.rank()) {
                const std::int64_t flat =
                    procStore_[0].flatten(prog_, sym.id, idx);
                const GridSet owners = map.ownerOf(idx, grid);
                forEachGridProc(owners, grid, coordsScratch_, [&](int p) {
                    procStore_[static_cast<size_t>(p)].set(
                        sym.id, flat, oracle_.store().get(sym.id, flat));
                    return true;
                });
                return;
            }
            const ArrayDim& dim = sym.dims[static_cast<size_t>(d)];
            for (std::int64_t v = dim.lb; v <= dim.ub; ++v) {
                idx[static_cast<size_t>(d)] = v;
                rec(d + 1);
            }
        };
        rec(0);
    }
    recoveries_ = 0;
    checkpointsTaken_ = 0;
    instances_ = 0;
    ctrl_.clear();
    ckpt_.reset();
    // With crash recovery armed, take the initial checkpoint right after
    // initial distribution — a crash before the first periodic one
    // replays from the start of the program.
    if (crashSite_ != nullptr) takeCheckpoint(nullptr);
    bool resuming = false;
    for (;;) {
        try {
            if (resuming && !ckpt_->path.empty())
                resumeInto(prog_.top, 0);
            else
                execBlock(prog_.top);
            break;
        } catch (CrashSignal&) {
            ++recoveries_;
            if (recoveries_ > rcfg_.maxRecoveries)
                throw SimFault(
                    faultsite::kProcCrash,
                    "recovery budget exhausted (" +
                        std::to_string(rcfg_.maxRecoveries) +
                        " recoveries; " + std::to_string(checkpointsTaken_) +
                        " checkpoints taken)");
            restoreCheckpoint();
            resuming = true;
        }
    }
    wallSec_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();

    // One tid-stamped span per spawned pool worker, covering the whole
    // run and parented under the caller's current context (normally the
    // driver's sim-exec span). Recorded from each worker's own thread
    // in one final pool kick, so the Chrome trace gets a named
    // "sim-worker-N" row per thread without per-phase span overhead.
    // Worker 0 is the caller; its time is the sim-exec span itself.
    if (ctracer_ != nullptr && ctracer_->enabled() && pool_ != nullptr) {
        struct SpanCtx {
            obs::ConcurrentTracer* tracer;
            obs::SpanContext parent;
            std::int64_t startNs;
            std::int64_t durNs;
        };
        const std::int64_t durNs = static_cast<std::int64_t>(wallSec_ * 1e9);
        SpanCtx sc{ctracer_, ctracer_->currentContext(),
                   ctracer_->nowNs() - durNs, durNs};
        pool_->run(
            [](void* ctx, int worker) {
                if (worker == 0) return;
                const auto* c = static_cast<const SpanCtx*>(ctx);
                const std::string name =
                    "sim-worker-" + std::to_string(worker);
                c->tracer->addCompleteSpan(name.c_str(), "sim", c->startNs,
                                           c->durNs, c->parent);
            },
            &sc);
    }
}

std::int64_t SpmdSimulator::eventsOfOp(int opId) const {
    return opId >= 0 && static_cast<size_t>(opId) < eventsPerOp_.size()
               ? eventsPerOp_[static_cast<size_t>(opId)]
               : 0;
}

std::int64_t SpmdSimulator::elementsOfOp(int opId) const {
    return opId >= 0 && static_cast<size_t>(opId) < elemsPerOp_.size()
               ? elemsPerOp_[static_cast<size_t>(opId)]
               : 0;
}

void SpmdSimulator::accountExecutors(const std::vector<int>& execs) {
    // Guard accounting: processors in `execs` pass their computation-
    // partitioning guard for this statement instance, everyone else
    // evaluates the guard and skips.
    for (ProcSimMetrics& m : procMetrics_) ++m.stmtsSkipped;
    for (const int p : execs) {
        ProcSimMetrics& m = procMetrics_[static_cast<size_t>(p)];
        ++m.stmtsExecuted;
        --m.stmtsSkipped;
    }
}

double SpmdSimulator::imbalanceRatio() const {
    std::int64_t total = 0;
    std::int64_t maxExec = 0;
    for (const ProcSimMetrics& m : procMetrics_) {
        total += m.stmtsExecuted;
        maxExec = std::max(maxExec, m.stmtsExecuted);
    }
    if (total == 0) return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(procCount_);
    return static_cast<double>(maxExec) / mean;
}

double SpmdSimulator::valueOn(int proc, const std::string& name,
                              std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].get(s, flat);
}

bool SpmdSimulator::validOn(int proc, const std::string& name,
                            std::int64_t flat) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    return procStore_[static_cast<size_t>(proc)].valid(s, flat);
}

double SpmdSimulator::maxErrorVsOracle(const std::string& name) const {
    const SymbolId s = prog_.findSymbol(name);
    PHPF_ASSERT(s != kNoSymbol, "unknown symbol " + name);
    double maxErr = 0.0;
    for (std::int64_t flat = 0; flat < procStore_[0].sizeOf(s); ++flat) {
        const double ref = oracle_.store().get(s, flat);
        for (int p = 0; p < procCount_; ++p) {
            if (!procStore_[static_cast<size_t>(p)].valid(s, flat)) continue;
            maxErr = std::max(
                maxErr,
                std::abs(procStore_[static_cast<size_t>(p)].get(s, flat) - ref));
        }
    }
    return maxErr;
}

}  // namespace phpf
